#!/usr/bin/env bash
# The full local gate: formatting, lints, tests, bench compilation.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy panic-lint gate (no unwrap/expect in library code)"
cargo clippy -p icvbe-units -p icvbe-devphys -p icvbe-numerics -p icvbe-core \
  -p icvbe-thermal -p icvbe-spice -p icvbe-bandgap -p icvbe-instrument \
  -p icvbe-campaign -p icvbe-trace -p icvbe-serve \
  --lib -- -D warnings -D clippy::unwrap-used -D clippy::expect-used

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> bench smoke: campaign_scaling threads/8 (guards + timing)"
cargo bench -p icvbe-bench --bench campaign_scaling -- 'threads/8'

echo "==> fault-injection smoke: quarantine report vs golden fixture"
cargo build --release -p icvbe-repro
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --faults heavy --out "$smoke_dir" > /dev/null
diff -u scripts/fixtures/quarantine_smoke.csv "$smoke_dir/campaign_quarantine.csv"

echo "==> trace smoke: chrome JSON shape + masked folded profile vs golden fixture"
./target/release/repro campaign --diameter 3 --seed 7 --threads 2 \
  --trace="$smoke_dir" > /dev/null
grep -q '"schema":"icvbe-campaign-trace-v1"' "$smoke_dir/campaign_trace.json"
grep -q '"traceEvents":\[' "$smoke_dir/campaign_trace.json"
grep -q '"ph":"B"' "$smoke_dir/campaign_trace.json"
# The folded profile's frame paths are deterministic; only the trailing
# nanosecond sample counts are wall-clock. Mask them and pin the paths.
sed 's/ [0-9][0-9]*$/ 0/' "$smoke_dir/campaign_profile.folded" \
  | diff -u scripts/fixtures/trace_smoke.folded -

echo "==> perf smoke: device bypass and incremental restamping are live and inert"
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --out "$smoke_dir/bypass_on" > /dev/null
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --no-bypass --out "$smoke_dir/bypass_off" > /dev/null
metrics="$smoke_dir/bypass_on/campaign_metrics.json"
# The fast path must actually be running: tolerance bypasses taken,
# incremental restamps dominating, and both derived rates nonzero.
grep -q '"bypass_hits":0[,}]' "$metrics" && \
  { echo "FAIL: no tolerance bypasses taken"; exit 1; }
grep -q '"restamp_incremental":0[,}]' "$metrics" && \
  { echo "FAIL: no incremental restamps"; exit 1; }
grep -q '"bypass_hit_rate":0[,}]' "$metrics" && \
  { echo "FAIL: zero bypass hit rate"; exit 1; }
grep -q '"restamp_savings":0[,}]' "$metrics" && \
  { echo "FAIL: zero restamp savings"; exit 1; }
# ... and inert: with bypass disabled no tolerance bypass may be taken,
# and every frozen aggregate artifact is byte-identical either way.
grep -q '"bypass_hits":0[,}]' "$smoke_dir/bypass_off/campaign_metrics.json" || \
  { echo "FAIL: --no-bypass still took bypasses"; exit 1; }
for f in campaign_aggregate.json campaign_aggregate.csv \
         campaign_quarantine.json campaign_quarantine.csv; do
  cmp "$smoke_dir/bypass_on/$f" "$smoke_dir/bypass_off/$f" || \
    { echo "FAIL: $f differs with bypass on/off"; exit 1; }
done

echo "==> vexp smoke: exp-kernel conformance tests (2-ulp, lane/slice bit-identity)"
cargo test -q -p icvbe-numerics --lib vexp

echo "==> vexp grep gate: no libm exp in Newton/stamp hot paths"
# The bits contract routes every hot-path exponential through the
# in-tree vexp kernel; a stray f64::exp would silently reintroduce
# platform-dependent bits. Doc comments and #[cfg(test)] code may still
# reference libm for conformance checks.
for f in crates/spice/src/limexp.rs crates/spice/src/bjt.rs \
         crates/devphys/src/saturation.rs crates/devphys/src/carriers.rs; do
  if sed '/#\[cfg(test)\]/,$d' "$f" | grep -v '^\s*//' | grep -q '\.exp()'; then
    echo "FAIL: libm .exp() in hot-path file $f"; exit 1
  fi
done

echo "==> batch smoke: lockstep lane batching is live and bit-inert"
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --out "$smoke_dir/batch_auto" > /dev/null
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --batch 1 --out "$smoke_dir/batch_off" > /dev/null
grep -q '"batched_solves":0[,}]' "$smoke_dir/batch_auto/campaign_metrics.json" && \
  { echo "FAIL: default run took no batched solves"; exit 1; }
grep -q '"batched_solves":0[,}]' "$smoke_dir/batch_off/campaign_metrics.json" || \
  { echo "FAIL: --batch 1 still batched"; exit 1; }
grep -q '"lane_evals":0[,}]' "$smoke_dir/batch_auto/campaign_metrics.json" && \
  { echo "FAIL: default run fed no evals through the lane kernel"; exit 1; }
for f in campaign_aggregate.json campaign_aggregate.csv \
         campaign_quarantine.json campaign_quarantine.csv; do
  cmp "$smoke_dir/batch_auto/$f" "$smoke_dir/batch_off/$f" || \
    { echo "FAIL: $f differs batched vs --batch 1"; exit 1; }
done

echo "==> libm-exp smoke: ablation differs from vexp bits, invariant within itself"
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --libm-exp --out "$smoke_dir/libm_a" > /dev/null
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --libm-exp --batch 1 --shards 4 --out "$smoke_dir/libm_b" > /dev/null
cmp -s "$smoke_dir/batch_auto/campaign_aggregate.json" \
  "$smoke_dir/libm_a/campaign_aggregate.json" && \
  { echo "FAIL: --libm-exp produced the vexp bits (backend not switching)"; exit 1; }
for f in campaign_aggregate.json campaign_aggregate.csv \
         campaign_quarantine.json campaign_quarantine.csv; do
  cmp "$smoke_dir/libm_a/$f" "$smoke_dir/libm_b/$f" || \
    { echo "FAIL: $f differs across batch/shards under --libm-exp"; exit 1; }
done

echo "==> serve smoke: streamed artifacts match one-shot bytes; kill -9 + resume"
frozen="campaign_aggregate.json campaign_aggregate.csv
        campaign_quarantine.json campaign_quarantine.csv"
./target/release/repro campaign --diameter 4 --seed 21 --threads 2 \
  --out "$smoke_dir/golden_small" > /dev/null
ckdir="$smoke_dir/ck"
./target/release/repro serve --addr 127.0.0.1:0 --threads 2 --slice 8 \
  --checkpoint-every 1 --checkpoint-dir "$ckdir" > "$smoke_dir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^icvbe-serve listening on //p' "$smoke_dir/serve.log")"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: daemon never came up"; exit 1; }
./target/release/repro submit --addr "$addr" --label lot1 --diameter 4 --seed 21 \
  --out "$smoke_dir/served" > /dev/null
for f in $frozen; do
  cmp "$smoke_dir/golden_small/$f" "$smoke_dir/served/$f" || \
    { echo "FAIL: $f differs between one-shot and served"; exit 1; }
done
# A second, much larger lot: SIGKILL the daemon once its checkpoint file
# shows mid-campaign progress, restart on the same directory, and collect
# the resumed job by label — bytes must still match the one-shot run.
./target/release/repro campaign --diameter 40 --seed 22 --threads 2 \
  --out "$smoke_dir/golden_big" > /dev/null
./target/release/repro submit --addr "$addr" --label lot2 --diameter 40 --seed 22 \
  > /dev/null 2>&1 &
submit_pid=$!
progress=0
for _ in $(seq 1 200); do
  ck="$(ls "$ckdir"/job-*.json 2>/dev/null | head -1 || true)"
  if [ -n "$ck" ]; then
    progress="$(tr -d '\\' 2>/dev/null < "$ck" | grep -o '"next_die":[0-9]*' \
      | head -1 | cut -d: -f2 || true)"
    [ "${progress:-0}" -ge 20 ] && break
  fi
  sleep 0.05
done
[ "${progress:-0}" -ge 20 ] || \
  { echo "FAIL: no mid-campaign checkpoint observed"; exit 1; }
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
wait "$submit_pid" 2>/dev/null || true
./target/release/repro serve --addr 127.0.0.1:0 --threads 2 --slice 8 \
  --checkpoint-every 1 --checkpoint-dir "$ckdir" > "$smoke_dir/serve2.log" &
serve2_pid=$!
addr2=""
for _ in $(seq 1 100); do
  addr2="$(sed -n 's/^icvbe-serve listening on //p' "$smoke_dir/serve2.log")"
  [ -n "$addr2" ] && break
  sleep 0.1
done
[ -n "$addr2" ] || { echo "FAIL: restarted daemon never came up"; exit 1; }
./target/release/repro watch --addr "$addr2" --label lot2 \
  --out "$smoke_dir/resumed" > /dev/null
for f in $frozen; do
  cmp "$smoke_dir/golden_big/$f" "$smoke_dir/resumed/$f" || \
    { echo "FAIL: $f differs after kill -9 + resume"; exit 1; }
done
kill "$serve2_pid" 2>/dev/null || true
wait "$serve2_pid" 2>/dev/null || true

echo "==> chaos smoke: contained die panics are thread-invariant and counted"
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --chaos die_panic=0.4 --chaos-seed 7 --out "$smoke_dir/chaos_t2" > /dev/null
./target/release/repro campaign --diameter 5 --seed 13 --threads 8 \
  --chaos die_panic=0.4 --chaos-seed 7 --out "$smoke_dir/chaos_t8" > /dev/null
for f in $frozen; do
  cmp "$smoke_dir/chaos_t2/$f" "$smoke_dir/chaos_t8/$f" || \
    { echo "FAIL: $f differs across thread counts under chaos"; exit 1; }
done
grep -q '"internal_panic":[1-9]' "$smoke_dir/chaos_t2/campaign_quarantine.json" || \
  { echo "FAIL: no internal_panic quarantine despite die_panic chaos"; exit 1; }
grep -q '"die_panics":0[,}]' "$smoke_dir/chaos_t2/campaign_metrics.json" && \
  { echo "FAIL: contained panics not counted"; exit 1; }
# Zero-chaos must reproduce historical bytes: an explicit --chaos-seed with
# all-zero probabilities changes nothing against the plain run.
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --chaos-seed 99 --out "$smoke_dir/chaos_off" > /dev/null
for f in $frozen; do
  cmp "$smoke_dir/bypass_on/$f" "$smoke_dir/chaos_off/$f" || \
    { echo "FAIL: $f differs with chaos plumbing idle"; exit 1; }
done

echo "==> chaos smoke: kill -9 a faulty-write daemon, tear the checkpoint, resume"
ck3="$smoke_dir/ck3"
./target/release/repro serve --addr 127.0.0.1:0 --threads 2 --slice 8 \
  --checkpoint-every 1 --checkpoint-dir "$ck3" \
  --chaos write_error=0.2,torn=0.1 --chaos-seed 5 \
  > "$smoke_dir/serve3.log" 2>/dev/null &
serve3_pid=$!
addr3=""
for _ in $(seq 1 100); do
  addr3="$(sed -n 's/^icvbe-serve listening on //p' "$smoke_dir/serve3.log")"
  [ -n "$addr3" ] && break
  sleep 0.1
done
[ -n "$addr3" ] || { echo "FAIL: chaos daemon never came up"; exit 1; }
./target/release/repro submit --addr "$addr3" --label lot3 --diameter 40 --seed 22 \
  > /dev/null 2>&1 &
submit3_pid=$!
# Wait for mid-campaign progress AND a populated rotated slot, so tearing
# the primary leaves a last-good generation to fall back to.
progress=0
for _ in $(seq 1 400); do
  ck="$(ls "$ck3"/job-*.json 2>/dev/null | grep -v prev | head -1 || true)"
  prev="$(ls "$ck3"/job-*.prev.json 2>/dev/null | head -1 || true)"
  if [ -n "$ck" ] && [ -n "$prev" ]; then
    progress="$(tr -d '\\' 2>/dev/null < "$ck" | grep -o '"next_die":[0-9]*' \
      | head -1 | cut -d: -f2 || true)"
    [ "${progress:-0}" -ge 20 ] && break
  fi
  sleep 0.05
done
[ "${progress:-0}" -ge 20 ] || \
  { echo "FAIL: no mid-campaign checkpoint + rotated slot observed"; exit 1; }
kill -9 "$serve3_pid"
wait "$serve3_pid" 2>/dev/null || true
wait "$submit3_pid" 2>/dev/null || true
# Tear the tail off the newest checkpoint — a crash mid-write. The restart
# (chaos off) must recover through the .prev slot, byte-identically.
# kill -9 can land between the rotate and the fresh primary write; a
# missing primary is already the torn state the drill wants, so only
# truncate when one exists.
ck="$(ls "$ck3"/job-*.json 2>/dev/null | grep -v prev | head -1 || true)"
[ -z "$ck" ] || truncate -s -17 "$ck"
./target/release/repro serve --addr 127.0.0.1:0 --threads 2 --slice 8 \
  --checkpoint-every 1 --checkpoint-dir "$ck3" \
  > "$smoke_dir/serve4.log" 2>"$smoke_dir/serve4.err" &
serve4_pid=$!
addr4=""
for _ in $(seq 1 100); do
  addr4="$(sed -n 's/^icvbe-serve listening on //p' "$smoke_dir/serve4.log")"
  [ -n "$addr4" ] && break
  sleep 0.1
done
[ -n "$addr4" ] || { echo "FAIL: post-tear daemon never came up"; exit 1; }
./target/release/repro watch --addr "$addr4" --label lot3 \
  --out "$smoke_dir/resumed3" > /dev/null
for f in $frozen; do
  cmp "$smoke_dir/golden_big/$f" "$smoke_dir/resumed3/$f" || \
    { echo "FAIL: $f differs after torn-checkpoint resume"; exit 1; }
done
kill "$serve4_pid" 2>/dev/null || true
wait "$serve4_pid" 2>/dev/null || true

echo "==> shard smoke: multi-process campaign is byte-identical; killed worker is typed"
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --shards 1 --out "$smoke_dir/shard1" > /dev/null
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --shards 4 --out "$smoke_dir/shard4" > /dev/null
for f in $frozen; do
  cmp "$smoke_dir/bypass_on/$f" "$smoke_dir/shard1/$f" || \
    { echo "FAIL: $f differs between in-process and 1-shard run"; exit 1; }
  cmp "$smoke_dir/shard1/$f" "$smoke_dir/shard4/$f" || \
    { echo "FAIL: $f differs between 1-shard and 4-shard run"; exit 1; }
done
# A worker killed mid-slice must surface as the supervisor's typed error,
# not a hang, a partial artifact, or a silent success.
if ICVBE_SHARD_FAIL=2 ./target/release/repro campaign --diameter 5 --seed 13 \
  --threads 2 --shards 4 --out "$smoke_dir/shard_killed" \
  > /dev/null 2>"$smoke_dir/shard_killed.err"; then
  echo "FAIL: supervisor succeeded despite a killed shard worker"; exit 1
fi
grep -q 'shard worker 2 exited with code 3' "$smoke_dir/shard_killed.err" || \
  { echo "FAIL: killed worker did not surface the typed supervisor error"; exit 1; }
[ ! -e "$smoke_dir/shard_killed/campaign_aggregate.json" ] || \
  { echo "FAIL: failed sharded run still wrote artifacts"; exit 1; }

echo "==> adaptive smoke: probe corner bits match exhaustive, trailing corners skipped"
./target/release/repro campaign --diameter 5 --seed 13 --threads 2 \
  --adaptive --out "$smoke_dir/adaptive" > /dev/null
# bypass_on is the same spec run exhaustively; its first CSV data row is the
# probe corner. Adaptive appends a `skipped` column, so compare the shared
# prefix of the probe row and demand full skips on the trailing corners.
probe_ex="$(sed -n 2p "$smoke_dir/bypass_on/campaign_aggregate.csv")"
probe_ad="$(sed -n 2p "$smoke_dir/adaptive/campaign_aggregate.csv")"
case "$probe_ad" in
  "$probe_ex"*) : ;;
  *) echo "FAIL: adaptive probe corner drifted from the exhaustive bits"; exit 1 ;;
esac
grep -q '"skipped":[1-9]' "$smoke_dir/adaptive/campaign_aggregate.json" || \
  { echo "FAIL: adaptive run on a clean wafer skipped nothing"; exit 1; }

echo "OK: all checks passed"
