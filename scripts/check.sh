#!/usr/bin/env bash
# The full local gate: formatting, lints, tests, bench compilation.
# Everything runs offline — the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> bench smoke: campaign_scaling threads/8 (guards + timing)"
cargo bench -p icvbe-bench --bench campaign_scaling -- 'threads/8'

echo "OK: all checks passed"
