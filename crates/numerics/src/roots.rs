//! Scalar root finding: bisection, Brent's method, and damped Newton.
//!
//! Used to invert device characteristics (find the `VBE` giving a target
//! `IC`) and to solve the electro-thermal self-heating fixed point.

use crate::NumericsError;

/// Options controlling a scalar root search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the abscissa.
    pub x_tolerance: f64,
    /// Absolute tolerance on the function value.
    pub f_tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        RootOptions {
            x_tolerance: 1e-14,
            f_tolerance: 1e-14,
            max_iterations: 200,
        }
    }
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// Robust but linearly convergent; prefer [`brent`] unless the function is
/// pathological.
///
/// # Errors
///
/// - [`NumericsError::NoBracket`] if `f(lo)` and `f(hi)` have the same sign.
/// - [`NumericsError::InvalidInput`] if the interval is degenerate or `f`
///   returns a non-finite value.
/// - [`NumericsError::NoConvergence`] if the budget is exhausted.
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    options: RootOptions,
) -> Result<f64, NumericsError> {
    if !(lo < hi) {
        return Err(NumericsError::invalid(format!(
            "bisect: invalid interval [{lo}, {hi}]"
        )));
    }
    let (mut a, mut b) = (lo, hi);
    let mut fa = f(a);
    let fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(NumericsError::invalid("bisect: non-finite endpoint value"));
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::NoBracket { f_lo: fa, f_hi: fb });
    }
    for _ in 0..options.max_iterations {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(NumericsError::invalid("bisect: non-finite midpoint value"));
        }
        if fm.abs() <= options.f_tolerance || (b - a) <= options.x_tolerance {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: b - a,
    })
}

/// Finds a root of `f` in `[lo, hi]` with Brent's method (inverse quadratic
/// interpolation guarded by bisection).
///
/// # Errors
///
/// Same contract as [`bisect`].
pub fn brent(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    options: RootOptions,
) -> Result<f64, NumericsError> {
    let (mut a, mut b) = (lo, hi);
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(NumericsError::invalid("brent: non-finite endpoint value"));
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericsError::NoBracket { f_lo: fa, f_hi: fb });
    }
    // Ensure |f(b)| <= |f(a)|: b is the best iterate.
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = 0.0;

    for _ in 0..options.max_iterations {
        if fb.abs() <= options.f_tolerance || (a - b).abs() <= options.x_tolerance {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let lo_guard = (3.0 * a + b) / 4.0;
        let cond1 = !((s > lo_guard.min(b)) && (s < lo_guard.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < options.x_tolerance;
        let cond5 = !mflag && (c - d).abs() < options.x_tolerance;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if !fs.is_finite() {
            return Err(NumericsError::invalid("brent: non-finite trial value"));
        }
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: fb.abs(),
    })
}

/// Damped scalar Newton iteration from an initial guess.
///
/// The step is halved (up to 30 times) whenever it fails to reduce `|f|`,
/// which keeps the exponential device equations from overshooting.
///
/// # Errors
///
/// - [`NumericsError::InvalidInput`] if derivative or value become
///   non-finite or the derivative vanishes.
/// - [`NumericsError::NoConvergence`] if the budget is exhausted.
pub fn newton_scalar(
    mut f: impl FnMut(f64) -> (f64, f64),
    x0: f64,
    options: RootOptions,
) -> Result<f64, NumericsError> {
    let mut x = x0;
    let (mut fx, mut dfx) = f(x);
    for _ in 0..options.max_iterations {
        if !fx.is_finite() || !dfx.is_finite() {
            return Err(NumericsError::invalid("newton: non-finite value or slope"));
        }
        if fx.abs() <= options.f_tolerance {
            return Ok(x);
        }
        if dfx == 0.0 {
            return Err(NumericsError::invalid("newton: zero derivative"));
        }
        let full_step = fx / dfx;
        let mut damping = 1.0;
        let mut accepted = false;
        for _ in 0..30 {
            let trial = x - damping * full_step;
            let (ft, dft) = f(trial);
            if ft.is_finite() && ft.abs() < fx.abs() {
                x = trial;
                fx = ft;
                dfx = dft;
                accepted = true;
                break;
            }
            damping *= 0.5;
        }
        if !accepted {
            // Take the tiny damped step anyway; if it no longer moves x we
            // are at numerical stagnation.
            let trial = x - damping * full_step;
            if trial == x {
                return Ok(x);
            }
            let (ft, dft) = f(trial);
            x = trial;
            fx = ft;
            dfx = dft;
        }
        if (damping * full_step).abs() <= options.x_tolerance {
            return Ok(x);
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: fx.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, RootOptions::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2_fast() {
        let mut calls = 0;
        let r = brent(
            |x| {
                calls += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            RootOptions::default(),
        )
        .unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert!(calls < 30, "brent took {calls} calls");
    }

    #[test]
    fn brent_handles_exponential_diode_like_function() {
        // Solve exp(x/0.026) = 1e6, i.e. a diode inversion.
        let r = brent(
            |x| (x / 0.026).exp() - 1e6,
            0.0,
            1.0,
            RootOptions::default(),
        )
        .unwrap();
        assert!((r - 0.026 * 1e6_f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn no_bracket_is_reported() {
        let e = brent(|x| x * x + 1.0, -1.0, 1.0, RootOptions::default()).unwrap_err();
        assert!(matches!(e, NumericsError::NoBracket { .. }));
    }

    #[test]
    fn newton_converges_quadratically() {
        let r = newton_scalar(|x| (x * x - 2.0, 2.0 * x), 1.0, RootOptions::default()).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn newton_damps_on_overshoot() {
        // f(x) = atan(x): undamped Newton diverges from |x0| > ~1.39.
        let r = newton_scalar(
            |x| (x.atan(), 1.0 / (1.0 + x * x)),
            5.0,
            RootOptions::default(),
        )
        .unwrap();
        assert!(r.abs() < 1e-9);
    }

    #[test]
    fn endpoint_roots_returned_immediately() {
        assert_eq!(
            bisect(|x| x, 0.0, 1.0, RootOptions::default()).unwrap(),
            0.0
        );
        assert_eq!(
            brent(|x| x - 1.0, 0.0, 1.0, RootOptions::default()).unwrap(),
            1.0
        );
    }

    #[test]
    fn bisect_rejects_degenerate_interval() {
        assert!(bisect(|x| x, 1.0, 1.0, RootOptions::default()).is_err());
    }
}
