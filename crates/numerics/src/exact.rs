//! Exact fixed-point superaccumulation of `f64` sums and products.
//!
//! Floating-point addition is not associative, so a streaming statistic
//! folded die-by-die and the same statistic merged from per-shard partial
//! accumulators generally disagree in the last bits — which breaks the
//! campaign's byte-identical-artifacts contract the moment work is split
//! across processes. [`ExactSum`] removes the problem at the root: it
//! accumulates every addend *exactly*, as a wide fixed-point integer that
//! spans the full `f64` product range, so accumulation is associative and
//! commutative by construction. Absorbing values one at a time, or
//! merging partial accumulators in any tree shape, yields bit-identical
//! state — and [`ExactSum::to_f64`] rounds the exact total to the nearest
//! `f64` exactly once, at report time.
//!
//! [`Wide`] is the companion arbitrary-precision signed integer used for
//! *derived* statistics (variance, regression slope, correlation): the
//! textbook numerators `n·Σx² − (Σx)²` are computed exactly from the
//! accumulator integers — so a degenerate point cloud gives an exactly
//! zero numerator, never a tiny negative one — and rounded to `f64` at
//! the end.

/// Number of 32-bit limbs in an [`ExactSum`].
///
/// The accumulator represents `I · 2^SCALE_EXP` for an integer `I` held
/// in `LIMBS` base-2³² digits. Products of two finite `f64`s span
/// `[2^-2148, 2^2048)`; with `SCALE_EXP = -2176` the most significant
/// product bit lands at limb 132, leaving three limbs of carry headroom —
/// enough for far more than 2⁶⁴ accumulated terms.
pub const LIMBS: usize = 136;

/// Binary exponent of limb 0's least significant bit: an accumulator
/// holding integer `I` represents the real value `I · 2^SCALE_EXP`.
pub const SCALE_EXP: i32 = -2176;

const RADIX_BITS: u32 = 32;
const RADIX_MASK: i64 = 0xffff_ffff;

/// An exact superaccumulator for sums of `f64` values and `f64·f64`
/// products.
///
/// Internally a `LIMBS`-digit base-2³² fixed-point integer in canonical
/// form: every limb except the last lies in `[0, 2³²)` and the top limb
/// is signed (it carries the sign of the whole value). Addition of
/// accumulators is plain limb-wise integer addition, hence exactly
/// associative and commutative — the property the campaign's shard merge
/// is built on.
///
/// Non-finite inputs are a caller error (the aggregation layer only
/// absorbs finite measurement values); they are ignored in release
/// builds and trip a debug assertion.
#[derive(Clone, PartialEq, Eq)]
pub struct ExactSum {
    limbs: [i64; LIMBS],
}

impl std::fmt::Debug for ExactSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExactSum({})", self.to_f64())
    }
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum::zero()
    }
}

/// Splits a finite `f64` into `(mantissa, exponent, negative)` with
/// `value = ±mantissa · 2^exponent` exactly. Zero mantissa means ±0.0.
fn decompose(x: f64) -> (u64, i32, bool) {
    let bits = x.to_bits();
    let neg = bits >> 63 == 1;
    let exp_field = ((bits >> 52) & 0x7ff) as i32;
    let frac = bits & 0xf_ffff_ffff_ffff;
    debug_assert!(exp_field != 0x7ff, "non-finite value fed to ExactSum");
    if exp_field == 0x7ff {
        return (0, 0, neg);
    }
    if exp_field == 0 {
        // Subnormal (or zero): no implicit bit, fixed exponent.
        (frac, -1074, neg)
    } else {
        (frac | (1 << 52), exp_field - 1075, neg)
    }
}

impl ExactSum {
    /// The empty (zero) accumulator.
    #[must_use]
    pub fn zero() -> Self {
        ExactSum { limbs: [0; LIMBS] }
    }

    /// Whether the accumulated total is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&v| v == 0)
    }

    /// Restores canonical form: every limb but the last in `[0, 2³²)`,
    /// carries folded into the signed top limb.
    fn canonicalize(&mut self) {
        let mut carry: i64 = 0;
        for limb in self.limbs.iter_mut().take(LIMBS - 1) {
            let v = *limb + carry;
            let r = v & RADIX_MASK;
            // v - r is a multiple of 2^32; arithmetic shift is the
            // floor division canonicalization needs for negatives too.
            carry = (v - r) >> RADIX_BITS;
            *limb = r;
        }
        self.limbs[LIMBS - 1] += carry;
    }

    /// Adds `±m · 2^e` exactly. `e` must be ≥ [`SCALE_EXP`] (every
    /// finite `f64` and every product of two satisfies this).
    fn add_raw(&mut self, m: u64, e: i32, negative: bool) {
        if m == 0 {
            return;
        }
        let offset = e - SCALE_EXP;
        debug_assert!(offset >= 0, "exponent below the accumulator range");
        let q = (offset / 32) as usize;
        let r = offset % 32;
        debug_assert!(q + 2 < LIMBS, "exponent above the accumulator range");
        let wide = u128::from(m) << r; // < 2^96
        for k in 0..3 {
            let part = ((wide >> (32 * k)) & 0xffff_ffff) as i64;
            if part != 0 {
                self.limbs[q + k] += if negative { -part } else { part };
            }
        }
        self.canonicalize();
    }

    /// Adds a finite `f64` exactly.
    pub fn add_f64(&mut self, x: f64) {
        let (m, e, neg) = decompose(x);
        self.add_raw(m, e, neg);
    }

    /// Adds the *exact* product `x · y` (no intermediate rounding): the
    /// full 106-bit mantissa product is accumulated, so `Σ x·y` carries
    /// no per-term error.
    pub fn add_prod(&mut self, x: f64, y: f64) {
        let (mx, ex, negx) = decompose(x);
        let (my, ey, negy) = decompose(y);
        if mx == 0 || my == 0 {
            return;
        }
        let neg = negx != negy;
        let p = u128::from(mx) * u128::from(my); // ≤ 2^106
        let e = ex + ey;
        self.add_raw(p as u64, e, neg);
        self.add_raw((p >> 64) as u64, e + 64, neg);
    }

    /// Adds another accumulator's total exactly. Plain limb-wise integer
    /// addition: associative and commutative, so any merge tree over any
    /// partition of the inputs produces bit-identical state.
    pub fn merge(&mut self, other: &ExactSum) {
        for (a, b) in self.limbs.iter_mut().zip(other.limbs.iter()) {
            *a += *b;
        }
        self.canonicalize();
    }

    /// Flips the sign in place (stays canonical).
    fn negate(&mut self) {
        for v in &mut self.limbs {
            *v = -*v;
        }
        self.canonicalize();
    }

    /// The exact total as a signed arbitrary-precision integer scaled by
    /// `2^SCALE_EXP` (for derived-statistic arithmetic).
    #[must_use]
    pub fn to_wide(&self) -> Wide {
        let neg = self.limbs[LIMBS - 1] < 0;
        let mut mag = self.clone();
        if neg {
            mag.negate();
        }
        let mut digits: Vec<u64> = mag.limbs.iter().map(|&v| v as u64).collect();
        while digits.last() == Some(&0) {
            digits.pop();
        }
        Wide {
            neg: neg && !digits.is_empty(),
            digits,
        }
    }

    /// Rounds the exact total to the nearest `f64` (ties to even),
    /// overflowing to ±∞. This is the *only* rounding step between the
    /// raw measurement values and the reported sum.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.to_wide().to_f64_scaled(i64::from(SCALE_EXP))
    }

    /// The non-zero limbs as `(index, value)` pairs — the sparse form the
    /// checkpoint codec serializes. Real accumulator states touch a few
    /// dozen of the 136 limbs at most.
    pub fn nonzero_limbs(&self) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.limbs
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i, v))
    }

    /// Rebuilds an accumulator from sparse `(index, value)` pairs.
    /// Returns `None` on an out-of-range index, a duplicate index, or a
    /// limb value outside canonical form — a decoder must reject such
    /// documents rather than construct a non-canonical accumulator.
    #[must_use]
    pub fn from_sparse(pairs: &[(usize, i64)]) -> Option<Self> {
        let mut s = ExactSum::zero();
        let mut seen = [false; LIMBS];
        for &(i, v) in pairs {
            if i >= LIMBS || seen[i] {
                return None;
            }
            if i < LIMBS - 1 && !(0..=RADIX_MASK).contains(&v) {
                return None;
            }
            seen[i] = true;
            s.limbs[i] = v;
        }
        Some(s)
    }
}

/// A signed arbitrary-precision integer in base-2³² digits (each digit
/// stored in a `u64` slot, little-endian, trimmed). The workhorse behind
/// exact derived-statistic numerators like `n·Σx² − (Σx)²`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wide {
    neg: bool,
    digits: Vec<u64>,
}

impl Wide {
    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        Wide {
            neg: false,
            digits: Vec::new(),
        }
    }

    /// Whether the value is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.digits.is_empty()
    }

    /// Whether the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        !self.neg && !self.is_zero()
    }

    /// Whether the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    fn trim(mut self) -> Self {
        while self.digits.last() == Some(&0) {
            self.digits.pop();
        }
        if self.digits.is_empty() {
            self.neg = false;
        }
        self
    }

    /// Multiplies by a `u64` scalar (exact).
    #[must_use]
    pub fn mul_u64(&self, k: u64) -> Wide {
        if k == 0 || self.is_zero() {
            return Wide::zero();
        }
        let (klo, khi) = (u128::from(k & 0xffff_ffff), u128::from(k >> 32));
        let mut digits = vec![0u64; self.digits.len() + 3];
        let mut carry: u128 = 0;
        for (i, &d) in self.digits.iter().enumerate() {
            let t = u128::from(d) * klo + carry + u128::from(digits[i]);
            digits[i] = (t & 0xffff_ffff) as u64;
            carry = t >> 32;
        }
        let mut i = self.digits.len();
        while carry > 0 {
            let t = carry + u128::from(digits[i]);
            digits[i] = (t & 0xffff_ffff) as u64;
            carry = t >> 32;
            i += 1;
        }
        if khi > 0 {
            carry = 0;
            for (i, &d) in self.digits.iter().enumerate() {
                let t = u128::from(d) * khi + carry + u128::from(digits[i + 1]);
                digits[i + 1] = (t & 0xffff_ffff) as u64;
                carry = t >> 32;
            }
            let mut i = self.digits.len() + 1;
            while carry > 0 {
                let t = carry + u128::from(digits[i]);
                digits[i] = (t & 0xffff_ffff) as u64;
                carry = t >> 32;
                i += 1;
            }
        }
        Wide {
            neg: self.neg,
            digits,
        }
        .trim()
    }

    /// Full signed multiply (exact).
    #[must_use]
    pub fn mul(&self, other: &Wide) -> Wide {
        if self.is_zero() || other.is_zero() {
            return Wide::zero();
        }
        let mut digits = vec![0u64; self.digits.len() + other.digits.len() + 1];
        for (i, &a) in self.digits.iter().enumerate() {
            let mut carry: u128 = 0;
            for (j, &b) in other.digits.iter().enumerate() {
                let t = u128::from(digits[i + j]) + u128::from(a) * u128::from(b) + carry;
                digits[i + j] = (t & 0xffff_ffff) as u64;
                carry = t >> 32;
            }
            let mut k = i + other.digits.len();
            while carry > 0 {
                let t = u128::from(digits[k]) + carry;
                digits[k] = (t & 0xffff_ffff) as u64;
                carry = t >> 32;
                k += 1;
            }
        }
        Wide {
            neg: self.neg != other.neg,
            digits,
        }
        .trim()
    }

    /// Shifts left by `bits` (multiplies by `2^bits`, exact).
    #[must_use]
    pub fn shl_bits(&self, bits: usize) -> Wide {
        if self.is_zero() {
            return Wide::zero();
        }
        let (limb_shift, bit_shift) = (bits / 32, (bits % 32) as u32);
        let mut digits = vec![0u64; limb_shift];
        let mut carry: u64 = 0;
        for &d in &self.digits {
            let t = (d << bit_shift) | carry;
            digits.push(t & 0xffff_ffff);
            carry = t >> 32;
        }
        if carry > 0 {
            digits.push(carry);
        }
        Wide {
            neg: self.neg,
            digits,
        }
        .trim()
    }

    /// Magnitude comparison.
    fn cmp_mag(&self, other: &Wide) -> std::cmp::Ordering {
        self.digits
            .len()
            .cmp(&other.digits.len())
            .then_with(|| self.digits.iter().rev().cmp(other.digits.iter().rev()))
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
        let mut carry: u64 = 0;
        for i in 0..a.len().max(b.len()) {
            let t = a.get(i).copied().unwrap_or(0) + b.get(i).copied().unwrap_or(0) + carry;
            out.push(t & 0xffff_ffff);
            carry = t >> 32;
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b` over magnitudes, requires `a >= b`.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: i64 = 0;
        for i in 0..a.len() {
            let mut t = a[i] as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if t < 0 {
                t += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(t as u64);
        }
        debug_assert_eq!(borrow, 0, "sub_mag requires |a| >= |b|");
        out
    }

    /// Signed subtraction `self - other` (exact).
    #[must_use]
    pub fn sub(&self, other: &Wide) -> Wide {
        if self.neg != other.neg {
            // a - (-b) = a + b with a's sign.
            return Wide {
                neg: self.neg,
                digits: Wide::add_mag(&self.digits, &other.digits),
            }
            .trim();
        }
        match self.cmp_mag(other) {
            std::cmp::Ordering::Equal => Wide::zero(),
            std::cmp::Ordering::Greater => Wide {
                neg: self.neg,
                digits: Wide::sub_mag(&self.digits, &other.digits),
            }
            .trim(),
            std::cmp::Ordering::Less => Wide {
                neg: !self.neg,
                digits: Wide::sub_mag(&other.digits, &self.digits),
            }
            .trim(),
        }
    }

    /// Bit length of the magnitude (0 for zero).
    fn bit_len(&self) -> u64 {
        match self.digits.last() {
            None => 0,
            Some(&top) => (self.digits.len() as u64 - 1) * 32 + u64::from(64 - top.leading_zeros()),
        }
    }

    /// The bit at magnitude position `i` (0 = LSB).
    fn bit(&self, i: u64) -> bool {
        let (q, r) = ((i / 32) as usize, i % 32);
        self.digits.get(q).is_some_and(|d| (d >> r) & 1 == 1)
    }

    /// Whether any magnitude bit strictly below position `i` is set.
    fn any_bits_below(&self, i: u64) -> bool {
        let (q, r) = ((i / 32) as usize, i % 32);
        if self.digits.iter().take(q).any(|&d| d != 0) {
            return true;
        }
        r > 0 && self.digits.get(q).is_some_and(|d| d & ((1 << r) - 1) != 0)
    }

    /// The magnitude shifted right by `cut` bits, truncated to a `u64`
    /// (the caller guarantees the result fits).
    fn shifted_down(&self, cut: u64) -> u64 {
        let mut out: u64 = 0;
        let bits = self.bit_len();
        let mut pos = cut;
        let mut k = 0;
        while pos < bits && k < 64 {
            if self.bit(pos) {
                out |= 1 << k;
            }
            pos += 1;
            k += 1;
        }
        out
    }

    /// Rounds `self · 2^scale_exp` to the nearest `f64` (ties to even),
    /// with gradual underflow to subnormals/zero and overflow to ±∞.
    ///
    /// This is how derived statistics leave the exact domain: one
    /// correct rounding of the exactly computed value.
    #[must_use]
    pub fn to_f64_scaled(&self, scale_exp: i64) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let msb = self.bit_len() as i64 - 1;
        // The result's ulp exponent: 52 below the MSB, floored at the
        // subnormal ulp 2^-1074. Negative means the exact value already
        // fits in 53 bits — no rounding at all.
        let cut = (msb - 52).max(-1074 - scale_exp).max(0) as u64;
        let mut q = self.shifted_down(cut);
        let round = cut > 0 && self.bit(cut - 1);
        let sticky = cut > 1 && self.any_bits_below(cut - 1);
        if round && (sticky || q & 1 == 1) {
            q += 1;
        }
        let mut e = cut as i64 + scale_exp;
        if q == 1 << 53 {
            q >>= 1;
            e += 1;
        }
        if q == 0 {
            return 0.0;
        }
        // Normalize a short significand into the normal range (values
        // exactly representable in fewer than 53 bits).
        while q < 1 << 52 && e > -1074 {
            q <<= 1;
            e -= 1;
        }
        let sign_bit = if self.neg { 1u64 << 63 } else { 0 };
        if q >= 1 << 52 {
            // Normal (or overflow): value = q · 2^e with 2^52 <= q < 2^53.
            let exp_field = e + 52 + 1023;
            if exp_field >= 0x7ff {
                return f64::from_bits(sign_bit | (0x7ffu64 << 52)); // ±inf
            }
            debug_assert!(exp_field >= 1);
            f64::from_bits(sign_bit | ((exp_field as u64) << 52) | (q & 0xf_ffff_ffff_ffff))
        } else {
            // Subnormal: only reachable on the e == -1074 floor.
            debug_assert_eq!(e, -1074);
            f64::from_bits(sign_bit | q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — deterministic value streams without external crates.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        /// A finite f64 with wildly varying magnitude.
        fn f64(&mut self) -> f64 {
            loop {
                let x = f64::from_bits(self.next());
                if x.is_finite() {
                    return x;
                }
            }
        }
        /// A "tame" value in a range where sums stay finite.
        fn tame(&mut self) -> f64 {
            let m = (self.next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let e = (self.next() % 80) as i32 - 40;
            m * 2f64.powi(e)
        }
    }

    fn single(x: f64) -> f64 {
        let mut s = ExactSum::zero();
        s.add_f64(x);
        s.to_f64()
    }

    #[test]
    fn single_values_round_trip_exactly() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            std::f64::consts::PI,
            1e300,
            -1e300,
            1e-300,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0,            // subnormal
            f64::from_bits(1),                  // smallest subnormal
            f64::from_bits(0xf_ffff_ffff_ffff), // largest subnormal
            -f64::from_bits(1),
        ];
        for x in cases {
            let y = single(x);
            assert_eq!(y.to_bits(), (x + 0.0).to_bits(), "round trip of {x:e}");
        }
    }

    #[test]
    fn random_single_values_round_trip_exactly() {
        let mut rng = Mix(0x1234_5678);
        for _ in 0..2000 {
            let x = rng.f64();
            // -0.0 canonicalizes to +0.0; everything else is bit-exact.
            let want = if x == 0.0 { 0.0 } else { x };
            assert_eq!(single(x).to_bits(), want.to_bits(), "round trip of {x:e}");
        }
    }

    #[test]
    fn exact_cancellation_recovers_the_small_term() {
        let mut s = ExactSum::zero();
        s.add_f64(1e16);
        s.add_f64(1.0);
        s.add_f64(-1e16);
        assert_eq!(s.to_f64(), 1.0);

        let mut s = ExactSum::zero();
        s.add_f64(1e300);
        s.add_f64(1e-300);
        s.add_f64(-1e300);
        assert_eq!(s.to_f64(), 1e-300);
    }

    #[test]
    fn sum_overflow_saturates_to_infinity() {
        let mut s = ExactSum::zero();
        s.add_f64(f64::MAX);
        s.add_f64(f64::MAX);
        assert_eq!(s.to_f64(), f64::INFINITY);
        let mut s = ExactSum::zero();
        s.add_f64(f64::MIN);
        s.add_f64(f64::MIN);
        assert_eq!(s.to_f64(), f64::NEG_INFINITY);
        // ...but the state stays exact: subtracting one MAX recovers it.
        s.add_f64(f64::MAX);
        assert_eq!(s.to_f64(), f64::MIN);
    }

    #[test]
    fn single_products_round_like_hardware_multiply() {
        // to_f64 of the exact product must agree with the IEEE multiply,
        // which is itself correctly rounded — including subnormal results
        // and overflow to infinity.
        let mut rng = Mix(0xdead_beef);
        for _ in 0..2000 {
            let (x, y) = (rng.f64(), rng.f64());
            let mut s = ExactSum::zero();
            s.add_prod(x, y);
            let want = x * y;
            if want == 0.0 && x != 0.0 && y != 0.0 {
                // The exact product of nonzero values is nonzero, but the
                // hardware multiply underflowed to zero; to_f64 must also
                // round the tiny exact value to zero.
                assert_eq!(s.to_f64(), 0.0, "underflow of {x:e} * {y:e}");
            } else {
                assert_eq!(
                    s.to_f64().to_bits(),
                    (want + 0.0).to_bits(),
                    "product {x:e} * {y:e}"
                );
            }
        }
    }

    #[test]
    fn merge_matches_sequential_absorb_bit_for_bit() {
        let mut rng = Mix(7);
        let values: Vec<f64> = (0..257).map(|_| rng.tame()).collect();

        let mut sequential = ExactSum::zero();
        for &v in &values {
            sequential.add_f64(v);
            sequential.add_prod(v, v);
        }

        for chunk_size in [1usize, 2, 3, 7, 64, 256, 300] {
            let mut parts: Vec<ExactSum> = values
                .chunks(chunk_size)
                .map(|c| {
                    let mut s = ExactSum::zero();
                    for &v in c {
                        s.add_f64(v);
                        s.add_prod(v, v);
                    }
                    s
                })
                .collect();
            // Left-to-right fold.
            let mut folded = ExactSum::zero();
            for p in &parts {
                folded.merge(p);
            }
            assert_eq!(folded, sequential, "fold, chunks of {chunk_size}");
            // Balanced tree merge.
            while parts.len() > 1 {
                let mut next = Vec::new();
                for pair in parts.chunks(2) {
                    let mut m = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        m.merge(b);
                    }
                    next.push(m);
                }
                parts = next;
            }
            assert_eq!(parts[0], sequential, "tree, chunks of {chunk_size}");
        }
    }

    #[test]
    fn merge_is_commutative() {
        let mut rng = Mix(99);
        let (mut a, mut b) = (ExactSum::zero(), ExactSum::zero());
        for _ in 0..50 {
            a.add_f64(rng.tame());
            b.add_f64(rng.tame());
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn empty_merge_is_identity() {
        let mut rng = Mix(5);
        let mut a = ExactSum::zero();
        for _ in 0..20 {
            a.add_f64(rng.tame());
        }
        let before = a.clone();
        a.merge(&ExactSum::zero());
        assert_eq!(a, before);
        let mut empty = ExactSum::zero();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn sparse_round_trip_and_rejection() {
        let mut rng = Mix(42);
        let mut s = ExactSum::zero();
        for _ in 0..30 {
            s.add_f64(rng.tame());
            s.add_f64(-rng.tame());
        }
        let pairs: Vec<(usize, i64)> = s.nonzero_limbs().collect();
        assert!(!pairs.is_empty());
        assert!(pairs.len() < LIMBS, "sparse form must be sparse");
        let back = ExactSum::from_sparse(&pairs).unwrap();
        assert_eq!(back, s);

        assert!(
            ExactSum::from_sparse(&[(LIMBS, 1)]).is_none(),
            "index range"
        );
        assert!(ExactSum::from_sparse(&[(0, -1)]).is_none(), "canonical low");
        assert!(
            ExactSum::from_sparse(&[(0, 1 << 32)]).is_none(),
            "canonical high"
        );
        assert!(ExactSum::from_sparse(&[(3, 1), (3, 1)]).is_none(), "dupes");
        assert!(
            ExactSum::from_sparse(&[(LIMBS - 1, -5)]).is_some(),
            "signed top limb is canonical"
        );
    }

    #[test]
    fn negative_totals_round_correctly() {
        let mut rng = Mix(11);
        for _ in 0..200 {
            let x = -rng.tame().abs();
            let y = -rng.tame().abs();
            let mut s = ExactSum::zero();
            s.add_f64(x);
            s.add_f64(y);
            // Oracle: exact two-term sum via the classic 2Sum trick.
            let hi = x + y;
            let lo = {
                let bb = hi - x;
                (x - (hi - bb)) + (y - bb)
            };
            // If the 2Sum residual is zero the f64 sum is exact.
            if lo == 0.0 {
                assert_eq!(s.to_f64().to_bits(), (hi + 0.0).to_bits());
            }
        }
    }

    #[test]
    fn wide_arithmetic_matches_small_integer_oracle() {
        // Build integers through ExactSum and check the Wide ops against
        // i128 arithmetic (values small enough to be exact).
        let to_wide = |n: i64| -> Wide {
            let mut s = ExactSum::zero();
            s.add_f64(n as f64);
            s.to_wide()
        };
        let scaled = |w: &Wide| w.to_f64_scaled(i64::from(SCALE_EXP));
        for (a, b) in [(0i64, 0i64), (5, 3), (3, 5), (-4, 9), (7, -7), (-2, -8)] {
            let (wa, wb) = (to_wide(a), to_wide(b));
            assert_eq!(scaled(&wa.sub(&wb)), (a - b) as f64, "{a} - {b}");
            assert_eq!(
                wa.mul(&wb).to_f64_scaled(2 * i64::from(SCALE_EXP)),
                (a * b) as f64,
                "{a} * {b}"
            );
            assert_eq!(scaled(&wa.mul_u64(13)), (a * 13) as f64, "{a} * 13");
        }
        // Shift: x * 2^40.
        let w = to_wide(3);
        assert_eq!(scaled(&w.shl_bits(40)), 3.0 * 2f64.powi(40));
        // mul_u64 with a full-width scalar.
        let k = u64::MAX;
        let w = to_wide(1);
        assert_eq!(scaled(&w.mul_u64(k)), k as f64);
    }

    #[test]
    fn exact_variance_numerator_is_zero_for_constant_data() {
        // n*Σx² - (Σx)² computed exactly must vanish for constant data —
        // the property that makes degenerate scatter stats exactly zero.
        let x = 1.234_567_890_123_456_7;
        let n = 17u64;
        let mut sum = ExactSum::zero();
        let mut sumsq = ExactSum::zero();
        for _ in 0..n {
            sum.add_f64(x);
            sumsq.add_prod(x, x);
        }
        // Σx is I_S·2^s and Σx² is I_Q·2^s for the same s = SCALE_EXP, so
        // n·Σx² − (Σx)² = (n·I_Q·2^-s − I_S²)·2^2s.
        let t = sumsq
            .to_wide()
            .mul_u64(n)
            .shl_bits((-SCALE_EXP) as usize)
            .sub(&sum.to_wide().mul(&sum.to_wide()));
        assert!(
            t.is_zero(),
            "constant data must give an exactly zero numerator"
        );
    }

    #[test]
    fn exact_variance_matches_two_pass_for_benign_data() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let n = values.len() as u64;
        let mut sum = ExactSum::zero();
        let mut sumsq = ExactSum::zero();
        for &v in &values {
            sum.add_f64(v);
            sumsq.add_prod(v, v);
        }
        let t = sumsq
            .to_wide()
            .mul_u64(n)
            .shl_bits((-SCALE_EXP) as usize)
            .sub(&sum.to_wide().mul(&sum.to_wide()));
        let var = t.to_f64_scaled(2 * i64::from(SCALE_EXP)) / ((n * (n - 1)) as f64);
        // Two-pass oracle: mean 5, Σ(x-mean)² = 32, sample variance 32/7.
        assert_eq!(var, 32.0 / 7.0);
    }

    #[test]
    fn to_f64_scaled_handles_overflow_and_underflow() {
        // Unit integers straight from sparse limbs (to_wide of an
        // ExactSum would carry the 2^2176 fixed-point scale).
        let one = ExactSum::from_sparse(&[(0, 1)]).unwrap().to_wide();
        let three = ExactSum::from_sparse(&[(0, 3)]).unwrap().to_wide();
        // 2^1100 overflows f64.
        assert_eq!(one.shl_bits(1100).to_f64_scaled(0), f64::INFINITY);
        assert_eq!(one.shl_bits(1100).to_f64_scaled(-3276 - 52), 0.0);
        // Far below the subnormal floor: rounds to zero.
        assert_eq!(one.to_f64_scaled(-3000), 0.0);
        // Exactly the smallest subnormal.
        assert_eq!(one.to_f64_scaled(-1074), f64::from_bits(1));
        // Half of it: tie, rounds to even (zero).
        assert_eq!(one.to_f64_scaled(-1075), 0.0);
        // Three quarters: above the tie, rounds up.
        assert_eq!(three.to_f64_scaled(-1076), f64::from_bits(1));
        // Plain integers round-trip.
        assert_eq!(three.to_f64_scaled(0), 3.0);
    }
}
