//! Damped multivariate Newton-Raphson.
//!
//! This is the outer loop of the SPICE DC operating-point solver: the
//! circuit provides residual `f(x)` and Jacobian `J(x)`; this module solves
//! `f(x) = 0` with step damping and divergence detection.

use crate::lu::LuSolver;
use crate::{Matrix, NumericsError};

/// Options controlling the multivariate Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Convergence threshold on the residual infinity norm.
    pub residual_tolerance: f64,
    /// Convergence threshold on the update infinity norm.
    pub step_tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Maximum infinity-norm of a single Newton update; larger proposed
    /// steps are scaled down (crucial for exponential device equations).
    pub max_step: f64,
    /// Residual norm that is still *accepted* when the iteration stagnates
    /// or exhausts its budget without reaching `residual_tolerance`.
    /// Circuit solves use this the way SPICE uses `reltol`/`abstol`: the
    /// last digits of a stiff system are often unreachable but irrelevant.
    /// `0.0` (the default) disables the escape hatch.
    pub acceptable_residual: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            residual_tolerance: 1e-12,
            step_tolerance: 1e-12,
            max_iterations: 200,
            max_step: 1.0e9,
            acceptable_residual: 0.0,
        }
    }
}

/// A system of nonlinear equations `f(x) = 0` with an explicit Jacobian.
pub trait NonlinearSystem {
    /// Number of unknowns (and equations).
    fn dimension(&self) -> usize;

    /// Evaluates the residual into `out` (length [`Self::dimension`]).
    ///
    /// # Errors
    ///
    /// Implementations may fail on unphysical iterates.
    fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError>;

    /// Evaluates the Jacobian `df_i/dx_j`.
    ///
    /// # Errors
    ///
    /// Implementations may fail on unphysical iterates.
    fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError>;
}

/// Outcome of a converged Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual infinity norm.
    pub residual_norm: f64,
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Solves `f(x) = 0` by damped Newton from the initial guess `x0`.
///
/// Each iteration solves `J dx = -f` by LU and line-searches the damping
/// factor (halving up to 20 times) until the residual norm decreases.
///
/// # Errors
///
/// - Propagates residual/Jacobian/LU failures.
/// - [`NumericsError::NoConvergence`] when the budget is exhausted or the
///   line search stagnates.
pub fn solve_newton(
    system: &impl NonlinearSystem,
    x0: &[f64],
    options: NewtonOptions,
) -> Result<NewtonSolution, NumericsError> {
    let n = system.dimension();
    if x0.len() != n {
        return Err(NumericsError::dims(format!(
            "newton: system dimension {n}, initial guess {}",
            x0.len()
        )));
    }
    let mut x = x0.to_vec();
    let mut f = vec![0.0; n];
    let mut jac = Matrix::zeros(n, n);
    system.residual(&x, &mut f)?;
    let mut fnorm = inf_norm(&f);

    for iter in 0..options.max_iterations {
        if fnorm <= options.residual_tolerance {
            return Ok(NewtonSolution {
                x,
                iterations: iter,
                residual_norm: fnorm,
            });
        }
        system.jacobian(&x, &mut jac)?;
        let lu = LuSolver::factor(&jac)?;
        let neg_f: Vec<f64> = f.iter().map(|v| -v).collect();
        let mut dx = lu.solve(&neg_f)?;

        // Clamp very large steps before the line search sees them.
        let dx_norm = inf_norm(&dx);
        if dx_norm > options.max_step {
            let scale = options.max_step / dx_norm;
            for d in &mut dx {
                *d *= scale;
            }
        }

        let mut damping = 1.0;
        let mut advanced = false;
        let mut trial = vec![0.0; n];
        let mut f_trial = vec![0.0; n];
        for _ in 0..20 {
            for i in 0..n {
                trial[i] = x[i] + damping * dx[i];
            }
            if system.residual(&trial, &mut f_trial).is_ok() {
                let t_norm = inf_norm(&f_trial);
                if t_norm.is_finite() && (t_norm < fnorm || t_norm <= options.residual_tolerance) {
                    x.copy_from_slice(&trial);
                    f.copy_from_slice(&f_trial);
                    fnorm = t_norm;
                    advanced = true;
                    break;
                }
            }
            damping *= 0.5;
        }
        if !advanced {
            // Accept the most damped step if it still moves the iterate; a
            // locally increasing residual can still escape a bad region.
            for i in 0..n {
                trial[i] = x[i] + damping * dx[i];
            }
            if trial == x {
                if fnorm <= options.acceptable_residual {
                    return Ok(NewtonSolution {
                        x,
                        iterations: iter,
                        residual_norm: fnorm,
                    });
                }
                return Err(NumericsError::NoConvergence {
                    iterations: iter,
                    residual: fnorm,
                });
            }
            system.residual(&trial, &mut f_trial)?;
            let t_norm = inf_norm(&f_trial);
            if !t_norm.is_finite() {
                return Err(NumericsError::NoConvergence {
                    iterations: iter,
                    residual: fnorm,
                });
            }
            x.copy_from_slice(&trial);
            f.copy_from_slice(&f_trial);
            fnorm = t_norm;
        }
        if inf_norm(&dx) * damping <= options.step_tolerance
            && fnorm <= options.residual_tolerance.max(1e-9)
        {
            return Ok(NewtonSolution {
                x,
                iterations: iter + 1,
                residual_norm: fnorm,
            });
        }
    }
    if fnorm <= options.acceptable_residual {
        return Ok(NewtonSolution {
            x,
            iterations: options.max_iterations,
            residual_norm: fnorm,
        });
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: fnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x^2 + y^2 = 4, x - y = 0  =>  x = y = sqrt(2).
    struct Circle;

    impl NonlinearSystem for Circle {
        fn dimension(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] - x[1];
            Ok(())
        }
        fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError> {
            out[(0, 0)] = 2.0 * x[0];
            out[(0, 1)] = 2.0 * x[1];
            out[(1, 0)] = 1.0;
            out[(1, 1)] = -1.0;
            Ok(())
        }
    }

    #[test]
    fn solves_circle_intersection() {
        let sol = solve_newton(&Circle, &[1.0, 0.5], NewtonOptions::default()).unwrap();
        assert!((sol.x[0] - std::f64::consts::SQRT_2).abs() < 1e-10);
        assert!((sol.x[1] - std::f64::consts::SQRT_2).abs() < 1e-10);
        assert!(sol.residual_norm <= 1e-12);
    }

    /// Stiff exponential resembling a diode: f(v) = 1e-14 (e^{v/.026}-1) - 1e-3.
    struct Diode;

    impl NonlinearSystem for Diode {
        fn dimension(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            out[0] = 1e-14 * ((x[0] / 0.026).exp() - 1.0) - 1e-3;
            Ok(())
        }
        fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError> {
            out[(0, 0)] = 1e-14 / 0.026 * (x[0] / 0.026).exp();
            Ok(())
        }
    }

    #[test]
    fn damping_handles_stiff_exponential() {
        let opts = NewtonOptions {
            residual_tolerance: 1e-15,
            ..NewtonOptions::default()
        };
        let sol = solve_newton(&Diode, &[0.8], opts).unwrap();
        let expected = 0.026 * (1e-3_f64 / 1e-14 + 1.0).ln();
        assert!((sol.x[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        assert!(solve_newton(&Circle, &[1.0], NewtonOptions::default()).is_err());
    }

    #[test]
    fn already_converged_returns_zero_iterations() {
        let s = std::f64::consts::SQRT_2;
        let sol = solve_newton(&Circle, &[s, s], NewtonOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
    }
}
