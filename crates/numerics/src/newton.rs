//! Damped multivariate Newton-Raphson.
//!
//! This is the outer loop of the SPICE DC operating-point solver: the
//! circuit provides residual `f(x)` and Jacobian `J(x)`; this module solves
//! `f(x) = 0` with step damping and divergence detection.
//!
//! Two entry points share one implementation:
//!
//! - [`solve_newton`] — the convenient form: allocates its own scratch and
//!   returns an owned [`NewtonSolution`].
//! - [`solve_newton_with`] — the hot-path form: every buffer (residual,
//!   Jacobian, LU storage, trial/line-search vectors) lives in a caller-owned
//!   [`NewtonWorkspace`], so steady-state iterations perform **zero** heap
//!   allocations. Campaign workloads run thousands of structurally identical
//!   solves; reusing the workspace removes the dominant allocator traffic.

use std::sync::Arc;

use crate::lu::LuFactors;
use crate::sparse::{LuSymbolic, SparseLu};
use crate::{Matrix, NumericsError};

/// Options controlling the multivariate Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Convergence threshold on the residual infinity norm.
    pub residual_tolerance: f64,
    /// Convergence threshold on the update infinity norm.
    pub step_tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Maximum infinity-norm of a single Newton update; larger proposed
    /// steps are scaled down (crucial for exponential device equations).
    pub max_step: f64,
    /// Residual norm that is still *accepted* when the iteration stagnates
    /// or exhausts its budget without reaching `residual_tolerance`.
    /// Circuit solves use this the way SPICE uses `reltol`/`abstol`: the
    /// last digits of a stiff system are often unreachable but irrelevant.
    /// `0.0` (the default) disables the escape hatch.
    pub acceptable_residual: f64,
    /// After convergence, keep taking full (undamped) Newton steps until
    /// the iterate is **bitwise stationary** — `x + dx` rounds back to `x`
    /// — or a two-cycle on the last-ulp grid is detected and resolved to a
    /// canonical member. This makes the returned solution a pure function
    /// of the *system*, independent of the initial guess, which is what
    /// lets warm-started sweeps reproduce cold-started results bit for
    /// bit. Costs one to three extra iterations; off by default.
    pub polish: bool,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            residual_tolerance: 1e-12,
            step_tolerance: 1e-12,
            max_iterations: 200,
            max_step: 1.0e9,
            acceptable_residual: 0.0,
            polish: false,
        }
    }
}

/// A system of nonlinear equations `f(x) = 0` with an explicit Jacobian.
pub trait NonlinearSystem {
    /// Number of unknowns (and equations).
    fn dimension(&self) -> usize;

    /// Evaluates the residual into `out` (length [`Self::dimension`]).
    ///
    /// # Errors
    ///
    /// Implementations may fail on unphysical iterates.
    fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError>;

    /// Evaluates the Jacobian `df_i/dx_j`.
    ///
    /// # Errors
    ///
    /// Implementations may fail on unphysical iterates.
    fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError>;

    /// Evaluates residual and Jacobian at the same point in one call.
    ///
    /// The default chains [`Self::residual`] and [`Self::jacobian`];
    /// implementations whose Jacobian evaluation produces the residual as
    /// a by-product (MNA stamping does) should override it to evaluate
    /// once. Overrides must leave `f` **bitwise identical** to what
    /// [`Self::residual`] writes — the fixed-point polish relies on the
    /// two paths agreeing to the last ulp.
    ///
    /// # Errors
    ///
    /// Implementations may fail on unphysical iterates.
    fn residual_and_jacobian(
        &self,
        x: &[f64],
        f: &mut [f64],
        jac: &mut Matrix,
    ) -> Result<(), NumericsError> {
        self.residual(x, f)?;
        self.jacobian(x, jac)
    }

    /// Switches the system between its default (possibly approximate) and
    /// an exact evaluation mode. Systems with tolerance-based fast paths —
    /// the SPICE device bypass reuses a device's previous operating point
    /// when its controlling voltages barely moved — must honor
    /// `set_exact(true)` by evaluating every device fully, so the solver
    /// can verify convergence and polish the accepted solution against the
    /// *exact* system. Systems without fast paths ignore this (default).
    fn set_exact(&self, exact: bool) {
        let _ = exact;
    }

    /// Whether evaluations in the current mode may differ from exact-mode
    /// evaluations (i.e. a tolerance fast path is armed and enabled).
    /// The solver uses this to skip the exact re-verification entirely for
    /// ordinary systems; the default is `false`.
    fn residual_is_approximate(&self) -> bool {
        false
    }
}

/// Outcome of a converged Newton solve.
#[derive(Debug, Clone, PartialEq)]
pub struct NewtonSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual infinity norm.
    pub residual_norm: f64,
}

/// Outcome of a workspace solve: the solution stays in the caller's buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonInfo {
    /// Iterations used by the damped phase.
    pub iterations: usize,
    /// Extra full-step iterations used by the polish phase.
    pub polish_iterations: usize,
    /// Final residual infinity norm (of the damped phase; the polish phase
    /// can only move the iterate within the last-ulp neighbourhood).
    pub residual_norm: f64,
}

/// Reusable scratch for [`solve_newton_with`]: residual/trial vectors, the
/// Jacobian, and the LU factorization storage.
///
/// Buffers are sized lazily on first use and only grow; a workspace sized
/// for the largest system in a sweep never allocates again.
#[derive(Debug, Clone, Default)]
pub struct NewtonWorkspace {
    f: Vec<f64>,
    f_trial: Vec<f64>,
    trial: Vec<f64>,
    dx: Vec<f64>,
    neg_f: Vec<f64>,
    prev: Vec<f64>,
    /// Cluster-walk buffers (polish): probe iterate, probe base, and the
    /// flat `CLUSTER_MAX x n` store of discovered fixed points.
    probe: Vec<f64>,
    base: Vec<f64>,
    cluster: Vec<f64>,
    jac: Option<Matrix>,
    lu: LinearSolver,
}

/// The linear-solver backend of a [`NewtonWorkspace`]: dense partial-pivot
/// LU (the default) or sparse LU bound to a frozen symbolic plan. The two
/// are bit-compatible on matrices honoring the plan's pattern (see
/// [`crate::sparse`]), so the choice is purely about work skipped.
#[derive(Debug, Clone)]
enum LinearSolver {
    /// Dense partial-pivot LU.
    Dense(LuFactors),
    /// Sparse LU on a frozen symbolic plan.
    Sparse(SparseLu),
}

impl Default for LinearSolver {
    fn default() -> Self {
        LinearSolver::Dense(LuFactors::new())
    }
}

impl LinearSolver {
    fn factor_from(&mut self, a: &Matrix) -> Result<(), NumericsError> {
        match self {
            LinearSolver::Dense(lu) => lu.factor_from(a),
            LinearSolver::Sparse(lu) => lu.factor_from(a),
        }
    }

    fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericsError> {
        match self {
            LinearSolver::Dense(lu) => lu.solve_into(b, x),
            LinearSolver::Sparse(lu) => lu.solve_into(b, x),
        }
    }
}

impl NewtonWorkspace {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        NewtonWorkspace::default()
    }

    /// Routes this workspace's linear solves through sparse LU on `plan`.
    /// A workspace already bound to the same plan (pointer identity) is
    /// left untouched, so per-solve rebinding is allocation-free; binding a
    /// new plan replaces the factor storage.
    pub fn use_sparse_plan(&mut self, plan: &Arc<LuSymbolic>) {
        match &self.lu {
            LinearSolver::Sparse(s) if Arc::ptr_eq(s.plan(), plan) => {}
            _ => self.lu = LinearSolver::Sparse(SparseLu::new(Arc::clone(plan))),
        }
    }

    /// Routes this workspace's linear solves through dense LU (the
    /// default). A no-op when already dense.
    pub fn use_dense(&mut self) {
        if !matches!(self.lu, LinearSolver::Dense(_)) {
            self.lu = LinearSolver::Dense(LuFactors::new());
        }
    }

    fn ensure(&mut self, n: usize) {
        // A sparse plan sized for a different system cannot factor this
        // one; fall back to dense rather than erroring mid-solve.
        if let LinearSolver::Sparse(s) = &self.lu {
            if s.plan().dimension() != n {
                self.lu = LinearSolver::Dense(LuFactors::new());
            }
        }
        if self.f.len() != n {
            self.f.resize(n, 0.0);
            self.f_trial.resize(n, 0.0);
            self.trial.resize(n, 0.0);
            self.dx.resize(n, 0.0);
            self.neg_f.resize(n, 0.0);
            self.prev.resize(n, 0.0);
            self.probe.resize(n, 0.0);
            self.base.resize(n, 0.0);
            self.cluster.resize(CLUSTER_MAX * n, 0.0);
        }
        let fresh = !matches!(&self.jac, Some(j) if j.rows() == n && j.cols() == n);
        if fresh {
            self.jac = Some(Matrix::zeros(n, n));
        }
    }
}

fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Deterministic tie-break for bitwise two-cycles: lexicographic order on
/// `f64::total_cmp`, entry by entry.
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

/// Solves `f(x) = 0` by damped Newton from the initial guess `x0`.
///
/// Each iteration solves `J dx = -f` by LU and line-searches the damping
/// factor (halving up to 20 times) until the residual norm decreases.
///
/// # Errors
///
/// - Propagates residual/Jacobian/LU failures.
/// - [`NumericsError::NoConvergence`] when the budget is exhausted or the
///   line search stagnates.
pub fn solve_newton(
    system: &impl NonlinearSystem,
    x0: &[f64],
    options: NewtonOptions,
) -> Result<NewtonSolution, NumericsError> {
    let mut ws = NewtonWorkspace::new();
    let mut x = x0.to_vec();
    let info = solve_newton_with(system, &mut x, options, &mut ws)?;
    Ok(NewtonSolution {
        x,
        iterations: info.iterations,
        residual_norm: info.residual_norm,
    })
}

/// [`solve_newton`] with caller-owned scratch and an in/out solution
/// buffer: `x` holds the initial guess on entry and the solution on a
/// successful return. Steady-state calls allocate nothing.
///
/// # Errors
///
/// Same contract as [`solve_newton`]; additionally rejects an `x` whose
/// length differs from the system dimension.
pub fn solve_newton_with(
    system: &impl NonlinearSystem,
    x: &mut [f64],
    options: NewtonOptions,
    ws: &mut NewtonWorkspace,
) -> Result<NewtonInfo, NumericsError> {
    let n = system.dimension();
    if x.len() != n {
        return Err(NumericsError::dims(format!(
            "newton: system dimension {n}, initial guess {}",
            x.len()
        )));
    }
    ws.ensure(n);
    let mut info = newton_damped(system, x, options, ws)?;
    if options.polish {
        // Polish against the exact system: the fixed point (and its
        // canonical cluster member) must be a pure function of the system,
        // so a tolerance fast path may not leak into the map here.
        system.set_exact(true);
        info.polish_iterations = polish_to_fixed_point(system, x, ws);
        system.set_exact(false);
    }
    Ok(info)
}

/// Runs only the exact-mode polish/canonicalization stage of
/// [`solve_newton_with`] on an iterate that has already been driven to
/// convergence by other means (e.g. a lane of a batched Newton driver).
/// Returns the polish iteration count. Bit-for-bit, this is the
/// `options.polish` tail of `solve_newton_with`: the fixed point is a pure
/// function of the system, so polishing a converged iterate yields the
/// same bits regardless of which driver produced it.
pub fn polish_converged(
    system: &impl NonlinearSystem,
    x: &mut [f64],
    ws: &mut NewtonWorkspace,
) -> usize {
    if x.len() != system.dimension() {
        return 0;
    }
    ws.ensure(x.len());
    system.set_exact(true);
    let iterations = polish_to_fixed_point(system, x, ws);
    system.set_exact(false);
    iterations
}

/// Re-verifies an accept-candidate residual against the exact system when
/// the current evaluation mode is approximate (device bypass armed).
/// Updates `f` and `fnorm` in place; a no-op for ordinary systems. The
/// caller re-checks its acceptance condition against the refreshed norm and
/// keeps iterating when the exact residual no longer passes — so every
/// *accepted* solution satisfies the convergence test with no bypass
/// shortcuts in effect.
fn exactify(
    system: &impl NonlinearSystem,
    x: &[f64],
    f: &mut [f64],
    fnorm: &mut f64,
) -> Result<(), NumericsError> {
    if !system.residual_is_approximate() {
        return Ok(());
    }
    system.set_exact(true);
    let result = system.residual(x, f);
    system.set_exact(false);
    result?;
    *fnorm = inf_norm(f);
    Ok(())
}

/// [`solve_newton_with`] bracketed by an [`icvbe_trace::SpanKind::Newton`]
/// span on `trace`; the end record carries the damped and polish iteration
/// counts as its payload. With a disabled buffer this is a plain
/// delegation — no clock read, no record.
///
/// # Errors
///
/// Same contract as [`solve_newton_with`].
pub fn solve_newton_traced(
    system: &impl NonlinearSystem,
    x: &mut [f64],
    options: NewtonOptions,
    ws: &mut NewtonWorkspace,
    trace: &mut icvbe_trace::TraceBuf,
) -> Result<NewtonInfo, NumericsError> {
    let span = trace.span(icvbe_trace::SpanKind::Newton);
    let result = solve_newton_with(system, x, options, ws);
    match &result {
        Ok(info) => {
            trace.span_end_with(span, info.iterations as u64, info.polish_iterations as u64)
        }
        Err(_) => trace.span_end(span),
    }
    result
}

/// The damped phase: bitwise identical to the historical `solve_newton`
/// algorithm, with every temporary drawn from the workspace.
fn newton_damped(
    system: &impl NonlinearSystem,
    x: &mut [f64],
    options: NewtonOptions,
    ws: &mut NewtonWorkspace,
) -> Result<NewtonInfo, NumericsError> {
    let n = x.len();
    let Some(jac) = ws.jac.as_mut() else {
        return Err(NumericsError::invalid(
            "newton workspace jacobian not sized",
        ));
    };
    system.residual(x, &mut ws.f)?;
    let mut fnorm = inf_norm(&ws.f);

    for iter in 0..options.max_iterations {
        if fnorm <= options.residual_tolerance {
            exactify(system, x, &mut ws.f, &mut fnorm)?;
            if fnorm <= options.residual_tolerance {
                return Ok(NewtonInfo {
                    iterations: iter,
                    polish_iterations: 0,
                    residual_norm: fnorm,
                });
            }
            // The exact residual no longer passes: keep iterating on it.
        }
        system.jacobian(x, jac)?;
        ws.lu.factor_from(jac)?;
        for i in 0..n {
            ws.neg_f[i] = -ws.f[i];
        }
        ws.lu.solve_into(&ws.neg_f, &mut ws.dx)?;

        // Clamp very large steps before the line search sees them.
        let dx_norm = inf_norm(&ws.dx);
        if dx_norm > options.max_step {
            let scale = options.max_step / dx_norm;
            for d in &mut ws.dx {
                *d *= scale;
            }
        }

        let mut damping = 1.0;
        let mut advanced = false;
        for _ in 0..20 {
            for i in 0..n {
                ws.trial[i] = x[i] + damping * ws.dx[i];
            }
            if system.residual(&ws.trial, &mut ws.f_trial).is_ok() {
                let t_norm = inf_norm(&ws.f_trial);
                if t_norm.is_finite() && (t_norm < fnorm || t_norm <= options.residual_tolerance) {
                    x.copy_from_slice(&ws.trial);
                    ws.f.copy_from_slice(&ws.f_trial);
                    fnorm = t_norm;
                    advanced = true;
                    break;
                }
            }
            damping *= 0.5;
        }
        if !advanced {
            // Accept the most damped step if it still moves the iterate; a
            // locally increasing residual can still escape a bad region.
            for i in 0..n {
                ws.trial[i] = x[i] + damping * ws.dx[i];
            }
            if ws.trial == x {
                exactify(system, x, &mut ws.f, &mut fnorm)?;
                if fnorm <= options.acceptable_residual {
                    return Ok(NewtonInfo {
                        iterations: iter,
                        polish_iterations: 0,
                        residual_norm: fnorm,
                    });
                }
                return Err(NumericsError::NoConvergence {
                    iterations: iter,
                    residual: fnorm,
                });
            }
            system.residual(&ws.trial, &mut ws.f_trial)?;
            let t_norm = inf_norm(&ws.f_trial);
            if !t_norm.is_finite() {
                return Err(NumericsError::NoConvergence {
                    iterations: iter,
                    residual: fnorm,
                });
            }
            x.copy_from_slice(&ws.trial);
            ws.f.copy_from_slice(&ws.f_trial);
            fnorm = t_norm;
        }
        if inf_norm(&ws.dx) * damping <= options.step_tolerance
            && fnorm <= options.residual_tolerance.max(1e-9)
        {
            exactify(system, x, &mut ws.f, &mut fnorm)?;
            if fnorm <= options.residual_tolerance.max(1e-9) {
                return Ok(NewtonInfo {
                    iterations: iter + 1,
                    polish_iterations: 0,
                    residual_norm: fnorm,
                });
            }
        }
    }
    if fnorm <= options.acceptable_residual {
        exactify(system, x, &mut ws.f, &mut fnorm)?;
        if fnorm <= options.acceptable_residual {
            return Ok(NewtonInfo {
                iterations: options.max_iterations,
                polish_iterations: 0,
                residual_norm: fnorm,
            });
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: fnorm,
    })
}

/// Cap on polish iterations; quadratic convergence reaches the last-ulp
/// grid in two or three steps, the rest is headroom.
const POLISH_MAX: usize = 16;

/// Cap on the number of terminal points tracked by the last-ulp cluster
/// walk. Observed clusters are a pair of fixed points or a pair of
/// adjacent two-cycles (four points); twelve is deep headroom, and a
/// cluster that overflows it merely falls back to a start-dependent pick.
const CLUSTER_MAX: usize = 12;

/// Largest per-component ulp distance between the two members of a
/// two-cycle the cluster walk still tests. A tight Newton two-cycle keeps
/// both members within the last-ulp grid around the root; a probe that the
/// map throws further than this cannot be one, so the (expensive) second
/// map application is skipped.
const CYCLE_SPAN_ULPS: u64 = 4;

/// Drives a converged iterate to a terminal point of the floating-point
/// Newton map `x ↦ fl(x - J(x)⁻¹ f(x))` and canonicalizes the choice.
///
/// Near a simple root the rounded map collapses onto a tiny terminal set:
/// an attracting fixed point, an adjacent-ulp two-cycle — and sometimes
/// *several* of these side by side (twin fixed points one ulp apart, twin
/// two-cycles), each reached from its own side. Any start-dependence in
/// which terminal point is returned would leak into warm-vs-cold runs, so
/// after the iteration terminates (bitwise stationary or a detected
/// two-cycle) [`canonicalize_cluster`] walks the last-ulp neighbourhood,
/// collects every terminal point reachable from the one found, and keeps a
/// canonical member — smallest residual norm, ties broken lexicographically
/// by `total_cmp` — which is a function of the cluster *set* only, never of
/// the entry side. Failures (singular Jacobian, non-finite residual) end
/// the polish and keep the already-converged iterate; the cap bounds the
/// cost.
fn polish_to_fixed_point(
    system: &impl NonlinearSystem,
    x: &mut [f64],
    ws: &mut NewtonWorkspace,
) -> usize {
    let n = x.len();
    if ws.jac.is_none() {
        return 0;
    }
    if system.residual(x, &mut ws.f).is_err() {
        return 0;
    }
    let fnorm = inf_norm(&ws.f);
    if !fnorm.is_finite() {
        return 0;
    }
    let mut have_prev = false;
    for iter in 0..POLISH_MAX {
        let map_ok = {
            let Some(jac) = ws.jac.as_mut() else {
                return iter;
            };
            system.jacobian(x, jac).is_ok() && ws.lu.factor_from(jac).is_ok() && {
                for i in 0..n {
                    ws.neg_f[i] = -ws.f[i];
                }
                ws.lu.solve_into(&ws.neg_f, &mut ws.dx).is_ok()
            }
        };
        if !map_ok {
            return iter;
        }
        for i in 0..n {
            ws.trial[i] = x[i] + ws.dx[i];
        }
        if ws.trial[..] == *x {
            // Bitwise stationary. Seed the cluster with this fixed point
            // and canonicalize over the whole last-ulp neighbourhood.
            ws.cluster[..n].copy_from_slice(x);
            canonicalize_cluster(system, x, ws, 1);
            return iter;
        }
        if system.residual(&ws.trial, &mut ws.f_trial).is_err() {
            return iter;
        }
        let t_norm = inf_norm(&ws.f_trial);
        if !t_norm.is_finite() {
            return iter;
        }
        if have_prev && ws.trial == ws.prev {
            // Two-cycle {x, trial}: seed the cluster with both members.
            ws.cluster[..n].copy_from_slice(x);
            ws.cluster[n..2 * n].copy_from_slice(&ws.trial);
            canonicalize_cluster(system, x, ws, 2);
            return iter + 1;
        }
        ws.prev.copy_from_slice(x);
        have_prev = true;
        x.copy_from_slice(&ws.trial);
        ws.f.copy_from_slice(&ws.f_trial);
    }
    POLISH_MAX
}

/// One application of the rounded Newton map `N(p) = fl(p − J(p)⁻¹ f(p))`
/// into `out`. Returns `false` when any stage fails or produces a
/// non-finite value; `out` is then unspecified.
#[allow(clippy::too_many_arguments)]
fn newton_map(
    system: &impl NonlinearSystem,
    p: &[f64],
    out: &mut [f64],
    f: &mut [f64],
    neg_f: &mut [f64],
    dx: &mut [f64],
    jac: &mut Matrix,
    lu: &mut LinearSolver,
) -> bool {
    let n = p.len();
    if system.residual_and_jacobian(p, f, jac).is_err() || !inf_norm(f).is_finite() {
        return false;
    }
    if lu.factor_from(jac).is_err() {
        return false;
    }
    for i in 0..n {
        neg_f[i] = -f[i];
    }
    if lu.solve_into(neg_f, dx).is_err() {
        return false;
    }
    for i in 0..n {
        out[i] = p[i] + dx[i];
        if !out[i].is_finite() {
            return false;
        }
    }
    true
}

/// Having reached a terminal point (or two-cycle) of the rounded Newton
/// map, deterministically explores the last-ulp neighbourhood for *other*
/// terminal points and replaces `x` with the canonical member of the
/// discovered cluster: smallest residual infinity norm, ties broken
/// lexicographically by `total_cmp`.
///
/// Rounding can leave several adjacent attractors — twin fixed points one
/// ulp apart, or a pair of adjacent two-cycles — and plain polishing
/// terminates in whichever one its entry side feeds, so warm-started and
/// cold-started solves could disagree by one ulp. The cluster walk closes
/// that hole: every member's ±1-ulp neighbours get a direct terminality
/// test — `N(p) = p` (one map application), or `N(N(p)) = p` for a
/// two-cycle (a second application, attempted only when the first lands
/// within [`CYCLE_SPAN_ULPS`] of the probe), whose both members join — and
/// the walk repeats until the cluster is closed. Terminality is a pure
/// predicate of the probe point and adjacent attractors are direct probes
/// of each other, so every entry side discovers the same set and therefore
/// the same canonical pick. A probe that merely *flows toward* the cluster
/// is not followed — it would only rediscover known members.
///
/// `ws.cluster[..seeded * n]` must hold the terminal points already found
/// by the polish loop (the stationary point, or both two-cycle members).
fn canonicalize_cluster(
    system: &impl NonlinearSystem,
    x: &mut [f64],
    ws: &mut NewtonWorkspace,
    seeded: usize,
) {
    let n = x.len();
    let mut count = seeded.min(CLUSTER_MAX);
    let mut member = 0;
    while member < count && count < CLUSTER_MAX {
        ws.base
            .copy_from_slice(&ws.cluster[member * n..(member + 1) * n]);
        'probe: for dim in 0..n {
            for up in [false, true] {
                if count == CLUSTER_MAX {
                    break 'probe;
                }
                let neighbour = ulp_neighbour(ws.base[dim], up);
                if !neighbour.is_finite() {
                    continue;
                }
                ws.probe.copy_from_slice(&ws.base);
                ws.probe[dim] = neighbour;
                if is_member(&ws.cluster, count, &ws.probe, n) {
                    continue;
                }
                // Direct terminality test; `trial` holds N(p) and `prev`
                // (free once the polish loop has terminated) holds N(N(p))
                // for the two-cycle test.
                let Some(jac) = ws.jac.as_mut() else {
                    return;
                };
                if !newton_map(
                    system,
                    &ws.probe,
                    &mut ws.trial,
                    &mut ws.f_trial,
                    &mut ws.neg_f,
                    &mut ws.dx,
                    jac,
                    &mut ws.lu,
                ) {
                    continue;
                }
                if ws.trial == ws.probe {
                    add_member(&mut ws.cluster, &mut count, &ws.probe, n);
                    continue;
                }
                // If the probe maps onto a known member it cannot be a new
                // terminal point: a fixed point maps to itself, and a
                // two-cycle partner of a known member was added alongside
                // that member. This skips the second map in the common
                // case (the neighbour falls straight back onto the
                // cluster).
                if is_member(&ws.cluster, count, &ws.trial, n) {
                    continue;
                }
                if !within_ulps(&ws.trial, &ws.probe, CYCLE_SPAN_ULPS) {
                    continue;
                }
                let Some(jac) = ws.jac.as_mut() else {
                    return;
                };
                if !newton_map(
                    system,
                    &ws.trial,
                    &mut ws.prev,
                    &mut ws.f_trial,
                    &mut ws.neg_f,
                    &mut ws.dx,
                    jac,
                    &mut ws.lu,
                ) {
                    continue;
                }
                if ws.prev == ws.probe {
                    // Two-cycle {probe, trial}: both members join.
                    add_member(&mut ws.cluster, &mut count, &ws.probe, n);
                    if count < CLUSTER_MAX {
                        add_member(&mut ws.cluster, &mut count, &ws.trial, n);
                    }
                }
            }
        }
        member += 1;
    }
    // Canonical member: smallest residual infinity norm, ties broken
    // lexicographically — both are functions of the set, not of the entry.
    let norm_of = |member: &[f64], f: &mut [f64]| -> f64 {
        if system.residual(member, f).is_ok() {
            let v = inf_norm(f);
            if v.is_finite() {
                return v;
            }
        }
        f64::INFINITY
    };
    let mut best = 0;
    let mut best_norm = norm_of(&ws.cluster[..n], &mut ws.f_trial);
    for m in 1..count {
        let norm = norm_of(&ws.cluster[m * n..(m + 1) * n], &mut ws.f_trial);
        if norm < best_norm
            || (norm == best_norm
                && lex_less(
                    &ws.cluster[m * n..(m + 1) * n],
                    &ws.cluster[best * n..(best + 1) * n],
                ))
        {
            best = m;
            best_norm = norm;
        }
    }
    x[..n].copy_from_slice(&ws.cluster[best * n..(best + 1) * n]);
}

/// Whether `point` is bitwise equal to one of the first `count` cluster
/// members.
fn is_member(cluster: &[f64], count: usize, point: &[f64], n: usize) -> bool {
    (0..count).any(|m| cluster[m * n..(m + 1) * n] == point[..])
}

/// Appends `point` to the flat cluster store unless already present.
fn add_member(cluster: &mut [f64], count: &mut usize, point: &[f64], n: usize) {
    if *count == CLUSTER_MAX {
        return;
    }
    let seen = is_member(cluster, *count, point, n);
    if !seen {
        let dst = *count * n;
        cluster[dst..dst + n].copy_from_slice(point);
        *count += 1;
    }
}

/// Whether every component of `a` is within `k` representable values of
/// the matching component of `b` (equal bits count as zero; any non-finite
/// component fails).
fn within_ulps(a: &[f64], b: &[f64], k: u64) -> bool {
    a.iter().zip(b).all(|(&x, &y)| {
        if x.to_bits() == y.to_bits() {
            return true;
        }
        if !x.is_finite() || !y.is_finite() {
            return false;
        }
        let d = i128::from(monotone_bits(x)) - i128::from(monotone_bits(y));
        d.unsigned_abs() <= u128::from(k)
    })
}

/// Maps `f64` bit patterns to an `i64` whose integer order matches the
/// total order of the floats (with `-0.0` just below `+0.0`), so ulp
/// distances become integer differences.
fn monotone_bits(v: f64) -> i64 {
    let bits = v.to_bits();
    if bits >> 63 == 1 {
        // Negative floats order opposite their magnitude bits; place them
        // just below the non-negatives (`-0.0` maps to -1, `0.0` to 0).
        -((bits & !(1u64 << 63)) as i64) - 1
    } else {
        bits as i64
    }
}

/// The adjacent representable `f64` in the given direction (`up` = toward
/// `+∞`). NaN and the infinity in the requested direction are returned
/// unchanged; ±0.0 steps to the smallest subnormal of the requested sign.
fn ulp_neighbour(v: f64, up: bool) -> f64 {
    if v.is_nan() || (v.is_infinite() && (v > 0.0) == up) {
        return v;
    }
    if v == 0.0 {
        let tiny = f64::from_bits(1);
        return if up { tiny } else { -tiny };
    }
    let toward_larger_magnitude = (v > 0.0) == up;
    let bits = v.to_bits();
    f64::from_bits(if toward_larger_magnitude {
        bits + 1
    } else {
        bits - 1
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// x^2 + y^2 = 4, x - y = 0  =>  x = y = sqrt(2).
    struct Circle;

    impl NonlinearSystem for Circle {
        fn dimension(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            out[0] = x[0] * x[0] + x[1] * x[1] - 4.0;
            out[1] = x[0] - x[1];
            Ok(())
        }
        fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError> {
            out[(0, 0)] = 2.0 * x[0];
            out[(0, 1)] = 2.0 * x[1];
            out[(1, 0)] = 1.0;
            out[(1, 1)] = -1.0;
            Ok(())
        }
    }

    #[test]
    fn solves_circle_intersection() {
        let sol = solve_newton(&Circle, &[1.0, 0.5], NewtonOptions::default()).unwrap();
        assert!((sol.x[0] - std::f64::consts::SQRT_2).abs() < 1e-10);
        assert!((sol.x[1] - std::f64::consts::SQRT_2).abs() < 1e-10);
        assert!(sol.residual_norm <= 1e-12);
    }

    /// Stiff exponential resembling a diode: f(v) = 1e-14 (e^{v/.026}-1) - 1e-3.
    struct Diode;

    impl NonlinearSystem for Diode {
        fn dimension(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            out[0] = 1e-14 * ((x[0] / 0.026).exp() - 1.0) - 1e-3;
            Ok(())
        }
        fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError> {
            out[(0, 0)] = 1e-14 / 0.026 * (x[0] / 0.026).exp();
            Ok(())
        }
    }

    #[test]
    fn damping_handles_stiff_exponential() {
        let opts = NewtonOptions {
            residual_tolerance: 1e-15,
            ..NewtonOptions::default()
        };
        let sol = solve_newton(&Diode, &[0.8], opts).unwrap();
        let expected = 0.026 * (1e-3_f64 / 1e-14 + 1.0).ln();
        assert!((sol.x[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        assert!(solve_newton(&Circle, &[1.0], NewtonOptions::default()).is_err());
    }

    #[test]
    fn already_converged_returns_zero_iterations() {
        let s = std::f64::consts::SQRT_2;
        let sol = solve_newton(&Circle, &[s, s], NewtonOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn workspace_solve_matches_owned_solve_bitwise() {
        let owned = solve_newton(&Circle, &[1.0, 0.5], NewtonOptions::default()).unwrap();
        let mut ws = NewtonWorkspace::new();
        let mut x = [1.0, 0.5];
        let info = solve_newton_with(&Circle, &mut x, NewtonOptions::default(), &mut ws).unwrap();
        assert_eq!(owned.x, x.to_vec());
        assert_eq!(owned.iterations, info.iterations);
        assert_eq!(owned.residual_norm, info.residual_norm);
    }

    #[test]
    fn workspace_is_reusable_across_systems() {
        let mut ws = NewtonWorkspace::new();
        let mut x2 = [1.0, 0.5];
        solve_newton_with(&Circle, &mut x2, NewtonOptions::default(), &mut ws).unwrap();
        // Same workspace now drives a 1-D system: buffers re-size cleanly.
        let mut x1 = [0.8];
        let opts = NewtonOptions {
            residual_tolerance: 1e-15,
            ..NewtonOptions::default()
        };
        solve_newton_with(&Diode, &mut x1, opts, &mut ws).unwrap();
        let expected = 0.026 * (1e-3_f64 / 1e-14 + 1.0).ln();
        assert!((x1[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn polish_makes_the_result_independent_of_the_start() {
        // Converge from wildly different guesses, polish on: the terminal
        // iterates must agree to the BIT, not merely to tolerance.
        let opts = NewtonOptions {
            residual_tolerance: 1e-9,
            polish: true,
            ..NewtonOptions::default()
        };
        let mut ws = NewtonWorkspace::new();
        let starts: [[f64; 2]; 4] = [[1.0, 0.5], [3.0, 2.5], [0.7, 1.9], [2.0, 0.1]];
        let mut solutions = Vec::new();
        for s in starts {
            let mut x = s;
            solve_newton_with(&Circle, &mut x, opts, &mut ws).unwrap();
            solutions.push(x.to_vec());
        }
        for sol in &solutions[1..] {
            assert_eq!(&solutions[0], sol, "polish must canonicalize the root");
        }
    }

    #[test]
    fn polish_on_stiff_exponential_is_start_independent() {
        let opts = NewtonOptions {
            residual_tolerance: 1e-9,
            polish: true,
            ..NewtonOptions::default()
        };
        let mut ws = NewtonWorkspace::new();
        let mut a = [0.3];
        let mut b = [0.9];
        solve_newton_with(&Diode, &mut a, opts, &mut ws).unwrap();
        solve_newton_with(&Diode, &mut b, opts, &mut ws).unwrap();
        assert_eq!(a[0].to_bits(), b[0].to_bits());
    }

    #[test]
    fn sparse_plan_routing_matches_dense_bitwise() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let plan = Arc::new(LuSymbolic::analyze(2, &entries).unwrap());
        let opts = NewtonOptions {
            polish: true,
            ..NewtonOptions::default()
        };
        let mut dense_ws = NewtonWorkspace::new();
        let mut sparse_ws = NewtonWorkspace::new();
        sparse_ws.use_sparse_plan(&plan);
        let mut xd = [1.0, 0.5];
        let mut xs = [1.0, 0.5];
        let id = solve_newton_with(&Circle, &mut xd, opts, &mut dense_ws).unwrap();
        let is_ = solve_newton_with(&Circle, &mut xs, opts, &mut sparse_ws).unwrap();
        assert_eq!(xd.map(f64::to_bits), xs.map(f64::to_bits));
        assert_eq!(id.iterations, is_.iterations);
        assert_eq!(id.residual_norm.to_bits(), is_.residual_norm.to_bits());
        // Rebinding the same plan is a no-op; a system of a different
        // dimension silently falls back to dense instead of erroring.
        sparse_ws.use_sparse_plan(&plan);
        let mut x1 = [0.8];
        let opts1 = NewtonOptions {
            residual_tolerance: 1e-15,
            ..NewtonOptions::default()
        };
        solve_newton_with(&Diode, &mut x1, opts1, &mut sparse_ws).unwrap();
        let expected = 0.026 * (1e-3_f64 / 1e-14 + 1.0).ln();
        assert!((x1[0] - expected).abs() < 1e-9);
        sparse_ws.use_dense();
    }

    /// A 1-D system with a deliberately sloppy fast path: in fast mode the
    /// residual is evaluated at `x` quantized to a 1e-6 grid (a stand-in
    /// for tolerance-based device bypass); exact mode uses `x` itself.
    struct Quantized {
        exact: std::cell::Cell<bool>,
    }

    impl NonlinearSystem for Quantized {
        fn dimension(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            let xe = if self.exact.get() {
                x[0]
            } else {
                (x[0] * 1e6).round() / 1e6
            };
            out[0] = xe - 2.0;
            Ok(())
        }
        fn jacobian(&self, _x: &[f64], out: &mut Matrix) -> Result<(), NumericsError> {
            out[(0, 0)] = 1.0;
            Ok(())
        }
        fn set_exact(&self, exact: bool) {
            self.exact.set(exact);
        }
        fn residual_is_approximate(&self) -> bool {
            !self.exact.get()
        }
    }

    #[test]
    fn approximate_systems_are_reverified_exactly_at_acceptance() {
        // The start sits inside the fast path's quantization cell around
        // the root: the *fast* residual is exactly zero there, so a solver
        // without exact re-verification would accept the start unchanged.
        let sys = Quantized {
            exact: std::cell::Cell::new(false),
        };
        let mut ws = NewtonWorkspace::new();
        let mut x = [2.0 + 3.4e-7];
        let info = solve_newton_with(&sys, &mut x, NewtonOptions::default(), &mut ws).unwrap();
        assert_eq!(x[0], 2.0, "accepted solution must solve the exact system");
        assert!(info.iterations > 0, "fast-path zero must not be accepted");
        assert!(!sys.exact.get(), "solver must leave fast mode re-armed");
    }

    #[test]
    fn ulp_neighbour_steps_exactly_one_bit() {
        assert_eq!(ulp_neighbour(1.0, true).to_bits(), 1.0_f64.to_bits() + 1);
        assert_eq!(ulp_neighbour(1.0, false).to_bits(), 1.0_f64.to_bits() - 1);
        assert!(ulp_neighbour(-1.0, true) > -1.0);
        assert!(ulp_neighbour(-1.0, false) < -1.0);
        assert!(ulp_neighbour(0.0, true) > 0.0);
        assert!(ulp_neighbour(0.0, false) < 0.0);
        assert!(ulp_neighbour(f64::INFINITY, true).is_infinite());
        // Round-trips: one up then one down is the identity away from zero.
        let v = 5.057_943_526_299_022e-1;
        assert_eq!(
            ulp_neighbour(ulp_neighbour(v, true), false).to_bits(),
            v.to_bits()
        );
    }

    #[test]
    fn within_ulps_measures_representable_distance() {
        let v = 5.057_943_526_299_022e-1;
        let up2 = ulp_neighbour(ulp_neighbour(v, true), true);
        assert!(within_ulps(&[v], &[v], 0));
        assert!(within_ulps(&[v], &[up2], 2));
        assert!(!within_ulps(&[v], &[up2], 1));
        // The distance bridges the sign change: -0.0 and +0.0 are adjacent.
        assert!(within_ulps(&[-0.0], &[0.0], 1));
        assert!(within_ulps(&[f64::from_bits(1)], &[-f64::from_bits(1)], 3));
        // Bitwise-identical components count as distance zero, even NaN;
        // otherwise non-finite components never count as close, and any
        // far component fails the whole vector.
        assert!(within_ulps(&[v, f64::NAN], &[v, f64::NAN], 0));
        assert!(!within_ulps(&[f64::NAN], &[v], 4));
        assert!(!within_ulps(&[v, 1.0], &[v, 2.0], 4));
    }

    #[test]
    fn lex_less_is_a_strict_total_order_on_bits() {
        assert!(lex_less(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!lex_less(&[1.0, 3.0], &[1.0, 2.0]));
        assert!(!lex_less(&[1.0, 2.0], &[1.0, 2.0]));
        // -0.0 and 0.0 differ under total_cmp: the order is still strict.
        assert!(lex_less(&[-0.0], &[0.0]));
    }
}
