//! Linear least squares with fit diagnostics.
//!
//! The eq.-13 best-fit extraction is a two-parameter *linear* least-squares
//! problem in `(EG, XTI)`; this module provides the generic machinery plus
//! the normal-equations backend used as a conditioning ablation.

use crate::lu;
use crate::qr::QrFactorization;
use crate::{Matrix, NumericsError};

/// Which factorization backs a least-squares solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LsqBackend {
    /// Householder QR (default; numerically robust).
    #[default]
    Qr,
    /// Normal equations `A^T A x = A^T b` via LU. Squares the condition
    /// number — kept to demonstrate the difference on the eq.-13 design
    /// matrix (see the `fitting_backends` bench).
    NormalEquations,
}

/// Result of a linear least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LeastSquaresFit {
    coefficients: Vec<f64>,
    residuals: Vec<f64>,
    rss: f64,
    r_squared: f64,
}

impl LeastSquaresFit {
    /// The fitted coefficients, one per design-matrix column.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Per-observation residuals `b - A x`.
    #[must_use]
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Residual sum of squares.
    #[must_use]
    pub fn residual_sum_of_squares(&self) -> f64 {
        self.rss
    }

    /// Coefficient of determination R² (1 for a perfect fit; can be negative
    /// for a fit worse than the mean).
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Root-mean-square residual.
    #[must_use]
    pub fn rms_residual(&self) -> f64 {
        if self.residuals.is_empty() {
            0.0
        } else {
            (self.rss / self.residuals.len() as f64).sqrt()
        }
    }
}

/// Fits `min ||A x - b||` with the default QR backend.
///
/// # Errors
///
/// See [`fit_least_squares_with`].
pub fn fit_least_squares(a: &Matrix, b: &[f64]) -> Result<LeastSquaresFit, NumericsError> {
    fit_least_squares_with(a, b, LsqBackend::Qr)
}

/// Fits `min ||A x - b||` with an explicit backend.
///
/// # Errors
///
/// - [`NumericsError::DimensionMismatch`] if `b.len() != a.rows()` or the
///   system is underdetermined.
/// - [`NumericsError::SingularMatrix`] for rank-deficient designs.
/// - [`NumericsError::InvalidInput`] for non-finite data.
pub fn fit_least_squares_with(
    a: &Matrix,
    b: &[f64],
    backend: LsqBackend,
) -> Result<LeastSquaresFit, NumericsError> {
    if b.len() != a.rows() {
        return Err(NumericsError::dims(format!(
            "fit: design has {} rows, observations {}",
            a.rows(),
            b.len()
        )));
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::invalid(
            "observations contain non-finite values",
        ));
    }
    let x = match backend {
        LsqBackend::Qr => QrFactorization::factor(a)?.solve_least_squares(b)?,
        LsqBackend::NormalEquations => {
            let at = a.transpose();
            let ata = at.mul(a)?;
            let atb = at.mul_vec(b)?;
            lu::solve(&ata, &atb)?
        }
    };
    let ax = a.mul_vec(&x)?;
    let residuals: Vec<f64> = b.iter().zip(&ax).map(|(obs, fit)| obs - fit).collect();
    let rss: f64 = residuals.iter().map(|r| r * r).sum();
    let mean = b.iter().sum::<f64>() / b.len() as f64;
    let tss: f64 = b.iter().map(|v| (v - mean) * (v - mean)).sum();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };
    Ok(LeastSquaresFit {
        coefficients: x,
        residuals,
        rss,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_design(xs: &[f64]) -> Matrix {
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        Matrix::from_rows(&refs).unwrap()
    }

    #[test]
    fn perfect_line_has_r2_one() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let a = line_design(&xs);
        let b: Vec<f64> = xs.iter().map(|x| 3.0 - 2.0 * x).collect();
        let fit = fit_least_squares(&a, &b).unwrap();
        assert!((fit.coefficients()[0] - 3.0).abs() < 1e-12);
        assert!((fit.coefficients()[1] + 2.0).abs() < 1e-12);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
        assert!(fit.rms_residual() < 1e-12);
    }

    #[test]
    fn backends_agree_on_well_conditioned_data() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0];
        let a = line_design(&xs);
        let b = [0.1, 1.2, 1.9, 3.1, 3.9];
        let qr = fit_least_squares_with(&a, &b, LsqBackend::Qr).unwrap();
        let ne = fit_least_squares_with(&a, &b, LsqBackend::NormalEquations).unwrap();
        for (p, q) in qr.coefficients().iter().zip(ne.coefficients()) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn residuals_sum_reflects_noise() {
        let xs = [0.0, 1.0, 2.0];
        let a = line_design(&xs);
        // Points with a deliberate outlier.
        let b = [0.0, 1.0, 3.0];
        let fit = fit_least_squares(&a, &b).unwrap();
        assert!(fit.residual_sum_of_squares() > 0.0);
        assert_eq!(fit.residuals().len(), 3);
    }

    #[test]
    fn rejects_length_mismatch() {
        let a = line_design(&[0.0, 1.0]);
        assert!(fit_least_squares(&a, &[1.0]).is_err());
    }

    #[test]
    fn rejects_nan_observation() {
        let a = line_design(&[0.0, 1.0, 2.0]);
        assert!(fit_least_squares(&a, &[1.0, f64::NAN, 2.0]).is_err());
    }
}
