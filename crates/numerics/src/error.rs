//! Error type shared by all numerical routines.

use std::error::Error;
use std::fmt;

/// Error produced by the numerical kernels in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NumericsError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the shapes involved.
        detail: String,
    },
    /// A factorization met a (numerically) singular matrix.
    SingularMatrix {
        /// Index of the pivot (or column) at which singularity was detected.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm (or interval width) at the last iterate.
        residual: f64,
    },
    /// The input data are invalid for the requested operation (empty sample,
    /// unsorted abscissae, non-finite value, ...).
    InvalidInput {
        /// Human-readable description of the problem.
        detail: String,
    },
    /// A bracketing method was given an interval that does not bracket a
    /// root.
    NoBracket {
        /// Function value at the left endpoint.
        f_lo: f64,
        /// Function value at the right endpoint.
        f_hi: f64,
    },
}

impl NumericsError {
    /// Convenience constructor for [`NumericsError::InvalidInput`].
    #[must_use]
    pub fn invalid(detail: impl Into<String>) -> Self {
        NumericsError::InvalidInput {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`NumericsError::DimensionMismatch`].
    #[must_use]
    pub fn dims(detail: impl Into<String>) -> Self {
        NumericsError::DimensionMismatch {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch { detail } => {
                write!(f, "dimension mismatch: {detail}")
            }
            NumericsError::SingularMatrix { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            NumericsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:e})"
            ),
            NumericsError::InvalidInput { detail } => write!(f, "invalid input: {detail}"),
            NumericsError::NoBracket { f_lo, f_hi } => write!(
                f,
                "interval does not bracket a root (f(lo) = {f_lo:e}, f(hi) = {f_hi:e})"
            ),
        }
    }
}

impl Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NumericsError::SingularMatrix { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
        let e = NumericsError::invalid("empty sample");
        assert!(e.to_string().contains("empty sample"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
