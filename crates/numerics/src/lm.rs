//! Levenberg-Marquardt nonlinear least squares.
//!
//! Used for the nonlinear variants of the extraction (fitting `VBE(T)` with
//! `VBE(T0)` treated as a free parameter) and for ablation against the
//! linear eq.-13 fit.
//!
//! Mirrors the Newton module's split: [`fit_levenberg_marquardt`] allocates
//! its own scratch, [`fit_levenberg_marquardt_with`] draws every buffer —
//! Jacobian, normal equations, trial vectors, LU storage — from a
//! caller-owned [`LmWorkspace`] so repeated fits in a sweep allocate
//! nothing. Models can also supply an analytic Jacobian through
//! [`ResidualModel::jacobian`]; the default keeps the forward-difference
//! fallback, so existing models are unaffected.

use crate::lu::LuFactors;
use crate::{Matrix, NumericsError};

/// A residual model `r(p)` for Levenberg-Marquardt.
pub trait ResidualModel {
    /// Number of residuals (observations).
    fn residual_count(&self) -> usize;

    /// Number of parameters.
    fn parameter_count(&self) -> usize;

    /// Evaluates all residuals at parameter vector `p` into `out`.
    ///
    /// # Errors
    ///
    /// Implementations may reject unphysical parameters.
    fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError>;

    /// Optionally evaluates the analytic Jacobian `dr_i/dp_j` into `out`
    /// (`residual_count x parameter_count`) and returns `Ok(true)`.
    ///
    /// The default returns `Ok(false)`, which tells the driver to fall
    /// back to forward differences — `parameter_count` extra residual
    /// sweeps per iteration that an analytic implementation avoids.
    ///
    /// # Errors
    ///
    /// Implementations may reject unphysical parameters.
    fn jacobian(&self, p: &[f64], out: &mut Matrix) -> Result<bool, NumericsError> {
        let _ = (p, out);
        Ok(false)
    }
}

/// Options for the Levenberg-Marquardt iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmOptions {
    /// Initial damping parameter lambda.
    pub initial_lambda: f64,
    /// Multiplicative lambda update factor.
    pub lambda_factor: f64,
    /// Convergence threshold on the relative cost decrease.
    pub cost_tolerance: f64,
    /// Convergence threshold on the step infinity norm.
    pub step_tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Relative perturbation for the forward-difference Jacobian.
    pub jacobian_epsilon: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            initial_lambda: 1e-3,
            lambda_factor: 10.0,
            cost_tolerance: 1e-14,
            step_tolerance: 1e-12,
            max_iterations: 200,
            jacobian_epsilon: 1e-7,
        }
    }
}

/// Result of a Levenberg-Marquardt fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LmFit {
    /// Fitted parameters.
    pub parameters: Vec<f64>,
    /// Final cost `sum r_i^2 / 2`.
    pub cost: f64,
    /// Iterations used.
    pub iterations: usize,
}

fn cost_of(r: &[f64]) -> f64 {
    0.5 * r.iter().map(|v| v * v).sum::<f64>()
}

/// Reusable scratch for [`fit_levenberg_marquardt_with`].
///
/// Holds the Jacobian, the normal-equation matrices, every trial vector,
/// and the LU factorization storage. Buffers are sized lazily and reused
/// across fits of the same shape.
#[derive(Debug, Clone, Default)]
pub struct LmWorkspace {
    r: Vec<f64>,
    r_pert: Vec<f64>,
    p_pert: Vec<f64>,
    jtr: Vec<f64>,
    neg_jtr: Vec<f64>,
    dp: Vec<f64>,
    trial: Vec<f64>,
    jac: Option<Matrix>,
    jtj: Option<Matrix>,
    a: Option<Matrix>,
    lu: LuFactors,
}

impl LmWorkspace {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        LmWorkspace::default()
    }

    fn ensure(&mut self, m: usize, n: usize) {
        if self.r.len() != m {
            self.r.resize(m, 0.0);
            self.r_pert.resize(m, 0.0);
        }
        if self.p_pert.len() != n {
            self.p_pert.resize(n, 0.0);
            self.jtr.resize(n, 0.0);
            self.neg_jtr.resize(n, 0.0);
            self.dp.resize(n, 0.0);
            self.trial.resize(n, 0.0);
        }
        if !matches!(&self.jac, Some(j) if j.rows() == m && j.cols() == n) {
            self.jac = Some(Matrix::zeros(m, n));
        }
        if !matches!(&self.jtj, Some(j) if j.rows() == n && j.cols() == n) {
            self.jtj = Some(Matrix::zeros(n, n));
            self.a = Some(Matrix::zeros(n, n));
        }
    }
}

/// Fits `min_p sum_i r_i(p)^2` starting from `p0`.
///
/// The Jacobian comes from [`ResidualModel::jacobian`] when the model
/// provides one, else from forward differences; normal equations with
/// Marquardt damping `(J^T J + lambda diag(J^T J)) dp = -J^T r` are solved
/// each step.
///
/// # Errors
///
/// - Propagates model evaluation failures at the initial point.
/// - [`NumericsError::NoConvergence`] if the budget is exhausted.
pub fn fit_levenberg_marquardt(
    model: &impl ResidualModel,
    p0: &[f64],
    options: LmOptions,
) -> Result<LmFit, NumericsError> {
    let mut ws = LmWorkspace::new();
    let mut p = p0.to_vec();
    let (cost, iterations) = fit_levenberg_marquardt_with(model, &mut p, options, &mut ws)?;
    Ok(LmFit {
        parameters: p,
        cost,
        iterations,
    })
}

/// [`fit_levenberg_marquardt`] with caller-owned scratch and an in/out
/// parameter buffer: `p` holds the initial guess on entry and the fitted
/// parameters on return. Returns `(cost, iterations)`.
///
/// # Errors
///
/// Same contract as [`fit_levenberg_marquardt`].
pub fn fit_levenberg_marquardt_with(
    model: &impl ResidualModel,
    p: &mut [f64],
    options: LmOptions,
    ws: &mut LmWorkspace,
) -> Result<(f64, usize), NumericsError> {
    let m = model.residual_count();
    let n = model.parameter_count();
    if p.len() != n {
        return Err(NumericsError::dims(format!(
            "lm: model has {n} parameters, initial guess {}",
            p.len()
        )));
    }
    if m < n {
        return Err(NumericsError::dims(format!(
            "lm: {m} residuals cannot determine {n} parameters"
        )));
    }
    ws.ensure(m, n);
    model.residuals(p, &mut ws.r)?;
    let mut cost = cost_of(&ws.r);
    let mut lambda = options.initial_lambda;
    let (Some(jac), Some(jtj), Some(a)) = (ws.jac.as_mut(), ws.jtj.as_mut(), ws.a.as_mut()) else {
        return Err(NumericsError::invalid("lm workspace matrices not sized"));
    };

    for iter in 0..options.max_iterations {
        // Analytic Jacobian when the model offers one, else forward
        // differences (n extra residual sweeps).
        if !model.jacobian(p, jac)? {
            for j in 0..n {
                let h = options.jacobian_epsilon * p[j].abs().max(1e-8);
                ws.p_pert.copy_from_slice(p);
                ws.p_pert[j] += h;
                model.residuals(&ws.p_pert, &mut ws.r_pert)?;
                for i in 0..m {
                    jac[(i, j)] = (ws.r_pert[i] - ws.r[i]) / h;
                }
            }
        }
        // Normal equations with Marquardt scaling: J^T J and J^T r formed
        // in place (no transpose materialized).
        for c in 0..n {
            for d in 0..=c {
                let mut s = 0.0;
                for i in 0..m {
                    s += jac[(i, c)] * jac[(i, d)];
                }
                jtj[(c, d)] = s;
                jtj[(d, c)] = s;
            }
            let mut s = 0.0;
            for i in 0..m {
                s += jac[(i, c)] * ws.r[i];
            }
            ws.jtr[c] = s;
        }

        let mut accepted = false;
        while lambda < 1e12 {
            a.copy_from(jtj)?;
            for d in 0..n {
                let diag = jtj[(d, d)];
                a[(d, d)] = diag + lambda * diag.max(1e-12);
            }
            for d in 0..n {
                ws.neg_jtr[d] = -ws.jtr[d];
            }
            if ws.lu.factor_from(a).is_err() || ws.lu.solve_into(&ws.neg_jtr, &mut ws.dp).is_err() {
                lambda *= options.lambda_factor;
                continue;
            }
            for d in 0..n {
                ws.trial[d] = p[d] + ws.dp[d];
            }
            if model.residuals(&ws.trial, &mut ws.r_pert).is_ok() {
                let trial_cost = cost_of(&ws.r_pert);
                if trial_cost.is_finite() && trial_cost < cost {
                    let decrease = (cost - trial_cost) / cost.max(1e-300);
                    let step = ws.dp.iter().fold(0.0_f64, |s, v| s.max(v.abs()));
                    p.copy_from_slice(&ws.trial);
                    ws.r.copy_from_slice(&ws.r_pert);
                    cost = trial_cost;
                    lambda = (lambda / options.lambda_factor).max(1e-12);
                    accepted = true;
                    if decrease < options.cost_tolerance || step < options.step_tolerance {
                        return Ok((cost, iter + 1));
                    }
                    break;
                }
            }
            lambda *= options.lambda_factor;
        }
        if !accepted {
            // Lambda exhausted: we are at a (possibly flat) minimum.
            return Ok((cost, iter));
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fit y = a * exp(b x) on synthetic data.
    struct ExpModel {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for ExpModel {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = p[0] * (p[1] * x).exp() - y;
            }
            Ok(())
        }
    }

    /// Same model with the analytic Jacobian supplied.
    struct ExpModelAnalytic(ExpModel);

    impl ResidualModel for ExpModelAnalytic {
        fn residual_count(&self) -> usize {
            self.0.residual_count()
        }
        fn parameter_count(&self) -> usize {
            self.0.parameter_count()
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            self.0.residuals(p, out)
        }
        fn jacobian(&self, p: &[f64], out: &mut Matrix) -> Result<bool, NumericsError> {
            for (i, &x) in self.0.xs.iter().enumerate() {
                let e = (p[1] * x).exp();
                out[(i, 0)] = e;
                out[(i, 1)] = p[0] * x * e;
            }
            Ok(true)
        }
    }

    fn exp_data() -> (Vec<f64>, Vec<f64>) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * (1.3 * x).exp()).collect();
        (xs, ys)
    }

    #[test]
    fn recovers_exponential_parameters() {
        let (xs, ys) = exp_data();
        let model = ExpModel { xs, ys };
        let fit = fit_levenberg_marquardt(&model, &[1.0, 1.0], LmOptions::default()).unwrap();
        assert!(
            (fit.parameters[0] - 2.5).abs() < 1e-6,
            "a = {}",
            fit.parameters[0]
        );
        assert!(
            (fit.parameters[1] - 1.3).abs() < 1e-6,
            "b = {}",
            fit.parameters[1]
        );
        assert!(fit.cost < 1e-12);
    }

    #[test]
    fn analytic_jacobian_recovers_the_same_parameters() {
        let (xs, ys) = exp_data();
        let model = ExpModelAnalytic(ExpModel { xs, ys });
        let fit = fit_levenberg_marquardt(&model, &[1.0, 1.0], LmOptions::default()).unwrap();
        assert!((fit.parameters[0] - 2.5).abs() < 1e-6);
        assert!((fit.parameters[1] - 1.3).abs() < 1e-6);
        assert!(fit.cost < 1e-12);
    }

    #[test]
    fn workspace_fit_matches_owned_fit_bitwise() {
        let (xs, ys) = exp_data();
        let model = ExpModel { xs, ys };
        let owned = fit_levenberg_marquardt(&model, &[1.0, 1.0], LmOptions::default()).unwrap();
        let mut ws = LmWorkspace::new();
        let mut p = [1.0, 1.0];
        let (cost, iters) =
            fit_levenberg_marquardt_with(&model, &mut p, LmOptions::default(), &mut ws).unwrap();
        assert_eq!(owned.parameters, p.to_vec());
        assert_eq!(owned.cost, cost);
        assert_eq!(owned.iterations, iters);
        // Second fit reuses the same buffers and reproduces the result.
        let mut p2 = [1.0, 1.0];
        let (cost2, _) =
            fit_levenberg_marquardt_with(&model, &mut p2, LmOptions::default(), &mut ws).unwrap();
        assert_eq!(p.to_vec(), p2.to_vec());
        assert_eq!(cost, cost2);
    }

    /// Linear model to cross-check against exact LSQ.
    struct LineModel {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for LineModel {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = p[0] + p[1] * x - y;
            }
            Ok(())
        }
    }

    #[test]
    fn linear_problem_matches_closed_form() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![1.1, 2.9, 5.2, 6.8];
        let model = LineModel { xs, ys };
        let fit = fit_levenberg_marquardt(&model, &[0.0, 0.0], LmOptions::default()).unwrap();
        // Closed-form simple regression on the same data.
        let n = 4.0;
        let sx = 6.0;
        let sy = 16.0;
        let sxx = 14.0;
        let sxy: f64 = 0.0 * 1.1 + 1.0 * 2.9 + 2.0 * 5.2 + 3.0 * 6.8;
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        assert!((fit.parameters[0] - intercept).abs() < 1e-6);
        assert!((fit.parameters[1] - slope).abs() < 1e-6);
    }

    #[test]
    fn rejects_underdetermined() {
        let model = LineModel {
            xs: vec![1.0],
            ys: vec![1.0],
        };
        assert!(fit_levenberg_marquardt(&model, &[0.0, 0.0], LmOptions::default()).is_err());
    }
}
