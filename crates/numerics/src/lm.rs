//! Levenberg-Marquardt nonlinear least squares.
//!
//! Used for the nonlinear variants of the extraction (fitting `VBE(T)` with
//! `VBE(T0)` treated as a free parameter) and for ablation against the
//! linear eq.-13 fit.

use crate::lu;
use crate::{Matrix, NumericsError};

/// A residual model `r(p)` for Levenberg-Marquardt.
pub trait ResidualModel {
    /// Number of residuals (observations).
    fn residual_count(&self) -> usize;

    /// Number of parameters.
    fn parameter_count(&self) -> usize;

    /// Evaluates all residuals at parameter vector `p` into `out`.
    ///
    /// # Errors
    ///
    /// Implementations may reject unphysical parameters.
    fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError>;
}

/// Options for the Levenberg-Marquardt iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmOptions {
    /// Initial damping parameter lambda.
    pub initial_lambda: f64,
    /// Multiplicative lambda update factor.
    pub lambda_factor: f64,
    /// Convergence threshold on the relative cost decrease.
    pub cost_tolerance: f64,
    /// Convergence threshold on the step infinity norm.
    pub step_tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Relative perturbation for the forward-difference Jacobian.
    pub jacobian_epsilon: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            initial_lambda: 1e-3,
            lambda_factor: 10.0,
            cost_tolerance: 1e-14,
            step_tolerance: 1e-12,
            max_iterations: 200,
            jacobian_epsilon: 1e-7,
        }
    }
}

/// Result of a Levenberg-Marquardt fit.
#[derive(Debug, Clone, PartialEq)]
pub struct LmFit {
    /// Fitted parameters.
    pub parameters: Vec<f64>,
    /// Final cost `sum r_i^2 / 2`.
    pub cost: f64,
    /// Iterations used.
    pub iterations: usize,
}

fn cost_of(r: &[f64]) -> f64 {
    0.5 * r.iter().map(|v| v * v).sum::<f64>()
}

/// Fits `min_p sum_i r_i(p)^2` starting from `p0`.
///
/// The Jacobian is formed by forward differences; normal equations with
/// Marquardt damping `(J^T J + lambda diag(J^T J)) dp = -J^T r` are solved
/// each step.
///
/// # Errors
///
/// - Propagates model evaluation failures at the initial point.
/// - [`NumericsError::NoConvergence`] if lambda grows past 1e12 without an
///   accepted step or the budget is exhausted.
pub fn fit_levenberg_marquardt(
    model: &impl ResidualModel,
    p0: &[f64],
    options: LmOptions,
) -> Result<LmFit, NumericsError> {
    let m = model.residual_count();
    let n = model.parameter_count();
    if p0.len() != n {
        return Err(NumericsError::dims(format!(
            "lm: model has {n} parameters, initial guess {}",
            p0.len()
        )));
    }
    if m < n {
        return Err(NumericsError::dims(format!(
            "lm: {m} residuals cannot determine {n} parameters"
        )));
    }
    let mut p = p0.to_vec();
    let mut r = vec![0.0; m];
    model.residuals(&p, &mut r)?;
    let mut cost = cost_of(&r);
    let mut lambda = options.initial_lambda;

    let mut jac = Matrix::zeros(m, n);
    let mut r_pert = vec![0.0; m];

    for iter in 0..options.max_iterations {
        // Forward-difference Jacobian.
        for j in 0..n {
            let h = options.jacobian_epsilon * p[j].abs().max(1e-8);
            let mut p_pert = p.clone();
            p_pert[j] += h;
            model.residuals(&p_pert, &mut r_pert)?;
            for i in 0..m {
                jac[(i, j)] = (r_pert[i] - r[i]) / h;
            }
        }
        // Normal equations with Marquardt scaling.
        let jt = jac.transpose();
        let jtj = jt.mul(&jac)?;
        let jtr = jt.mul_vec(&r)?;

        let mut accepted = false;
        while lambda < 1e12 {
            let mut a = jtj.clone();
            for d in 0..n {
                let diag = jtj[(d, d)];
                a[(d, d)] = diag + lambda * diag.max(1e-12);
            }
            let neg_jtr: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let dp = match lu::solve(&a, &neg_jtr) {
                Ok(dp) => dp,
                Err(_) => {
                    lambda *= options.lambda_factor;
                    continue;
                }
            };
            let trial: Vec<f64> = p.iter().zip(&dp).map(|(a, b)| a + b).collect();
            if model.residuals(&trial, &mut r_pert).is_ok() {
                let trial_cost = cost_of(&r_pert);
                if trial_cost.is_finite() && trial_cost < cost {
                    let decrease = (cost - trial_cost) / cost.max(1e-300);
                    let step = dp.iter().fold(0.0_f64, |s, v| s.max(v.abs()));
                    p = trial;
                    r.copy_from_slice(&r_pert);
                    cost = trial_cost;
                    lambda = (lambda / options.lambda_factor).max(1e-12);
                    accepted = true;
                    if decrease < options.cost_tolerance || step < options.step_tolerance {
                        return Ok(LmFit {
                            parameters: p,
                            cost,
                            iterations: iter + 1,
                        });
                    }
                    break;
                }
            }
            lambda *= options.lambda_factor;
        }
        if !accepted {
            // Lambda exhausted: we are at a (possibly flat) minimum.
            return Ok(LmFit {
                parameters: p,
                cost,
                iterations: iter,
            });
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: options.max_iterations,
        residual: cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fit y = a * exp(b x) on synthetic data.
    struct ExpModel {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for ExpModel {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = p[0] * (p[1] * x).exp() - y;
            }
            Ok(())
        }
    }

    #[test]
    fn recovers_exponential_parameters() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * (1.3 * x).exp()).collect();
        let model = ExpModel { xs, ys };
        let fit = fit_levenberg_marquardt(&model, &[1.0, 1.0], LmOptions::default()).unwrap();
        assert!(
            (fit.parameters[0] - 2.5).abs() < 1e-6,
            "a = {}",
            fit.parameters[0]
        );
        assert!(
            (fit.parameters[1] - 1.3).abs() < 1e-6,
            "b = {}",
            fit.parameters[1]
        );
        assert!(fit.cost < 1e-12);
    }

    /// Linear model to cross-check against exact LSQ.
    struct LineModel {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for LineModel {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }
        fn parameter_count(&self) -> usize {
            2
        }
        fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            for (i, (&x, &y)) in self.xs.iter().zip(&self.ys).enumerate() {
                out[i] = p[0] + p[1] * x - y;
            }
            Ok(())
        }
    }

    #[test]
    fn linear_problem_matches_closed_form() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ys = vec![1.1, 2.9, 5.2, 6.8];
        let model = LineModel { xs, ys };
        let fit = fit_levenberg_marquardt(&model, &[0.0, 0.0], LmOptions::default()).unwrap();
        // Closed-form simple regression on the same data.
        let n = 4.0;
        let sx = 6.0;
        let sy = 16.0;
        let sxx = 14.0;
        let sxy: f64 = 0.0 * 1.1 + 1.0 * 2.9 + 2.0 * 5.2 + 3.0 * 6.8;
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let intercept = (sy - slope * sx) / n;
        assert!((fit.parameters[0] - intercept).abs() < 1e-6);
        assert!((fit.parameters[1] - slope).abs() < 1e-6);
    }

    #[test]
    fn rejects_underdetermined() {
        let model = LineModel {
            xs: vec![1.0],
            ys: vec![1.0],
        };
        assert!(fit_levenberg_marquardt(&model, &[0.0, 0.0], LmOptions::default()).is_err());
    }
}
