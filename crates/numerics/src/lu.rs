//! LU factorization with partial pivoting and linear solves.
//!
//! This is the workhorse behind the SPICE MNA solver: every Newton
//! iteration assembles a Jacobian and solves `J dx = -f` through [`LuSolver`].

use crate::{Matrix, NumericsError};

/// An LU factorization `P A = L U` with partial pivoting.
///
/// # Examples
///
/// ```
/// use icvbe_numerics::{lu::LuSolver, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = LuSolver::factor(&a)?;
/// let x = lu.solve(&[3.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), icvbe_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuSolver {
    /// Packed L (unit lower, below diagonal) and U (upper, incl. diagonal).
    lu: Matrix,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]`.
    perm: Vec<usize>,
    /// Parity of the permutation, +1 or -1 (for the determinant sign).
    parity: f64,
}

/// Pivot magnitudes below this threshold are treated as singular.
pub(crate) const PIVOT_TOLERANCE: f64 = 1e-300;

impl LuSolver {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// - [`NumericsError::DimensionMismatch`] if `a` is not square.
    /// - [`NumericsError::SingularMatrix`] if a pivot is (numerically) zero.
    /// - [`NumericsError::InvalidInput`] if `a` contains non-finite entries.
    pub fn factor(a: &Matrix) -> Result<Self, NumericsError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericsError::dims(format!(
                "LU needs a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(NumericsError::invalid(
                "LU input contains non-finite entries",
            ));
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut parity = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest magnitude in column k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOLERANCE {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                parity = -parity;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= factor * u;
                }
            }
        }
        Ok(LuSolver { lu, perm, parity })
    }

    /// Solves `A x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b.len()` differs from
    /// the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericsError::dims(format!(
                "solve: matrix is {n}x{n}, rhs has {} entries",
                b.len()
            )));
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[(i, j)] * x[j];
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    #[must_use]
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        let mut det = self.parity;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Dimension of the factored (square) matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }
}

/// A reusable LU factorization workspace: factor and solve without any
/// heap allocation once the buffers are sized.
///
/// [`LuSolver`] allocates fresh storage on every `factor` call, which is
/// fine for one-shot solves but shows up hard in the Newton inner loop of
/// the circuit solver (one factorization per iteration, thousands of
/// iterations per die). `LuFactors` keeps the packed `L`/`U` storage and
/// the permutation between calls; [`LuFactors::factor_from`] only
/// reallocates when the dimension grows. The arithmetic (pivot choice,
/// elimination order, substitution order) is identical to [`LuSolver`], so
/// swapping one for the other cannot change a single result bit.
#[derive(Debug, Clone, Default)]
pub struct LuFactors {
    /// Packed L (unit lower, below diagonal) and U (upper, incl. diagonal).
    lu: Option<Matrix>,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]`.
    perm: Vec<usize>,
}

impl LuFactors {
    /// An empty workspace; buffers are sized lazily by `factor_from`.
    #[must_use]
    pub fn new() -> Self {
        LuFactors::default()
    }

    /// Factors `a` into the reused storage.
    ///
    /// # Errors
    ///
    /// Same contract as [`LuSolver::factor`].
    pub fn factor_from(&mut self, a: &Matrix) -> Result<(), NumericsError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(NumericsError::dims(format!(
                "LU needs a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(NumericsError::invalid(
                "LU input contains non-finite entries",
            ));
        }
        let lu = match &mut self.lu {
            Some(m) if m.rows() == n && m.cols() == n => {
                m.copy_from(a)?;
                m
            }
            slot => slot.insert(a.clone()),
        };
        self.perm.clear();
        self.perm.extend(0..n);

        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < PIVOT_TOLERANCE {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                self.perm.swap(pivot_row, k);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let u = lu[(k, j)];
                    lu[(i, j)] -= factor * u;
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` into `x` using the stored factorization.
    ///
    /// # Errors
    ///
    /// [`NumericsError::DimensionMismatch`] if no factorization is stored
    /// or the slice lengths differ from the factored dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericsError> {
        let lu = self
            .lu
            .as_ref()
            .ok_or_else(|| NumericsError::dims("solve_into before factor_from".to_string()))?;
        let n = lu.rows();
        if b.len() != n || x.len() != n {
            return Err(NumericsError::dims(format!(
                "solve_into: matrix is {n}x{n}, rhs has {} entries, out has {}",
                b.len(),
                x.len()
            )));
        }
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= lu[(i, j)] * x[j];
            }
            x[i] = s / lu[(i, i)];
        }
        Ok(())
    }

    /// Solves `A X = B` for several right-hand sides with one stored
    /// factorization. `b` and `x` hold the vectors back to back (`k * n`
    /// entries for `k` right-hand sides); each is solved exactly as
    /// [`LuFactors::solve_into`] would solve it, so callers looping over
    /// right-hand sides can switch without changing a result bit — they
    /// only stop re-factoring the same matrix `k` times.
    ///
    /// # Errors
    ///
    /// [`NumericsError::DimensionMismatch`] if no factorization is stored,
    /// if `b.len() != x.len()`, or if the lengths are not a multiple of
    /// the factored dimension.
    pub fn solve_many_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericsError> {
        let n = self.dim();
        if n == 0 {
            return Err(NumericsError::dims(
                "solve_many_into before factor_from".to_string(),
            ));
        }
        if b.len() != x.len() || !b.len().is_multiple_of(n) {
            return Err(NumericsError::dims(format!(
                "solve_many_into: matrix is {n}x{n}, rhs has {} entries, out has {}",
                b.len(),
                x.len()
            )));
        }
        for (bc, xc) in b.chunks_exact(n).zip(x.chunks_exact_mut(n)) {
            self.solve_into(bc, xc)?;
        }
        Ok(())
    }

    /// Dimension of the stored factorization (0 before the first factor).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.as_ref().map_or(0, Matrix::rows)
    }
}

/// One-shot convenience: factors `a` and solves `a x = b`.
///
/// # Errors
///
/// Propagates errors from [`LuSolver::factor`] and [`LuSolver::solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
    LuSolver::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.mul_vec(x)
            .unwrap()
            .iter()
            .zip(b)
            .map(|(ax, bb)| (ax - bb).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_3x3_system() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let b = [11.0, -16.0, 17.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuSolver::factor(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn determinant_matches_2x2_formula() {
        let a = Matrix::from_rows(&[&[3.0, 7.0], &[1.0, -4.0]]).unwrap();
        let lu = LuSolver::factor(&a).unwrap();
        assert!((lu.determinant() - (3.0 * -4.0 - 7.0 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(LuSolver::factor(&a).is_err());
    }

    #[test]
    fn rejects_nan() {
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(LuSolver::factor(&a).is_err());
    }

    #[test]
    fn factors_workspace_matches_one_shot_bitwise() {
        let a =
            Matrix::from_rows(&[&[4.0, -2.0, 1.0], &[-2.0, 4.0, -2.0], &[1.0, -2.0, 4.0]]).unwrap();
        let b = [11.0, -16.0, 17.0];
        let one_shot = solve(&a, &b).unwrap();
        let mut ws = LuFactors::new();
        let mut x = vec![0.0; 3];
        ws.factor_from(&a).unwrap();
        ws.solve_into(&b, &mut x).unwrap();
        // Bit-identical, not merely close: the workspace path must be a
        // drop-in replacement inside deterministic solvers.
        assert_eq!(one_shot, x);
        assert_eq!(ws.dim(), 3);

        // Reuse with a different matrix of the same size: no stale state.
        let a2 =
            Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 2.0]]).unwrap();
        ws.factor_from(&a2).unwrap();
        ws.solve_into(&[2.0, 3.0, 4.0], &mut x).unwrap();
        assert_eq!(x, vec![3.0, 2.0, 2.0]);
    }

    #[test]
    fn factors_workspace_reports_errors() {
        let mut ws = LuFactors::new();
        let mut x = vec![0.0; 2];
        assert!(ws.solve_into(&[1.0, 2.0], &mut x).is_err());
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            ws.factor_from(&singular),
            Err(NumericsError::SingularMatrix { .. })
        ));
        assert!(ws.factor_from(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn ill_conditioned_but_nonsingular_still_solves() {
        // Scaled rows, condition number ~1e12, still within LU reach.
        let a = Matrix::from_rows(&[&[1e-6, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 2.0];
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
