//! In-tree pseudo-random number generation: SplitMix64 and xoshiro256++.
//!
//! The workspace builds hermetically (no registry access), so instead of
//! the `rand` crate the few places that need randomness — the virtual
//! instruments, the Monte-Carlo die factory, the campaign engine's per-die
//! seeding and the randomized property tests — share these two small,
//! well-studied generators:
//!
//! - [`SplitMix64`] (Steele, Lea & Flood 2014): a 64-bit mixer with a
//!   trivially splittable state. Used to expand one user seed into many
//!   independent stream seeds (per die, per instrument) so that work can
//!   be farmed out in any order, on any number of threads, and still
//!   reproduce bit-for-bit.
//! - [`Xoshiro256PlusPlus`] (Blackman & Vigna 2019): the general-purpose
//!   stream generator behind uniform and Gaussian sampling. Seeded through
//!   SplitMix64 exactly as its authors recommend, so a zero seed is safe.
//!
//! Neither generator is cryptographic; both are deterministic across
//! platforms (pure integer arithmetic, no floating-point in the state
//! transition), which is what the campaign determinism guarantee rests on.
//!
//! # Examples
//!
//! ```
//! use icvbe_numerics::rng::Xoshiro256PlusPlus;
//!
//! let mut a = Xoshiro256PlusPlus::seeded(42);
//! let mut b = Xoshiro256PlusPlus::seeded(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // deterministic
//! let u = a.uniform(0.25, 0.75);
//! assert!((0.25..0.75).contains(&u));
//! ```

/// SplitMix64: one multiply-xorshift mixing step per output.
///
/// Primarily a *seed expander*: `SplitMix64::mix(seed ^ index)` gives a
/// statistically independent 64-bit value per index, which is how the
/// campaign engine derives per-die seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output (canonical `splitmix64.c` sequence).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::finalize(self.state)
    }

    /// The stateless mixer: one high-quality 64-bit hash step.
    ///
    /// `mix(a) == mix(b)` iff `a == b`, and flipping any input bit flips
    /// each output bit with probability ~1/2 — good enough to derive
    /// independent stream seeds from `seed ^ index`.
    #[must_use]
    pub fn mix(z: u64) -> u64 {
        Self::finalize(z.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn finalize(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0: the workspace's general-purpose generator.
///
/// 256 bits of state, period `2^256 - 1`, passes BigCrush. Seeded through
/// [`SplitMix64`] so correlated user seeds (0, 1, 2, ...) still yield
/// decorrelated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::seeded(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        // Top 53 bits scaled by 2^-53: every representable value is in
        // [0, 1), spacing 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `(0, 1]` — safe as a `ln()` argument.
    pub fn unit_open_low(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample in `[lo, hi)` (`lo` itself when the interval is
    /// empty).
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// A uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for test-case selection; `n = 0` returns 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_matches_reference_vectors() {
        // Reference: seeding state directly with {1, 2, 3, 4} and running
        // the authors' C implementation of xoshiro256++ 1.0.
        let mut g = Xoshiro256PlusPlus { s: [1, 2, 3, 4] };
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference: the canonical splitmix64.c with seed 1234567.
        let mut g = SplitMix64::seeded(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
    }

    #[test]
    fn unit_stays_in_range() {
        let mut g = Xoshiro256PlusPlus::seeded(7);
        for _ in 0..10_000 {
            let u = g.unit();
            assert!((0.0..1.0).contains(&u));
            let v = g.unit_open_low();
            assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut g = Xoshiro256PlusPlus::seeded(99);
        let n = 20_000;
        let mean = (0..n).map(|_| g.uniform(-1.0, 1.0)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::seeded(0);
        let mut b = Xoshiro256PlusPlus::seeded(0);
        let mut c = Xoshiro256PlusPlus::seeded(1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn below_is_in_range() {
        let mut g = Xoshiro256PlusPlus::seeded(3);
        for n in [1u64, 2, 7, 100] {
            for _ in 0..1000 {
                assert!(g.below(n) < n);
            }
        }
        assert_eq!(g.below(0), 0);
    }
}
