//! Descriptive statistics and simple linear regression.
//!
//! The "characteristic straight" of Fig. 6 is summarized by the slope and
//! intercept of a simple regression of extracted `EG` on the `XTI` grid.

use crate::NumericsError;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for a single observation).
    pub variance: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl SampleStats {
    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Computes summary statistics of a non-empty sample.
///
/// # Errors
///
/// [`NumericsError::InvalidInput`] if the sample is empty or contains
/// non-finite values.
pub fn sample_stats(values: &[f64]) -> Result<SampleStats, NumericsError> {
    if values.is_empty() {
        return Err(NumericsError::invalid("stats: empty sample"));
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::invalid("stats: non-finite value in sample"));
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = if values.len() > 1 {
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    Ok(SampleStats {
        count: values.len(),
        mean,
        variance,
        min,
        max,
    })
}

/// Result of a simple linear regression `y = intercept + slope * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

impl LinearRegression {
    /// Predicts `y` at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Simple regression of `ys` on `xs`.
///
/// # Errors
///
/// [`NumericsError::InvalidInput`] for mismatched lengths, fewer than two
/// points, non-finite values, or zero variance in `xs`.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Result<LinearRegression, NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::dims(format!(
            "regression: {} xs vs {} ys",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(NumericsError::invalid(
            "regression: need at least two points",
        ));
    }
    if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
        return Err(NumericsError::invalid("regression: non-finite data"));
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx == 0.0 {
        return Err(NumericsError::invalid("regression: xs have zero variance"));
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinearRegression {
        slope,
        intercept,
        r_squared,
    })
}

/// Maximum absolute difference between paired samples.
///
/// # Errors
///
/// [`NumericsError::DimensionMismatch`] if lengths differ.
pub fn max_abs_difference(a: &[f64], b: &[f64]) -> Result<f64, NumericsError> {
    if a.len() != b.len() {
        return Err(NumericsError::dims(format!(
            "max_abs_difference: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    Ok(a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sample() {
        let s = sample_stats(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-15);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn single_point_has_zero_variance() {
        let s = sample_stats(&[7.0]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn regression_recovers_exact_line() {
        let xs = [0.5, 1.5, 2.5, 6.5];
        let ys: Vec<f64> = xs.iter().map(|x| 1.2 - 0.021 * x).collect();
        let r = linear_regression(&xs, &ys).unwrap();
        assert!((r.slope + 0.021).abs() < 1e-12);
        assert!((r.intercept - 1.2).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
        assert!((r.predict(3.0) - (1.2 - 0.063)).abs() < 1e-12);
    }

    #[test]
    fn regression_rejects_degenerate_input() {
        assert!(linear_regression(&[1.0, 1.0], &[0.0, 1.0]).is_err());
        assert!(linear_regression(&[1.0], &[0.0]).is_err());
        assert!(linear_regression(&[1.0, 2.0], &[0.0]).is_err());
    }

    #[test]
    fn max_abs_difference_finds_worst_pair() {
        let d = max_abs_difference(&[1.0, 2.0, 3.0], &[1.1, 1.5, 3.0]).unwrap();
        assert!((d - 0.5).abs() < 1e-15);
    }

    #[test]
    fn stats_reject_empty_and_nan() {
        assert!(sample_stats(&[]).is_err());
        assert!(sample_stats(&[f64::NAN]).is_err());
    }
}
