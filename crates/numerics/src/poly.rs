//! Polynomials: evaluation, differentiation, and least-squares fitting.
//!
//! The Fig.-8 post-processing fits a low-order polynomial to `VREF(T)` to
//! locate the curvature peak and quantify "bell-ness" of the S0 curve.

use crate::lsq::{fit_least_squares, LeastSquaresFit};
use crate::{Matrix, NumericsError};

/// A polynomial with coefficients in ascending power order:
/// `p(x) = c[0] + c[1] x + c[2] x^2 + ...`.
///
/// # Examples
///
/// ```
/// use icvbe_numerics::poly::Polynomial;
///
/// let p = Polynomial::new(vec![1.0, -2.0, 1.0]); // (x-1)^2
/// assert_eq!(p.eval(3.0), 4.0);
/// assert_eq!(p.derivative().eval(3.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coefficients: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from ascending-power coefficients.
    ///
    /// An empty coefficient vector denotes the zero polynomial.
    #[must_use]
    pub fn new(coefficients: Vec<f64>) -> Self {
        Polynomial { coefficients }
    }

    /// The coefficients in ascending power order.
    #[must_use]
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Degree (0 for constants and for the zero polynomial).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.coefficients.len().saturating_sub(1)
    }

    /// Evaluates by Horner's rule.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }

    /// Returns the derivative polynomial.
    #[must_use]
    pub fn derivative(&self) -> Polynomial {
        if self.coefficients.len() <= 1 {
            return Polynomial::new(vec![0.0]);
        }
        let coefficients = self
            .coefficients
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &c)| k as f64 * c)
            .collect();
        Polynomial { coefficients }
    }

    /// Vertex abscissa `-b / 2a` for a quadratic.
    ///
    /// Returns `None` if the polynomial is not a (proper) quadratic.
    #[must_use]
    pub fn quadratic_vertex(&self) -> Option<f64> {
        if self.coefficients.len() == 3 && self.coefficients[2] != 0.0 {
            Some(-self.coefficients[1] / (2.0 * self.coefficients[2]))
        } else {
            None
        }
    }
}

/// Fits a polynomial of the given degree to `(xs, ys)` by least squares.
///
/// # Errors
///
/// - [`NumericsError::InvalidInput`] if fewer than `degree + 1` points are
///   given or the lengths differ.
/// - Propagates factorization failures (e.g. repeated abscissae).
pub fn fit_polynomial(
    xs: &[f64],
    ys: &[f64],
    degree: usize,
) -> Result<(Polynomial, LeastSquaresFit), NumericsError> {
    if xs.len() != ys.len() {
        return Err(NumericsError::dims(format!(
            "fit_polynomial: {} abscissae vs {} ordinates",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < degree + 1 {
        return Err(NumericsError::invalid(format!(
            "fit_polynomial: degree {degree} needs at least {} points, got {}",
            degree + 1,
            xs.len()
        )));
    }
    let mut design = Matrix::zeros(xs.len(), degree + 1);
    for (i, &x) in xs.iter().enumerate() {
        let mut power = 1.0;
        for j in 0..=degree {
            design[(i, j)] = power;
            power *= x;
        }
    }
    let fit = fit_least_squares(&design, ys)?;
    Ok((Polynomial::new(fit.coefficients().to_vec()), fit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horner_matches_direct_evaluation() {
        let p = Polynomial::new(vec![2.0, -1.0, 0.5, 3.0]);
        let x = 1.7;
        let direct = 2.0 - 1.0 * x + 0.5 * x * x + 3.0 * x * x * x;
        assert!((p.eval(x) - direct).abs() < 1e-12);
    }

    #[test]
    fn derivative_of_cubic() {
        let p = Polynomial::new(vec![0.0, 0.0, 0.0, 1.0]); // x^3
        let d = p.derivative();
        assert_eq!(d.coefficients(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn zero_polynomial_derivative() {
        assert_eq!(Polynomial::new(vec![]).derivative().eval(10.0), 0.0);
        assert_eq!(Polynomial::new(vec![5.0]).derivative().eval(10.0), 0.0);
    }

    #[test]
    fn fit_recovers_exact_quadratic() {
        let xs: Vec<f64> = (-5..=5).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 2.0 * x - 0.5 * x * x).collect();
        let (p, fit) = fit_polynomial(&xs, &ys, 2).unwrap();
        assert!((p.coefficients()[0] - 1.0).abs() < 1e-10);
        assert!((p.coefficients()[1] - 2.0).abs() < 1e-10);
        assert!((p.coefficients()[2] + 0.5).abs() < 1e-10);
        assert!(fit.r_squared() > 1.0 - 1e-12);
    }

    #[test]
    fn quadratic_vertex_location() {
        // Bell curve peaked at x = 2.
        let p = Polynomial::new(vec![0.0, 4.0, -1.0]);
        assert!((p.quadratic_vertex().unwrap() - 2.0).abs() < 1e-12);
        assert!(Polynomial::new(vec![1.0, 1.0]).quadratic_vertex().is_none());
    }

    #[test]
    fn fit_rejects_too_few_points() {
        assert!(fit_polynomial(&[1.0, 2.0], &[1.0, 2.0], 2).is_err());
    }
}
