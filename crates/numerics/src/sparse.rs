//! Sparse LU factorization on a frozen symbolic plan.
//!
//! The MNA systems the circuit solver factors are tiny but extremely
//! repetitive: a compiled netlist fixes the sparsity pattern once, and the
//! campaign then factors matrices with that exact pattern thousands of
//! times per die. [`LuSymbolic::analyze`] runs the symbolic elimination a
//! single time and records, per pivot step, which rows can carry a nonzero
//! in the pivot column (the pivot candidates) and which columns of the
//! pivot row can be nonzero (the update set). [`SparseLu`] then performs
//! the numeric factorization touching only those positions.
//!
//! # Bit-compatibility with the dense path
//!
//! The numeric kernel is the dense [`LuFactors`](crate::lu::LuFactors)
//! kernel *restricted to the plan*: the pivot scan visits candidate rows in
//! the same ascending order with the same strict `>` comparison, rows are
//! swapped wholesale in the same dense storage, and elimination updates run
//! over the update columns in ascending order with the identical
//! `lu[(i, j)] -= factor * u` expression. Every position the plan skips is
//! an exact zero in both the input and (inductively) in every dense
//! intermediate, so the skipped dense updates are `x -= 0.0 * u` and
//! `0.0 / pivot` no-ops and both paths produce the same bits. Off-pattern
//! zeros also cannot win a strict-`>` pivot scan, so the pivot sequence —
//! and with it the permutation — is identical too. This is asserted
//! bitwise by the tests below and by the spice-level golden fixtures.
//!
//! The one caveat is the caller contract: the factored matrix must be
//! exactly zero (`±0.0`) at every position outside the analyzed pattern.
//! Debug builds verify this; release builds trust the stamping code.
//!
//! # Pivoting vs. a static pattern
//!
//! Partial pivoting permutes rows at numeric time, which a naive static
//! pattern cannot anticipate. The plan therefore tracks *positions*, not
//! rows: at step `k` every candidate position adopts the union of all
//! candidates' row patterns (and L-prefix patterns). Since swaps only ever
//! exchange rows between candidate positions of the current step, each
//! position's recorded pattern is a superset of whatever row actually ends
//! up there, for every pivot sequence the numeric phase can choose. The
//! union is exact fill for one candidate and padding for the others;
//! padding positions hold exact zeros and cost a multiply-by-zero each.

use std::sync::Arc;

use crate::lu::PIVOT_TOLERANCE;
use crate::{Matrix, NumericsError};

/// Bits per bitset word in the symbolic analysis.
const WORD: usize = 64;

/// A frozen symbolic factorization plan for a fixed sparsity pattern.
///
/// Built once per compiled netlist with [`LuSymbolic::analyze`] and shared
/// (via [`Arc`]) by every [`SparseLu`] workspace that factors matrices with
/// that pattern. All plan storage is CSR-style flat arrays; the numeric
/// phase never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LuSymbolic {
    /// Matrix dimension.
    n: usize,
    /// Number of entries in the *input* pattern (diagonal forced), before
    /// fill-in.
    pattern_nnz: usize,
    /// Pivot candidates per step: rows `p >= k` that can hold a nonzero in
    /// column `k` when step `k` begins. Ascending; the first entry is `k`.
    cand_ptr: Vec<usize>,
    /// Flat candidate row indices, indexed by `cand_ptr`.
    cand_idx: Vec<usize>,
    /// Update columns per step: columns `j > k` that can be nonzero in the
    /// pivot row at step `k` (equivalently, the strict-upper pattern of
    /// final row `k` of `U`). Ascending.
    ucol_ptr: Vec<usize>,
    /// Flat update column indices, indexed by `ucol_ptr`.
    ucol_idx: Vec<usize>,
    /// `L` columns per row: columns `j < i` that can hold a multiplier in
    /// final row `i`. Ascending.
    lcol_ptr: Vec<usize>,
    /// Flat `L` column indices, indexed by `lcol_ptr`.
    lcol_idx: Vec<usize>,
    /// Input pattern (diagonal forced) as row-major bitset words, kept for
    /// the debug-build caller-contract check in `factor_from`.
    row_pattern: Vec<u64>,
}

impl LuSymbolic {
    /// Analyzes the sparsity pattern given by `entries` (row, column pairs,
    /// duplicates allowed) for an `n x n` matrix. The diagonal is always
    /// included: MNA systems keep it structurally nonzero (gmin), and a
    /// structurally zero diagonal would only add pessimistic fill anyway.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] if `n == 0` or an entry lies outside
    /// the matrix.
    pub fn analyze(n: usize, entries: &[(usize, usize)]) -> Result<Self, NumericsError> {
        if n == 0 {
            return Err(NumericsError::invalid("symbolic analysis of a 0x0 matrix"));
        }
        let words = n.div_ceil(WORD);
        // Per-position row patterns; `pat[p]` starts as the input pattern of
        // row p and evolves into the remaining (column > current step)
        // pattern of whatever row can sit at position p.
        let mut pat = vec![0u64; n * words];
        for &(r, c) in entries {
            if r >= n || c >= n {
                return Err(NumericsError::invalid(format!(
                    "pattern entry ({r}, {c}) outside {n}x{n} matrix"
                )));
            }
            pat[r * words + c / WORD] |= 1u64 << (c % WORD);
        }
        for i in 0..n {
            pat[i * words + i / WORD] |= 1u64 << (i % WORD);
        }
        let row_pattern = pat.clone();
        let pattern_nnz = pat.iter().map(|w| w.count_ones() as usize).sum();

        // Per-position L patterns: columns where the row at position p can
        // already hold an eliminated multiplier.
        let mut lpat = vec![0u64; n * words];
        // Union scratch for the current step.
        let mut v = vec![0u64; words];
        let mut lv = vec![0u64; words];
        // Bitmask of columns strictly above the current step.
        let mut above = vec![0u64; words];

        let mut cand_ptr = Vec::with_capacity(n + 1);
        let mut ucol_ptr = Vec::with_capacity(n + 1);
        let mut lcol_ptr = Vec::with_capacity(n + 1);
        cand_ptr.push(0);
        ucol_ptr.push(0);
        lcol_ptr.push(0);
        let mut cand_idx = Vec::new();
        let mut ucol_idx = Vec::new();
        let mut lcol_idx = Vec::new();

        for k in 0..n {
            v.fill(0);
            lv.fill(0);
            let cand_start = cand_idx.len();
            for p in k..n {
                if pat[p * words + k / WORD] >> (k % WORD) & 1 == 1 {
                    cand_idx.push(p);
                    for w in 0..words {
                        v[w] |= pat[p * words + w];
                        lv[w] |= lpat[p * words + w];
                    }
                }
            }
            // The diagonal is forced and unions only ever grow patterns, so
            // position k is always its own first candidate.
            debug_assert_eq!(cand_idx.get(cand_start), Some(&k));
            cand_ptr.push(cand_idx.len());

            // Columns strictly above k, as a mask.
            for (w, slot) in above.iter_mut().enumerate() {
                let lo = w * WORD;
                *slot = if lo + WORD <= k + 1 {
                    0
                } else if lo > k {
                    !0
                } else {
                    !0u64 << (k + 1 - lo)
                };
            }

            // Update columns of step k = union pattern restricted to > k.
            for j in (k + 1)..n {
                if v[j / WORD] >> (j % WORD) & 1 == 1 {
                    ucol_idx.push(j);
                }
            }
            ucol_ptr.push(ucol_idx.len());

            // L columns of final row k: whatever multipliers the row that
            // pivots into position k can already carry. All are < k.
            for j in 0..k {
                if lv[j / WORD] >> (j % WORD) & 1 == 1 {
                    lcol_idx.push(j);
                }
            }
            lcol_ptr.push(lcol_idx.len());

            // Candidate positions adopt the unions: any of them may receive
            // any candidate row through the numeric pivot swap, and rows
            // below the pivot gain fill in the update columns plus a
            // multiplier in column k.
            for &p in &cand_idx[cand_start..] {
                for w in 0..words {
                    pat[p * words + w] = v[w] & above[w];
                    lpat[p * words + w] = lv[w];
                }
                if p > k {
                    lpat[p * words + k / WORD] |= 1u64 << (k % WORD);
                }
            }
        }

        Ok(LuSymbolic {
            n,
            pattern_nnz,
            cand_ptr,
            cand_idx,
            ucol_ptr,
            ucol_idx,
            lcol_ptr,
            lcol_idx,
            row_pattern,
        })
    }

    /// Matrix dimension the plan was analyzed for.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Number of entries in the analyzed input pattern (diagonal included).
    #[must_use]
    pub fn pattern_nnz(&self) -> usize {
        self.pattern_nnz
    }

    /// Number of stored positions in the factored form (`L` multipliers +
    /// `U` entries including the diagonal). `factor_nnz - pattern_nnz` is
    /// the predicted worst-case fill-in across all pivot sequences.
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        self.lcol_idx.len() + self.ucol_idx.len() + self.n
    }

    /// Whether `(r, c)` is inside the analyzed input pattern.
    #[must_use]
    pub fn in_pattern(&self, r: usize, c: usize) -> bool {
        let words = self.n.div_ceil(WORD);
        r < self.n && c < self.n && self.row_pattern[r * words + c / WORD] >> (c % WORD) & 1 == 1
    }

    /// Pivot candidate rows for step `k` (ascending, first entry is `k`).
    fn cand(&self, k: usize) -> &[usize] {
        &self.cand_idx[self.cand_ptr[k]..self.cand_ptr[k + 1]]
    }

    /// Update columns for step `k` / strict-upper `U` pattern of row `k`.
    fn ucols(&self, k: usize) -> &[usize] {
        &self.ucol_idx[self.ucol_ptr[k]..self.ucol_ptr[k + 1]]
    }

    /// `L` multiplier columns of final row `i` (ascending, all `< i`).
    fn lcols(&self, i: usize) -> &[usize] {
        &self.lcol_idx[self.lcol_ptr[i]..self.lcol_ptr[i + 1]]
    }
}

/// A reusable sparse LU workspace bound to a frozen [`LuSymbolic`] plan.
///
/// Mirrors [`LuFactors`](crate::lu::LuFactors): `factor_from` reuses the
/// stored buffers (no allocation after the first factor of a given
/// dimension) and `solve_into` writes into caller storage. The arithmetic
/// is bit-identical to the dense workspace for any matrix honoring the
/// plan's pattern — see the module docs for the argument.
#[derive(Debug, Clone)]
pub struct SparseLu {
    /// The shared symbolic plan.
    plan: Arc<LuSymbolic>,
    /// Dense value storage for the packed factors; only plan positions are
    /// ever read or written past the initial copy.
    lu: Option<Matrix>,
    /// Row permutation: row `i` of the factored matrix came from `perm[i]`.
    perm: Vec<usize>,
}

impl SparseLu {
    /// A workspace bound to `plan`; buffers are sized lazily by
    /// [`SparseLu::factor_from`].
    #[must_use]
    pub fn new(plan: Arc<LuSymbolic>) -> Self {
        SparseLu {
            plan,
            lu: None,
            perm: Vec::new(),
        }
    }

    /// The symbolic plan this workspace factors against. Callers use
    /// pointer identity ([`Arc::ptr_eq`]) to skip rebinding a workspace
    /// that already carries the right plan.
    #[must_use]
    pub fn plan(&self) -> &Arc<LuSymbolic> {
        &self.plan
    }

    /// Factors `a` into the reused storage, touching only plan positions.
    ///
    /// `a` must be exactly zero outside the analyzed pattern (checked in
    /// debug builds).
    ///
    /// # Errors
    ///
    /// - [`NumericsError::DimensionMismatch`] if `a` is not square or its
    ///   dimension differs from the plan's.
    /// - [`NumericsError::SingularMatrix`] if a pivot is (numerically)
    ///   zero.
    /// - [`NumericsError::InvalidInput`] if `a` contains non-finite
    ///   entries.
    pub fn factor_from(&mut self, a: &Matrix) -> Result<(), NumericsError> {
        let n = self.plan.n;
        if a.rows() != n || a.cols() != n {
            return Err(NumericsError::dims(format!(
                "sparse LU plan is {n}x{n}, matrix is {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        if !a.is_finite() {
            return Err(NumericsError::invalid(
                "LU input contains non-finite entries",
            ));
        }
        #[cfg(debug_assertions)]
        for i in 0..n {
            for j in 0..n {
                debug_assert!(
                    self.plan.in_pattern(i, j) || a[(i, j)] == 0.0,
                    "off-pattern entry ({i}, {j}) = {} breaks the sparse-LU caller contract",
                    a[(i, j)]
                );
            }
        }
        let lu = match &mut self.lu {
            Some(m) if m.rows() == n && m.cols() == n => {
                m.copy_from(a)?;
                m
            }
            slot => slot.insert(a.clone()),
        };
        self.perm.clear();
        self.perm.extend(0..n);

        for k in 0..n {
            let cands = self.plan.cand(k);
            // Same scan as the dense kernel, skipping rows whose column-k
            // entry is an exact zero (those can never win a strict `>`).
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for &p in cands {
                if p == k {
                    continue;
                }
                let v = lu[(p, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = p;
                }
            }
            if pivot_val < PIVOT_TOLERANCE {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                self.perm.swap(pivot_row, k);
            }
            let pivot = lu[(k, k)];
            for &p in cands {
                if p == k {
                    continue;
                }
                let factor = lu[(p, k)] / pivot;
                lu[(p, k)] = factor;
                for &j in self.plan.ucols(k) {
                    let u = lu[(k, j)];
                    lu[(p, j)] -= factor * u;
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` into `x` using the stored factorization, visiting
    /// only plan positions during the substitutions.
    ///
    /// # Errors
    ///
    /// [`NumericsError::DimensionMismatch`] if no factorization is stored
    /// or the slice lengths differ from the factored dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), NumericsError> {
        let lu = self
            .lu
            .as_ref()
            .ok_or_else(|| NumericsError::dims("solve_into before factor_from".to_string()))?;
        let n = lu.rows();
        if b.len() != n || x.len() != n {
            return Err(NumericsError::dims(format!(
                "solve_into: matrix is {n}x{n}, rhs has {} entries, out has {}",
                b.len(),
                x.len()
            )));
        }
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for i in 1..n {
            let mut s = x[i];
            for &j in self.plan.lcols(i) {
                s -= lu[(i, j)] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for &j in self.plan.ucols(i) {
                s -= lu[(i, j)] * x[j];
            }
            x[i] = s / lu[(i, i)];
        }
        Ok(())
    }

    /// Dimension of the stored factorization (0 before the first factor).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.as_ref().map_or(0, Matrix::rows)
    }
}

/// Disjoint views of two `len`-long lane rows of `values`: the update
/// source row (shared) and destination row (mutable). The bases are
/// distinct multiples of `len`, so the regions never overlap.
fn disjoint_rows(
    values: &mut [f64],
    u_base: usize,
    p_base: usize,
    len: usize,
) -> (&[f64], &mut [f64]) {
    if u_base < p_base {
        let (lo, hi) = values.split_at_mut(p_base);
        (&lo[u_base..u_base + len], &mut hi[..len])
    } else {
        let (lo, hi) = values.split_at_mut(u_base);
        (&hi[..len], &mut lo[p_base..p_base + len])
    }
}

/// A lane-parallel sparse LU workspace: `lanes` independent matrices with
/// the *same* sparsity pattern factored in lockstep against one shared
/// [`LuSymbolic`] plan.
///
/// Storage is lane-strided structure-of-arrays: entry `(r, c)` of lane `l`
/// lives at `values[(r * n + c) * lanes + l]`, so the elimination inner
/// loops walk contiguous lane blocks — the layout a SIMD or GPU backend
/// would consume directly.
///
/// # Bit-compatibility
///
/// Each lane's arithmetic is the scalar [`SparseLu`] kernel verbatim: the
/// pivot scan visits the same candidate rows with the same strict `>`
/// comparison, rows swap wholesale, and elimination updates run over the
/// same update columns with the identical `lu -= factor * u` expression.
/// A lane never reads another lane's values, so interleaving the lanes
/// cannot change any lane's bits — asserted by the tests below.
///
/// A lane whose pivot collapses is reported singular individually (its
/// mask slot is cleared); the remaining lanes finish unaffected.
#[derive(Debug, Clone)]
pub struct SparseLuBatch {
    plan: Arc<LuSymbolic>,
    lanes: usize,
    /// Lane-strided dense value storage for the packed factors.
    values: Vec<f64>,
    /// Row permutations, lane-major: lane `l` maps row `i` from
    /// `perm[l * n + i]`.
    perm: Vec<usize>,
    /// Per-step pivot scan scratch.
    pivot_row: Vec<usize>,
    pivot_val: Vec<f64>,
    /// Per-lane multiplier scratch for the lane-inner update sweep.
    factor: Vec<f64>,
}

impl SparseLuBatch {
    /// A batch workspace bound to `plan` with the given lane count.
    #[must_use]
    pub fn new(plan: Arc<LuSymbolic>, lanes: usize) -> Self {
        let n = plan.dimension();
        SparseLuBatch {
            plan,
            lanes,
            values: vec![0.0; n * n * lanes],
            perm: vec![0; n * lanes],
            pivot_row: vec![0; lanes],
            pivot_val: vec![0.0; lanes],
            factor: vec![0.0; lanes],
        }
    }

    /// The shared symbolic plan.
    #[must_use]
    pub fn plan(&self) -> &Arc<LuSymbolic> {
        &self.plan
    }

    /// Lane count this workspace was sized for.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mutable view of the lane-strided value storage for the caller to
    /// scatter per-lane matrices into before [`SparseLuBatch::factor`]:
    /// entry `(r, c)` of lane `l` at `[(r * n + c) * lanes + l]`. Every
    /// position outside the analyzed pattern must be exactly zero (the
    /// per-lane caller contract of [`SparseLu::factor_from`]).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Factors every lane whose `active` slot is set, in the frozen plan
    /// order, clearing the slot of any lane that fails (non-finite input
    /// or a singular pivot). Lanes with a cleared slot are left untouched
    /// and never read.
    pub fn factor(&mut self, active: &mut [bool]) {
        let n = self.plan.n;
        let lanes = self.lanes;
        debug_assert_eq!(active.len(), lanes);
        // Per-lane finiteness gate, mirroring the scalar input check.
        for l in 0..lanes {
            if !active[l] {
                continue;
            }
            let finite = (0..n * n).all(|e| self.values[e * lanes + l].is_finite());
            if !finite {
                active[l] = false;
            }
        }
        for l in 0..lanes {
            for i in 0..n {
                self.perm[l * n + i] = i;
            }
        }
        for k in 0..n {
            let cands = self.plan.cand(k);
            // Pivot scan: same ascending candidate order, same strict `>`.
            for l in 0..lanes {
                self.pivot_row[l] = k;
                self.pivot_val[l] = self.values[(k * n + k) * lanes + l].abs();
            }
            for &p in cands {
                if p == k {
                    continue;
                }
                for l in 0..lanes {
                    if !active[l] {
                        continue;
                    }
                    let v = self.values[(p * n + k) * lanes + l].abs();
                    if v > self.pivot_val[l] {
                        self.pivot_val[l] = v;
                        self.pivot_row[l] = p;
                    }
                }
            }
            for l in 0..lanes {
                if !active[l] {
                    continue;
                }
                if self.pivot_val[l] < PIVOT_TOLERANCE {
                    active[l] = false;
                    continue;
                }
                let pr = self.pivot_row[l];
                if pr != k {
                    for j in 0..n {
                        self.values
                            .swap((pr * n + j) * lanes + l, (k * n + j) * lanes + l);
                    }
                    self.perm.swap(l * n + pr, l * n + k);
                }
            }
            // Elimination update. When every lane is live the sweep runs
            // lane-inner over the contiguous lane stride, which the
            // compiler auto-vectorizes; the interchange reorders work
            // *across* lanes only — for any single lane the (p, j) visit
            // order and the `lu -= factor * u` expression are unchanged,
            // so its bits are unchanged. Once any lane drops out the
            // masked scalar sweep takes over, leaving cleared lanes
            // untouched.
            let all_active = active.iter().all(|&a| a);
            for &p in cands {
                if p == k {
                    continue;
                }
                if all_active {
                    let kk = (k * n + k) * lanes;
                    let pk = (p * n + k) * lanes;
                    for l in 0..lanes {
                        self.factor[l] = self.values[pk + l] / self.values[kk + l];
                    }
                    self.values[pk..pk + lanes].copy_from_slice(&self.factor);
                    for &j in self.plan.ucols(k) {
                        let (u_row, p_row) = disjoint_rows(
                            &mut self.values,
                            (k * n + j) * lanes,
                            (p * n + j) * lanes,
                            lanes,
                        );
                        for ((pv, &u), f) in p_row.iter_mut().zip(u_row).zip(&self.factor) {
                            *pv -= f * u;
                        }
                    }
                } else {
                    for l in 0..lanes {
                        if !active[l] {
                            continue;
                        }
                        let pivot = self.values[(k * n + k) * lanes + l];
                        let factor = self.values[(p * n + k) * lanes + l] / pivot;
                        self.values[(p * n + k) * lanes + l] = factor;
                        for &j in self.plan.ucols(k) {
                            let u = self.values[(k * n + j) * lanes + l];
                            self.values[(p * n + j) * lanes + l] -= factor * u;
                        }
                    }
                }
            }
        }
    }

    /// Solves lane `l`'s system into `x` from its stored factorization,
    /// visiting only plan positions — per-lane arithmetic identical to
    /// [`SparseLu::solve_into`].
    ///
    /// # Errors
    ///
    /// [`NumericsError::DimensionMismatch`] on a bad lane index or slice
    /// lengths. The caller must only solve lanes whose factor succeeded.
    pub fn solve_lane(&self, l: usize, b: &[f64], x: &mut [f64]) -> Result<(), NumericsError> {
        let n = self.plan.n;
        let lanes = self.lanes;
        if l >= lanes || b.len() != n || x.len() != n {
            return Err(NumericsError::dims(format!(
                "batch solve: lane {l} of {lanes}, rhs {} / out {} vs dimension {n}",
                b.len(),
                x.len()
            )));
        }
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = b[self.perm[l * n + i]];
        }
        for i in 1..n {
            let mut s = x[i];
            for &j in self.plan.lcols(i) {
                s -= self.values[(i * n + j) * lanes + l] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for &j in self.plan.ucols(i) {
                s -= self.values[(i * n + j) * lanes + l] * x[j];
            }
            x[i] = s / self.values[(i * n + i) * lanes + l];
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::lu::LuFactors;
    use crate::rng::Xoshiro256PlusPlus;

    /// Builds a matrix with the given pattern, values drawn from the rng
    /// (bounded away from zero so the pattern is exercised for real).
    fn pattern_matrix(
        n: usize,
        entries: &[(usize, usize)],
        rng: &mut Xoshiro256PlusPlus,
    ) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for &(r, c) in entries {
            let magnitude = rng.uniform(0.25, 2.0);
            let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
            a[(r, c)] = sign * magnitude;
        }
        a
    }

    /// Asserts that sparse factor+solve matches the dense workspace bit
    /// for bit on `a`, for a couple of right-hand sides.
    fn assert_bitwise_match(plan: &Arc<LuSymbolic>, a: &Matrix, rng: &mut Xoshiro256PlusPlus) {
        let n = a.rows();
        let mut dense = LuFactors::new();
        let mut sparse = SparseLu::new(Arc::clone(plan));
        dense.factor_from(a).unwrap();
        sparse.factor_from(a).unwrap();
        let mut xd = vec![0.0; n];
        let mut xs = vec![0.0; n];
        for _ in 0..3 {
            let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
            dense.solve_into(&b, &mut xd).unwrap();
            sparse.solve_into(&b, &mut xs).unwrap();
            assert_eq!(
                xd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "sparse and dense solves diverged"
            );
        }
    }

    /// The MNA-like pattern of the paper's pair cell: dense 2x2.
    #[test]
    fn dense_2x2_pattern_matches_dense_lu_bitwise() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let plan = Arc::new(LuSymbolic::analyze(2, &entries).unwrap());
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0001);
        for _ in 0..50 {
            let a = pattern_matrix(2, &entries, &mut rng);
            assert_bitwise_match(&plan, &a, &mut rng);
        }
    }

    /// Arrow pattern: elimination of column 0 fills the whole matrix, the
    /// classic worst case for symbolic fill prediction.
    #[test]
    fn arrow_pattern_with_fill_matches_dense_lu_bitwise() {
        let n = 6;
        let mut entries = vec![];
        for i in 0..n {
            entries.push((i, i));
            entries.push((0, i));
            entries.push((i, 0));
        }
        let plan = Arc::new(LuSymbolic::analyze(n, &entries).unwrap());
        assert!(plan.factor_nnz() > plan.pattern_nnz());
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0002);
        for _ in 0..50 {
            let a = pattern_matrix(n, &entries, &mut rng);
            assert_bitwise_match(&plan, &a, &mut rng);
        }
    }

    /// Tridiagonal: U must stay banded (bandwidth 2 — adjacent-row
    /// pivoting can push one extra superdiagonal into U, nothing beyond).
    /// The L side densifies under worst-case pivoting — a displaced row
    /// migrates one position per step, accumulating multipliers — so only
    /// the U bound is structural.
    #[test]
    fn tridiagonal_pattern_keeps_u_banded() {
        let n = 8;
        let mut entries = vec![];
        for i in 0..n {
            entries.push((i, i));
            if i + 1 < n {
                entries.push((i, i + 1));
                entries.push((i + 1, i));
            }
        }
        let plan = Arc::new(LuSymbolic::analyze(n, &entries).unwrap());
        for k in 0..n {
            assert!(plan.ucols(k).len() <= 2, "U row {k} left the band");
            assert!(plan.ucols(k).iter().all(|&j| j <= k + 2));
            assert!(plan.cand(k).len() <= 2, "pivot candidates stay adjacent");
        }
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0003);
        for _ in 0..50 {
            let a = pattern_matrix(n, &entries, &mut rng);
            assert_bitwise_match(&plan, &a, &mut rng);
        }
    }

    /// A structurally zero leading diagonal forces a pivot swap on the very
    /// first step; the position-based plan must survive it.
    #[test]
    fn zero_diagonal_forces_pivoting_and_still_matches() {
        let entries = [(0, 1), (1, 0), (1, 1), (2, 2), (0, 2)];
        let plan = Arc::new(LuSymbolic::analyze(3, &entries).unwrap());
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0004);
        for _ in 0..50 {
            let a = pattern_matrix(3, &entries, &mut rng);
            assert_bitwise_match(&plan, &a, &mut rng);
        }
    }

    /// Random sprinkled patterns across sizes, including ones that trigger
    /// pivot swaps mid-elimination.
    #[test]
    fn random_patterns_match_dense_lu_bitwise() {
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0005);
        for n in 2..=10usize {
            for round in 0..8 {
                let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
                let extra = n + round;
                for _ in 0..extra {
                    let r = rng.below(n as u64) as usize;
                    let c = rng.below(n as u64) as usize;
                    entries.push((r, c));
                }
                let plan = Arc::new(LuSymbolic::analyze(n, &entries).unwrap());
                let a = pattern_matrix(n, &entries, &mut rng);
                if LuFactors::new().factor_from(&a).is_err() {
                    continue; // singular draw; covered by the test below
                }
                assert_bitwise_match(&plan, &a, &mut rng);
            }
        }
    }

    /// Singularity is detected at the same pivot index as the dense path.
    #[test]
    fn singular_matrix_detected_at_same_pivot() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)];
        let plan = Arc::new(LuSymbolic::analyze(3, &entries).unwrap());
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        a[(2, 2)] = 1.0;
        let dense_err = LuFactors::new().factor_from(&a).unwrap_err();
        let sparse_err = SparseLu::new(plan).factor_from(&a).unwrap_err();
        assert_eq!(dense_err, sparse_err);
        assert!(matches!(
            sparse_err,
            NumericsError::SingularMatrix { pivot: 1 }
        ));
    }

    #[test]
    fn reuse_across_factorizations_has_no_stale_state() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let plan = Arc::new(LuSymbolic::analyze(2, &entries).unwrap());
        let mut sparse = SparseLu::new(Arc::clone(&plan));
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0006);
        let a1 = pattern_matrix(2, &entries, &mut rng);
        let a2 = pattern_matrix(2, &entries, &mut rng);
        sparse.factor_from(&a1).unwrap();
        sparse.factor_from(&a2).unwrap();
        let mut dense = LuFactors::new();
        dense.factor_from(&a2).unwrap();
        let mut xd = vec![0.0; 2];
        let mut xs = vec![0.0; 2];
        dense.solve_into(&[1.0, -1.0], &mut xd).unwrap();
        sparse.solve_into(&[1.0, -1.0], &mut xs).unwrap();
        assert_eq!(xd, xs);
        assert_eq!(sparse.dim(), 2);
    }

    #[test]
    fn analyze_rejects_bad_input() {
        assert!(LuSymbolic::analyze(0, &[]).is_err());
        assert!(LuSymbolic::analyze(2, &[(0, 2)]).is_err());
        assert!(LuSymbolic::analyze(2, &[(2, 0)]).is_err());
    }

    #[test]
    fn workspace_reports_errors() {
        let plan = Arc::new(LuSymbolic::analyze(2, &[(0, 1), (1, 0)]).unwrap());
        let mut ws = SparseLu::new(plan);
        let mut x = vec![0.0; 2];
        assert!(ws.solve_into(&[1.0, 2.0], &mut x).is_err());
        assert!(ws.factor_from(&Matrix::zeros(3, 3)).is_err());
        let mut nan = Matrix::zeros(2, 2);
        nan[(0, 1)] = f64::NAN;
        nan[(1, 0)] = 1.0;
        assert!(ws.factor_from(&nan).is_err());
        assert_eq!(ws.dim(), 0);
    }

    /// Scatters `a` into lane `l` of the batch value storage.
    fn scatter_lane(batch: &mut SparseLuBatch, l: usize, a: &Matrix) {
        let n = a.rows();
        let lanes = batch.lanes();
        let values = batch.values_mut();
        for r in 0..n {
            for c in 0..n {
                values[(r * n + c) * lanes + l] = a[(r, c)];
            }
        }
    }

    /// Every lane of a batched factor+solve must match the scalar sparse
    /// workspace bit for bit, with the lanes factored in lockstep.
    #[test]
    fn batch_lanes_match_scalar_sparse_bitwise() {
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0007);
        let patterns: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]),
            (3, vec![(0, 1), (1, 0), (1, 1), (2, 2), (0, 2)]),
            (
                6,
                (0..6)
                    .flat_map(|i| [(i, i), (0, i), (i, 0)])
                    .collect::<Vec<_>>(),
            ),
        ];
        for (n, entries) in patterns {
            let plan = Arc::new(LuSymbolic::analyze(n, &entries).unwrap());
            for lanes in [1usize, 2, 4, 8] {
                let mut batch = SparseLuBatch::new(Arc::clone(&plan), lanes);
                let mats: Vec<Matrix> = (0..lanes)
                    .map(|_| pattern_matrix(n, &entries, &mut rng))
                    .collect();
                for (l, a) in mats.iter().enumerate() {
                    scatter_lane(&mut batch, l, a);
                }
                let mut active = vec![true; lanes];
                batch.factor(&mut active);
                let b: Vec<f64> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
                let mut xb = vec![0.0; n];
                let mut xs = vec![0.0; n];
                for (l, a) in mats.iter().enumerate() {
                    let mut scalar = SparseLu::new(Arc::clone(&plan));
                    match scalar.factor_from(a) {
                        Ok(()) => {
                            assert!(active[l], "lane {l} deactivated on a factorable matrix");
                            batch.solve_lane(l, &b, &mut xb).unwrap();
                            scalar.solve_into(&b, &mut xs).unwrap();
                            assert_eq!(
                                xb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                                "lane {l} diverged from the scalar kernel"
                            );
                        }
                        Err(_) => assert!(!active[l], "lane {l} should have been masked"),
                    }
                }
            }
        }
    }

    /// A singular lane is masked individually; its neighbors still match
    /// the scalar kernel bit for bit.
    #[test]
    fn batch_masks_singular_lane_without_disturbing_neighbors() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2)];
        let plan = Arc::new(LuSymbolic::analyze(3, &entries).unwrap());
        let mut rng = Xoshiro256PlusPlus::seeded(0x5EED_0008);
        let good_a = pattern_matrix(3, &entries, &mut rng);
        let good_b = pattern_matrix(3, &entries, &mut rng);
        let mut singular = Matrix::zeros(3, 3);
        singular[(0, 0)] = 1.0;
        singular[(0, 1)] = 2.0;
        singular[(1, 0)] = 2.0;
        singular[(1, 1)] = 4.0;
        singular[(2, 2)] = 1.0;
        let mut nan = good_a.clone();
        nan[(1, 1)] = f64::NAN;

        let mut batch = SparseLuBatch::new(Arc::clone(&plan), 4);
        scatter_lane(&mut batch, 0, &good_a);
        scatter_lane(&mut batch, 1, &singular);
        scatter_lane(&mut batch, 2, &good_b);
        scatter_lane(&mut batch, 3, &nan);
        let mut active = vec![true; 4];
        batch.factor(&mut active);
        assert_eq!(active, vec![true, false, true, false]);

        let b = [0.5, -1.25, 2.0];
        for (l, a) in [(0usize, &good_a), (2, &good_b)] {
            let mut scalar = SparseLu::new(Arc::clone(&plan));
            scalar.factor_from(a).unwrap();
            let mut xb = vec![0.0; 3];
            let mut xs = vec![0.0; 3];
            batch.solve_lane(l, &b, &mut xb).unwrap();
            scalar.solve_into(&b, &mut xs).unwrap();
            assert_eq!(
                xb.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "surviving lane {l} diverged next to a masked lane"
            );
        }
        assert!(batch.solve_lane(9, &b, &mut [0.0; 3]).is_err());
        assert_eq!(batch.plan().dimension(), 3);
        assert_eq!(batch.lanes(), 4);
    }

    #[test]
    fn plan_accessors_are_consistent() {
        let entries = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let plan = LuSymbolic::analyze(2, &entries).unwrap();
        assert_eq!(plan.dimension(), 2);
        assert_eq!(plan.pattern_nnz(), 4);
        assert_eq!(plan.factor_nnz(), 4);
        assert!(plan.in_pattern(0, 1));
        assert!(!plan.in_pattern(0, 2));
        // Diagonal is forced even when not listed.
        let diagless = LuSymbolic::analyze(2, &[(0, 1), (1, 0)]).unwrap();
        assert!(diagless.in_pattern(0, 0));
        assert!(diagless.in_pattern(1, 1));
    }
}
