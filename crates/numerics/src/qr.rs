//! Householder QR factorization and least-squares solves.
//!
//! QR is the numerically preferred backend for the eq.-13 best fit: the
//! design matrix columns (`1 - T/T0` and `(kT/q) ln(T/T0)`) are strongly
//! correlated over a narrow temperature range, which is exactly the
//! conditioning regime where normal equations lose digits. The normal
//! equations variant is kept in [`crate::lsq`] as an ablation.

use crate::matrix::vec_norm;
use crate::{Matrix, NumericsError};

/// A Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// # Examples
///
/// ```
/// use icvbe_numerics::{qr::QrFactorization, Matrix};
///
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let qr = QrFactorization::factor(&a)?;
/// let x = qr.solve_least_squares(&[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), icvbe_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QrFactorization {
    /// R is stored in the upper triangle; the Householder vectors (with
    /// implicit leading 1) below the diagonal.
    packed: Matrix,
    /// Scalar `beta` of each Householder reflector `H = I - beta v v^T`.
    betas: Vec<f64>,
    /// Magnitude scale of the original matrix, for relative singularity
    /// checks.
    scale: f64,
}

/// Relative threshold (scaled by the matrix magnitude) below which a column
/// norm marks rank deficiency.
const RANK_TOLERANCE: f64 = 1e-13;

impl QrFactorization {
    /// Factors a matrix with at least as many rows as columns.
    ///
    /// # Errors
    ///
    /// - [`NumericsError::DimensionMismatch`] if `a.rows() < a.cols()`.
    /// - [`NumericsError::SingularMatrix`] if a column is numerically rank
    ///   deficient.
    /// - [`NumericsError::InvalidInput`] for non-finite entries.
    pub fn factor(a: &Matrix) -> Result<Self, NumericsError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(NumericsError::dims(format!(
                "QR needs rows >= cols, got {m}x{n}"
            )));
        }
        if !a.is_finite() {
            return Err(NumericsError::invalid(
                "QR input contains non-finite entries",
            ));
        }
        let mut packed = a.clone();
        let mut betas = vec![0.0; n];
        let scale = a.max_abs().max(f64::MIN_POSITIVE);

        for k in 0..n {
            // Householder vector for column k, rows k..m.
            let mut col: Vec<f64> = (k..m).map(|i| packed[(i, k)]).collect();
            let alpha = vec_norm(&col);
            if alpha < RANK_TOLERANCE * scale {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            let sign = if col[0] >= 0.0 { 1.0 } else { -1.0 };
            col[0] += sign * alpha;
            let vnorm2: f64 = col.iter().map(|v| v * v).sum();
            let beta = 2.0 / vnorm2;
            betas[k] = beta;

            // Apply H = I - beta v v^T to the trailing columns (incl. k).
            for j in k..n {
                let dot: f64 = (k..m).map(|i| col[i - k] * packed[(i, j)]).sum();
                let s = beta * dot;
                for i in k..m {
                    packed[(i, j)] -= s * col[i - k];
                }
            }
            // Store v below the diagonal (v[0] implied by R's diagonal sign
            // convention; we store the full v scaled so v[0] = 1).
            let v0 = col[0];
            for i in (k + 1)..m {
                packed[(i, k)] = col[i - k] / v0;
            }
            betas[k] *= v0 * v0; // adjust beta for the v0-normalized vector
        }
        Ok(QrFactorization {
            packed,
            betas,
            scale,
        })
    }

    /// Solves the least-squares problem `min ||A x - b||` for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `b.len()` differs from
    /// the row count.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let (m, n) = (self.packed.rows(), self.packed.cols());
        if b.len() != m {
            return Err(NumericsError::dims(format!(
                "solve: matrix has {m} rows, rhs has {} entries",
                b.len()
            )));
        }
        // Apply Q^T to b.
        let mut qtb = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            // v = [1, packed[k+1.., k]]
            let mut dot = qtb[k];
            for i in (k + 1)..m {
                dot += self.packed[(i, k)] * qtb[i];
            }
            let s = beta * dot;
            qtb[k] -= s;
            for i in (k + 1)..m {
                qtb[i] -= s * self.packed[(i, k)];
            }
        }
        // Back substitution with R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = qtb[i];
            for j in (i + 1)..n {
                s -= self.packed[(i, j)] * x[j];
            }
            let r = self.packed[(i, i)];
            if r.abs() < RANK_TOLERANCE * self.scale {
                return Err(NumericsError::SingularMatrix { pivot: i });
            }
            x[i] = s / r;
        }
        Ok(x)
    }

    /// The diagonal of R, whose ratio `|r_max| / |r_min|` estimates the
    /// conditioning of the design matrix (used by the fitting ablation).
    #[must_use]
    pub fn r_diagonal(&self) -> Vec<f64> {
        (0..self.packed.cols())
            .map(|i| self.packed[(i, i)])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_system_is_solved_exactly() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let x = QrFactorization::factor(&a)
            .unwrap()
            .solve_least_squares(&[4.0, 9.0])
            .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_fit_matches_normal_equations() {
        // y = 2 + 0.5 x with noise-free data: LSQ must recover exactly.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 + 0.5 * x).collect();
        let x = QrFactorization::factor(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 0.0, 2.0];
        let x = QrFactorization::factor(&a)
            .unwrap()
            .solve_least_squares(&b)
            .unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let r: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| q - p).collect();
        let at = a.transpose();
        let atr = at.mul_vec(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-12, "normal-equation residual {v}");
        }
    }

    #[test]
    fn rejects_wide_matrix() {
        let a = Matrix::zeros(2, 3);
        assert!(QrFactorization::factor(&a).is_err());
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]).unwrap();
        assert!(matches!(
            QrFactorization::factor(&a),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn r_diagonal_has_expected_length() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = QrFactorization::factor(&a).unwrap();
        assert_eq!(qr.r_diagonal().len(), 2);
    }
}
