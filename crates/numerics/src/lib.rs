//! Self-contained numerical kernels for the `icvbe` workspace.
//!
//! Everything the reproduction needs numerically lives here, implemented
//! from scratch on `std` only:
//!
//! - dense [`Matrix`] / vector helpers and [LU](lu) / [QR](qr) factorizations,
//! - [sparse LU on a frozen symbolic plan](sparse), bit-compatible with the
//!   dense path, for the repetitive MNA factorizations of the campaign,
//! - [linear least squares](lsq) (the eq.-13 best-fit extractor is a linear
//!   fit in `EG` and `XTI`),
//! - [scalar root finding](roots) (Brent, bisection, Newton) used by the
//!   electro-thermal fixed point and device inversions,
//! - [damped multivariate Newton](newton) driving the SPICE DC solver,
//! - [Levenberg-Marquardt](lm) for nonlinear fits and ablations,
//! - [polynomials](poly), [interpolation](interp) and [statistics](stats)
//!   for figure post-processing,
//! - [pseudo-random generation](rng) (SplitMix64, xoshiro256++) behind the
//!   virtual instruments, the Monte-Carlo die factory and the campaign
//!   engine's deterministic per-die seeding,
//! - a [deterministic, branch-free `exp` kernel](vexp) in scalar, lane and
//!   slice forms — the platform-independent exponential behind every
//!   hot-path junction evaluation.
//!
//! # Examples
//!
//! ```
//! use icvbe_numerics::{lsq::fit_least_squares, Matrix};
//!
//! // Fit y = a + b*x through three points.
//! let design = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
//! let fit = fit_least_squares(&design, &[1.0, 3.0, 5.0])?;
//! assert!((fit.coefficients()[0] - 1.0).abs() < 1e-12);
//! assert!((fit.coefficients()[1] - 2.0).abs() < 1e-12);
//! # Ok::<(), icvbe_numerics::NumericsError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
pub mod exact;
pub mod interp;
pub mod lm;
pub mod lsq;
pub mod lu;
mod matrix;
pub mod newton;
pub mod poly;
pub mod qr;
pub mod rng;
pub mod robust;
pub mod roots;
pub mod sparse;
pub mod stats;
pub mod vexp;

pub use error::NumericsError;
pub use matrix::Matrix;
