//! Piecewise-linear interpolation on a sorted grid.
//!
//! The virtual instruments sample characteristics on discrete grids; linear
//! interpolation recovers intermediate points (e.g. `VBE` at an exact target
//! `IC` from a swept `IC(VBE)` family).

use crate::NumericsError;

/// A piecewise-linear interpolant over strictly increasing abscissae.
///
/// # Examples
///
/// ```
/// use icvbe_numerics::interp::LinearInterpolator;
///
/// let f = LinearInterpolator::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0])?;
/// assert_eq!(f.eval(0.5), 5.0);
/// assert_eq!(f.eval(1.5), 25.0);
/// # Ok::<(), icvbe_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearInterpolator {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterpolator {
    /// Builds an interpolant from matched abscissa/ordinate vectors.
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] if fewer than two points are given,
    /// lengths differ, values are non-finite, or `xs` is not strictly
    /// increasing.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self, NumericsError> {
        if xs.len() != ys.len() {
            return Err(NumericsError::dims(format!(
                "interp: {} abscissae vs {} ordinates",
                xs.len(),
                ys.len()
            )));
        }
        if xs.len() < 2 {
            return Err(NumericsError::invalid("interp: need at least two points"));
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumericsError::invalid("interp: non-finite data"));
        }
        if xs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NumericsError::invalid(
                "interp: abscissae must be strictly increasing",
            ));
        }
        Ok(LinearInterpolator { xs, ys })
    }

    /// Evaluates the interpolant, extrapolating linearly beyond the ends.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // Index of the segment to use: clamp to [0, n-2].
        let seg = match self.xs.partition_point(|&v| v <= x) {
            0 => 0,
            p => (p - 1).min(n - 2),
        };
        let (x0, x1) = (self.xs[seg], self.xs[seg + 1]);
        let (y0, y1) = (self.ys[seg], self.ys[seg + 1]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The domain `[min x, max x]` of the data.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], self.xs[self.xs.len() - 1])
    }

    /// Finds an `x` in the data range with `eval(x) == target`, assuming the
    /// ordinates are monotonic (typical for semilog device curves).
    ///
    /// # Errors
    ///
    /// [`NumericsError::InvalidInput`] if `target` lies outside the ordinate
    /// range.
    pub fn invert_monotonic(&self, target: f64) -> Result<f64, NumericsError> {
        let increasing = self.ys[self.ys.len() - 1] >= self.ys[0];
        let (lo, hi) = if increasing {
            (self.ys[0], self.ys[self.ys.len() - 1])
        } else {
            (self.ys[self.ys.len() - 1], self.ys[0])
        };
        if target < lo || target > hi {
            return Err(NumericsError::invalid(format!(
                "invert: target {target:e} outside ordinate range [{lo:e}, {hi:e}]"
            )));
        }
        for w in 0..self.xs.len() - 1 {
            let (y0, y1) = (self.ys[w], self.ys[w + 1]);
            let inside = if increasing {
                y0 <= target && target <= y1
            } else {
                y1 <= target && target <= y0
            };
            if inside {
                if y1 == y0 {
                    return Ok(self.xs[w]);
                }
                let t = (target - y0) / (y1 - y0);
                return Ok(self.xs[w] + t * (self.xs[w + 1] - self.xs[w]));
            }
        }
        // Monotonicity violated; fall back to the nearest endpoint.
        Err(NumericsError::invalid(
            "invert: ordinates are not monotonic over the grid",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_midpoints() {
        let f = LinearInterpolator::new(vec![0.0, 2.0], vec![1.0, 5.0]).unwrap();
        assert_eq!(f.eval(1.0), 3.0);
    }

    #[test]
    fn extrapolates_linearly() {
        let f = LinearInterpolator::new(vec![0.0, 1.0], vec![0.0, 2.0]).unwrap();
        assert_eq!(f.eval(2.0), 4.0);
        assert_eq!(f.eval(-1.0), -2.0);
    }

    #[test]
    fn exact_nodes_are_reproduced() {
        let xs = vec![0.0, 0.3, 1.1, 4.0];
        let ys = vec![5.0, -2.0, 0.0, 7.5];
        let f = LinearInterpolator::new(xs.clone(), ys.clone()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((f.eval(*x) - y).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_unsorted_abscissae() {
        assert!(LinearInterpolator::new(vec![0.0, 0.0], vec![1.0, 2.0]).is_err());
        assert!(LinearInterpolator::new(vec![1.0, 0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn inverts_increasing_data() {
        let f = LinearInterpolator::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0]).unwrap();
        assert!((f.invert_monotonic(25.0).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn inverts_decreasing_data() {
        let f = LinearInterpolator::new(vec![0.0, 1.0], vec![10.0, 0.0]).unwrap();
        assert!((f.invert_monotonic(5.0).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invert_rejects_out_of_range() {
        let f = LinearInterpolator::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        assert!(f.invert_monotonic(2.0).is_err());
    }

    #[test]
    fn domain_reports_extents() {
        let f = LinearInterpolator::new(vec![-3.0, 5.0], vec![0.0, 1.0]).unwrap();
        assert_eq!(f.domain(), (-3.0, 5.0));
    }
}
