//! Deterministic, dependency-free, branch-free `exp` — the vector kernel
//! behind every hot-path exponential in the workspace.
//!
//! # Why not libm?
//!
//! `f64::exp` goes through the platform libm: a scalar call with
//! data-dependent branches whose exact bits vary across hosts and libc
//! versions. That pins the solver's hot loop to scalar code (the
//! lane-batched Newton path of `icvbe-spice` cannot vectorize around an
//! opaque call) and makes golden fixtures host-specific. This module
//! replaces it with a fixed arithmetic pipeline — Cody–Waite two-term
//! argument reduction, a degree-12 minimax polynomial, exponent scaling by
//! integer bit construction — that is:
//!
//! - **deterministic across platforms**: pure IEEE-754 double arithmetic
//!   and integer ops, no fused multiply-add (Rust never contracts `a*b+c`
//!   implicitly), so every host computes the same bits;
//! - **branch-free**: clamps and special cases are per-lane selects, so
//!   the lane form is straight-line code the compiler auto-vectorizes;
//! - **bit-identical in all three forms**: [`vexp`], [`vexp_lanes`] and
//!   [`vexp_slice`] all route through one `#[inline(always)]` core, so
//!   scalar and batched solver paths agree by construction.
//!
//! Accuracy is within 2 ulp of a correctly-rounded `exp` over the solver's
//! operating range (`|x| ≤ 120`, the `limexp` linearization region and far
//! beyond); see the test suite. Overflow clamps to `+∞` above
//! [`VEXP_OVERFLOW`] and to `+0.0` below [`VEXP_UNDERFLOW`], matching libm
//! `exp` semantics; NaN propagates; `±0 → 1` exactly.
//!
//! # Ablation switch
//!
//! [`set_libm_backend`] routes every entry point back through `f64::exp`
//! at runtime — the `--libm-exp` campaign ablation. The switch is a
//! process-global relaxed atomic read hoisted out of the slice loops; the
//! libm call lives only here, which is what lets the repo gate "no libm
//! `exp` in hot paths" by grep.

use std::sync::atomic::{AtomicBool, Ordering};

/// `log2(e)`: scales the reduction to base 2.
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// Upper word of `ln 2` (Cody–Waite split: `L2U + L2L = ln 2` to ~107
/// bits; `n * L2U` is exact for the `n` range the clamp admits).
const L2U: f64 = 0.693_147_180_559_662_956_511_601_805_646_5;
/// Lower word of `ln 2`.
const L2L: f64 = 0.282_352_905_630_315_771_225_884_481_750_5e-12;
/// `1.5 * 2^52`: adding then subtracting rounds to nearest-even and
/// leaves the integer in the low mantissa bits.
const SHIFT: f64 = 6_755_399_441_055_744.0;
/// Smallest argument that overflows `f64` (`ln(MAX)` rounded up).
pub const VEXP_OVERFLOW: f64 = 709.782_712_893_384;
/// Largest argument that underflows to zero (`ln(2^-1075)` rounded down).
pub const VEXP_UNDERFLOW: f64 = -745.133_219_101_941_2;

/// Degree-12 minimax coefficients for `e^s - 1 - s - s²/2` on the reduced
/// interval `|s| ≤ ln2/2`, highest degree first (≈ `1/12! … 1/2!`,
/// adjusted to spread the truncation error below 1 ulp).
// The literals quote the minimax generator's full output; they round to
// the intended f64 bits either way, and the extra digits are the
// provenance trail back to the generator.
#[allow(clippy::excessive_precision)]
const C: [f64; 11] = [
    2.088_606_211_072_836_875_36e-9,
    2.511_129_308_928_765_186_10e-8,
    2.755_739_112_349_004_718_93e-7,
    2.755_723_629_119_288_276_29e-6,
    2.480_158_715_923_547_299_8e-5,
    1.984_126_989_605_092_055_64e-4,
    1.388_888_888_977_449_220_7e-3,
    8.333_333_333_316_527_216_64e-3,
    4.166_666_666_666_650_475_91e-2,
    1.666_666_666_666_668_517_03e-1,
    5e-1,
];

/// Process-global ablation switch: when set, every entry point routes
/// through libm `f64::exp` instead of the in-tree kernel.
static USE_LIBM: AtomicBool = AtomicBool::new(false);

/// Selects the libm backend (`true`) or the in-tree kernel (`false`,
/// the default). Used by the `--libm-exp` campaign ablation; flip it
/// before any solves run — the switch is process-global.
pub fn set_libm_backend(on: bool) {
    USE_LIBM.store(on, Ordering::Relaxed);
}

/// Whether the libm ablation backend is active.
#[must_use]
pub fn libm_backend() -> bool {
    USE_LIBM.load(Ordering::Relaxed)
}

/// The shared straight-line core: every public form calls exactly this,
/// which is what makes scalar and lane results bit-identical.
#[inline(always)]
fn exp_core(x: f64) -> f64 {
    // Bound the reduction pipeline. `min`/`max` map NaN to the bound
    // (IEEE minNum semantics), so the integer extraction below is safe
    // for every input; the true NaN/∞/clamp answers are selected at the
    // end from the *original* x. Not `f64::clamp`, which propagates NaN.
    #[allow(clippy::manual_clamp)]
    let xb = x.min(VEXP_OVERFLOW + 1.0).max(VEXP_UNDERFLOW - 1.0);

    // Round n = nearest(x * log2(e)) without a branch or a float→int
    // instruction: after adding 1.5·2^52 the low mantissa bits hold n in
    // two's complement.
    let t = xb * LOG2E + SHIFT;
    let n = (t.to_bits() & 0xffff_ffff) as u32 as i32;
    let nf = t - SHIFT;

    // Cody–Waite: s = x - n·ln2, the high word exactly, the low word as a
    // correction, keeping |s| ≤ ln2/2 with no cancellation error.
    let s = xb - nf * L2U - nf * L2L;

    // e^s = 1 + s + s²·P(s), with P evaluated Estrin-style: a Horner
    // chain is 10 serial mul-adds deep (the latency wall that made the
    // scalar form slower than libm), while the power-of-s tree below is
    // ~5 deep and its independent pairs issue in parallel — in scalar
    // *and* in vectorized lane code alike.
    let s2 = s * s;
    let s4 = s2 * s2;
    let s8 = s4 * s4;
    let b0 = C[10] + C[9] * s;
    let b1 = C[8] + C[7] * s;
    let b2 = C[6] + C[5] * s;
    let b3 = C[4] + C[3] * s;
    let b4 = C[2] + C[1] * s;
    let c0 = b0 + b1 * s2;
    let c1 = b2 + b3 * s2;
    let c2 = b4 + C[0] * s2;
    let p = (c0 + c1 * s4) + c2 * s8;
    let u = s2 * p + s + 1.0;

    // 2^n in two halves so each factor's biased exponent stays in range
    // even where the product is subnormal (n ∈ [-1076, 1025]).
    let n1 = n >> 1;
    let n2 = n - n1;
    let p1 = f64::from_bits(((n1 + 1023) as u64) << 52);
    let p2 = f64::from_bits(((n2 + 1023) as u64) << 52);
    let r = u * p1 * p2;

    // Clamp/special-case selects on the original argument: +∞ and
    // overflow to +∞, -∞ and underflow to +0.0, NaN propagates.
    let r = if x > VEXP_OVERFLOW { f64::INFINITY } else { r };
    let r = if x < VEXP_UNDERFLOW { 0.0 } else { r };
    if x.is_nan() {
        f64::NAN
    } else {
        r
    }
}

/// Scalar form: `e^x` through the deterministic kernel (or libm when the
/// ablation backend is active).
///
/// # Examples
///
/// ```
/// use icvbe_numerics::vexp::vexp;
///
/// assert_eq!(vexp(0.0), 1.0);
/// let e = vexp(1.0);
/// assert!((e - std::f64::consts::E).abs() < 1e-15);
/// assert_eq!(vexp(f64::INFINITY), f64::INFINITY);
/// assert_eq!(vexp(f64::NEG_INFINITY), 0.0);
/// ```
#[must_use]
#[inline]
pub fn vexp(x: f64) -> f64 {
    if libm_backend() {
        return x.exp();
    }
    exp_core(x)
}

/// Lane-array form: straight-line per-lane arithmetic over a fixed-width
/// block, bit-identical to [`vexp`] per lane. The loop body has no
/// data-dependent branches, so the compiler unrolls and auto-vectorizes
/// it — the shape a SIMD or GPU backend consumes directly.
#[must_use]
#[inline]
pub fn vexp_lanes<const N: usize>(xs: &[f64; N]) -> [f64; N] {
    let mut out = [0.0; N];
    if libm_backend() {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = x.exp();
        }
        return out;
    }
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = exp_core(x);
    }
    out
}

/// Slice form for variable-length batches (robust/IRLS model paths, the
/// lane-batched device kernels): `out[i] = e^(xs[i])`, bit-identical to
/// [`vexp`] per element. The backend switch is read once, outside the
/// loop.
///
/// # Panics
///
/// Panics if `out` is shorter than `xs`.
pub fn vexp_slice(xs: &[f64], out: &mut [f64]) {
    let out = &mut out[..xs.len()];
    if libm_backend() {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = x.exp();
        }
        return;
    }
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = exp_core(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance in units-in-the-last-place between two finite doubles.
    fn ulp_distance(a: f64, b: f64) -> u64 {
        // Map to a monotone integer line (two's-complement style).
        fn key(x: f64) -> i64 {
            let b = x.to_bits() as i64;
            if b < 0 {
                i64::MIN.wrapping_add(1).wrapping_sub(b).wrapping_sub(1)
            } else {
                b
            }
        }
        key(a).abs_diff(key(b))
    }

    #[test]
    fn within_two_ulp_of_libm_over_operating_range() {
        // VBE/VT ∈ [-40, 40] densely, plus the limexp linearization
        // region up to the cutoff and beyond toward overflow.
        let mut worst = 0u64;
        let mut x = -40.0;
        while x <= 40.0 {
            let d = ulp_distance(vexp(x), x.exp());
            worst = worst.max(d);
            assert!(
                d <= 2,
                "x={x}: vexp={:e} libm={:e} ({d} ulp)",
                vexp(x),
                x.exp()
            );
            x += 7.63e-4; // dense, irrational-ish step to avoid grid artifacts
        }
        let mut x = 40.0;
        while x <= 708.0 {
            let d = ulp_distance(vexp(x), x.exp());
            worst = worst.max(d);
            assert!(d <= 2, "x={x}: {d} ulp");
            x += 0.137;
        }
        let mut x = -708.0;
        while x <= -40.0 {
            let d = ulp_distance(vexp(x), x.exp());
            worst = worst.max(d);
            assert!(d <= 2, "x={x}: {d} ulp");
            x += 0.137;
        }
        assert!(worst <= 2, "worst-case {worst} ulp");
    }

    #[test]
    fn exact_special_cases() {
        assert_eq!(vexp(0.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(vexp(-0.0).to_bits(), 1.0f64.to_bits());
        assert_eq!(vexp(f64::INFINITY), f64::INFINITY);
        assert_eq!(vexp(f64::NEG_INFINITY).to_bits(), 0.0f64.to_bits());
        assert!(vexp(f64::NAN).is_nan());
        assert!(vexp(-f64::NAN).is_nan());
    }

    #[test]
    fn overflow_and_underflow_clamp_like_libm() {
        assert_eq!(vexp(710.0), f64::INFINITY);
        assert_eq!(vexp(1e9), f64::INFINITY);
        assert_eq!(vexp(-746.0), 0.0);
        assert_eq!(vexp(-1e9), 0.0);
        // Just inside the clamps stays finite / nonzero.
        assert!(vexp(709.7).is_finite());
        assert!(vexp(-745.0) > 0.0);
        // Results deep in the subnormal range remain ordered.
        assert!(vexp(-744.0) > vexp(-745.0));
    }

    #[test]
    fn monotone_on_a_dense_grid() {
        let mut prev = vexp(-60.0);
        let mut x = -60.0 + 1e-3;
        while x <= 125.0 {
            let v = vexp(x);
            assert!(v > prev, "non-monotone at x={x}: {v:e} <= {prev:e}");
            prev = v;
            x += 1e-3;
        }
    }

    #[test]
    fn lanes_and_slice_match_scalar_bitwise() {
        // Adversarial lane patterns: mixed magnitudes, clamps, specials,
        // denormal-result arguments, sign flips — all in one block.
        let adversarial = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            40.0,
            -40.0,
            120.0,
            120.0000001,
            709.78,
            710.0,
            -745.0,
            -746.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            3.5e-8,
        ];
        let lanes = vexp_lanes(&adversarial);
        let mut sliced = [0.0; 16];
        vexp_slice(&adversarial, &mut sliced);
        for (i, &x) in adversarial.iter().enumerate() {
            let s = vexp(x);
            assert_eq!(s.to_bits(), lanes[i].to_bits(), "lane {i} x={x}");
            assert_eq!(s.to_bits(), sliced[i].to_bits(), "slice {i} x={x}");
        }
        // And across a dense sweep in odd-width slices.
        let xs: Vec<f64> = (-1000..1000).map(|i| f64::from(i) * 0.123).collect();
        let mut out = vec![0.0; xs.len()];
        vexp_slice(&xs, &mut out);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(vexp(x).to_bits(), out[i].to_bits(), "slice sweep {i}");
        }
    }

    #[test]
    fn libm_backend_switch_routes_all_forms() {
        set_libm_backend(true);
        let xs = [0.5, -3.25, 17.0, -40.0];
        let lanes = vexp_lanes(&xs);
        let mut sliced = [0.0; 4];
        vexp_slice(&xs, &mut sliced);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(vexp(x).to_bits(), x.exp().to_bits(), "scalar {x}");
            assert_eq!(lanes[i].to_bits(), x.exp().to_bits(), "lane {x}");
            assert_eq!(sliced[i].to_bits(), x.exp().to_bits(), "slice {x}");
        }
        set_libm_backend(false);
        assert_eq!(vexp(0.5).to_bits(), exp_core(0.5).to_bits());
    }
}
