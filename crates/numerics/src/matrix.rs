//! A minimal dense, row-major, `f64` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::NumericsError;

/// A dense row-major matrix of `f64`.
///
/// Sized for the problems in this workspace: MNA systems of a few dozen
/// unknowns and least-squares design matrices with a handful of columns.
///
/// # Examples
///
/// ```
/// use icvbe_numerics::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(a[(1, 0)], 3.0);
/// let y = a.mul_vec(&[1.0, 1.0])?;
/// assert_eq!(y, vec![3.0, 7.0]);
/// # Ok::<(), icvbe_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let Some(len) = rows.checked_mul(cols) else {
            panic!("matrix size overflow: {rows} x {cols}")
        };
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates an `n x n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInput`] if `rows` is empty or the rows
    /// have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericsError> {
        let first = rows
            .first()
            .ok_or_else(|| NumericsError::invalid("matrix needs at least one row"))?;
        let cols = first.len();
        if cols == 0 {
            return Err(NumericsError::invalid("matrix rows must be non-empty"));
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(NumericsError::dims(format!(
                    "row {i} has {} columns, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if x.len() != self.cols {
            return Err(NumericsError::dims(format!(
                "mul_vec: matrix has {} columns, vector has {} entries",
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(y)
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if the inner dimensions
    /// disagree.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, NumericsError> {
        if self.cols != other.rows {
            return Err(NumericsError::dims(format!(
                "mul: {}x{} times {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (infinity norm of the flattened data).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns `true` if every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Sets every entry to `value` without reallocating.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copies `other` into `self` without reallocating.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if the shapes differ.
    pub fn copy_from(&mut self, other: &Matrix) -> Result<(), NumericsError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NumericsError::dims(format!(
                "copy_from: {}x{} into {}x{}",
                other.rows, other.cols, self.rows, self.cols
            )));
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Borrows the row-major backing storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.5e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Euclidean norm of a vector.
#[must_use]
pub(crate) fn vec_norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_vector_is_identity() {
        let id = Matrix::identity(3);
        let x = vec![1.0, -2.0, 3.5];
        assert_eq!(id.mul_vec(&x).unwrap(), x);
    }

    #[test]
    fn transpose_twice_is_original() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericsError::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(Matrix::from_rows(&[]).is_err());
        let empty_row: &[f64] = &[];
        assert!(Matrix::from_rows(&[empty_row]).is_err());
    }

    #[test]
    fn mul_vec_rejects_wrong_length() {
        let a = Matrix::identity(2);
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        a.swap_rows(0, 1);
        assert_eq!(a.row(0), &[3.0, 4.0]);
        assert_eq!(a.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
        assert!(a.is_finite());
    }
}
