//! Robust nonlinear least squares: Huber/Tukey IRLS around the LM core.
//!
//! Plain least squares is the maximum-likelihood estimator only for
//! Gaussian noise; a single glitched sample (a noise burst, a stuck
//! reading, an A/D spike) can drag the eq.-13 fit arbitrarily far. This
//! module wraps [`fit_levenberg_marquardt_with`](crate::lm::fit_levenberg_marquardt_with)
//! in iteratively reweighted least squares (IRLS): each round estimates a
//! robust scale from the median absolute deviation (MAD) of the current
//! residuals, converts each standardized residual into a weight through a
//! [`RobustLoss`], and refits the weighted problem. Samples whose final
//! weight collapses below a cutoff are flagged as outliers.
//!
//! Mirrors the LM module's split: every buffer — residuals, weights, the
//! scratch used by the median, the outlier flags, and the inner
//! [`LmWorkspace`] — lives in a caller-owned [`RobustWorkspace`], so
//! steady-state fits allocate nothing.

use crate::lm::{fit_levenberg_marquardt_with, LmOptions, LmWorkspace, ResidualModel};
use crate::{Matrix, NumericsError};

/// The robust loss shaping the IRLS weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobustLoss {
    /// Huber's loss: quadratic inside `k` standardized residuals, linear
    /// outside. Downweights outliers but never fully rejects them.
    Huber,
    /// Tukey's biweight: quadratic-ish inside `c`, *zero* influence
    /// outside. Gross outliers are rejected outright.
    Tukey,
}

impl RobustLoss {
    /// The conventional 95%-efficiency tuning constant for this loss.
    #[must_use]
    pub fn default_tuning(self) -> f64 {
        match self {
            RobustLoss::Huber => 1.345,
            RobustLoss::Tukey => 4.685,
        }
    }

    /// IRLS weight for a standardized residual `u = r / scale`.
    #[must_use]
    pub fn weight(self, u: f64, tuning: f64) -> f64 {
        let a = u.abs();
        if !a.is_finite() {
            return 0.0;
        }
        match self {
            RobustLoss::Huber => {
                if a <= tuning {
                    1.0
                } else {
                    tuning / a
                }
            }
            RobustLoss::Tukey => {
                if a < tuning {
                    let t = u / tuning;
                    let s = 1.0 - t * t;
                    s * s
                } else {
                    0.0
                }
            }
        }
    }
}

/// Options for [`fit_robust_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustOptions {
    /// Loss function shaping the weights.
    pub loss: RobustLoss,
    /// Tuning constant in units of the robust scale; `0.0` selects
    /// [`RobustLoss::default_tuning`].
    pub tuning: f64,
    /// Maximum IRLS rounds (each round is one full weighted LM fit).
    pub max_rounds: usize,
    /// Lower bound on the MAD scale, guarding exactly-interpolated data.
    pub scale_floor: f64,
    /// Relative scale change below which the IRLS loop stops early.
    pub scale_tolerance: f64,
    /// Final weight below which a sample is flagged as an outlier.
    pub outlier_cutoff: f64,
    /// Options for the inner weighted LM fits.
    pub lm: LmOptions,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            loss: RobustLoss::Huber,
            tuning: 0.0,
            max_rounds: 8,
            scale_floor: 1e-12,
            scale_tolerance: 1e-3,
            outlier_cutoff: 0.25,
            lm: LmOptions::default(),
        }
    }
}

/// Summary of a robust fit; the fitted parameters live in the caller's
/// `p` buffer, the per-sample weights and flags in the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustFit {
    /// Final weighted cost `sum w_i r_i^2 / 2`.
    pub cost: f64,
    /// LM iterations accumulated across all IRLS rounds.
    pub iterations: usize,
    /// IRLS rounds performed.
    pub rounds: usize,
    /// Final robust scale estimate (`1.4826 * MAD` of the residuals).
    pub scale: f64,
    /// Samples whose final weight fell below the outlier cutoff.
    pub outliers: usize,
}

/// Reusable scratch for [`fit_robust_with`]: residuals, weights, the
/// median scratch, outlier flags, and the inner [`LmWorkspace`].
#[derive(Debug, Clone, Default)]
pub struct RobustWorkspace {
    lm: LmWorkspace,
    r: Vec<f64>,
    w: Vec<f64>,
    sorted: Vec<f64>,
    outlier: Vec<bool>,
}

impl RobustWorkspace {
    /// An empty workspace; buffers are sized lazily by the first fit.
    #[must_use]
    pub fn new() -> Self {
        RobustWorkspace::default()
    }

    /// Per-sample weights from the most recent fit (empty before any).
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Per-sample outlier flags from the most recent fit.
    #[must_use]
    pub fn outlier_flags(&self) -> &[bool] {
        &self.outlier
    }

    /// Raw (unweighted) residuals at the fitted parameters.
    #[must_use]
    pub fn residuals(&self) -> &[f64] {
        &self.r
    }

    fn ensure(&mut self, m: usize) {
        if self.r.len() != m {
            self.r.resize(m, 0.0);
            self.w.resize(m, 1.0);
            self.sorted.resize(m, 0.0);
            self.outlier.resize(m, false);
        }
    }
}

/// `1.4826 * median(|r|)` over the finite residuals: a consistent
/// estimate of the Gaussian sigma that outliers cannot corrupt. Returns
/// `None` when no residual is finite. `scratch` is overwritten.
fn mad_scale(r: &[f64], scratch: &mut [f64]) -> Option<f64> {
    let mut k = 0usize;
    for &v in r {
        if v.is_finite() {
            scratch[k] = v.abs();
            k += 1;
        }
    }
    if k == 0 {
        return None;
    }
    let finite = &mut scratch[..k];
    finite.sort_unstable_by(f64::total_cmp);
    let median = if k % 2 == 1 {
        finite[k / 2]
    } else {
        0.5 * (finite[k / 2 - 1] + finite[k / 2])
    };
    Some(1.4826 * median)
}

/// Adapter presenting the weighted problem `sqrt(w_i) r_i(p)` to LM.
struct WeightedModel<'a, M> {
    inner: &'a M,
    w: &'a [f64],
}

impl<M: ResidualModel> ResidualModel for WeightedModel<'_, M> {
    fn residual_count(&self) -> usize {
        self.inner.residual_count()
    }

    fn parameter_count(&self) -> usize {
        self.inner.parameter_count()
    }

    fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
        self.inner.residuals(p, out)?;
        for (r, &w) in out.iter_mut().zip(self.w) {
            // A zero weight must silence the sample exactly, even when
            // the raw residual is NaN/Inf (0 * NaN would stay NaN and
            // poison the cost).
            *r = if w == 0.0 { 0.0 } else { *r * w.sqrt() };
        }
        Ok(())
    }

    fn jacobian(&self, p: &[f64], out: &mut Matrix) -> Result<bool, NumericsError> {
        if !self.inner.jacobian(p, out)? {
            // Forward differences over the *weighted* residuals pick up
            // the scaling automatically.
            return Ok(false);
        }
        let n = self.parameter_count();
        for (i, &w) in self.w.iter().enumerate() {
            let s = w.sqrt();
            for j in 0..n {
                out[(i, j)] = if w == 0.0 { 0.0 } else { out[(i, j)] * s };
            }
        }
        Ok(true)
    }
}

/// Robust IRLS fit of `model` starting from `p` (in/out, like
/// [`fit_levenberg_marquardt_with`](crate::lm::fit_levenberg_marquardt_with)).
///
/// Each round: evaluate raw residuals, estimate the MAD scale, derive
/// per-sample weights through `options.loss`, and run one weighted LM
/// fit. Stops when the scale stabilizes or the round budget is spent,
/// then flags samples whose final weight is below
/// `options.outlier_cutoff`. After the first call has sized the
/// workspace, fits of the same shape allocate nothing.
///
/// # Errors
///
/// - Propagates model evaluation failures.
/// - Inner LM failures (singular weighted normal equations — e.g. the
///   loss rejected so many samples the parameters are undetermined, or
///   an exhausted iteration budget) are returned as-is.
pub fn fit_robust_with(
    model: &impl ResidualModel,
    p: &mut [f64],
    options: &RobustOptions,
    ws: &mut RobustWorkspace,
) -> Result<RobustFit, NumericsError> {
    let m = model.residual_count();
    if m == 0 {
        return Err(NumericsError::invalid(
            "robust fit needs at least one residual",
        ));
    }
    let tuning = if options.tuning > 0.0 {
        options.tuning
    } else {
        options.loss.default_tuning()
    };
    ws.ensure(m);

    let mut cost = 0.0;
    let mut iterations = 0usize;
    let mut rounds = 0usize;
    let mut scale = options.scale_floor.max(1e-300);
    let mut prev_scale = f64::INFINITY;

    for round in 0..options.max_rounds.max(1) {
        model.residuals(p, &mut ws.r)?;
        let Some(mad) = mad_scale(&ws.r, &mut ws.sorted) else {
            return Err(NumericsError::invalid(
                "robust fit: every residual is non-finite",
            ));
        };
        scale = mad.max(options.scale_floor);
        rounds = round + 1;
        for (w, &r) in ws.w.iter_mut().zip(&ws.r) {
            *w = options.loss.weight(r / scale, tuning);
        }
        let weighted = WeightedModel {
            inner: model,
            w: &ws.w,
        };
        let (c, it) = fit_levenberg_marquardt_with(&weighted, p, options.lm, &mut ws.lm)?;
        cost = c;
        iterations += it;
        if (scale - prev_scale).abs() <= options.scale_tolerance * scale {
            break;
        }
        prev_scale = scale;
    }

    // Final pass: residuals, weights, and outlier flags at the fitted
    // parameters, so the workspace accessors describe the returned fit.
    model.residuals(p, &mut ws.r)?;
    if let Some(mad) = mad_scale(&ws.r, &mut ws.sorted) {
        scale = mad.max(options.scale_floor);
    }
    let mut outliers = 0usize;
    for i in 0..m {
        ws.w[i] = options.loss.weight(ws.r[i] / scale, tuning);
        ws.outlier[i] = ws.w[i] < options.outlier_cutoff;
        outliers += usize::from(ws.outlier[i]);
    }

    Ok(RobustFit {
        cost,
        iterations,
        rounds,
        scale,
        outliers,
    })
}

/// [`fit_robust_with`] bracketed by an
/// [`icvbe_trace::SpanKind::RobustFit`] span on `trace`; the end record
/// carries the IRLS round and outlier counts as its payload. With a
/// disabled buffer this is a plain delegation — no clock read, no record.
///
/// # Errors
///
/// Same contract as [`fit_robust_with`].
pub fn fit_robust_traced(
    model: &impl ResidualModel,
    p: &mut [f64],
    options: &RobustOptions,
    ws: &mut RobustWorkspace,
    trace: &mut icvbe_trace::TraceBuf,
) -> Result<RobustFit, NumericsError> {
    let span = trace.span(icvbe_trace::SpanKind::RobustFit);
    let result = fit_robust_with(model, p, options, ws);
    match &result {
        Ok(fit) => trace.span_end_with(span, fit.rounds as u64, fit.outliers as u64),
        Err(_) => trace.span_end(span),
    }
    result
}

/// Allocating convenience wrapper around [`fit_robust_with`]: returns the
/// fitted parameters alongside the fit summary.
///
/// # Errors
///
/// Same contract as [`fit_robust_with`].
pub fn fit_robust(
    model: &impl ResidualModel,
    p0: &[f64],
    options: &RobustOptions,
) -> Result<(Vec<f64>, RobustFit), NumericsError> {
    let mut ws = RobustWorkspace::new();
    let mut p = p0.to_vec();
    let fit = fit_robust_with(model, &mut p, options, &mut ws)?;
    Ok((p, fit))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `y = a + b x` over fixed abscissae with injectable outliers.
    struct Line {
        xs: Vec<f64>,
        ys: Vec<f64>,
    }

    impl ResidualModel for Line {
        fn residual_count(&self) -> usize {
            self.xs.len()
        }

        fn parameter_count(&self) -> usize {
            2
        }

        fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
            for i in 0..self.xs.len() {
                out[i] = p[0] + p[1] * self.xs[i] - self.ys[i];
            }
            Ok(())
        }

        fn jacobian(&self, _p: &[f64], out: &mut Matrix) -> Result<bool, NumericsError> {
            for i in 0..self.xs.len() {
                out[(i, 0)] = 1.0;
                out[(i, 1)] = self.xs[i];
            }
            Ok(true)
        }
    }

    fn corrupted_line() -> Line {
        // y = 2 + 0.5 x with small alternating noise, plus two gross
        // outliers at indices 3 and 9.
        let xs: Vec<f64> = (0..12).map(f64::from).collect();
        let mut ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 + 0.5 * x + if i % 2 == 0 { 1e-3 } else { -1e-3 })
            .collect();
        ys[3] += 10.0;
        ys[9] -= 7.0;
        Line { xs, ys }
    }

    #[test]
    fn huber_recovers_line_under_gross_outliers() {
        let model = corrupted_line();
        let (p, fit) = fit_robust(&model, &[0.0, 0.0], &RobustOptions::default()).unwrap();
        assert!((p[0] - 2.0).abs() < 0.05, "a = {}", p[0]);
        assert!((p[1] - 0.5).abs() < 0.01, "b = {}", p[1]);
        assert_eq!(fit.outliers, 2);
    }

    #[test]
    fn tukey_rejects_outliers_completely() {
        let model = corrupted_line();
        let options = RobustOptions {
            loss: RobustLoss::Tukey,
            ..RobustOptions::default()
        };
        let mut ws = RobustWorkspace::new();
        let mut p = [0.0, 0.0];
        let fit = fit_robust_with(&model, &mut p, &options, &mut ws).unwrap();
        assert!((p[0] - 2.0).abs() < 0.01, "a = {}", p[0]);
        assert!((p[1] - 0.5).abs() < 0.005, "b = {}", p[1]);
        assert_eq!(fit.outliers, 2);
        assert!(ws.outlier_flags()[3] && ws.outlier_flags()[9]);
        assert_eq!(ws.weights()[3], 0.0);
        assert_eq!(ws.weights()[9], 0.0);
    }

    #[test]
    fn plain_lm_is_dragged_where_robust_is_not() {
        let model = corrupted_line();
        let lsq =
            crate::lm::fit_levenberg_marquardt(&model, &[0.0, 0.0], LmOptions::default()).unwrap();
        // The two gross outliers pull the ordinary fit visibly off.
        assert!((lsq.parameters[0] - 2.0).abs() > 0.1);
        let (p, _) = fit_robust(&model, &[0.0, 0.0], &RobustOptions::default()).unwrap();
        assert!((p[0] - 2.0).abs() < 0.05);
    }

    #[test]
    fn clean_data_has_no_outliers_and_matches_plain_lm() {
        let xs: Vec<f64> = (0..8).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 - 0.25 * x).collect();
        let model = Line { xs, ys };
        let mut ws = RobustWorkspace::new();
        let mut p = [0.0, 0.0];
        let fit = fit_robust_with(&model, &mut p, &RobustOptions::default(), &mut ws).unwrap();
        assert_eq!(fit.outliers, 0);
        assert!(ws.outlier_flags().iter().all(|&o| !o));
        assert!((p[0] - 1.0).abs() < 1e-8);
        assert!((p[1] + 0.25).abs() < 1e-8);
    }

    #[test]
    fn workspace_reuse_is_bitwise_reproducible() {
        let model = corrupted_line();
        let options = RobustOptions::default();
        let mut ws = RobustWorkspace::new();
        let mut p1 = [0.0, 0.0];
        let f1 = fit_robust_with(&model, &mut p1, &options, &mut ws).unwrap();
        let mut p2 = [0.0, 0.0];
        let f2 = fit_robust_with(&model, &mut p2, &options, &mut ws).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn empty_model_is_rejected() {
        let model = Line {
            xs: vec![],
            ys: vec![],
        };
        assert!(fit_robust(&model, &[0.0, 0.0], &RobustOptions::default()).is_err());
    }

    #[test]
    fn non_finite_minority_is_zero_weighted_and_ignored() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let mut ys: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x).collect();
        ys[4] = f64::NAN;
        ys[7] = f64::INFINITY;
        let model = Line { xs, ys };
        let mut ws = RobustWorkspace::new();
        let mut p = [0.0, 0.0];
        let fit = fit_robust_with(&model, &mut p, &RobustOptions::default(), &mut ws).unwrap();
        assert!((p[0] - 3.0).abs() < 1e-6, "a = {}", p[0]);
        assert!((p[1] - 2.0).abs() < 1e-6, "b = {}", p[1]);
        assert_eq!(fit.outliers, 2);
        assert_eq!(ws.weights()[4], 0.0);
        assert_eq!(ws.weights()[7], 0.0);
    }

    #[test]
    fn non_finite_majority_fits_through_the_finite_remainder() {
        // 4 of 6 samples are garbage; the two clean points still pin the
        // line exactly (2 points, 2 parameters).
        let xs: Vec<f64> = (0..6).map(f64::from).collect();
        let ys = vec![f64::NAN, f64::INFINITY, f64::NAN, f64::NAN, 1.0, 2.0];
        let model = Line { xs, ys };
        let (p, fit) = fit_robust(&model, &[0.0, 0.0], &RobustOptions::default()).unwrap();
        assert_eq!(fit.outliers, 4);
        // Line through (4, 1) and (5, 2): y = -3 + x.
        assert!((p[0] + 3.0).abs() < 1e-6, "a = {}", p[0]);
        assert!((p[1] - 1.0).abs() < 1e-6, "b = {}", p[1]);
    }

    #[test]
    fn all_non_finite_is_rejected_not_panicking() {
        let xs: Vec<f64> = (0..4).map(f64::from).collect();
        let ys = vec![f64::NAN; 4];
        let model = Line { xs, ys };
        assert!(fit_robust(&model, &[0.0, 0.0], &RobustOptions::default()).is_err());
    }
}
