//! Randomized property tests for the numerical kernels, driven by the
//! in-tree seeded PRNG (hermetic build: no `proptest`).

use icvbe_numerics::interp::LinearInterpolator;
use icvbe_numerics::lsq::{fit_least_squares_with, LsqBackend};
use icvbe_numerics::poly::{fit_polynomial, Polynomial};
use icvbe_numerics::qr::QrFactorization;
use icvbe_numerics::rng::Xoshiro256PlusPlus;
use icvbe_numerics::roots::{brent, RootOptions};
use icvbe_numerics::Matrix;

const CASES: usize = 48;

/// QR least squares leaves a residual orthogonal to the column space
/// for random tall matrices.
#[test]
fn qr_residual_is_orthogonal() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0909_0001);
    for _ in 0..CASES {
        let rows = 3 + rng.below(7) as usize;
        let cols = 2;
        let mut a = Matrix::zeros(rows, cols);
        for i in 0..rows {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = rng.uniform(-1.0, 1.0) * 10.0;
        }
        // Skip the (measure-zero) rank-deficient draws.
        let distinct = (1..rows).any(|i| (a[(i, 1)] - a[(0, 1)]).abs() > 1e-6);
        if !distinct {
            continue;
        }
        let b: Vec<f64> = (0..rows).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let qr = QrFactorization::factor(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
        let atr = a.transpose().mul_vec(&r).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-8, "residual not orthogonal: {v}");
        }
    }
}

/// QR and normal equations agree on well-conditioned random problems.
#[test]
fn lsq_backends_agree() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0909_0002);
    for _ in 0..CASES {
        let rows = 8;
        let mut a = Matrix::zeros(rows, 2);
        for i in 0..rows {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = i as f64 + rng.uniform(-0.25, 0.25);
        }
        let b: Vec<f64> = (0..rows).map(|_| rng.uniform(-5.0, 5.0)).collect();
        let qr = fit_least_squares_with(&a, &b, LsqBackend::Qr).unwrap();
        let ne = fit_least_squares_with(&a, &b, LsqBackend::NormalEquations).unwrap();
        for (p, q) in qr.coefficients().iter().zip(ne.coefficients()) {
            assert!((p - q).abs() < 1e-8);
        }
    }
}

/// Polynomial fitting of exact polynomial data recovers the coefficients.
#[test]
fn poly_fit_roundtrips() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0909_0003);
    for _ in 0..CASES {
        let c0 = rng.uniform(-5.0, 5.0);
        let c1 = rng.uniform(-5.0, 5.0);
        let c2 = rng.uniform(-5.0, 5.0);
        let p = Polynomial::new(vec![c0, c1, c2]);
        let xs: Vec<f64> = (-6..=6).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| p.eval(x)).collect();
        let (fitted, stats) = fit_polynomial(&xs, &ys, 2).unwrap();
        for (a, b) in fitted.coefficients().iter().zip(p.coefficients()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert!(stats.r_squared() > 1.0 - 1e-9 || ys.iter().all(|v| (*v - ys[0]).abs() < 1e-12));
    }
}

/// Brent finds the root of any shifted cubic with a bracketing interval.
#[test]
fn brent_finds_cubic_roots() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0909_0004);
    for _ in 0..CASES {
        let shift = rng.uniform(-20.0, 20.0);
        let f = |x: f64| x * x * x - shift;
        let r = brent(f, -30.0, 30.0, RootOptions::default()).unwrap();
        assert!((r * r * r - shift).abs() < 1e-8);
    }
}

/// Interpolation inverts itself on strictly monotone data.
#[test]
fn interp_invert_roundtrips() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0909_0005);
    for _ in 0..CASES {
        let target_frac = rng.uniform(0.01, 0.99);
        let mut xs = vec![0.0];
        let mut ys = vec![0.0];
        for i in 1..8 {
            xs.push(xs[i - 1] + 0.2 + rng.uniform(0.0, 1.0));
            ys.push(ys[i - 1] + 0.1 + rng.uniform(0.0, 1.0));
        }
        let f = LinearInterpolator::new(xs.clone(), ys.clone()).unwrap();
        let target = ys[0] + target_frac * (ys[ys.len() - 1] - ys[0]);
        let x = f.invert_monotonic(target).unwrap();
        assert!((f.eval(x) - target).abs() < 1e-9);
    }
}

/// Determinant of a scaled identity is the scale to the n-th power.
#[test]
fn lu_determinant_of_scaled_identity() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0909_0006);
    for _ in 0..CASES {
        let scale = rng.uniform(0.1, 10.0);
        let n = 1 + rng.below(5) as usize;
        let mut a = Matrix::identity(n);
        for i in 0..n {
            a[(i, i)] = scale;
        }
        let lu = icvbe_numerics::lu::LuSolver::factor(&a).unwrap();
        assert!((lu.determinant() - scale.powi(n as i32)).abs() / scale.powi(n as i32) < 1e-12);
    }
}
