//! Property-based tests for the numerical kernels.

use icvbe_numerics::interp::LinearInterpolator;
use icvbe_numerics::lsq::{fit_least_squares_with, LsqBackend};
use icvbe_numerics::poly::{fit_polynomial, Polynomial};
use icvbe_numerics::qr::QrFactorization;
use icvbe_numerics::roots::{brent, RootOptions};
use icvbe_numerics::Matrix;
use proptest::prelude::*;

/// Deterministic LCG so matrix entries derive from a single seed.
fn lcg(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
    move || {
        state = state
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// QR least squares leaves a residual orthogonal to the column space
    /// for random tall matrices.
    #[test]
    fn qr_residual_is_orthogonal(seed in 0u64..500, rows in 3usize..10) {
        let cols = 2;
        let mut rng = lcg(seed);
        let mut a = Matrix::zeros(rows, cols);
        for i in 0..rows {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = rng() * 10.0;
        }
        // Guard against accidental rank deficiency.
        let distinct = (1..rows).any(|i| (a[(i, 1)] - a[(0, 1)]).abs() > 1e-6);
        prop_assume!(distinct);
        let b: Vec<f64> = (0..rows).map(|_| rng()).collect();
        let qr = QrFactorization::factor(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(p, q)| p - q).collect();
        let atr = a.transpose().mul_vec(&r).unwrap();
        for v in atr {
            prop_assert!(v.abs() < 1e-8, "residual not orthogonal: {v}");
        }
    }

    /// QR and normal equations agree on well-conditioned random problems.
    #[test]
    fn lsq_backends_agree(seed in 0u64..500) {
        let mut rng = lcg(seed);
        let rows = 8;
        let mut a = Matrix::zeros(rows, 2);
        for i in 0..rows {
            a[(i, 0)] = 1.0;
            a[(i, 1)] = i as f64 + rng() * 0.25;
        }
        let b: Vec<f64> = (0..rows).map(|_| rng() * 5.0).collect();
        let qr = fit_least_squares_with(&a, &b, LsqBackend::Qr).unwrap();
        let ne = fit_least_squares_with(&a, &b, LsqBackend::NormalEquations).unwrap();
        for (p, q) in qr.coefficients().iter().zip(ne.coefficients()) {
            prop_assert!((p - q).abs() < 1e-8);
        }
    }

    /// Polynomial fitting of exact polynomial data recovers the
    /// coefficients.
    #[test]
    fn poly_fit_roundtrips(
        c0 in -5.0_f64..5.0,
        c1 in -5.0_f64..5.0,
        c2 in -5.0_f64..5.0,
    ) {
        let p = Polynomial::new(vec![c0, c1, c2]);
        let xs: Vec<f64> = (-6..=6).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| p.eval(x)).collect();
        let (fitted, stats) = fit_polynomial(&xs, &ys, 2).unwrap();
        for (a, b) in fitted.coefficients().iter().zip(p.coefficients()) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        prop_assert!(stats.r_squared() > 1.0 - 1e-9 || ys.iter().all(|v| (*v - ys[0]).abs() < 1e-12));
    }

    /// Brent finds the root of any shifted cubic with a bracketing
    /// interval.
    #[test]
    fn brent_finds_cubic_roots(shift in -20.0_f64..20.0) {
        let f = |x: f64| x * x * x - shift;
        let r = brent(f, -30.0, 30.0, RootOptions::default()).unwrap();
        prop_assert!((r * r * r - shift).abs() < 1e-8);
    }

    /// Interpolation inverts itself on strictly monotone data.
    #[test]
    fn interp_invert_roundtrips(seed in 0u64..200, target_frac in 0.01_f64..0.99) {
        let mut rng = lcg(seed);
        let mut xs = vec![0.0];
        let mut ys = vec![0.0];
        for i in 1..8 {
            xs.push(xs[i - 1] + 0.2 + rng().abs());
            ys.push(ys[i - 1] + 0.1 + rng().abs());
        }
        let f = LinearInterpolator::new(xs.clone(), ys.clone()).unwrap();
        let target = ys[0] + target_frac * (ys[ys.len() - 1] - ys[0]);
        let x = f.invert_monotonic(target).unwrap();
        prop_assert!((f.eval(x) - target).abs() < 1e-9);
    }

    /// Determinant of a permuted identity is ±1.
    #[test]
    fn lu_determinant_of_scaled_identity(scale in 0.1_f64..10.0, n in 1usize..6) {
        let mut a = Matrix::identity(n);
        for i in 0..n {
            a[(i, i)] = scale;
        }
        let lu = icvbe_numerics::lu::LuSolver::factor(&a).unwrap();
        prop_assert!((lu.determinant() - scale.powi(n as i32)).abs() / scale.powi(n as i32) < 1e-12);
    }
}
