//! TABLE1 — sensor-measured vs dVBE-computed temperatures on five samples.
//!
//! The paper's grid: `T1 = 247 K`, `T2 = 297 K` (reference, error defined
//! as zero), `T3 = 348 K`. For each of five process samples, the gap
//! `T_measured - T_computed` is negative at the cold end (a few kelvin)
//! and positive and slightly larger at the hot end — the signature of a
//! die whose own thermometer (the PTAT pair) disagrees with the package
//! sensor because of self-heating, readout offset and substrate leakage.

use icvbe_core::tempcomp::{temperature_from_dvbe_corrected, PairCurrents};
use icvbe_instrument::bench::{BenchError, TestStructureBench};
use icvbe_instrument::montecarlo::SampleFactory;
use icvbe_units::{Ampere, Celsius, Kelvin};

use crate::render::Table;

/// Paper temperatures in kelvin.
pub const T1_KELVIN: f64 = 247.0;
/// Reference temperature (kelvin).
pub const T2_KELVIN: f64 = 297.0;
/// Hot temperature (kelvin).
pub const T3_KELVIN: f64 = 348.0;

/// One sample's row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Sample id (1..=5).
    pub sample: usize,
    /// `T_measured - T_computed` at T1, kelvin.
    pub gap_cold: f64,
    /// At T2 this is identically zero (the reference defines the scale).
    pub gap_reference: f64,
    /// `T_measured - T_computed` at T3, kelvin.
    pub gap_hot: f64,
}

/// Result of the TABLE1 experiment.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One row per sample.
    pub rows: Vec<Table1Row>,
}

/// Runs the five-sample campaign.
///
/// # Errors
///
/// Propagates bench failures.
pub fn run() -> Result<Table1Result, BenchError> {
    let lot = SampleFactory::seeded(2002).draw_lot(5);
    let setpoints = [
        Celsius::new(T1_KELVIN - 273.15),
        Celsius::new(T2_KELVIN - 273.15),
        Celsius::new(T3_KELVIN - 273.15),
    ];
    let mut rows = Vec::with_capacity(lot.len());
    for sample in &lot {
        let mut bench = TestStructureBench::paper_bench(1000 + sample.id as u64);
        let pts = bench.run_pair_campaign(sample, Ampere::new(1e-6), &setpoints)?;
        let refp = &pts[1];
        let compute =
            |p: &icvbe_instrument::bench::PairCampaignPoint| -> Result<Kelvin, BenchError> {
                let x = PairCurrents {
                    ica_t: p.ic_a,
                    icb_t: p.ic_b,
                    ica_ref: refp.ic_a,
                    icb_ref: refp.ic_b,
                }
                .x_factor()
                .map_err(err)?;
                temperature_from_dvbe_corrected(p.dvbe, refp.dvbe, refp.sensor_temperature, x)
                    .map_err(err)
            };
        let t1_computed = compute(&pts[0])?;
        let t3_computed = compute(&pts[2])?;
        rows.push(Table1Row {
            sample: sample.id,
            gap_cold: pts[0].sensor_temperature.value() - t1_computed.value(),
            gap_reference: 0.0,
            gap_hot: pts[2].sensor_temperature.value() - t3_computed.value(),
        });
    }
    Ok(Table1Result { rows })
}

fn err(e: icvbe_core::ExtractionError) -> BenchError {
    BenchError::Circuit(icvbe_spice::SpiceError::NoConvergence {
        strategy: format!("temperature computation: {e}"),
        residual: f64::NAN,
    })
}

/// Renders the table in the paper's layout (temperatures as rows, samples
/// as columns).
#[must_use]
pub fn render(r: &Table1Result) -> String {
    let mut out =
        String::from("TABLE1: T_measured - T_computed (K) for five samples of the test cell\n\n");
    let mut headers = vec!["measured T (K)".to_string()];
    for row in &r.rows {
        headers.push(format!("sample {}", row.sample));
    }
    let mut t = Table::new(headers);
    let mut cold = vec![format!("T1 = {T1_KELVIN}")];
    let mut refr = vec![format!("T2 = {T2_KELVIN}")];
    let mut hot = vec![format!("T3 = {T3_KELVIN}")];
    for row in &r.rows {
        cold.push(format!("{:+.2}", row.gap_cold));
        refr.push(format!("{:+.2}", row.gap_reference));
        hot.push(format!("{:+.2}", row.gap_hot));
    }
    t.add_row(cold);
    t.add_row(refr);
    t.add_row(hot);
    out.push_str(&t.render());
    out.push_str(
        "\npaper: cold gaps -1.8 .. -4.6 K, hot gaps +4.0 .. +7.3 K, zero at T2 by definition\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_rows() {
        let r = run().unwrap();
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn cold_gaps_are_negative_kelvin_scale() {
        let r = run().unwrap();
        for row in &r.rows {
            assert!(
                row.gap_cold < -0.5 && row.gap_cold > -9.0,
                "sample {}: cold gap {}",
                row.sample,
                row.gap_cold
            );
        }
    }

    #[test]
    fn hot_gaps_are_positive_kelvin_scale() {
        let r = run().unwrap();
        for row in &r.rows {
            assert!(
                row.gap_hot > 0.5 && row.gap_hot < 11.0,
                "sample {}: hot gap {}",
                row.sample,
                row.gap_hot
            );
        }
    }

    #[test]
    fn hot_and_cold_gaps_are_comparable_in_magnitude() {
        // The paper's hot gaps (4.0..7.3 K) run somewhat larger than the
        // cold ones (1.8..4.6 K); our substituted mechanism produces the
        // same order on both sides (see EXPERIMENTS.md for the per-band
        // comparison).
        let r = run().unwrap();
        let mean_cold: f64 =
            r.rows.iter().map(|x| x.gap_cold.abs()).sum::<f64>() / r.rows.len() as f64;
        let mean_hot: f64 =
            r.rows.iter().map(|x| x.gap_hot.abs()).sum::<f64>() / r.rows.len() as f64;
        let ratio = mean_hot / mean_cold;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "hot {mean_hot} vs cold {mean_cold}"
        );
    }

    #[test]
    fn samples_spread() {
        let r = run().unwrap();
        let cold: Vec<f64> = r.rows.iter().map(|x| x.gap_cold).collect();
        let spread = cold.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - cold.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.2, "no sample-to-sample spread: {spread}");
    }

    #[test]
    fn reference_row_is_exactly_zero() {
        let r = run().unwrap();
        assert!(r.rows.iter().all(|x| x.gap_reference == 0.0));
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = run().unwrap();
        let b = run().unwrap();
        assert_eq!(a.rows, b.rows);
    }
}
