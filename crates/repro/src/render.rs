//! ASCII rendering of tables and plots for the experiment reports.

/// A simple aligned ASCII table.
///
/// # Examples
///
/// ```
/// use icvbe_repro::render::Table;
///
/// let mut t = Table::new(vec!["T (K)".into(), "VBE (V)".into()]);
/// t.add_row(vec!["248.15".into(), "0.701".into()]);
/// let s = t.render();
/// assert!(s.contains("T (K)") && s.contains("0.701"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders with column alignment and a header rule.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A named data series for [`AsciiPlot`].
#[derive(Debug, Clone)]
pub struct Series {
    /// Label (its first character becomes the plot glyph).
    pub label: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

/// A scatter plot rendered on a character grid.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
    log_y: bool,
}

impl AsciiPlot {
    /// Creates an empty plot.
    #[must_use]
    pub fn new(title: &str) -> Self {
        AsciiPlot {
            title: title.to_string(),
            width: 72,
            height: 20,
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Plots `log10(y)` instead of `y` (for the Fig.-5 semilog family);
    /// non-positive values are dropped.
    #[must_use]
    pub fn with_log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series.
    pub fn add_series(&mut self, label: &str, points: Vec<(f64, f64)>) {
        self.series.push(Series {
            label: label.to_string(),
            points,
        });
    }

    /// Renders the grid with axis ranges in the footer.
    #[must_use]
    pub fn render(&self) -> String {
        let mut pts: Vec<(f64, f64, char)> = Vec::new();
        for (si, s) in self.series.iter().enumerate() {
            let glyph = s
                .label
                .chars()
                .next()
                .unwrap_or((b'a' + (si % 26) as u8) as char);
            for &(x, y) in &s.points {
                let y = if self.log_y {
                    if y <= 0.0 {
                        continue;
                    }
                    y.log10()
                } else {
                    y
                };
                if x.is_finite() && y.is_finite() {
                    pts.push((x, y, glyph));
                }
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        if pts.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let (mut x0, mut x1, mut y0, mut y1) = (
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
        );
        for &(x, y, _) in &pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        if x1 == x0 {
            x1 = x0 + 1.0;
        }
        if y1 == y0 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(x, y, g) in &pts {
            let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
            grid[self.height - 1 - cy][cx] = g;
        }
        for row in grid {
            out.push('|');
            out.push_str(&row.into_iter().collect::<String>());
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let y_label = if self.log_y { "log10(y)" } else { "y" };
        out.push_str(&format!(
            "x: {x0:.6} .. {x1:.6}   {y_label}: {y0:.6} .. {y1:.6}\n"
        ));
        for s in &self.series {
            out.push_str(&format!(
                "  {} = {}\n",
                s.label.chars().next().unwrap_or('?'),
                s.label
            ));
        }
        out
    }
}

/// Formats a number in engineering-friendly scientific notation.
#[must_use]
pub fn sci(v: f64) -> String {
    format!("{v:.4e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.add_row(vec!["lonnng".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("lonnng"));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn plot_renders_extremes() {
        let mut p = AsciiPlot::new("test");
        p.add_series("alpha", vec![(0.0, 0.0), (1.0, 1.0)]);
        let r = p.render();
        assert!(r.contains("== test =="));
        assert!(r.contains("alpha"));
        assert!(r.contains("x: 0.000000 .. 1.000000"));
    }

    #[test]
    fn log_plot_drops_nonpositive() {
        let mut p = AsciiPlot::new("semilog").with_log_y();
        p.add_series("s", vec![(0.0, -1.0), (1.0, 1e-6), (2.0, 1e-3)]);
        let r = p.render();
        assert!(r.contains("log10(y): -6.000000 .. -3.000000"));
    }

    #[test]
    fn empty_plot_is_graceful() {
        let p = AsciiPlot::new("empty");
        assert!(p.render().contains("(no data)"));
    }
}
