//! FIG5 — the measured `IC(VBE)` family, -50.88 to 126.9 °C.
//!
//! A single test PNP is swept in `VBE` at the paper's eight chuck
//! temperatures through the full simulator path (voltage source, probe
//! resistance, Newton solve per point), reproducing the semilog family of
//! Fig. 5: leakage-floor at the bottom, ideal 60 mV/decade midrange,
//! high-injection bend at the top.

use icvbe_bandgap::card::st_bicmos_pnp;
use icvbe_core::data::{IcVbeFamily, IcVbeSweep};
use icvbe_spice::bjt::{Bjt, BjtParams, Polarity};
use icvbe_spice::element::{Resistor, VoltageSource};
use icvbe_spice::netlist::Circuit;
use icvbe_spice::param::Param;
use icvbe_spice::solver::DcOptions;
use icvbe_spice::sweep::dc_sweep;
use icvbe_spice::SpiceError;
use icvbe_units::{Ampere, Celsius, Kelvin, Ohm, Volt};

use crate::render::AsciiPlot;

/// The paper's eight chuck temperatures (°C).
pub const PAPER_TEMPERATURES_C: [f64; 8] =
    [-50.88, -25.47, -0.07, 27.36, 50.74, 76.13, 101.6, 126.9];

/// Result of the FIG5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The full family as extraction-ready data.
    pub family: IcVbeFamily,
}

/// Sweeps one device at one temperature through the solver.
///
/// # Errors
///
/// Propagates circuit failures.
fn sweep_at(card: BjtParams, temperature: Kelvin) -> Result<IcVbeSweep, SpiceError> {
    let mut ckt = Circuit::new();
    let gnd = Circuit::ground();
    let force = ckt.node("force");
    let emitter = ckt.node("emitter");
    let vbe = Param::new(0.1);
    ckt.add(VoltageSource::new("VF", force, gnd, Volt::new(0.1)).with_handle(vbe.clone()));
    // 1 ohm probe/cable resistance so the solve is nontrivial.
    ckt.add(Resistor::new("RPROBE", force, emitter, Ohm::new(1.0))?);
    ckt.add(Bjt::new("DUT", gnd, gnd, emitter, Polarity::Pnp, card)?);

    let values: Vec<f64> = (0..=60).map(|i| 0.1 + 0.02 * i as f64).collect();
    let points = dc_sweep(&ckt, &vbe, &values, temperature, &DcOptions::default())?;
    let mut vbe_out = Vec::with_capacity(points.len());
    let mut ic_out = Vec::with_capacity(points.len());
    let dut = Bjt::new("DUT", gnd, gnd, emitter, Polarity::Pnp, card)?;
    for (v, op) in values.iter().zip(&points) {
        let ve = op.voltage(emitter);
        let i = dut
            .dc_currents(Volt::new(0.0), Volt::new(0.0), ve, temperature)
            .ic
            .value()
            .abs();
        vbe_out.push(Volt::new(*v));
        ic_out.push(Ampere::new(i.max(1e-16)));
    }
    IcVbeSweep::new(temperature, vbe_out, ic_out).map_err(|e| SpiceError::NoConvergence {
        strategy: format!("sweep assembly: {e}"),
        residual: f64::NAN,
    })
}

/// Runs the full eight-temperature family.
///
/// # Errors
///
/// Propagates circuit failures.
pub fn run() -> Result<Fig5Result, SpiceError> {
    let card = st_bicmos_pnp();
    let mut sweeps = Vec::new();
    for &c in &PAPER_TEMPERATURES_C {
        sweeps.push(sweep_at(card, Celsius::new(c).to_kelvin())?);
    }
    let family = IcVbeFamily::new(sweeps).map_err(|e| SpiceError::NoConvergence {
        strategy: format!("family assembly: {e}"),
        residual: f64::NAN,
    })?;
    Ok(Fig5Result { family })
}

/// Renders the semilog family.
#[must_use]
pub fn render(r: &Fig5Result) -> String {
    let mut out = String::from("FIG5: IC(VBE) family of one PNP, -50.88 .. 126.9 C (semilog)\n\n");
    let mut plot = AsciiPlot::new("Fig. 5 — IC(VBE), one glyph per temperature").with_log_y();
    for (i, s) in r.family.sweeps().iter().enumerate() {
        let pts: Vec<(f64, f64)> = s
            .vbe
            .iter()
            .zip(&s.ic)
            .map(|(v, i)| (v.value(), i.value()))
            .collect();
        let label = format!("{}  T = {:.2} C", i, s.temperature.to_celsius().value());
        plot.add_series(&label, pts);
    }
    out.push_str(&plot.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_has_eight_members() {
        let r = run().unwrap();
        assert_eq!(r.family.sweeps().len(), 8);
    }

    #[test]
    fn currents_span_many_decades() {
        // Fig. 5's axis runs 1e-14 .. 1e-2 A.
        let r = run().unwrap();
        for s in r.family.sweeps() {
            let min = s.ic.iter().map(|i| i.value()).fold(f64::INFINITY, f64::min);
            let max = s.ic.iter().map(|i| i.value()).fold(0.0_f64, f64::max);
            assert!(min < 1e-9, "floor {min:e}");
            assert!(max > 1e-4, "ceiling {max:e}");
        }
    }

    #[test]
    fn each_sweep_is_monotone_in_current() {
        let r = run().unwrap();
        for s in r.family.sweeps() {
            for w in s.ic.windows(2) {
                assert!(w[1].value() >= w[0].value());
            }
        }
    }

    #[test]
    fn hotter_curves_sit_left_constant_current_readout() {
        // At IC = 1e-6 A, VBE falls ~2 mV/K with temperature.
        let r = run().unwrap();
        let curve = r.family.vbe_curve_at(Ampere::new(1e-6)).unwrap();
        let pts = curve.points();
        for w in pts.windows(2) {
            let slope = (w[1].vbe.value() - w[0].vbe.value())
                / (w[1].temperature.value() - w[0].temperature.value());
            assert!(
                slope < -1.4e-3 && slope > -2.6e-3,
                "dVBE/dT = {slope} between {} and {}",
                w[0].temperature,
                w[1].temperature
            );
        }
    }

    #[test]
    fn midrange_slope_is_60mv_per_decade() {
        let r = run().unwrap();
        let s = &r.family.sweeps()[3]; // 27.36 C
        let v1 = s.vbe_at_current(Ampere::new(1e-7)).unwrap().value();
        let v2 = s.vbe_at_current(Ampere::new(1e-6)).unwrap().value();
        let per_decade = v2 - v1;
        assert!(
            per_decade > 0.055 && per_decade < 0.065,
            "slope {per_decade} V/decade"
        );
    }

    #[test]
    fn high_injection_bend_is_visible() {
        // Decade spacing at the top of the sweep must exceed the ideal
        // 60 mV (beta droop + knee), as the bent top of Fig. 5 shows.
        let r = run().unwrap();
        let s = &r.family.sweeps()[3];
        let ideal = s.vbe_at_current(Ampere::new(1e-6)).unwrap().value()
            - s.vbe_at_current(Ampere::new(1e-7)).unwrap().value();
        let top = s.vbe_at_current(Ampere::new(5e-3)).unwrap().value()
            - s.vbe_at_current(Ampere::new(5e-4)).unwrap().value();
        assert!(top > ideal * 1.2, "no bend: top {top} vs ideal {ideal}");
    }
}
