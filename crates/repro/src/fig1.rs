//! FIG1 — the five `EG(T)` models of Fig. 1 and their 0 K disagreement.

use icvbe_devphys::eg::{figure1_models, EgModel, LinearEgModel, LogEgModel, VarshniEgModel};
use icvbe_units::Kelvin;

use crate::render::{AsciiPlot, Table};

/// Result of the FIG1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// `(model name, EG(0K) eV, EG(300K) eV)` per model.
    pub intercepts: Vec<(String, f64, f64)>,
    /// `EG5(0) - EG2(0)` in eV — the paper quotes ~22 meV.
    pub eg5_eg2_zero_gap: f64,
    /// Tangent-extrapolated `EG0` of EG5 minus its true intercept — the
    /// "magnified" discrepancy of Fig. 1.
    pub linearization_overshoot: f64,
    /// Temperature grid (K).
    pub grid: Vec<f64>,
    /// Per-model curves on the grid, `(name, eg values)`.
    pub curves: Vec<(String, Vec<f64>)>,
}

/// Runs the experiment: evaluates EG1..EG5 on 0..450 K.
#[must_use]
pub fn run() -> Fig1Result {
    let models = figure1_models();
    let grid: Vec<f64> = (0..=90).map(|i| i as f64 * 5.0).collect();
    let mut curves = Vec::new();
    let mut intercepts = Vec::new();
    for m in &models {
        let values: Vec<f64> = grid.iter().map(|&t| m.eg(Kelvin::new(t)).value()).collect();
        intercepts.push((
            m.name().to_string(),
            m.eg_at_zero().value(),
            m.eg(Kelvin::new(300.0)).value(),
        ));
        curves.push((m.name().to_string(), values));
    }
    let eg5 = LogEgModel::eg5();
    let eg2 = VarshniEgModel::eg2();
    let overshoot = LinearEgModel::eg1().eg_at_zero().value() - eg5.eg_at_zero().value();
    Fig1Result {
        intercepts,
        eg5_eg2_zero_gap: eg5.eg_at_zero().value() - eg2.eg_at_zero().value(),
        linearization_overshoot: overshoot,
        grid,
        curves,
    }
}

/// Renders the report (table of intercepts + ASCII recreation of Fig. 1).
#[must_use]
pub fn render(r: &Fig1Result) -> String {
    let mut out = String::from("FIG1: temperature models of the silicon bandgap\n\n");
    let mut t = Table::new(vec![
        "model".into(),
        "EG(0 K) [eV]".into(),
        "EG(300 K) [eV]".into(),
    ]);
    for (name, zero, room) in &r.intercepts {
        t.add_row(vec![
            name.clone(),
            format!("{zero:.4}"),
            format!("{room:.4}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nEG5(0) - EG2(0) = {:.1} meV (paper: ~22 meV)\n",
        r.eg5_eg2_zero_gap * 1e3
    ));
    out.push_str(&format!(
        "EG0 tangent extrapolation overshoot vs EG5(0): {:.1} meV\n\n",
        r.linearization_overshoot * 1e3
    ));
    let mut plot = AsciiPlot::new("Fig. 1 — EG(T), 0..450 K");
    for (name, values) in &r.curves {
        let pts: Vec<(f64, f64)> = r.grid.iter().cloned().zip(values.iter().cloned()).collect();
        // Label glyphs: 1..5 so curves are distinguishable.
        let glyph_label = format!("{}{}", &name[2..], name);
        plot.add_series(&glyph_label, pts);
    }
    out.push_str(&plot.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_matches_paper() {
        let r = run();
        assert!(
            (r.eg5_eg2_zero_gap * 1e3 - 21.7).abs() < 0.5,
            "gap {} meV",
            r.eg5_eg2_zero_gap * 1e3
        );
    }

    #[test]
    fn five_models_on_common_grid() {
        let r = run();
        assert_eq!(r.curves.len(), 5);
        assert_eq!(r.intercepts.len(), 5);
        for (_, values) in &r.curves {
            assert_eq!(values.len(), r.grid.len());
        }
    }

    #[test]
    fn overshoot_is_tens_of_mev() {
        let r = run();
        assert!(r.linearization_overshoot > 0.01 && r.linearization_overshoot < 0.12);
    }

    #[test]
    fn render_mentions_every_model() {
        let r = run();
        let s = render(&r);
        for name in ["EG1", "EG2", "EG3", "EG4", "EG5"] {
            assert!(s.contains(name), "missing {name}");
        }
    }

    #[test]
    fn all_curves_within_figure_axis_range() {
        // Fig. 1's y axis spans 1.06..1.22 eV over 0..450 K.
        let r = run();
        for (name, values) in &r.curves {
            for (&t, &v) in r.grid.iter().zip(values) {
                assert!(
                    v > 1.02 && v < 1.23,
                    "{name} leaves the figure range at {t} K: {v}"
                );
            }
        }
    }
}
