//! Report persistence: write the rendered experiment reports to disk so a
//! run leaves an auditable artifact per table/figure.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A rendered experiment report ready to persist.
#[derive(Debug, Clone)]
pub struct Report {
    /// Artifact id ("fig1", "table1", ...), used as the file stem.
    pub id: String,
    /// The rendered ASCII report.
    pub body: String,
}

impl Report {
    /// Creates a report.
    #[must_use]
    pub fn new(id: &str, body: String) -> Self {
        Report {
            id: id.to_string(),
            body,
        }
    }
}

/// Writes reports into `dir` (created if missing) as `<id>.txt`, returning
/// the written paths.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_reports(dir: &Path, reports: &[Report]) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(reports.len());
    for r in reports {
        let path = dir.join(format!("{}.txt", r.id));
        fs::write(&path, &r.body)?;
        paths.push(path);
    }
    Ok(paths)
}

/// Runs every experiment and collects its rendered report. Failures are
/// rendered into the report body rather than aborting the batch, so one
/// broken experiment cannot hide the others.
#[must_use]
pub fn collect_all_reports() -> Vec<Report> {
    let mut out = Vec::new();
    out.push(Report::new(
        "fig1",
        crate::fig1::render(&crate::fig1::run()),
    ));
    out.push(Report::new(
        "fig2",
        match crate::fig2::run() {
            Ok(r) => crate::fig2::render(&r),
            Err(e) => format!("FIG2 FAILED: {e}\n"),
        },
    ));
    out.push(Report::new(
        "fig5",
        match crate::fig5::run() {
            Ok(r) => crate::fig5::render(&r),
            Err(e) => format!("FIG5 FAILED: {e}\n"),
        },
    ));
    out.push(Report::new(
        "fig6",
        match crate::fig6::run() {
            Ok(r) => crate::fig6::render(&r),
            Err(e) => format!("FIG6 FAILED: {e}\n"),
        },
    ));
    out.push(Report::new(
        "table1",
        match crate::table1::run() {
            Ok(r) => crate::table1::render(&r),
            Err(e) => format!("TABLE1 FAILED: {e}\n"),
        },
    ));
    out.push(Report::new(
        "fig8",
        match crate::fig8::run() {
            Ok(r) => crate::fig8::render(&r),
            Err(e) => format!("FIG8 FAILED: {e}\n"),
        },
    ));
    out.push(Report::new(
        "sensitivity",
        match crate::sensitivity::run() {
            Ok(r) => crate::sensitivity::render(&r),
            Err(e) => format!("SENS FAILED: {e}\n"),
        },
    ));
    out.push(Report::new(
        "ext_banba",
        match crate::ext_banba::run() {
            Ok(r) => crate::ext_banba::render(&r),
            Err(e) => format!("EXT FAILED: {e}\n"),
        },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_writes_one_file_per_report() {
        let dir = std::env::temp_dir().join(format!("icvbe_reports_{}", std::process::id()));
        let reports = vec![
            Report::new("alpha", "hello\n".to_string()),
            Report::new("beta", "world\n".to_string()),
        ];
        let paths = save_reports(&dir, &reports).unwrap();
        assert_eq!(paths.len(), 2);
        assert_eq!(fs::read_to_string(&paths[0]).unwrap(), "hello\n");
        assert_eq!(fs::read_to_string(&paths[1]).unwrap(), "world\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_ids_become_file_stems() {
        let dir = std::env::temp_dir().join(format!("icvbe_reports2_{}", std::process::id()));
        let paths = save_reports(&dir, &[Report::new("table1", "x".into())]).unwrap();
        assert!(paths[0].ends_with("table1.txt"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
