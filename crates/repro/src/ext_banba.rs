//! EXT — the sub-1V current-mode reference (extension experiment).
//!
//! Not in the paper's evaluation, but squarely in its motivation: the
//! introduction cites Banba's sub-1V bandgap as the class of design that
//! needs the accurate `EG`/`XTI` the test structure delivers. This
//! experiment quantifies that need: the same silicon trimmed with the
//! truth card vs the generic foundry card.

use icvbe_bandgap::banba::BanbaCell;
use icvbe_bandgap::card::{st_bicmos_pnp, standard_model_card};
use icvbe_spice::SpiceError;
use icvbe_units::{Celsius, Kelvin};

use crate::render::{AsciiPlot, Table};

/// Result of the extension experiment.
#[derive(Debug, Clone)]
pub struct ExtBanbaResult {
    /// Temperatures of the sweep (K).
    pub temperatures: Vec<f64>,
    /// `VREF(T)` with `R0` trimmed on the truth card.
    pub vref_truth_trim: Vec<f64>,
    /// `VREF(T)` of the same silicon with `R0` trimmed on the generic
    /// foundry card (wrong `EG`/`XTI`).
    pub vref_generic_trim: Vec<f64>,
    /// Spread of the truth-trimmed curve, volts.
    pub spread_truth: f64,
    /// Spread of the generic-trimmed curve, volts.
    pub spread_generic: f64,
}

fn sweep(cell: &BanbaCell, temps: &[f64]) -> Result<Vec<f64>, SpiceError> {
    let mut out = Vec::with_capacity(temps.len());
    let mut warm: Option<Vec<f64>> = None;
    for &t in temps {
        let r = cell.solve_with(Kelvin::new(t), warm.as_deref())?;
        out.push(r.vref.value());
        warm = Some(r.solution);
    }
    Ok(out)
}

fn spread(vs: &[f64]) -> f64 {
    vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - vs.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run() -> Result<ExtBanbaResult, SpiceError> {
    let temps: Vec<f64> = (0..8).map(|i| 223.15 + 25.0 * i as f64).collect();

    // Silicon trimmed against its own (truth) card.
    let truth_cell = BanbaCell::nominal(st_bicmos_pnp());
    truth_cell.calibrate(Kelvin::new(298.15))?;
    let vref_truth_trim = sweep(&truth_cell, &temps)?;

    // Same silicon, R0 from a trim performed on the generic card.
    let generic_design = BanbaCell::nominal(standard_model_card());
    let r0_generic = generic_design.calibrate(Kelvin::new(298.15))?;
    let silicon = BanbaCell::nominal(st_bicmos_pnp());
    silicon.r0.set(r0_generic.value());
    let vref_generic_trim = sweep(&silicon, &temps)?;

    Ok(ExtBanbaResult {
        spread_truth: spread(&vref_truth_trim),
        spread_generic: spread(&vref_generic_trim),
        temperatures: temps,
        vref_truth_trim,
        vref_generic_trim,
    })
}

/// Renders the report.
#[must_use]
pub fn render(r: &ExtBanbaResult) -> String {
    let mut out =
        String::from("EXT: sub-1V current-mode reference — trim card matters (extension)\n\n");
    let mut t = Table::new(vec![
        "T [C]".into(),
        "truth-card trim [V]".into(),
        "generic-card trim [V]".into(),
    ]);
    for (i, &tk) in r.temperatures.iter().enumerate() {
        t.add_row(vec![
            format!("{:.0}", Celsius::from(Kelvin::new(tk)).value()),
            format!("{:.5}", r.vref_truth_trim[i]),
            format!("{:.5}", r.vref_generic_trim[i]),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nspread over -50..125 C: truth trim {:.2} mV, generic trim {:.2} mV\n\n",
        r.spread_truth * 1e3,
        r.spread_generic * 1e3
    ));
    let mut plot = AsciiPlot::new("EXT — sub-1V VREF(T)");
    let series = |vs: &[f64]| {
        r.temperatures
            .iter()
            .zip(vs)
            .map(|(&t, &v)| (t - 273.15, v))
            .collect::<Vec<_>>()
    };
    plot.add_series("t: truth trim", series(&r.vref_truth_trim));
    plot.add_series("g: generic trim", series(&r.vref_generic_trim));
    out.push_str(&plot.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_curves_are_sub_1v() {
        let r = run().unwrap();
        for v in r.vref_truth_trim.iter().chain(&r.vref_generic_trim) {
            assert!(*v > 0.4 && *v < 1.0, "VREF {v}");
        }
    }

    #[test]
    fn truth_trim_beats_generic_trim() {
        let r = run().unwrap();
        assert!(
            r.spread_truth < r.spread_generic,
            "truth {} vs generic {}",
            r.spread_truth,
            r.spread_generic
        );
        // The truth trim holds the reference to a few millivolts.
        assert!(r.spread_truth < 5e-3);
    }

    #[test]
    fn render_names_both_curves() {
        let s = render(&run().unwrap());
        assert!(s.contains("truth") && s.contains("generic"));
    }
}
