//! The `repro serve` / `repro submit` / `repro watch` subcommands: the
//! CLI face of the campaign service (`icvbe-serve`).
//!
//! ```text
//! repro serve  [--addr HOST:PORT] [--threads N] [--queue N] [--slice N]
//!              [--checkpoint-dir DIR] [--checkpoint-every K] [--paused]
//!              [--io-timeout-ms MS] [--max-request BYTES]
//!              [--chaos SPEC] [--chaos-seed S]
//! repro submit [--addr HOST:PORT] [--tenant T] [--label L] [--out DIR]
//!              [--no-wait] [spec flags: --dies N | --diameter D, --seed S,
//!              --cold, --no-bypass, --faults SPEC, --retries N, --no-robust]
//! repro watch  [--addr HOST:PORT] (--job N | --label L [--tenant T]) [--out DIR]
//! ```
//!
//! `serve` runs the daemon in the foreground until a client sends
//! `shutdown`; it prints `listening on HOST:PORT` once bound (with
//! port 0 the line carries the actual ephemeral port). With
//! `--checkpoint-dir` a killed daemon restarted on the same directory
//! resumes every incomplete job byte-identically.
//!
//! `submit` builds the same campaign spec `repro campaign` would (the
//! spec flags are identical), sends it to a running daemon and — unless
//! `--no-wait` — streams per-die progress until the job completes, then
//! writes the report artifacts to `--out`. The four deterministic
//! artifacts are byte-identical to a one-shot
//! `repro campaign --out` of the same spec, at any `serve --threads`
//! value and across daemon kills.
//!
//! `watch` re-attaches to a job by id or label (history replays first),
//! which is how a client collects results after a daemon restart.
//!
//! Hardened I/O knobs: `--io-timeout-ms` sets the per-socket read/write
//! timeout (stalled clients are shed and counted; 0 disables),
//! `--max-request` caps a request line's byte length (longer lines earn
//! the typed `request_too_large` error). `--chaos SPEC` turns on the
//! seeded environment-fault plan — checkpoint write faults (write_error,
//! short_write, torn), socket faults (stall, reset) and worker die
//! panics — for crash-safety drills; see
//! `icvbe_instrument::chaos::ChaosSpec::parse` for the `k=v` keys.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use icvbe_campaign::spec::{CampaignSpec, WaferMap};
use icvbe_instrument::chaos::ChaosSpec;
use icvbe_instrument::faults::FaultSpec;
use icvbe_serve::client::Client;
use icvbe_serve::daemon::Daemon;
use icvbe_serve::service::ServiceConfig;

use crate::campaign_cli::diameter_for_dies;

/// Default daemon address shared by `serve`, `submit` and `watch`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4857";

/// Campaign-spec knobs shared by `repro submit` and `repro campaign`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecCliArgs {
    /// Circular wafer diameter, in dies.
    pub diameter: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Disable solver warm starting.
    pub cold: bool,
    /// Device-evaluation bypass (`--no-bypass` clears it).
    pub bypass: bool,
    /// Deterministic measurement corruption.
    pub faults: FaultSpec,
    /// Per-corner retry budget override.
    pub retries: Option<u32>,
    /// Pooled robust-fit fallback.
    pub robust: bool,
}

impl Default for SpecCliArgs {
    fn default() -> Self {
        SpecCliArgs {
            diameter: 14,
            seed: 2002,
            cold: false,
            bypass: true,
            faults: FaultSpec::none(),
            retries: None,
            robust: true,
        }
    }
}

impl SpecCliArgs {
    /// Builds the campaign spec exactly as `repro campaign` does.
    #[must_use]
    pub fn build(&self) -> CampaignSpec {
        let mut spec = CampaignSpec::paper_default(WaferMap::circular(self.diameter), self.seed);
        spec.warm_start = !self.cold;
        spec.bypass = self.bypass;
        spec.faults = self.faults;
        spec.robust = self.robust;
        if let Some(budget) = self.retries {
            spec.retry_budget = budget;
        }
        spec
    }

    /// Tries to consume one spec flag; `Ok(true)` if `arg` was one.
    fn eat(&mut self, arg: &str, mut next: impl FnMut() -> Option<String>) -> Result<bool, String> {
        let value = |flag: &str, v: Option<String>| -> Result<String, String> {
            v.ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "--dies" => {
                let v = value("--dies", next())?;
                let n: usize = v.parse().map_err(|_| format!("bad --dies value {v:?}"))?;
                if n == 0 {
                    return Err("--dies must be positive".to_string());
                }
                self.diameter = diameter_for_dies(n);
            }
            "--diameter" => {
                let v = value("--diameter", next())?;
                self.diameter = v
                    .parse()
                    .map_err(|_| format!("bad --diameter value {v:?}"))?;
                if self.diameter == 0 {
                    return Err("--diameter must be positive".to_string());
                }
            }
            "--seed" => {
                let v = value("--seed", next())?;
                self.seed = v.parse().map_err(|_| format!("bad --seed value {v:?}"))?;
            }
            "--cold" => self.cold = true,
            "--no-bypass" => self.bypass = false,
            "--faults" => {
                let v = value("--faults", next())?;
                self.faults = FaultSpec::parse(&v).map_err(|e| e.detail)?;
            }
            "--retries" => {
                let v = value("--retries", next())?;
                self.retries = Some(
                    v.parse()
                        .map_err(|_| format!("bad --retries value {v:?}"))?,
                );
            }
            "--no-robust" => self.robust = false,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Parsed `repro serve` arguments.
#[derive(Debug, Clone)]
pub struct ServeCliArgs {
    /// Address to bind (`HOST:PORT`; port 0 = ephemeral, printed once
    /// bound).
    pub addr: String,
    /// The service configuration the daemon starts with.
    pub config: ServiceConfig,
}

/// Parses the arguments following the `serve` keyword.
///
/// # Errors
///
/// Returns a usage message on unknown flags or malformed values.
pub fn parse_serve_args(args: &[String]) -> Result<ServeCliArgs, String> {
    let mut out = ServeCliArgs {
        addr: DEFAULT_ADDR.to_string(),
        config: ServiceConfig::default(),
    };
    let mut it = args.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    let positive = |flag: &str, v: String| -> Result<usize, String> {
        let n: usize = v.parse().map_err(|_| format!("bad {flag} value {v:?}"))?;
        if n == 0 {
            return Err(format!("{flag} must be positive"));
        }
        Ok(n)
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = value("--addr", it.next())?,
            "--threads" => {
                out.config.threads = positive("--threads", value("--threads", it.next())?)?
            }
            "--queue" => {
                out.config.queue_capacity = positive("--queue", value("--queue", it.next())?)?;
            }
            "--slice" => out.config.slice_dies = positive("--slice", value("--slice", it.next())?)?,
            "--checkpoint-dir" => {
                out.config.checkpoint_dir =
                    Some(PathBuf::from(value("--checkpoint-dir", it.next())?));
            }
            "--checkpoint-every" => {
                let v = value("--checkpoint-every", it.next())?;
                out.config.checkpoint_every = v
                    .parse()
                    .map_err(|_| format!("bad --checkpoint-every value {v:?}"))?;
            }
            "--paused" => out.config.paused = true,
            "--trace" => out.config.trace = true,
            "--io-timeout-ms" => {
                let v = value("--io-timeout-ms", it.next())?;
                out.config.io_timeout_ms = v
                    .parse()
                    .map_err(|_| format!("bad --io-timeout-ms value {v:?}"))?;
            }
            "--max-request" => {
                out.config.max_request_bytes =
                    positive("--max-request", value("--max-request", it.next())?)?;
            }
            "--chaos" => {
                let v = value("--chaos", it.next())?;
                out.config.chaos = ChaosSpec::parse(&v).map_err(|e| e.detail)?;
            }
            "--chaos-seed" => {
                let v = value("--chaos-seed", it.next())?;
                out.config.chaos_seed = v
                    .parse()
                    .map_err(|_| format!("bad --chaos-seed value {v:?}"))?;
            }
            other => {
                return Err(format!(
                    "unknown serve argument {other:?} \
                     (usage: serve [--addr HOST:PORT] [--threads N] [--queue N] [--slice N] \
                     [--checkpoint-dir DIR] [--checkpoint-every K] [--paused] [--trace] \
                     [--io-timeout-ms MS] [--max-request BYTES] [--chaos SPEC] \
                     [--chaos-seed S])"
                ));
            }
        }
    }
    Ok(out)
}

/// Parsed `repro submit` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitCliArgs {
    /// Daemon address.
    pub addr: String,
    /// Tenant the job is accounted under.
    pub tenant: String,
    /// Label for later `repro watch` lookups.
    pub label: String,
    /// Directory the report artifacts are written to (`None` = none).
    pub out: Option<PathBuf>,
    /// Submit without streaming: print the job id and return.
    pub no_wait: bool,
    /// The campaign spec knobs.
    pub spec: SpecCliArgs,
}

/// Parses the arguments following the `submit` keyword.
///
/// # Errors
///
/// Returns a usage message on unknown flags or malformed values.
pub fn parse_submit_args(args: &[String]) -> Result<SubmitCliArgs, String> {
    let mut out = SubmitCliArgs {
        addr: DEFAULT_ADDR.to_string(),
        tenant: "default".to_string(),
        label: String::new(),
        out: None,
        no_wait: false,
        spec: SpecCliArgs::default(),
    };
    let mut it = args.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        if out.spec.eat(arg, || it.next().cloned())? {
            continue;
        }
        match arg.as_str() {
            "--addr" => out.addr = value("--addr", it.next())?,
            "--tenant" => out.tenant = value("--tenant", it.next())?,
            "--label" => out.label = value("--label", it.next())?,
            "--out" => out.out = Some(PathBuf::from(value("--out", it.next())?)),
            "--no-wait" => out.no_wait = true,
            other => {
                return Err(format!(
                    "unknown submit argument {other:?} \
                     (usage: submit [--addr HOST:PORT] [--tenant T] [--label L] [--out DIR] \
                     [--no-wait] [--dies N | --diameter D] [--seed S] [--cold] [--no-bypass] \
                     [--faults SPEC] [--retries N] [--no-robust])"
                ));
            }
        }
    }
    Ok(out)
}

/// Parsed `repro watch` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchCliArgs {
    /// Daemon address.
    pub addr: String,
    /// Job id to attach to.
    pub job: Option<u64>,
    /// Label to look up instead of a job id.
    pub label: Option<String>,
    /// Restrict the label lookup to one tenant.
    pub tenant: Option<String>,
    /// Directory the report artifacts are written to (`None` = none).
    pub out: Option<PathBuf>,
}

/// Parses the arguments following the `watch` keyword.
///
/// # Errors
///
/// Returns a usage message on unknown flags, malformed values, or when
/// neither `--job` nor `--label` is given.
pub fn parse_watch_args(args: &[String]) -> Result<WatchCliArgs, String> {
    let mut out = WatchCliArgs {
        addr: DEFAULT_ADDR.to_string(),
        job: None,
        label: None,
        tenant: None,
        out: None,
    };
    let mut it = args.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = value("--addr", it.next())?,
            "--job" => {
                let v = value("--job", it.next())?;
                out.job = Some(v.parse().map_err(|_| format!("bad --job value {v:?}"))?);
            }
            "--label" => out.label = Some(value("--label", it.next())?),
            "--tenant" => out.tenant = Some(value("--tenant", it.next())?),
            "--out" => out.out = Some(PathBuf::from(value("--out", it.next())?)),
            other => {
                return Err(format!(
                    "unknown watch argument {other:?} \
                     (usage: watch [--addr HOST:PORT] (--job N | --label L [--tenant T]) \
                     [--out DIR])"
                ));
            }
        }
    }
    if out.job.is_none() && out.label.is_none() {
        return Err("watch needs --job or --label".to_string());
    }
    Ok(out)
}

/// Runs `repro serve`: binds, prints the listening line, and blocks until
/// a client sends `shutdown`.
///
/// # Errors
///
/// Bind and service-start failures, as strings.
pub fn run_serve(args: &[String]) -> Result<(), String> {
    let cli = parse_serve_args(args)?;
    let daemon = Daemon::start(cli.config, &cli.addr)
        .map_err(|e| format!("starting daemon on {}: {e}", cli.addr))?;
    println!("icvbe-serve listening on {}", daemon.local_addr());
    daemon.wait();
    Ok(())
}

/// Writes `(name, contents)` artifacts into `dir`, returning a report
/// line per file. Names carrying path separators are rejected — artifact
/// names come off the wire.
fn write_artifacts(dir: &Path, artifacts: &[(String, String)]) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let mut text = String::new();
    for (name, contents) in artifacts {
        if name.contains('/') || name.contains('\\') || name.starts_with('.') {
            return Err(format!("refusing artifact name {name:?}"));
        }
        let path = dir.join(name);
        std::fs::write(&path, contents).map_err(|e| format!("writing {}: {e}", path.display()))?;
        let _ = writeln!(text, "  wrote {}", path.display());
    }
    Ok(text)
}

/// Renders the completion report for a streamed job (`job` is `None`
/// when the stream was attached by label and the id is not known).
fn render_done(
    job: Option<u64>,
    artifacts: &[(String, String)],
    out: Option<&Path>,
) -> Result<String, String> {
    let handle = job.map_or_else(|| "job".to_string(), |id| format!("job {id}"));
    let mut text = format!(
        "{handle} done ({} artifact(s): {})\n",
        artifacts.len(),
        artifacts
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(dir) = out {
        text.push_str(&write_artifacts(dir, artifacts)?);
    }
    Ok(text)
}

/// Runs `repro submit` end to end and returns the printable report.
///
/// # Errors
///
/// Connection failures and typed server errors (`queue_full` reports the
/// daemon's `retry_after_ms` backpressure hint), as strings.
pub fn run_submit(args: &[String]) -> Result<String, String> {
    let cli = parse_submit_args(args)?;
    let spec = cli.spec.build();
    let total = spec.wafer.die_count();
    let mut client =
        Client::connect(&cli.addr).map_err(|e| format!("connecting to {}: {e}", cli.addr))?;
    let job = client
        .submit(&cli.tenant, &cli.label, &spec, !cli.no_wait)
        .map_err(|e| format!("submit: {e}"))?;
    if cli.no_wait {
        return Ok(format!(
            "job {job} submitted ({total} dies, tenant {:?}, label {:?})\n",
            cli.tenant, cli.label
        ));
    }
    let artifacts = client
        .wait_done(|_folded, _total| {})
        .map_err(|e| format!("job {job}: {e}"))?;
    render_done(Some(job), &artifacts, cli.out.as_deref())
}

/// Runs `repro watch` end to end and returns the printable report.
///
/// # Errors
///
/// Connection failures and typed server errors (`unknown_job` when
/// nothing matches), as strings.
pub fn run_watch(args: &[String]) -> Result<String, String> {
    let cli = parse_watch_args(args)?;
    let mut client =
        Client::connect(&cli.addr).map_err(|e| format!("connecting to {}: {e}", cli.addr))?;
    client
        .results(cli.job, cli.label.as_deref(), cli.tenant.as_deref())
        .map_err(|e| format!("results: {e}"))?;
    let artifacts = client
        .wait_done(|_folded, _total| {})
        .map_err(|e| format!("watch: {e}"))?;
    render_done(cli.job, &artifacts, cli.out.as_deref()).map(|text| {
        // `watch` resolves by label, so lead with the label if we had one.
        match &cli.label {
            Some(l) => format!("label {l:?}: {text}"),
            None => text,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_serve_flags() {
        let a = parse_serve_args(&sv(&[
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "3",
            "--queue",
            "5",
            "--slice",
            "4",
            "--checkpoint-dir",
            "/tmp/ck",
            "--checkpoint-every",
            "2",
            "--paused",
        ]))
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:0");
        assert_eq!(a.config.threads, 3);
        assert_eq!(a.config.queue_capacity, 5);
        assert_eq!(a.config.slice_dies, 4);
        assert_eq!(a.config.checkpoint_dir, Some(PathBuf::from("/tmp/ck")));
        assert_eq!(a.config.checkpoint_every, 2);
        assert!(a.config.paused);
        assert!(parse_serve_args(&sv(&["--bogus"])).is_err());
        assert!(parse_serve_args(&sv(&["--threads", "0"])).is_err());
    }

    #[test]
    fn parses_hardening_and_chaos_flags() {
        let a = parse_serve_args(&sv(&[
            "--io-timeout-ms",
            "500",
            "--max-request",
            "4096",
            "--chaos",
            "torn=0.5,write_error=0.1",
            "--chaos-seed",
            "21",
        ]))
        .unwrap();
        assert_eq!(a.config.io_timeout_ms, 500);
        assert_eq!(a.config.max_request_bytes, 4096);
        assert_eq!(a.config.chaos.torn_file_probability, 0.5);
        assert_eq!(a.config.chaos.write_error_probability, 0.1);
        assert_eq!(a.config.chaos_seed, 21);
        let off = parse_serve_args(&sv(&[])).unwrap();
        assert!(off.config.chaos.is_none(), "chaos must be off by default");
        assert!(parse_serve_args(&sv(&["--chaos", "frobnicate=1"])).is_err());
        assert!(parse_serve_args(&sv(&["--max-request", "0"])).is_err());
        assert!(parse_serve_args(&sv(&["--io-timeout-ms", "soon"])).is_err());
    }

    #[test]
    fn parses_submit_flags_including_spec_knobs() {
        let a = parse_submit_args(&sv(&[
            "--addr",
            "127.0.0.1:9",
            "--tenant",
            "acme",
            "--label",
            "lot7",
            "--out",
            "/tmp/out",
            "--diameter",
            "3",
            "--seed",
            "11",
            "--faults",
            "heavy",
            "--no-robust",
            "--no-wait",
        ]))
        .unwrap();
        assert_eq!(a.addr, "127.0.0.1:9");
        assert_eq!(a.tenant, "acme");
        assert_eq!(a.label, "lot7");
        assert_eq!(a.out, Some(PathBuf::from("/tmp/out")));
        assert!(a.no_wait);
        assert_eq!(a.spec.diameter, 3);
        assert_eq!(a.spec.seed, 11);
        assert_eq!(a.spec.faults, FaultSpec::heavy());
        assert!(!a.spec.robust);
        assert!(parse_submit_args(&sv(&["--bogus"])).is_err());
        assert!(parse_submit_args(&sv(&["--dies", "0"])).is_err());
    }

    #[test]
    fn submit_spec_matches_campaign_spec() {
        let a = parse_submit_args(&sv(&["--diameter", "4", "--seed", "42", "--cold"])).unwrap();
        let mut expected = CampaignSpec::paper_default(WaferMap::circular(4), 42);
        expected.warm_start = false;
        assert_eq!(a.spec.build(), expected);
    }

    #[test]
    fn parses_watch_flags_and_requires_a_handle() {
        let a = parse_watch_args(&sv(&["--label", "lot7", "--tenant", "acme"])).unwrap();
        assert_eq!(a.label.as_deref(), Some("lot7"));
        assert_eq!(a.tenant.as_deref(), Some("acme"));
        let b = parse_watch_args(&sv(&["--job", "3"])).unwrap();
        assert_eq!(b.job, Some(3));
        assert!(parse_watch_args(&sv(&[])).is_err());
        assert!(parse_watch_args(&sv(&["--job", "x"])).is_err());
    }

    #[test]
    fn submit_and_watch_round_trip_through_a_live_daemon() {
        let daemon = Daemon::start(ServiceConfig::default(), "127.0.0.1:0").unwrap();
        let addr = daemon.local_addr().to_string();
        let dir = std::env::temp_dir().join("icvbe_serve_cli_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = dir.join("sub");
        let text = run_submit(&sv(&[
            "--addr",
            &addr,
            "--label",
            "lot1",
            "--diameter",
            "2",
            "--seed",
            "7",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(text.contains("done"), "report:\n{text}");
        assert!(out.join("campaign_aggregate.json").is_file());

        let out2 = dir.join("watch");
        let text2 = run_watch(&sv(&[
            "--addr",
            &addr,
            "--label",
            "lot1",
            "--out",
            out2.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(text2.contains("lot1"), "report:\n{text2}");
        let a = std::fs::read(out.join("campaign_aggregate.json")).unwrap();
        let b = std::fs::read(out2.join("campaign_aggregate.json")).unwrap();
        assert_eq!(a, b, "watch must replay the identical artifacts");
        daemon.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
