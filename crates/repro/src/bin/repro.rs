//! Regenerates every table and figure of the paper and prints the reports.
//!
//! Usage: `repro [fig1|fig2|fig5|fig6|table1|fig8|sens]... [--save DIR]`
//! (no artifact arguments = run everything; `--save` also writes each
//! report to `DIR/<id>.txt`), or
//! `repro campaign [--dies N | --diameter D] [--threads N] [--seed S]
//! [--out DIR]` for a wafer-scale extraction campaign (`--help` for the
//! exit-code contract: 0 ok, 1 failed to run, 2 ran with zero yield), or
//! the campaign-service commands `repro serve` / `repro submit` /
//! `repro watch` (see `icvbe_repro::serve_cli`).

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("shard-worker") {
        // Hidden worker half of `campaign --shards`: the supervisor
        // re-invokes this executable, speaks line JSON over stdio.
        return ExitCode::from(icvbe_serve::shard::shard_worker_main());
    }
    if args.first().map(String::as_str) == Some("campaign") {
        return match icvbe_repro::campaign_cli::run_cli_status(&args[1..]) {
            Ok((text, code)) => {
                println!("{text}");
                ExitCode::from(code)
            }
            Err(e) => {
                eprintln!("campaign failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("serve") {
        return match icvbe_repro::serve_cli::run_serve(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("serve failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("submit") {
        return match icvbe_repro::serve_cli::run_submit(&args[1..]) {
            Ok(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("submit failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.first().map(String::as_str) == Some("watch") {
        return match icvbe_repro::serve_cli::run_watch(&args[1..]) {
            Ok(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("watch failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(pos) = args.iter().position(|a| a == "--save") {
        let dir: PathBuf = args
            .get(pos + 1)
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("reports"));
        args.drain(pos..(pos + 2).min(args.len()));
        let reports = icvbe_repro::report::collect_all_reports();
        return match icvbe_repro::report::save_reports(&dir, &reports) {
            Ok(paths) => {
                for p in paths {
                    println!("wrote {}", p.display());
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to save reports: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let all = args.is_empty();
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let mut failed = false;

    if want("fig1") {
        println!("{}", icvbe_repro::fig1::render(&icvbe_repro::fig1::run()));
    }
    if want("fig2") {
        match icvbe_repro::fig2::run() {
            Ok(r) => println!("{}", icvbe_repro::fig2::render(&r)),
            Err(e) => {
                eprintln!("FIG2 failed: {e}");
                failed = true;
            }
        }
    }
    if want("fig5") {
        match icvbe_repro::fig5::run() {
            Ok(r) => println!("{}", icvbe_repro::fig5::render(&r)),
            Err(e) => {
                eprintln!("FIG5 failed: {e}");
                failed = true;
            }
        }
    }
    if want("fig6") {
        match icvbe_repro::fig6::run() {
            Ok(r) => println!("{}", icvbe_repro::fig6::render(&r)),
            Err(e) => {
                eprintln!("FIG6 failed: {e}");
                failed = true;
            }
        }
    }
    if want("table1") {
        match icvbe_repro::table1::run() {
            Ok(r) => println!("{}", icvbe_repro::table1::render(&r)),
            Err(e) => {
                eprintln!("TABLE1 failed: {e}");
                failed = true;
            }
        }
    }
    if want("fig8") {
        match icvbe_repro::fig8::run() {
            Ok(r) => println!("{}", icvbe_repro::fig8::render(&r)),
            Err(e) => {
                eprintln!("FIG8 failed: {e}");
                failed = true;
            }
        }
    }
    if want("sens") {
        match icvbe_repro::sensitivity::run() {
            Ok(r) => println!("{}", icvbe_repro::sensitivity::render(&r)),
            Err(e) => {
                eprintln!("SENS failed: {e}");
                failed = true;
            }
        }
    }
    if want("ext") {
        match icvbe_repro::ext_banba::run() {
            Ok(r) => println!("{}", icvbe_repro::ext_banba::render(&r)),
            Err(e) => {
                eprintln!("EXT failed: {e}");
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
