//! FIG2 — the pair-bias principle: `dVBE` of the QA/QB pair is PTAT.

use icvbe_bandgap::card::st_bicmos_pnp;
use icvbe_bandgap::pair::PairStructure;
use icvbe_numerics::stats::linear_regression;
use icvbe_spice::SpiceError;
use icvbe_units::constants::BOLTZMANN_OVER_Q;
use icvbe_units::{Ampere, Celsius, Kelvin};

use crate::render::{AsciiPlot, Table};

/// Result of the FIG2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// `(T kelvin, dVBE volts)` of the solved structure.
    pub points: Vec<(f64, f64)>,
    /// Fitted slope of `dVBE(T)` in V/K.
    pub slope: f64,
    /// Ideal PTAT slope `(k/q) ln 8`.
    pub ideal_slope: f64,
    /// Regression R² — how PTAT the structure really is.
    pub r_squared: f64,
}

/// Solves the Fig.-2 structure from -50 to 125 °C and fits the PTAT law.
///
/// # Errors
///
/// Propagates circuit solve failures.
pub fn run() -> Result<Fig2Result, SpiceError> {
    let pair = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
    let mut points = Vec::new();
    for i in 0..8 {
        let t = Celsius::new(-50.0 + 25.0 * i as f64).to_kelvin();
        let r = pair.measure(t)?;
        points.push((t.value(), r.dvbe.value()));
    }
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
    let reg = linear_regression(&xs, &ys).map_err(SpiceError::from)?;
    Ok(Fig2Result {
        points,
        slope: reg.slope,
        ideal_slope: BOLTZMANN_OVER_Q * 8.0_f64.ln(),
        r_squared: reg.r_squared,
    })
}

/// Renders the report.
#[must_use]
pub fn render(r: &Fig2Result) -> String {
    let mut out = String::from("FIG2: dVBE of the QA/QB pair under equal forced currents\n\n");
    let mut t = Table::new(vec![
        "T [K]".into(),
        "dVBE [mV]".into(),
        "(k/q)T ln8 [mV]".into(),
    ]);
    for &(tk, dv) in &r.points {
        t.add_row(vec![
            format!("{tk:.2}"),
            format!("{:.3}", dv * 1e3),
            format!("{:.3}", BOLTZMANN_OVER_Q * tk * 8.0_f64.ln() * 1e3),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nslope = {:.4} uV/K (ideal {:.4} uV/K), R^2 = {:.9}\n\n",
        r.slope * 1e6,
        r.ideal_slope * 1e6,
        r.r_squared
    ));
    let mut plot = AsciiPlot::new("Fig. 2 — dVBE(T) is PTAT");
    plot.add_series("dVBE", r.points.clone());
    out.push_str(&plot.render());
    out
}

/// The ideal `dVBE` at a temperature, for cross-checks.
#[must_use]
pub fn ideal_dvbe(t: Kelvin) -> f64 {
    BOLTZMANN_OVER_Q * t.value() * 8.0_f64.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_is_ptat_to_high_accuracy() {
        let r = run().unwrap();
        assert!(r.r_squared > 0.999_99, "R² = {}", r.r_squared);
        assert!(
            (r.slope - r.ideal_slope).abs() / r.ideal_slope < 0.01,
            "slope {} vs ideal {}",
            r.slope,
            r.ideal_slope
        );
    }

    #[test]
    fn eight_points_like_the_paper() {
        let r = run().unwrap();
        assert_eq!(r.points.len(), 8);
        assert!((r.points[0].0 - 223.15).abs() < 1e-9);
        assert!((r.points[7].0 - 398.15).abs() < 1e-9);
    }

    #[test]
    fn render_contains_slope() {
        let r = run().unwrap();
        assert!(render(&r).contains("slope"));
    }
}
