//! SENS — the paper's in-text error-propagation claims, measured.
//!
//! 1. "a measurement error of 1% on the VBE(T) characteristic may induce
//!    up to 8% of error on the extracted values of EG";
//! 2. "an error dT2 less than 5 K has no significant influence on the
//!    calculated values of EG and XTI";
//! 3. "A = (kT2/q) ln X ~ 0.3 mV (0.45% of dVBE)" for the PTAT bias drift.

use icvbe_core::data::VbeCurve;
use icvbe_core::meijer::{MeijerMeasurement, MeijerPoint};
use icvbe_core::sensitivity::{
    bestfit_vbe_error_study, bestfit_worst_case_vbe_error, meijer_t2_error_study,
    PerturbationResult, WorstCaseResult,
};
use icvbe_core::tempcomp::{drift_coefficient_a, PairCurrents, PtatPair};
use icvbe_devphys::saturation::SpiceIsLaw;
use icvbe_devphys::vbe::vbe_for_current;
use icvbe_units::{Ampere, ElectronVolt, Kelvin};

use crate::render::Table;

/// Result of the sensitivity experiment.
#[derive(Debug, Clone)]
pub struct SensitivityResult {
    /// Claim 1: the best-fit study at 1% uniform (gain-type) VBE error.
    pub vbe_study: PerturbationResult,
    /// Claim 1 restated: EG error / VBE error amplification factor for the
    /// gain-type error.
    pub amplification: f64,
    /// Claim 1, worst case: the bound over arbitrary per-point 1% errors —
    /// the regime of the paper's "up to 8%".
    pub worst_case: WorstCaseResult,
    /// Claim 2: the Meijer study at +5 K on T2.
    pub t2_study: PerturbationResult,
    /// Claim 3: the drift coefficient A in volts for a PTAT bias between
    /// 0 and 100 °C.
    pub drift_a_volts: f64,
    /// Claim 3: A as a fraction of dVBE(T2).
    pub drift_a_relative: f64,
}

fn truth_law() -> SpiceIsLaw {
    SpiceIsLaw::new(
        Ampere::new(2e-17),
        Kelvin::new(298.15),
        ElectronVolt::new(1.1324),
        2.58,
    )
}

fn synthetic_curve() -> VbeCurve {
    let law = truth_law();
    let ic = Ampere::new(1e-6);
    VbeCurve::from_points((0..8).map(|i| {
        let t = Kelvin::new(223.15 + 25.0 * i as f64);
        (t, vbe_for_current(&law, ic, t), ic)
    }))
    .expect("valid synthetic curve")
}

fn synthetic_measurement() -> MeijerMeasurement {
    let law = truth_law();
    let ic = Ampere::new(1e-6);
    let p = |t: f64| MeijerPoint {
        temperature: Kelvin::new(t),
        vbe: vbe_for_current(&law, ic, Kelvin::new(t)),
        ic,
    };
    MeijerMeasurement {
        cold: p(248.15),
        reference: p(298.15),
        hot: p(348.15),
    }
}

/// Runs all three studies.
///
/// # Errors
///
/// Propagates extraction failures (none expected on the synthetic data).
pub fn run() -> Result<SensitivityResult, icvbe_core::ExtractionError> {
    let curve = synthetic_curve();
    let vbe_study = bestfit_vbe_error_study(&curve, 3, 0.01)?;
    let worst_case = bestfit_worst_case_vbe_error(&curve, 3, 0.01)?;
    let t2_study = meijer_t2_error_study(&synthetic_measurement(), 5.0)?;

    // Claim 3: PTAT bias (proportional to T), T1 = 0 C, T2 = 100 C.
    let (t1, t2) = (Kelvin::new(273.15), Kelvin::new(373.15));
    let currents = PairCurrents {
        // QA's bias is PTAT, QB's source drifts 1% less (slight mismatch
        // in source tempco) — the paper's "not really identical" sources.
        ica_t: Ampere::new(1e-6 * t1.value() / 298.15),
        icb_t: Ampere::new(1e-6 * t1.value() / 298.15 * 0.997),
        ica_ref: Ampere::new(1e-6 * t2.value() / 298.15),
        icb_ref: Ampere::new(1e-6 * t2.value() / 298.15 * 1.009),
    };
    let x = currents.x_factor()?;
    let a = drift_coefficient_a(t2, x).value().abs();
    let dvbe_t2 = PtatPair::paper_cell().ideal_dvbe(t2).value();

    Ok(SensitivityResult {
        amplification: vbe_study.eg_relative_error / 0.01,
        vbe_study,
        worst_case,
        t2_study,
        drift_a_volts: a,
        drift_a_relative: a / dvbe_t2,
    })
}

/// Renders the report.
#[must_use]
pub fn render(r: &SensitivityResult) -> String {
    let mut out = String::from("SENS: error-propagation claims\n\n");
    let mut t = Table::new(vec!["claim".into(), "paper".into(), "measured".into()]);
    t.add_row(vec![
        "1% gain-type VBE error -> EG error".into(),
        "-".into(),
        format!("{:.1}%", r.vbe_study.eg_relative_error * 100.0),
    ]);
    t.add_row(vec![
        "1% per-point VBE error, rms".into(),
        "up to 8%".into(),
        format!("{:.1}%", r.worst_case.eg_relative_rms_error * 100.0),
    ]);
    t.add_row(vec![
        "1% per-point VBE error, adversarial".into(),
        "(bound)".into(),
        format!("up to {:.1}%", r.worst_case.eg_relative_error_bound * 100.0),
    ]);
    t.add_row(vec![
        "dT2 = 5 K -> EG shift".into(),
        "insignificant".into(),
        format!("{:.2}%", r.t2_study.eg_relative_error * 100.0),
    ]);
    t.add_row(vec![
        "drift coefficient A".into(),
        "~0.3 mV".into(),
        format!("{:.2} mV", r.drift_a_volts * 1e3),
    ]);
    t.add_row(vec![
        "A relative to dVBE(T2)".into(),
        "~0.45%".into(),
        format!("{:.2}%", r.drift_a_relative * 100.0),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vbe_error_is_amplified() {
        let r = run().unwrap();
        assert!(
            r.amplification > 0.5 && r.amplification < 20.0,
            "amplification {}",
            r.amplification
        );
    }

    #[test]
    fn t2_error_is_insignificant() {
        let r = run().unwrap();
        assert!(
            r.t2_study.eg_relative_error < 0.02,
            "T2 study moved EG by {}",
            r.t2_study.eg_relative_error
        );
        // And much smaller than the VBE-error effect.
        assert!(r.t2_study.eg_relative_error < r.vbe_study.eg_relative_error);
    }

    #[test]
    fn drift_coefficient_is_sub_millivolt() {
        let r = run().unwrap();
        assert!(
            r.drift_a_volts > 0.05e-3 && r.drift_a_volts < 1.0e-3,
            "A = {} mV",
            r.drift_a_volts * 1e3
        );
        assert!(
            r.drift_a_relative < 0.02,
            "A relative {}",
            r.drift_a_relative
        );
    }

    #[test]
    fn render_covers_all_claims() {
        let s = render(&run().unwrap());
        assert!(s.contains("8%") && s.contains("drift") && s.contains("dT2"));
    }
}
