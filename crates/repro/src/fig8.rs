//! FIG8 — `VREF(T)`: measured silicon vs model cards, and the RadjA trim
//! family.
//!
//! The loop the paper closes:
//!
//! 1. the designer trims the cell in simulation with the standard foundry
//!    card (clean circuit model) — that defines the design `R_ptat`;
//! 2. the *silicon* (truth card + substrate leakage + op-amp offset) is
//!    measured with that `R_ptat`: the curve rises with temperature
//!    instead of showing the expected bell;
//! 3. re-simulating with the **best-fit** extracted card on the clean
//!    circuit model gives the bell-shaped S0 — nothing like the silicon;
//! 4. re-simulating with the **analytically** extracted card on the
//!    second-order-aware circuit model gives S1 — which tracks the
//!    silicon;
//! 5. RadjA = 1.8k / 2.5k / 2.7k (S2-S4) then flattens the design.

use icvbe_bandgap::card::{card_with_extraction, st_bicmos_pnp, standard_model_card};
use icvbe_bandgap::cell::BandgapCell;
use icvbe_bandgap::radj::radj_family;
use icvbe_bandgap::vref::{figure8_grid, CurveShape, VrefCurve};
use icvbe_core::ExtractedPair;
use icvbe_instrument::bench::BenchError;
use icvbe_units::{Kelvin, Ohm};

use crate::fig6;
use crate::render::{AsciiPlot, Table};

/// The paper's RadjA values for S2-S4.
pub const PAPER_RADJ_OHMS: [f64; 3] = [1.8e3, 2.5e3, 2.7e3];

/// Result of the FIG8 experiment.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// Common temperature grid.
    pub grid: Vec<Kelvin>,
    /// The virtual silicon's measured curve.
    pub measured: VrefCurve,
    /// S0: best-fit card on the clean circuit model.
    pub s0: VrefCurve,
    /// S1: analytic card on the second-order-aware circuit model.
    pub s1: VrefCurve,
    /// S2-S4: the RadjA family on the S1 model.
    pub family: Vec<(Ohm, VrefCurve)>,
    /// Max |S0 - measured| in volts.
    pub s0_deviation: f64,
    /// Max |S1 - measured| in volts.
    pub s1_deviation: f64,
    /// Shape classification of S0 (paper: bell).
    pub s0_shape: CurveShape,
    /// Design R_ptat from the standard-card trim.
    pub design_r_ptat: Ohm,
    /// The two extracted cards used, `(best fit, analytical)`.
    pub extractions: (ExtractedPair, ExtractedPair),
}

/// Runs the full FIG8 pipeline.
///
/// # Errors
///
/// Propagates bench, extraction and solver failures.
pub fn run() -> Result<Fig8Result, BenchError> {
    let grid = figure8_grid();
    let sample = fig6::reference_sample();

    // 1. Design trim on the standard card, clean circuit model.
    let designer = BandgapCell::nominal(standard_model_card());
    let design_r_ptat = designer
        .calibrate(Kelvin::new(298.15))
        .map_err(BenchError::Circuit)?;

    // 2. The silicon: truth card + all imperfections at the design R_ptat.
    let silicon = sample.bandgap_cell();
    silicon.r_ptat.set(design_r_ptat.value());
    let measured = VrefCurve::sweep(&silicon, &grid).map_err(BenchError::Circuit)?;

    // 3/4. Extractions from the FIG6 pipeline: sensor-T (what a best-fit
    // flow trusts) and computed-T (the test structure's output).
    let f6 = fig6::run()?;
    let best_fit = f6.extraction_sensor;
    let analytic = f6.extraction_computed;

    // S0: best-fit card, clean model — the designer's world view. The
    // designer trims his own simulation flat, which is exactly why the
    // predicted curve is the classic bell the silicon then refuses to
    // follow.
    let s0_cell = BandgapCell::nominal(card_with_extraction(st_bicmos_pnp(), &best_fit));
    s0_cell
        .calibrate(Kelvin::new(298.15))
        .map_err(BenchError::Circuit)?;
    let s0 = VrefCurve::sweep(&s0_cell, &grid).map_err(BenchError::Circuit)?;

    // S1: analytic card, second-order-aware model (leakage + offset in the
    // simulation deck, as the test structure revealed them).
    let s1_cell = BandgapCell::nominal(card_with_extraction(st_bicmos_pnp(), &analytic))
        .with_substrate(sample.substrate)
        .with_opamp_offset(sample.opamp_offset);
    s1_cell.r_ptat.set(design_r_ptat.value());
    let s1 = VrefCurve::sweep(&s1_cell, &grid).map_err(BenchError::Circuit)?;

    // 5. S2-S4: the RadjA family on the S1 deck.
    let radj: Vec<Ohm> = PAPER_RADJ_OHMS.iter().map(|&r| Ohm::new(r)).collect();
    let family = radj_family(&s1_cell, &radj, &grid).map_err(BenchError::Circuit)?;

    Ok(Fig8Result {
        s0_deviation: s0.max_deviation_from(&measured),
        s1_deviation: s1.max_deviation_from(&measured),
        s0_shape: s0.shape(),
        grid,
        measured,
        s0,
        s1,
        family,
        design_r_ptat,
        extractions: (best_fit, analytic),
    })
}

/// Renders the report.
#[must_use]
pub fn render(r: &Fig8Result) -> String {
    let mut out = String::from("FIG8: VREF(T) — silicon vs model cards vs RadjA trim\n\n");
    out.push_str(&format!(
        "design R_ptat = {:.1} ohm (standard-card trim)\n",
        r.design_r_ptat.value()
    ));
    let (bf, an) = &r.extractions;
    out.push_str(&format!(
        "best-fit card:   EG = {:.4} eV, XTI = {:.2}\n",
        bf.eg.value(),
        bf.xti
    ));
    out.push_str(&format!(
        "analytical card: EG = {:.4} eV, XTI = {:.2}\n\n",
        an.eg.value(),
        an.xti
    ));
    let mut t = Table::new(vec![
        "T [C]".into(),
        "measured [V]".into(),
        "S0 best fit [V]".into(),
        "S1 analytic [V]".into(),
    ]);
    for (i, tk) in r.grid.iter().enumerate() {
        t.add_row(vec![
            format!("{:.0}", tk.to_celsius().value()),
            format!("{:.5}", r.measured.vref[i].value()),
            format!("{:.5}", r.s0.vref[i].value()),
            format!("{:.5}", r.s1.vref[i].value()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmax deviation from measured: S0 = {:.2} mV, S1 = {:.2} mV (S0 shape: {:?})\n\n",
        r.s0_deviation * 1e3,
        r.s1_deviation * 1e3,
        r.s0_shape
    ));
    let mut plot = AsciiPlot::new("Fig. 8 — VREF(T)");
    let series = |c: &VrefCurve| -> Vec<(f64, f64)> {
        c.temperatures
            .iter()
            .zip(&c.vref)
            .map(|(t, v)| (t.to_celsius().value(), v.value()))
            .collect()
    };
    plot.add_series("* measured", series(&r.measured));
    plot.add_series("0: S0 best fit", series(&r.s0));
    plot.add_series("1: S1 analytic", series(&r.s1));
    for (i, (ohm, curve)) in r.family.iter().enumerate() {
        plot.add_series(
            &format!("{}: RadjA = {:.1}k", i + 2, ohm.value() / 1e3),
            series(curve),
        );
    }
    out.push_str(&plot.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s0_is_a_bell_and_misses_the_silicon() {
        let r = run().unwrap();
        assert_eq!(r.s0_shape, CurveShape::Bell, "S0 shape {:?}", r.s0_shape);
        assert!(
            r.s0_deviation > 2.0 * r.s1_deviation,
            "S0 dev {} mV vs S1 dev {} mV",
            r.s0_deviation * 1e3,
            r.s1_deviation * 1e3
        );
    }

    #[test]
    fn s1_tracks_the_silicon_to_millivolts() {
        let r = run().unwrap();
        assert!(
            r.s1_deviation < 10e-3,
            "S1 deviation {} mV",
            r.s1_deviation * 1e3
        );
    }

    #[test]
    fn measured_curve_rises_at_the_hot_end() {
        // The silicon signature: VREF bends up with temperature instead of
        // rolling off like the bell.
        let r = run().unwrap();
        let n = r.measured.vref.len();
        assert!(
            r.measured.vref[n - 1].value() > r.measured.vref[n - 3].value(),
            "no hot-end rise: {:?}",
            r.measured.vref
        );
    }

    #[test]
    fn radj_family_has_three_members_lowering_vref() {
        let r = run().unwrap();
        assert_eq!(r.family.len(), 3);
        let mid = r.grid.len() / 2;
        let mut last = f64::INFINITY;
        for (ohm, curve) in &r.family {
            let v = curve.vref[mid].value();
            assert!(v < last, "VREF not decreasing with RadjA at {ohm}");
            last = v;
        }
    }

    #[test]
    fn vref_levels_are_bandgap_like() {
        let r = run().unwrap();
        for v in r.measured.vref.iter().chain(&r.s0.vref).chain(&r.s1.vref) {
            assert!(v.value() > 1.0 && v.value() < 1.4, "VREF {v}");
        }
    }
}
