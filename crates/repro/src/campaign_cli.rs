//! The `repro campaign` subcommand: a wafer-scale extraction campaign
//! with an ASCII summary and optional JSON/CSV artifacts.
//!
//! ```text
//! repro campaign [--dies N | --diameter D] [--threads N] [--seed S] [--out DIR] [--cold]
//!                [--no-bypass] [--faults SPEC] [--retries N] [--no-robust] [--trace[=DIR]]
//!                [--batch N] [--chaos SPEC] [--chaos-seed S] [--die-iter-budget N]
//!                [--die-wall-ms MS] [--shards N] [--adaptive | --exhaustive] [--libm-exp]
//! ```
//!
//! `--dies N` picks the smallest circular wafer holding at least `N`
//! dies; `--diameter D` sets the wafer diameter (in dies) directly. The
//! aggregate artifacts written by `--out` are bit-identical for any
//! `--threads` value (see `icvbe-campaign`'s determinism guarantee), and
//! also with `--cold`, which disables solver warm starting, and with
//! `--no-bypass`, which disables the SPICE-style device-evaluation bypass
//! — both useful to measure a speedup while verifying it changes nothing.
//!
//! `--faults SPEC` corrupts every die's measurement deterministically:
//! `light`/`heavy` presets or `k=v` pairs (`noise=0.05,drop=0.01,...`, see
//! `icvbe_instrument::faults::FaultSpec::parse`). Fault-injected runs are
//! still bit-identical across thread counts. `--retries` bounds the
//! per-corner re-measure budget and `--no-robust` disables the pooled
//! robust-fit fallback (both only matter with `--faults`).
//!
//! `--trace` captures a structured span trace of the run (off by default;
//! when off the tracing layer costs nothing) and writes two artifacts:
//! `campaign_trace.json`, a Chrome trace-event file loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`, and
//! `campaign_profile.folded`, a collapsed-stack profile for flamegraph
//! tools. They land in `--trace=DIR` if given, else next to the `--out`
//! artifacts, else in the git-ignored `artifacts/` directory. The summary
//! additionally gains the slowest dies and corners ranked from the same
//! spans.
//!
//! `--chaos SPEC` injects *environment* faults (as opposed to `--faults`'
//! measurement corruption): the campaign subcommand consults the
//! `die_panic` knob, containing panicking dies behind `catch_unwind` and
//! quarantining their corners as `internal_panic` — deterministically per
//! `--chaos-seed`, bit-identical at any thread count. The write/socket
//! knobs of the same spec act in the campaign service (`repro serve`).
//! `--die-iter-budget N` retires the remaining corners of a die that has
//! spent `N` Newton iterations (`budget_exhausted`, deterministic);
//! `--die-wall-ms` is the wall-clock analogue and the one knowingly
//! nondeterministic knob.
//!
//! `--batch N` sets the lane count of the batched die-parallel solve
//! path: workers pack `N` same-corner dies into structure-of-arrays lanes
//! and step them through Newton in lockstep over one frozen sparse plan.
//! `--batch 1` forces the scalar per-die path (the ablation baseline);
//! the default (`0` = auto) picks a full claim chunk. Accepted results
//! are bit-identical at every setting — the summary's `batching:` line
//! reports lane utilization.
//!
//! `--libm-exp` swaps the in-tree `vexp` exponential kernel for libm's
//! `f64::exp` everywhere — the benchmarking ablation of the vectorizable
//! kernel. It changes the accepted bits (libm is platform-dependent), and
//! it propagates into shard workers so the cross-shard byte-identity
//! contract holds under the ablation too.
//!
//! The subcommand's exit code distinguishes *could not run* (1) from
//! *ran, but every corner failed the spec window* (2) — see [`help`] and
//! [`run_cli_status`].

use std::fmt::Write as _;
use std::path::PathBuf;

use icvbe_campaign::aggregate::YieldBin;
use icvbe_campaign::die::DieBudget;
use icvbe_campaign::report::write_reports;
use icvbe_campaign::spec::WaferMap;
use icvbe_campaign::taxonomy::FailureKind;
use icvbe_campaign::{run_campaign_with, CampaignRun, CampaignSpec, RunOptions};
use icvbe_instrument::chaos::ChaosSpec;
use icvbe_instrument::faults::FaultSpec;
use icvbe_serve::shard::{run_sharded, ShardOptions};

/// Parsed `repro campaign` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCliArgs {
    /// Circular wafer diameter, in dies.
    pub diameter: usize,
    /// Worker threads.
    pub threads: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Directory for JSON/CSV artifacts (`None` = print only).
    pub out: Option<PathBuf>,
    /// Disable solver warm starting (ablation / verification mode).
    pub cold: bool,
    /// Device-evaluation bypass inside Newton (`--no-bypass` clears it;
    /// ablation / verification mode, same contract as `cold`).
    pub bypass: bool,
    /// Deterministic measurement corruption (all-zero = off).
    pub faults: FaultSpec,
    /// Override of the per-corner retry budget (`None` = spec default).
    pub retries: Option<u32>,
    /// Pooled robust-fit fallback for corrupted corners.
    pub robust: bool,
    /// Capture a span trace and write the trace/profile artifacts.
    pub trace: bool,
    /// Where the trace artifacts go (`None` = `--out` dir, else the
    /// ignored `artifacts/` directory).
    pub trace_dir: Option<PathBuf>,
    /// Lanes per die group on the batched solve path (`0` = auto, `1` =
    /// scalar ablation). Bit-identical results at every setting.
    pub batch: usize,
    /// Environment-fault injection (`--chaos`): the campaign subcommand
    /// consults only the die-panic knob; write/socket faults act in the
    /// service. All-zero (the default) = off.
    pub chaos: ChaosSpec,
    /// Seed of the chaos plan (`--chaos-seed`).
    pub chaos_seed: u64,
    /// Per-die Newton-iteration budget (`--die-iter-budget`, 0 = off).
    pub die_iter_budget: u64,
    /// Per-die wall-clock budget in ms (`--die-wall-ms`, 0 = off;
    /// nondeterministic escape hatch).
    pub die_wall_ms: u64,
    /// Worker-process count for sharded execution (`--shards`, 0 = run
    /// in-process). Artifacts are byte-identical at any shard count.
    pub shards: usize,
    /// Adaptive corner scheduling (`--adaptive`): probe each die on its
    /// first corner, escalate to the full plan only when the probe is
    /// suspicious. Changes the aggregate artifacts (skipped corners).
    pub adaptive: bool,
    /// Explicit exhaustive ablation (`--exhaustive`, the default
    /// behaviour); conflicts with `--adaptive`.
    pub exhaustive: bool,
    /// Route every `vexp` call through libm's `f64::exp` (`--libm-exp`).
    /// Ablation knob for benchmarking the in-tree kernel; changes the
    /// accepted bits, so it propagates to shard workers.
    pub libm_exp: bool,
}

impl Default for CampaignCliArgs {
    fn default() -> Self {
        CampaignCliArgs {
            diameter: 14,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            seed: 2002,
            out: None,
            cold: false,
            bypass: true,
            faults: FaultSpec::none(),
            retries: None,
            robust: true,
            trace: false,
            trace_dir: None,
            batch: 0,
            chaos: ChaosSpec::none(),
            chaos_seed: 0,
            die_iter_budget: 0,
            die_wall_ms: 0,
            shards: 0,
            adaptive: false,
            exhaustive: false,
            libm_exp: false,
        }
    }
}

/// Smallest circular-wafer diameter holding at least `dies` dies.
#[must_use]
pub fn diameter_for_dies(dies: usize) -> usize {
    let mut d = 1;
    while WaferMap::circular(d).die_count() < dies {
        d += 1;
    }
    d
}

/// Parses the arguments following the `campaign` keyword.
///
/// # Errors
///
/// Returns a usage message on unknown flags or malformed values.
pub fn parse_args(args: &[String]) -> Result<CampaignCliArgs, String> {
    let mut out = CampaignCliArgs::default();
    let mut it = args.iter();
    let value = |flag: &str, v: Option<&String>| -> Result<String, String> {
        v.cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--dies" => {
                let v = value("--dies", it.next())?;
                let n: usize = v.parse().map_err(|_| format!("bad --dies value {v:?}"))?;
                if n == 0 {
                    return Err("--dies must be positive".to_string());
                }
                out.diameter = diameter_for_dies(n);
            }
            "--diameter" => {
                let v = value("--diameter", it.next())?;
                out.diameter = v
                    .parse()
                    .map_err(|_| format!("bad --diameter value {v:?}"))?;
                if out.diameter == 0 {
                    return Err("--diameter must be positive".to_string());
                }
            }
            "--threads" => {
                let v = value("--threads", it.next())?;
                out.threads = v
                    .parse()
                    .map_err(|_| format!("bad --threads value {v:?}"))?;
                if out.threads == 0 {
                    return Err("--threads must be positive".to_string());
                }
            }
            "--seed" => {
                let v = value("--seed", it.next())?;
                out.seed = v.parse().map_err(|_| format!("bad --seed value {v:?}"))?;
            }
            "--out" => {
                out.out = Some(PathBuf::from(value("--out", it.next())?));
            }
            "--cold" => {
                out.cold = true;
            }
            "--no-bypass" => {
                out.bypass = false;
            }
            "--faults" => {
                let v = value("--faults", it.next())?;
                out.faults = FaultSpec::parse(&v).map_err(|e| e.detail)?;
            }
            "--retries" => {
                let v = value("--retries", it.next())?;
                out.retries = Some(
                    v.parse()
                        .map_err(|_| format!("bad --retries value {v:?}"))?,
                );
            }
            "--no-robust" => {
                out.robust = false;
            }
            "--batch" => {
                let v = value("--batch", it.next())?;
                out.batch = v.parse().map_err(|_| format!("bad --batch value {v:?}"))?;
            }
            other if other.starts_with("--batch=") => {
                let v = &other["--batch=".len()..];
                out.batch = v.parse().map_err(|_| format!("bad --batch value {v:?}"))?;
            }
            "--chaos" => {
                let v = value("--chaos", it.next())?;
                out.chaos = ChaosSpec::parse(&v).map_err(|e| e.detail)?;
            }
            "--chaos-seed" => {
                let v = value("--chaos-seed", it.next())?;
                out.chaos_seed = v
                    .parse()
                    .map_err(|_| format!("bad --chaos-seed value {v:?}"))?;
            }
            "--die-iter-budget" => {
                let v = value("--die-iter-budget", it.next())?;
                out.die_iter_budget = v
                    .parse()
                    .map_err(|_| format!("bad --die-iter-budget value {v:?}"))?;
            }
            "--die-wall-ms" => {
                let v = value("--die-wall-ms", it.next())?;
                out.die_wall_ms = v
                    .parse()
                    .map_err(|_| format!("bad --die-wall-ms value {v:?}"))?;
            }
            "--shards" => {
                let v = value("--shards", it.next())?;
                out.shards = v.parse().map_err(|_| format!("bad --shards value {v:?}"))?;
                if out.shards == 0 {
                    return Err("--shards must be positive".to_string());
                }
            }
            "--adaptive" => {
                out.adaptive = true;
            }
            "--exhaustive" => {
                out.exhaustive = true;
            }
            "--libm-exp" => {
                out.libm_exp = true;
            }
            "--trace" => {
                out.trace = true;
            }
            other if other.starts_with("--trace=") => {
                let dir = &other["--trace=".len()..];
                if dir.is_empty() {
                    return Err("--trace= needs a directory".to_string());
                }
                out.trace = true;
                out.trace_dir = Some(PathBuf::from(dir));
            }
            other => {
                return Err(format!(
                    "unknown campaign argument {other:?} \
                     (usage: campaign [--dies N | --diameter D] [--threads N] [--seed S] \
                     [--out DIR] [--cold] [--no-bypass] [--faults SPEC] [--retries N] \
                     [--no-robust] [--trace[=DIR]] [--batch N] [--chaos SPEC] \
                     [--chaos-seed S] [--die-iter-budget N] [--die-wall-ms MS] \
                     [--shards N] [--adaptive | --exhaustive] [--libm-exp])"
                ));
            }
        }
    }
    if out.adaptive && out.exhaustive {
        return Err("--adaptive and --exhaustive are mutually exclusive".to_string());
    }
    if out.shards > 0 {
        // Traces live in worker processes (unmergeable wall clocks) and
        // chaos acts on in-process state — both are typed conflicts, not
        // silently dropped flags.
        if out.trace {
            return Err("--shards cannot be combined with --trace".to_string());
        }
        if !out.chaos.is_none() {
            return Err("--shards cannot be combined with --chaos".to_string());
        }
    }
    Ok(out)
}

/// ASCII summary of a finished campaign.
#[must_use]
pub fn render(run: &CampaignRun) -> String {
    let mut s = String::new();
    let spec = &run.spec;
    let _ = writeln!(
        s,
        "CAMPAIGN — {} dies (circular wafer, diameter {}), seed {}, {} thread(s)",
        spec.wafer.die_count(),
        spec.wafer.rows(),
        spec.seed,
        run.metrics.threads,
    );
    let _ = writeln!(
        s,
        "  {:.1} dies/s, reorder buffer peak {}, {} die(s) with solve failures",
        run.metrics.dies_per_second, run.metrics.max_reorder_buffer, run.aggregate.dies_failed,
    );
    let _ = writeln!(
        s,
        "\n  {:<6} {:>9} {:>20} {:>16} {:>8} {:>22}",
        "corner", "IC [uA]", "EG [eV] mean+/-sig", "XTI mean+/-sig", "yield", "straight EG(XTI)"
    );
    for (i, c) in run.aggregate.corners.iter().enumerate() {
        let _ = writeln!(
            s,
            "  {:<6} {:>9.2} {:>11.4} +/- {:>5.1}m {:>9.2} +/- {:>4.2} {:>7.1}% {:>10.1}m x + {:.4}",
            c.name,
            spec.corners[i].ic.value() * 1e6,
            c.eg_ev.mean(),
            c.eg_ev.std_dev() * 1e3,
            c.xti.mean(),
            c.xti.std_dev(),
            c.yield_fraction() * 100.0,
            c.straight.slope() * 1e3,
            c.straight.intercept(),
        );
    }
    if !spec.faults.is_none() {
        let by_kind = |counts: &dyn Fn(
            &icvbe_campaign::aggregate::CornerAggregate,
        ) -> [u64; FailureKind::COUNT]| {
            let mut total = [0u64; FailureKind::COUNT];
            for c in &run.aggregate.corners {
                for (t, n) in total.iter_mut().zip(counts(c)) {
                    *t += n;
                }
            }
            FailureKind::ALL
                .iter()
                .zip(total)
                .filter(|(_, n)| *n > 0)
                .map(|(k, n)| format!("{} {}", k.label(), n))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let r = &run.metrics.recovery;
        let _ = writeln!(
            s,
            "\n  faults: {} corner(s) retried, {} recovered \
             ({} via robust fit), {} quarantined, {} retries total",
            r.corners_retried,
            r.corners_recovered,
            r.robust_recoveries,
            r.corners_quarantined,
            run.aggregate.corners.iter().map(|c| c.retries).sum::<u64>(),
        );
        let recovered = by_kind(&|c| c.recovered);
        if !recovered.is_empty() {
            let _ = writeln!(s, "    recovered from: {recovered}");
        }
        let quarantined = by_kind(&|c| c.failures);
        if !quarantined.is_empty() {
            let _ = writeln!(s, "    quarantined as: {quarantined}");
        }
    }
    let cm = &run.metrics.containment;
    if cm.die_panics + cm.budgets_exhausted + cm.checkpoint_write_errors > 0 {
        let _ = writeln!(
            s,
            "\n  containment: {} die panic(s) contained, {} die budget(s) exhausted, \
             {} checkpoint write error(s)",
            cm.die_panics, cm.budgets_exhausted, cm.checkpoint_write_errors,
        );
    }
    let solver = &run.metrics.solver;
    let _ = writeln!(
        s,
        "\n  solver: {} solves, {} Newton iters ({:.1}/solve), \
         warm-start hit rate {:.1}%, {} self-heating iters",
        solver.solves,
        solver.newton_iterations,
        solver.newton_per_solve(),
        solver.warm_hit_rate() * 100.0,
        solver.selfheat_iterations,
    );
    let _ = writeln!(
        s,
        "  stamping: device bypass hit rate {:.1}% ({} evals, {} exact reuses, \
         {} bypasses), incremental restamp {:.1}% ({} incremental, {} full)",
        solver.bypass_hit_rate() * 100.0,
        solver.device_evals,
        solver.device_reuses,
        solver.bypass_hits,
        solver.restamp_savings() * 100.0,
        solver.restamp_incremental,
        solver.restamp_full,
    );
    let _ = writeln!(
        s,
        "  device evals: {:.1}% lane-kernel ({} lane, {} scalar in-stamp), \
         {} absorbed by exact-bit memo",
        solver.lane_eval_share() * 100.0,
        solver.lane_evals,
        solver.device_evals - solver.lane_evals,
        solver.device_reuses,
    );
    let batching = &run.metrics.batching;
    if batching.batch_refills > 0 {
        let _ = writeln!(
            s,
            "  batching: {} lane-solves in {} lockstep rounds \
             ({:.1} lanes/round mean), {} die groups, {} lane retires",
            batching.batched_solves,
            batching.lockstep_rounds,
            batching.mean_lanes_active(),
            batching.batch_refills,
            batching.lane_retires,
        );
    }
    let _ = writeln!(
        s,
        "\n  stage timings (p50/p99 per die): {}",
        run.metrics
            .stages
            .iter()
            .map(|st| format!(
                "{} {:.0}us/{:.0}us",
                st.name,
                st.p50_ns as f64 / 1e3,
                st.p99_ns as f64 / 1e3
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if let Some(trace) = &run.trace {
        let dies = trace
            .slowest_dies(5)
            .into_iter()
            .map(|(die, ns)| format!("die {} {}", die, fmt_ns(ns)))
            .collect::<Vec<_>>()
            .join(", ");
        let corners = trace
            .slowest_corners(5)
            .into_iter()
            .map(|(die, corner, ns)| {
                let name = usize::try_from(corner)
                    .ok()
                    .and_then(|i| run.aggregate.corners.get(i))
                    .map_or("?", |c| c.name.as_str());
                format!("die {die}/{name} {}", fmt_ns(ns))
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(s, "\n  slowest dies:    {dies}");
        let _ = writeln!(s, "  slowest corners: {corners}");
        if trace.dropped > 0 {
            let _ = writeln!(
                s,
                "  trace: {} event(s) dropped (buffer full)",
                trace.dropped
            );
        }
    }
    s
}

/// `1234567` → `"1.23ms"`; sub-millisecond spans render in microseconds.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.0}us", ns as f64 / 1e3)
    }
}

/// The `--help` text, including the exit-code contract.
#[must_use]
pub fn help() -> String {
    "repro campaign [--dies N | --diameter D] [--threads N] [--seed S] [--out DIR]\n\
     \x20              [--cold] [--no-bypass] [--faults SPEC] [--retries N] [--no-robust]\n\
     \x20              [--trace[=DIR]] [--batch N] [--chaos SPEC] [--chaos-seed S]\n\
     \x20              [--die-iter-budget N] [--die-wall-ms MS] [--shards N]\n\
     \x20              [--adaptive | --exhaustive] [--libm-exp]\n\
     \n\
     Runs a wafer-scale IC(VBE) extraction campaign and prints a summary;\n\
     --out writes the JSON/CSV report artifacts (bit-identical at any\n\
     --threads value and any --batch lane count; --batch 1 is the scalar\n\
     ablation baseline).\n\
     \n\
     --chaos SPEC injects environment faults (presets light/heavy or k=v\n\
     pairs: die_panic=P, write_error=P, short_write=P, torn=P, stall=P,\n\
     stall_ms=N, reset=P; seeded by --chaos-seed). The campaign subcommand\n\
     acts only on die_panic — panicking dies are contained and quarantined\n\
     as internal_panic, deterministically per seed. --die-iter-budget\n\
     retires a runaway die's remaining corners as budget_exhausted after N\n\
     Newton iterations (deterministic); --die-wall-ms is the wall-clock\n\
     escape hatch (nondeterministic by nature).\n\
     \n\
     --shards N runs the wafer across N worker processes, each folding a\n\
     contiguous die-range slice; the supervisor merges the partial\n\
     aggregates deterministically, so the report artifacts are\n\
     byte-identical at any shard count (incompatible with --trace and\n\
     --chaos). --adaptive probes each die on its first corner and runs\n\
     the remaining corners only when the probe looks suspicious; clean\n\
     dies report those corners as skipped. --exhaustive is the explicit\n\
     full-plan ablation (the default). --libm-exp routes every exp through\n\
     libm instead of the in-tree vexp kernel — the benchmarking ablation;\n\
     it changes the accepted bits and propagates into shard workers, so\n\
     artifacts stay byte-identical across threads/batch/shards either way.\n\
     \n\
     Exit codes:\n\
     \x20 0  campaign ran and at least one corner measurement passed the spec window\n\
     \x20 1  the campaign could not run (bad arguments, invalid spec, write failure)\n\
     \x20 2  the campaign ran but total yield is zero (no passing corner anywhere\n\
     \x20    on the wafer) — scripts can distinguish a dead process corner from a\n\
     \x20    broken invocation\n"
        .to_string()
}

/// Runs the subcommand end to end, returning the printable summary and
/// the process exit code: `0` normally, `2` when the campaign completed
/// with **zero yield** (no corner anywhere on the wafer passed the spec
/// window — see [`help`]).
///
/// # Errors
///
/// Argument, spec-validation and artifact-write failures, as strings
/// (exit code 1 territory).
pub fn run_cli_status(args: &[String]) -> Result<(String, u8), String> {
    if args.iter().any(|a| a == "--help") {
        return Ok((help(), 0));
    }
    let cli = parse_args(args)?;
    // Process-wide backend switch: must act before any die is solved,
    // and again inside every shard worker (bits change with it).
    icvbe_numerics::vexp::set_libm_backend(cli.libm_exp);
    let mut spec = CampaignSpec::paper_default(WaferMap::circular(cli.diameter), cli.seed);
    spec.warm_start = !cli.cold;
    spec.bypass = cli.bypass;
    spec.faults = cli.faults;
    spec.robust = cli.robust;
    spec.adaptive = cli.adaptive;
    if let Some(budget) = cli.retries {
        spec.retry_budget = budget;
    }
    let budget = DieBudget {
        max_newton_iterations: cli.die_iter_budget,
        max_wall_ms: cli.die_wall_ms,
    };
    let run = if cli.shards > 0 {
        let opts = ShardOptions {
            shards: cli.shards,
            threads: cli.threads,
            batch: cli.batch,
            budget,
            libm_exp: cli.libm_exp,
            worker_exe: None,
        };
        run_sharded(&spec, &opts).map_err(|e| e.to_string())?
    } else {
        let options = RunOptions {
            trace: cli.trace,
            batch: cli.batch,
            chaos: cli.chaos,
            chaos_seed: cli.chaos_seed,
            budget,
        };
        run_campaign_with(&spec, cli.threads, &options).map_err(|e| e.to_string())?
    };
    let mut text = render(&run);
    if let Some(dir) = &cli.out {
        let paths = write_reports(dir, &run).map_err(|e| format!("writing reports: {e}"))?;
        for p in paths {
            let _ = writeln!(text, "  wrote {}", p.display());
        }
    }
    if let Some(trace) = &run.trace {
        let dir = cli
            .trace_dir
            .clone()
            .or_else(|| cli.out.clone())
            .unwrap_or_else(|| PathBuf::from("artifacts"));
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating trace dir {}: {e}", dir.display()))?;
        for (name, contents) in [
            ("campaign_trace.json", trace.chrome_json()),
            ("campaign_profile.folded", trace.folded()),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, contents)
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            let _ = writeln!(text, "  wrote {}", path.display());
        }
    }
    let passes: u64 = run
        .aggregate
        .corners
        .iter()
        .map(|c| c.bins[YieldBin::Pass.index()])
        .sum();
    let code = if passes == 0 {
        let _ = writeln!(
            text,
            "  ZERO YIELD — no passing corner on the wafer (exit 2)"
        );
        2
    } else {
        0
    };
    Ok((text, code))
}

/// Runs the subcommand end to end and returns the printable summary,
/// ignoring the yield-based exit code (see [`run_cli_status`]).
///
/// # Errors
///
/// Argument, spec-validation and artifact-write failures, as strings.
pub fn run_cli(args: &[String]) -> Result<String, String> {
    run_cli_status(args).map(|(text, _)| text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_args(&sv(&["--diameter", "9", "--threads", "3", "--seed", "7"])).unwrap();
        assert_eq!(a.diameter, 9);
        assert_eq!(a.threads, 3);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, None);
    }

    #[test]
    fn dies_flag_picks_covering_diameter() {
        let a = parse_args(&sv(&["--dies", "1000"])).unwrap();
        let map = WaferMap::circular(a.diameter);
        assert!(map.die_count() >= 1000, "{} dies", map.die_count());
        assert!(WaferMap::circular(a.diameter - 1).die_count() < 1000);
    }

    #[test]
    fn rejects_unknown_and_malformed_flags() {
        assert!(parse_args(&sv(&["--bogus"])).is_err());
        assert!(parse_args(&sv(&["--threads"])).is_err());
        assert!(parse_args(&sv(&["--threads", "zero"])).is_err());
        assert!(parse_args(&sv(&["--dies", "0"])).is_err());
    }

    #[test]
    fn parses_fault_flags() {
        let a = parse_args(&sv(&["--faults", "heavy", "--retries", "5", "--no-robust"])).unwrap();
        assert_eq!(a.faults, FaultSpec::heavy());
        assert_eq!(a.retries, Some(5));
        assert!(!a.robust);
        let b = parse_args(&sv(&["--faults", "noise=0.2,drop=0.05"])).unwrap();
        assert_eq!(b.faults.noise_probability, 0.2);
        assert_eq!(b.faults.drop_probability, 0.05);
        assert!(parse_args(&sv(&["--faults", "nonsense=1"])).is_err());
        assert!(parse_args(&sv(&["--retries", "many"])).is_err());
    }

    #[test]
    fn faulted_run_renders_recovery_summary() {
        let text = run_cli(&sv(&[
            "--diameter",
            "4",
            "--threads",
            "2",
            "--seed",
            "13",
            "--faults",
            "heavy",
        ]))
        .unwrap();
        assert!(text.contains("faults:"), "summary:\n{text}");
        assert!(text.contains("retried"), "summary:\n{text}");
        let clean = run_cli(&sv(&["--diameter", "4", "--threads", "2", "--seed", "13"])).unwrap();
        assert!(!clean.contains("faults:"), "summary:\n{clean}");
    }

    #[test]
    fn parses_chaos_and_budget_flags() {
        let a = parse_args(&sv(&[
            "--chaos",
            "die_panic=0.25",
            "--chaos-seed",
            "9",
            "--die-iter-budget",
            "500",
            "--die-wall-ms",
            "2000",
        ]))
        .unwrap();
        assert_eq!(a.chaos.die_panic_probability, 0.25);
        assert_eq!(a.chaos_seed, 9);
        assert_eq!(a.die_iter_budget, 500);
        assert_eq!(a.die_wall_ms, 2000);
        let off = parse_args(&sv(&[])).unwrap();
        assert!(off.chaos.is_none(), "chaos must be off by default");
        assert_eq!(off.die_iter_budget, 0);
        assert!(parse_args(&sv(&["--chaos", "frobnicate=1"])).is_err());
        assert!(parse_args(&sv(&["--chaos-seed", "many"])).is_err());
        assert!(parse_args(&sv(&["--die-iter-budget", "-3"])).is_err());
    }

    #[test]
    fn chaos_run_renders_containment_and_stays_deterministic() {
        let args = [
            "--diameter",
            "4",
            "--threads",
            "2",
            "--seed",
            "13",
            "--chaos",
            "die_panic=0.5",
            "--chaos-seed",
            "7",
        ];
        let text = run_cli(&sv(&args)).unwrap();
        assert!(text.contains("containment:"), "summary:\n{text}");
        assert!(text.contains("die panic(s) contained"), "summary:\n{text}");
        let again = run_cli(&sv(&args)).unwrap();
        let physics = |s: &str| {
            let start = s.find("\n\n  corner").unwrap();
            let end = s.find("\n\n  containment:").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(physics(&text), physics(&again));
        let clean = run_cli(&sv(&["--diameter", "4", "--threads", "2", "--seed", "13"])).unwrap();
        assert!(!clean.contains("containment:"), "summary:\n{clean}");
    }

    #[test]
    fn parses_trace_flags() {
        let a = parse_args(&sv(&["--trace"])).unwrap();
        assert!(a.trace);
        assert_eq!(a.trace_dir, None);
        let b = parse_args(&sv(&["--trace=/tmp/somewhere"])).unwrap();
        assert!(b.trace);
        assert_eq!(b.trace_dir, Some(PathBuf::from("/tmp/somewhere")));
        assert!(parse_args(&sv(&["--trace="])).is_err());
        let off = parse_args(&sv(&[])).unwrap();
        assert!(!off.trace, "tracing must be off by default");
    }

    #[test]
    fn traced_run_writes_artifacts_and_ranks_hotspots() {
        let dir = std::env::temp_dir().join("icvbe_cli_trace_test");
        let _ = std::fs::remove_dir_all(&dir);
        let trace_flag = format!("--trace={}", dir.display());
        let text = run_cli(&sv(&[
            "--diameter",
            "3",
            "--threads",
            "2",
            "--seed",
            "11",
            &trace_flag,
        ]))
        .unwrap();
        assert!(text.contains("slowest dies:"), "summary:\n{text}");
        assert!(text.contains("slowest corners:"), "summary:\n{text}");
        let json = std::fs::read_to_string(dir.join("campaign_trace.json")).unwrap();
        assert!(json.contains("\"schema\":\"icvbe-campaign-trace-v1\""));
        assert!(json.contains("\"ph\":\"B\""));
        let folded = std::fs::read_to_string(dir.join("campaign_profile.folded")).unwrap();
        assert!(folded.contains("campaign;die;corner;measure;dc_solve"));
        let _ = std::fs::remove_dir_all(&dir);

        let plain = run_cli(&sv(&["--diameter", "3", "--threads", "2", "--seed", "11"])).unwrap();
        assert!(!plain.contains("slowest dies:"), "summary:\n{plain}");
    }

    #[test]
    fn parses_shard_and_adaptive_flags() {
        let a = parse_args(&sv(&["--shards", "4", "--adaptive"])).unwrap();
        assert_eq!(a.shards, 4);
        assert!(a.adaptive);
        let off = parse_args(&sv(&[])).unwrap();
        assert_eq!(off.shards, 0, "sharding must be off by default");
        assert!(!off.adaptive, "adaptive must be off by default");
        assert!(parse_args(&sv(&["--shards", "0"])).is_err());
        assert!(parse_args(&sv(&["--shards", "lots"])).is_err());
        assert!(parse_args(&sv(&["--adaptive", "--exhaustive"])).is_err());
        // Typed conflicts, not silently dropped flags.
        assert!(parse_args(&sv(&["--shards", "2", "--trace"])).is_err());
        assert!(parse_args(&sv(&["--shards", "2", "--chaos", "die_panic=0.5"])).is_err());
        // --exhaustive alone is the explicit default, always valid.
        assert!(parse_args(&sv(&["--exhaustive"])).is_ok());
    }

    #[test]
    fn parses_batch_flag() {
        let a = parse_args(&sv(&["--batch", "4"])).unwrap();
        assert_eq!(a.batch, 4);
        let b = parse_args(&sv(&["--batch=1"])).unwrap();
        assert_eq!(b.batch, 1);
        assert_eq!(parse_args(&sv(&[])).unwrap().batch, 0, "default is auto");
        assert!(parse_args(&sv(&["--batch", "many"])).is_err());
        assert!(parse_args(&sv(&["--batch"])).is_err());
    }

    #[test]
    fn batch_ablation_changes_only_solver_effort_lines() {
        let batched = run_cli(&sv(&["--diameter", "3", "--threads", "1", "--seed", "9"])).unwrap();
        let scalar = run_cli(&sv(&[
            "--diameter",
            "3",
            "--threads",
            "1",
            "--seed",
            "9",
            "--batch",
            "1",
        ]))
        .unwrap();
        assert!(batched.contains("batching:"), "summary:\n{batched}");
        assert!(!scalar.contains("batching:"), "summary:\n{scalar}");
        // The corner table (the physics) is identical; only timing and
        // solver-effort lines may differ between the two modes.
        let physics = |s: &str| {
            let start = s.find("\n\n  corner").unwrap();
            let end = s.find("\n\n  solver:").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(physics(&batched), physics(&scalar));
    }

    #[test]
    fn run_cli_renders_summary() {
        let text = run_cli(&sv(&["--diameter", "4", "--threads", "2", "--seed", "42"])).unwrap();
        assert!(text.contains("CAMPAIGN"));
        assert!(text.contains("corner"));
        assert!(text.contains("nom"));
        assert!(text.contains("warm-start hit rate"));
    }

    #[test]
    fn cold_flag_disables_warm_starting_without_changing_results() {
        let warm = run_cli(&sv(&["--diameter", "3", "--threads", "1", "--seed", "9"])).unwrap();
        let cold = run_cli(&sv(&[
            "--diameter",
            "3",
            "--threads",
            "1",
            "--seed",
            "9",
            "--cold",
        ]))
        .unwrap();
        assert!(cold.contains("hit rate 0.0%"), "cold summary:\n{cold}");
        assert!(!warm.contains("hit rate 0.0%"), "warm summary:\n{warm}");
        // The corner table (the physics) is identical; only timing and
        // solver-effort lines may differ between the two modes.
        let physics = |s: &str| {
            let start = s.find("\n\n  corner").unwrap();
            let end = s.find("\n\n  solver:").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(physics(&warm), physics(&cold));
    }

    #[test]
    fn no_bypass_flag_disables_bypass_without_changing_results() {
        let on = run_cli(&sv(&["--diameter", "3", "--threads", "1", "--seed", "9"])).unwrap();
        let off = run_cli(&sv(&[
            "--diameter",
            "3",
            "--threads",
            "1",
            "--seed",
            "9",
            "--no-bypass",
        ]))
        .unwrap();
        assert!(off.contains(" 0 bypasses)"), "no-bypass summary:\n{off}");
        assert!(on.contains("stamping: device bypass hit rate"));
        // Bypass is a pure speed knob: every physics number in the corner
        // table is byte-identical with it on or off.
        let physics = |s: &str| {
            let start = s.find("\n\n  corner").unwrap();
            let end = s.find("\n\n  solver:").unwrap();
            s[start..end].to_string()
        };
        assert_eq!(physics(&on), physics(&off));
    }

    #[test]
    fn zero_yield_campaign_reports_exit_code_2() {
        // nan=1 corrupts every measurement; with retries and robust
        // estimation off, no corner anywhere can pass the spec window.
        let (text, code) = run_cli_status(&sv(&[
            "--diameter",
            "3",
            "--threads",
            "2",
            "--seed",
            "5",
            "--faults",
            "nan=1",
            "--retries",
            "0",
            "--no-robust",
        ]))
        .unwrap();
        assert_eq!(code, 2, "summary:\n{text}");
        assert!(text.contains("ZERO YIELD"), "summary:\n{text}");

        let (ok_text, ok_code) =
            run_cli_status(&sv(&["--diameter", "3", "--threads", "2", "--seed", "5"])).unwrap();
        assert_eq!(ok_code, 0, "summary:\n{ok_text}");
        assert!(!ok_text.contains("ZERO YIELD"));
    }

    #[test]
    fn help_documents_the_exit_code_contract() {
        let (text, code) = run_cli_status(&sv(&["--help"])).unwrap();
        assert_eq!(code, 0);
        assert!(text.contains("Exit codes:"), "help:\n{text}");
        assert!(text.contains("yield is zero"), "help:\n{text}");
    }
}
