//! FIG6 — the characteristic straights: best fit (C1), analytical with
//! sensor temperatures (C2), analytical with dVBE-computed die
//! temperatures (C3).
//!
//! The virtual silicon carries everything the real die carried:
//! self-heating through the package, a dVBE readout-chain offset, the QB
//! substrate parasitic. The three extraction routes then consume exactly
//! the data a real bench would give them, and the Fig.-6 geometry emerges:
//! C1 and C2 coincide (same temperatures in, equivalent mathematics), C3
//! sits apart (different — die — temperatures in).

use icvbe_core::bestfit;
use icvbe_core::data::VbeCurve;
use icvbe_core::meijer::{self, MeijerMeasurement, MeijerPairing, MeijerPoint};
use icvbe_core::straight::CharacteristicStraight;
use icvbe_core::tempcomp::{temperature_from_dvbe_corrected, PairCurrents};
use icvbe_core::ExtractedPair;
use icvbe_instrument::bench::{BenchError, PairCampaignPoint, TestStructureBench};
use icvbe_instrument::montecarlo::{DieSample, SampleFactory};
use icvbe_units::{Ampere, Celsius, Kelvin};

use crate::render::{AsciiPlot, Table};

/// The XTI grid of the Fig.-6 abscissa.
#[must_use]
pub fn xti_grid() -> Vec<f64> {
    (0..=12).map(|i| 0.5 + 0.5 * i as f64).collect()
}

/// Result of the FIG6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// C1: best fit of eq. 13 on sensor-temperature `VBE(T)` curves.
    pub c1: CharacteristicStraight,
    /// C2: Meijer equations with sensor temperatures.
    pub c2: CharacteristicStraight,
    /// C3: Meijer equations with dVBE-computed die temperatures.
    pub c3: CharacteristicStraight,
    /// Full 2x2 analytical extraction with sensor temperatures.
    pub extraction_sensor: ExtractedPair,
    /// Full 2x2 analytical extraction with computed temperatures.
    pub extraction_computed: ExtractedPair,
    /// The ground-truth pair of the virtual silicon.
    pub truth: ExtractedPair,
    /// `|C1 - C2|` vertical offset at the truth XTI, eV.
    pub c1_c2_offset: f64,
    /// `|C3 - C2|` vertical offset at the truth XTI, eV.
    pub c3_c2_offset: f64,
    /// Computed die temperatures `(T1, T3)` used by C3.
    pub computed_extremes: (Kelvin, Kelvin),
}

/// The die used by FIG6 and Table 1 (first sample of the seeded lot).
#[must_use]
pub fn reference_sample() -> DieSample {
    SampleFactory::seeded(2002).draw(1)
}

fn curve_from_campaign(points: &[PairCampaignPoint]) -> Result<VbeCurve, BenchError> {
    VbeCurve::from_points(points.iter().map(|p| {
        (
            p.sensor_temperature,
            p.vbe_a,
            Ampere::new(p.ic_a.value().abs().max(1e-18)),
        )
    }))
    .map_err(|e| {
        BenchError::Circuit(icvbe_spice::SpiceError::NoConvergence {
            strategy: format!("curve assembly: {e}"),
            residual: f64::NAN,
        })
    })
}

/// Computes the die temperatures of the cold/hot points from the dVBE
/// readings (eq. 19 with the eq.-20 current correction), referenced to the
/// sensor temperature of the middle point.
fn computed_temperatures(points: &[PairCampaignPoint; 3]) -> Result<(Kelvin, Kelvin), BenchError> {
    let refp = &points[1];
    let t2 = refp.sensor_temperature;
    let compute = |p: &PairCampaignPoint| {
        let x = PairCurrents {
            ica_t: p.ic_a,
            icb_t: p.ic_b,
            ica_ref: refp.ic_a,
            icb_ref: refp.ic_b,
        }
        .x_factor()?;
        temperature_from_dvbe_corrected(p.dvbe, refp.dvbe, t2, x)
    };
    let t1 = compute(&points[0]).map_err(to_bench_error)?;
    let t3 = compute(&points[2]).map_err(to_bench_error)?;
    Ok((t1, t3))
}

fn to_bench_error(e: icvbe_core::ExtractionError) -> BenchError {
    BenchError::Circuit(icvbe_spice::SpiceError::NoConvergence {
        strategy: format!("temperature computation: {e}"),
        residual: f64::NAN,
    })
}

/// Runs the full FIG6 pipeline on the reference die.
///
/// # Errors
///
/// Propagates bench and extraction failures.
pub fn run() -> Result<Fig6Result, BenchError> {
    let sample = reference_sample();
    let mut bench = TestStructureBench::paper_bench(61);
    let truth = ExtractedPair {
        eg: sample.card.eg,
        xti: sample.card.xti,
        rms_residual_volts: 0.0,
    };
    let grid = xti_grid();

    // --- C1: best fit over IC = 1e-8 .. 1e-5 A (paper's range) ---------
    let setpoints: Vec<Celsius> = (0..8)
        .map(|i| Celsius::new(-50.0 + 25.0 * i as f64))
        .collect();
    let mut curves = Vec::new();
    for bias in [1e-8, 1e-7, 1e-6, 1e-5] {
        let pts = bench.run_pair_campaign(&sample, Ampere::new(bias), &setpoints)?;
        curves.push(curve_from_campaign(&pts)?);
    }
    let ref_index = curves[0].closest_index(Kelvin::new(298.15));
    let c1 = bestfit::characteristic_straight(&curves, ref_index, &grid).map_err(to_bench_error)?;

    // --- analytical campaign: -25 / 25 / 75 C at 1 uA -------------------
    let three: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
    let pts = bench.run_pair_campaign(&sample, Ampere::new(1e-6), &three)?;
    let pts: [PairCampaignPoint; 3] = [pts[0], pts[1], pts[2]];

    let sensor_temps = [
        pts[0].sensor_temperature,
        pts[1].sensor_temperature,
        pts[2].sensor_temperature,
    ];
    let m_sensor = measurement(&pts, sensor_temps);
    let c2 = meijer::characteristic_straight(&m_sensor, MeijerPairing::ColdReference, &grid)
        .map_err(to_bench_error)?;
    let extraction_sensor = meijer::extract(&m_sensor).map_err(to_bench_error)?;

    let (t1c, t3c) = computed_temperatures(&pts)?;
    let m_computed = measurement(&pts, [t1c, pts[1].sensor_temperature, t3c]);
    let c3 = meijer::characteristic_straight(&m_computed, MeijerPairing::ColdReference, &grid)
        .map_err(to_bench_error)?;
    let extraction_computed = meijer::extract(&m_computed).map_err(to_bench_error)?;

    let x = truth.xti;
    Ok(Fig6Result {
        c1_c2_offset: (c1.eg_at(x) - c2.eg_at(x)).abs(),
        c3_c2_offset: (c3.eg_at(x) - c2.eg_at(x)).abs(),
        c1,
        c2,
        c3,
        extraction_sensor,
        extraction_computed,
        truth,
        computed_extremes: (t1c, t3c),
    })
}

fn measurement(pts: &[PairCampaignPoint; 3], temps: [Kelvin; 3]) -> MeijerMeasurement {
    let mk = |p: &PairCampaignPoint, t: Kelvin| MeijerPoint {
        temperature: t,
        vbe: p.vbe_a,
        ic: p.ic_a,
    };
    MeijerMeasurement {
        cold: mk(&pts[0], temps[0]),
        reference: mk(&pts[1], temps[1]),
        hot: mk(&pts[2], temps[2]),
    }
}

/// Renders the report.
#[must_use]
pub fn render(r: &Fig6Result) -> String {
    let mut out = String::from("FIG6: characteristic straights EG(XTI)\n\n");
    let mut t = Table::new(vec![
        "line".into(),
        "slope [meV/XTI]".into(),
        "EG at XTI* [eV]".into(),
        "R^2".into(),
    ]);
    for (name, s) in [
        ("C1 best fit", &r.c1),
        ("C2 sensor T", &r.c2),
        ("C3 computed T", &r.c3),
    ] {
        t.add_row(vec![
            name.into(),
            format!("{:.2}", s.slope() * 1e3),
            format!("{:.4}", s.eg_at(r.truth.xti)),
            format!("{:.6}", s.r_squared()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nground truth: EG = {:.4} eV, XTI = {:.2}\n",
        r.truth.eg.value(),
        r.truth.xti
    ));
    out.push_str(&format!(
        "2x2 extraction, sensor T:   EG = {:.4} eV, XTI = {:.2}\n",
        r.extraction_sensor.eg.value(),
        r.extraction_sensor.xti
    ));
    out.push_str(&format!(
        "2x2 extraction, computed T: EG = {:.4} eV, XTI = {:.2}\n",
        r.extraction_computed.eg.value(),
        r.extraction_computed.xti
    ));
    out.push_str(&format!(
        "offsets at XTI*: |C1-C2| = {:.2} meV, |C3-C2| = {:.2} meV\n",
        r.c1_c2_offset * 1e3,
        r.c3_c2_offset * 1e3
    ));
    out.push_str(&format!(
        "computed die temperatures: T1 = {:.2} K, T3 = {:.2} K\n\n",
        r.computed_extremes.0.value(),
        r.computed_extremes.1.value()
    ));
    let mut plot = AsciiPlot::new("Fig. 6 — EG(XTI) characteristic straights");
    plot.add_series("1: C1 best fit", r.c1.points().to_vec());
    plot.add_series("2: C2 sensor", r.c2.points().to_vec());
    plot.add_series("3: C3 computed", r.c3.points().to_vec());
    out.push_str(&plot.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c1_and_c2_nearly_coincide() {
        // The paper: "the best-fit straight (C1) is in good correlation
        // with the analytical one (C2)" — same temperatures in, same line
        // out.
        let r = run().unwrap();
        assert!(
            r.c1_c2_offset < 4e-3,
            "C1/C2 split by {} meV",
            r.c1_c2_offset * 1e3
        );
    }

    #[test]
    fn c3_is_clearly_separated() {
        // The computed (die) temperatures move the straight visibly.
        let r = run().unwrap();
        assert!(
            r.c3_c2_offset > 3.0 * r.c1_c2_offset.max(1e-4),
            "C3 offset {} meV vs C1/C2 {} meV",
            r.c3_c2_offset * 1e3,
            r.c1_c2_offset * 1e3
        );
    }

    #[test]
    fn all_straights_fall_with_xti() {
        let r = run().unwrap();
        for (name, s) in [("C1", &r.c1), ("C2", &r.c2), ("C3", &r.c3)] {
            assert!(
                s.slope() < -0.01 && s.slope() > -0.05,
                "{name} slope {}",
                s.slope()
            );
            assert!(s.r_squared() > 0.999, "{name} is not straight");
        }
    }

    #[test]
    fn computed_temperatures_see_the_self_heated_die() {
        let r = run().unwrap();
        let (t1, t3) = r.computed_extremes;
        // Both extremes sit above their chamber setpoints: the die runs
        // hot, and the dVBE thermometer reports it.
        assert!(t1.value() > 248.15 + 2.0, "T1 computed {t1}");
        assert!(t3.value() > 348.15 + 2.0, "T3 computed {t3}");
        // And the computed span is compressed relative to the 100 K
        // setpoint span (the Table-1 gap pattern seen from the other
        // side).
        let span = t3.value() - t1.value();
        assert!(span < 100.0, "computed span {span}");
    }

    #[test]
    fn render_contains_all_lines() {
        let r = run().unwrap();
        let s = render(&r);
        assert!(s.contains("C1") && s.contains("C2") && s.contains("C3"));
        assert!(s.contains("ground truth"));
    }
}
