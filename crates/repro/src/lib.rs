//! The experiment harness: one module per table/figure of the paper.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — five `EG(T)` models and their 0 K disagreement |
//! | [`fig2`] | Fig. 2 — the PTAT pair-bias principle |
//! | [`fig5`] | Fig. 5 — the `IC(VBE)` family, -50.88..126.9 °C |
//! | [`fig6`] | Fig. 6 — characteristic straights C1/C2/C3 |
//! | [`table1`] | Table 1 — measured vs computed die temperatures, 5 samples |
//! | [`fig8`] | Fig. 8 — `VREF(T)`: silicon vs model cards vs RadjA trim |
//! | [`sensitivity`] | in-text claims: 1%→8%, dT2 < 5 K, A ≈ 0.3 mV |
//!
//! Every `run()` is deterministic (seeded noise everywhere) and every
//! module has a `render()` producing the ASCII report the `repro` binary
//! prints.
//!
//! Beyond the per-artifact modules, [`campaign_cli`] backs the binary's
//! `campaign` subcommand: a wafer-scale parallel extraction campaign
//! (see the `icvbe-campaign` crate) with JSON/CSV artifacts. And
//! [`serve_cli`] backs `serve`/`submit`/`watch` — the campaign-service
//! daemon (`icvbe-serve`) and its clients.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod campaign_cli;
pub mod ext_banba;
pub mod fig1;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod render;
pub mod report;
pub mod sensitivity;
pub mod serve_cli;
pub mod table1;
