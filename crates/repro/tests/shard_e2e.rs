//! End-to-end shard determinism: `repro campaign --shards N` must emit
//! the four deterministic report artifacts byte-identically to the
//! in-process single-run path at every shard and thread count, the
//! adaptive corner scheduler must accept bit-identical probe values on
//! clean wafers, and a killed worker must surface as a typed supervisor
//! error rather than a hang or a silent partial result.
//!
//! These tests spawn the real `repro` binary (the supervisor re-invokes
//! it as the hidden `shard-worker` subcommand), so they cover the full
//! process boundary: request serialization, partial-aggregate checksum
//! framing, and the left-to-right fold in the parent.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

/// The four artifacts whose bytes the determinism contract covers.
/// (`campaign_metrics.json` carries wall-clock timings and is exempt.)
const ARTIFACTS: [&str; 4] = [
    "campaign_aggregate.json",
    "campaign_aggregate.csv",
    "campaign_quarantine.json",
    "campaign_quarantine.csv",
];

/// A fresh scratch directory under the system temp dir, unique per call.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "icvbe-shard-e2e-{}-{}-{}",
        std::process::id(),
        tag,
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

/// Runs `repro campaign` with the given extra args into `out`, asserting
/// success, and returns the captured output for error-path tests.
fn run_campaign(out: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["campaign", "--dies", "12", "--seed", "42"]);
    cmd.args(["--out", out.to_str().expect("utf-8 scratch path")]);
    cmd.args(extra);
    cmd.output().expect("spawn repro campaign")
}

fn run_campaign_ok(out: &Path, extra: &[&str]) {
    let result = run_campaign(out, extra);
    assert!(
        result.status.success(),
        "campaign {extra:?} failed: {}",
        String::from_utf8_lossy(&result.stderr)
    );
}

/// Asserts all four deterministic artifacts in `b` match `a` byte-for-byte.
fn assert_artifacts_identical(a: &Path, b: &Path, context: &str) {
    for name in ARTIFACTS {
        let want = fs::read(a.join(name)).expect("baseline artifact");
        let got = fs::read(b.join(name)).expect("candidate artifact");
        assert!(
            want == got,
            "{name} differs for {context} (baseline {} vs candidate {})",
            a.display(),
            b.display()
        );
    }
}

#[test]
fn sharded_artifacts_are_byte_identical_across_shard_and_thread_counts() {
    let baseline = scratch("baseline");
    run_campaign_ok(&baseline, &["--threads", "2"]);

    for shards in [1usize, 2, 4, 8] {
        for threads in [1usize, 2] {
            let out = scratch("matrix");
            run_campaign_ok(
                &out,
                &[
                    "--shards",
                    &shards.to_string(),
                    "--threads",
                    &threads.to_string(),
                ],
            );
            assert_artifacts_identical(
                &baseline,
                &out,
                &format!("shards={shards} threads={threads}"),
            );
            fs::remove_dir_all(&out).expect("clean scratch");
        }
    }
    fs::remove_dir_all(&baseline).expect("clean scratch");
}

#[test]
fn sharded_artifacts_survive_fault_injection_byte_identically() {
    let baseline = scratch("faults-baseline");
    run_campaign_ok(&baseline, &["--threads", "2", "--faults", "light"]);

    for shards in [2usize, 8] {
        let out = scratch("faults");
        run_campaign_ok(
            &out,
            &[
                "--threads",
                "2",
                "--faults",
                "light",
                "--shards",
                &shards.to_string(),
            ],
        );
        assert_artifacts_identical(&baseline, &out, &format!("faults=light shards={shards}"));
        fs::remove_dir_all(&out).expect("clean scratch");
    }
    fs::remove_dir_all(&baseline).expect("clean scratch");
}

/// Extracts the stats object for the first (probe) corner of the
/// aggregate JSON: everything from the first `"eg_ev"` key through the
/// end of that corner's `"straight"` line. Byte equality of this span
/// means the accepted (EG, XTI) populations are bit-identical.
fn probe_corner_stats(json: &str) -> &str {
    let start = json.find("\"eg_ev\"").expect("probe corner eg_ev block");
    let straight = json[start..]
        .find("\"straight\"")
        .expect("probe corner straight block");
    let end = start + straight + json[start + straight..].find('\n').expect("line end");
    &json[start..end]
}

#[test]
fn adaptive_accepts_bit_identical_probe_values_on_a_clean_wafer() {
    let exhaustive = scratch("exhaustive");
    let adaptive = scratch("adaptive");
    run_campaign_ok(&exhaustive, &["--threads", "2", "--exhaustive"]);
    run_campaign_ok(&adaptive, &["--threads", "2", "--adaptive"]);

    let ex = fs::read_to_string(exhaustive.join("campaign_aggregate.json")).expect("exhaustive");
    let ad = fs::read_to_string(adaptive.join("campaign_aggregate.json")).expect("adaptive");

    // The probe corner's accepted (EG, XTI) statistics are bit-identical:
    // adaptive never re-orders or re-seeds the corner it actually runs.
    assert_eq!(
        probe_corner_stats(&ex),
        probe_corner_stats(&ad),
        "adaptive probe corner drifted from the exhaustive plan"
    );

    // A clean wafer never flags escalation, so every non-probe corner is
    // skipped — and the exhaustive ablation never skips anything.
    assert!(
        ad.contains("\"skipped\":12"),
        "adaptive run on a clean wafer should skip all 12 dies of each trailing corner"
    );
    assert!(
        !ex.contains("\"skipped\""),
        "exhaustive ablation must not skip corners"
    );

    fs::remove_dir_all(&exhaustive).expect("clean scratch");
    fs::remove_dir_all(&adaptive).expect("clean scratch");
}

#[test]
fn killed_shard_worker_surfaces_a_typed_supervisor_error() {
    let out = scratch("killed");
    let result = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["campaign", "--dies", "12", "--seed", "42", "--threads", "1"])
        .args(["--shards", "4", "--out", out.to_str().expect("utf-8 path")])
        .env("ICVBE_SHARD_FAIL", "2")
        .output()
        .expect("spawn repro campaign");
    assert!(
        !result.status.success(),
        "supervisor must fail when a worker dies mid-slice"
    );
    let stderr = String::from_utf8_lossy(&result.stderr);
    assert!(
        stderr.contains("shard worker 2 exited with code 3"),
        "expected the typed worker-exit error on stderr, got: {stderr}"
    );
    // The supervisor must not write partial artifacts on failure.
    for name in ARTIFACTS {
        assert!(
            !out.join(name).exists(),
            "{name} must not be written after a failed sharded run"
        );
    }
    let _ = fs::remove_dir_all(&out);
}
