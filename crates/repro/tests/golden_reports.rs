//! Golden-report snapshots: `render()` output of deterministic artifacts
//! is pinned byte-for-byte against fixtures in `tests/fixtures/`.
//!
//! These reports feed the README and the paper-comparison workflow, so a
//! formatting or numeric drift must be a conscious decision: regenerate
//! the fixtures (write `render()` output to the fixture paths) and review
//! the diff when the change is intended.

use icvbe_repro::{fig1, table1};

#[test]
fn fig1_render_matches_golden_fixture() {
    let rendered = fig1::render(&fig1::run());
    let golden = include_str!("fixtures/fig1.txt");
    assert_eq!(
        rendered, golden,
        "fig1 report drifted from tests/fixtures/fig1.txt — regenerate \
         the fixture if the change is intentional"
    );
}

#[test]
fn table1_render_matches_golden_fixture() {
    let report = table1::run().expect("table1 run");
    let rendered = table1::render(&report);
    let golden = include_str!("fixtures/table1.txt");
    assert_eq!(
        rendered, golden,
        "table1 report drifted from tests/fixtures/table1.txt — regenerate \
         the fixture if the change is intentional"
    );
}

#[test]
fn golden_reports_are_stable_across_runs() {
    assert_eq!(fig1::render(&fig1::run()), fig1::render(&fig1::run()));
    let a = table1::render(&table1::run().expect("run a"));
    let b = table1::render(&table1::run().expect("run b"));
    assert_eq!(a, b);
}
