//! Property-based tests for the device-physics laws.

use icvbe_devphys::eg::{EgModel, LogEgModel, VarshniEgModel};
use icvbe_devphys::narrowing::BandgapNarrowing;
use icvbe_devphys::saturation::SpiceIsLaw;
use icvbe_devphys::vbe::{eq13_from_spice_law, vbe_for_current};
use icvbe_units::{Ampere, ElectronVolt, Kelvin};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Varshni models decrease monotonically for any physical constants.
    #[test]
    fn varshni_is_monotone_decreasing(
        eg0 in 1.0_f64..1.3,
        alpha in 1e-4_f64..1e-3,
        beta in 100.0_f64..2000.0,
        t in 1.0_f64..440.0,
    ) {
        let m = VarshniEgModel::new(ElectronVolt::new(eg0), alpha, beta);
        let a = m.eg(Kelvin::new(t)).value();
        let b = m.eg(Kelvin::new(t + 10.0)).value();
        prop_assert!(b < a);
    }

    /// The log model's intercept is exactly its EG(0) constant.
    #[test]
    fn log_model_intercept_is_exact(
        eg0 in 1.0_f64..1.3,
        a in 1e-5_f64..1e-3,
        b in -3e-4_f64..-1e-5,
    ) {
        let m = LogEgModel::new(ElectronVolt::new(eg0), a, b);
        prop_assert!((m.eg_at_zero().value() - eg0).abs() < 1e-15);
    }

    /// Narrowing reduces the bandgap by exactly its magnitude.
    #[test]
    fn narrowing_is_exact_subtraction(eg in 1.0_f64..1.3, d in 0.0_f64..0.2) {
        let n = BandgapNarrowing::new(ElectronVolt::new(d));
        let out = n.apply(ElectronVolt::new(eg));
        prop_assert!((out.value() - (eg - d)).abs() < 1e-15);
    }

    /// The eq.-1 law is exactly IS at the reference temperature.
    #[test]
    fn is_law_anchors_at_reference(
        is_exp in -18.0_f64..-14.0,
        eg in 0.8_f64..1.3,
        xti in 0.0_f64..6.0,
        t0 in 250.0_f64..350.0,
    ) {
        let is = 10f64.powf(is_exp);
        let law = SpiceIsLaw::new(Ampere::new(is), Kelvin::new(t0), ElectronVolt::new(eg), xti);
        let at_ref = law.is_at(Kelvin::new(t0)).value();
        prop_assert!((at_ref - is).abs() / is < 1e-14);
    }

    /// VBE from the law inverts back to the same collector current.
    #[test]
    fn vbe_inversion_roundtrips(
        eg in 0.9_f64..1.3,
        xti in 0.5_f64..5.0,
        ic_exp in -9.0_f64..-4.0,
        t in 220.0_f64..400.0,
    ) {
        let law = SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(eg),
            xti,
        );
        let ic = 10f64.powf(ic_exp);
        let t = Kelvin::new(t);
        let vbe = vbe_for_current(&law, Ampere::new(ic), t);
        // Invert: IC = IS e^{v/vt}.
        let vt = icvbe_units::thermal_voltage(t).value();
        let back = law.is_at(t).value() * (vbe.value() / vt).exp();
        prop_assert!((back - ic).abs() / ic < 1e-12);
    }

    /// The eq.-13 closed form agrees with the direct inversion at every
    /// temperature, for any card.
    #[test]
    fn eq13_equals_direct_inversion(
        eg in 0.9_f64..1.3,
        xti in 0.5_f64..5.0,
        t in 220.0_f64..400.0,
    ) {
        let law = SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(eg),
            xti,
        );
        let ic = Ampere::new(1e-6);
        let model = eq13_from_spice_law(&law, ic, Kelvin::new(298.15));
        let t = Kelvin::new(t);
        let closed = model.vbe(t, 1.0).value();
        let direct = vbe_for_current(&law, ic, t).value();
        prop_assert!((closed - direct).abs() < 1e-12);
    }

    /// VBE always falls with temperature at fixed current (CTAT), for any
    /// physical card.
    #[test]
    fn vbe_is_ctat(
        eg in 0.9_f64..1.3,
        xti in 0.5_f64..5.0,
        t in 220.0_f64..390.0,
    ) {
        let law = SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(eg),
            xti,
        );
        let ic = Ampere::new(1e-6);
        let a = vbe_for_current(&law, ic, Kelvin::new(t)).value();
        let b = vbe_for_current(&law, ic, Kelvin::new(t + 5.0)).value();
        prop_assert!(b < a, "VBE rose with T for eg {eg}, xti {xti}");
    }
}
