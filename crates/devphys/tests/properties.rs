//! Randomized property tests for the device-physics laws, driven by the
//! in-tree seeded PRNG (the workspace builds hermetically, so there is no
//! `proptest`; each test sweeps a fixed number of deterministic cases).

use icvbe_devphys::eg::{EgModel, LogEgModel, VarshniEgModel};
use icvbe_devphys::narrowing::BandgapNarrowing;
use icvbe_devphys::saturation::SpiceIsLaw;
use icvbe_devphys::vbe::{eq13_from_spice_law, vbe_for_current};
use icvbe_numerics::rng::Xoshiro256PlusPlus;
use icvbe_units::{Ampere, ElectronVolt, Kelvin};

const CASES: usize = 64;

/// Varshni models decrease monotonically for any physical constants.
#[test]
fn varshni_is_monotone_decreasing() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0DE0_0001);
    for _ in 0..CASES {
        let eg0 = rng.uniform(1.0, 1.3);
        let alpha = rng.uniform(1e-4, 1e-3);
        let beta = rng.uniform(100.0, 2000.0);
        let t = rng.uniform(1.0, 440.0);
        let m = VarshniEgModel::new(ElectronVolt::new(eg0), alpha, beta);
        let a = m.eg(Kelvin::new(t)).value();
        let b = m.eg(Kelvin::new(t + 10.0)).value();
        assert!(b < a, "Varshni not decreasing at {t} K (eg0 {eg0})");
    }
}

/// The log model's intercept is exactly its EG(0) constant.
#[test]
fn log_model_intercept_is_exact() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0DE0_0002);
    for _ in 0..CASES {
        let eg0 = rng.uniform(1.0, 1.3);
        let a = rng.uniform(1e-5, 1e-3);
        let b = rng.uniform(-3e-4, -1e-5);
        let m = LogEgModel::new(ElectronVolt::new(eg0), a, b);
        assert!((m.eg_at_zero().value() - eg0).abs() < 1e-15);
    }
}

/// Narrowing reduces the bandgap by exactly its magnitude.
#[test]
fn narrowing_is_exact_subtraction() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0DE0_0003);
    for _ in 0..CASES {
        let eg = rng.uniform(1.0, 1.3);
        let d = rng.uniform(0.0, 0.2);
        let n = BandgapNarrowing::new(ElectronVolt::new(d));
        let out = n.apply(ElectronVolt::new(eg));
        assert!((out.value() - (eg - d)).abs() < 1e-15);
    }
}

/// The eq.-1 law is exactly IS at the reference temperature.
#[test]
fn is_law_anchors_at_reference() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0DE0_0004);
    for _ in 0..CASES {
        let is = 10f64.powf(rng.uniform(-18.0, -14.0));
        let eg = rng.uniform(0.8, 1.3);
        let xti = rng.uniform(0.0, 6.0);
        let t0 = rng.uniform(250.0, 350.0);
        let law = SpiceIsLaw::new(Ampere::new(is), Kelvin::new(t0), ElectronVolt::new(eg), xti);
        let at_ref = law.is_at(Kelvin::new(t0)).value();
        assert!((at_ref - is).abs() / is < 1e-14);
    }
}

/// VBE from the law inverts back to the same collector current.
#[test]
fn vbe_inversion_roundtrips() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0DE0_0005);
    for _ in 0..CASES {
        let eg = rng.uniform(0.9, 1.3);
        let xti = rng.uniform(0.5, 5.0);
        let ic = 10f64.powf(rng.uniform(-9.0, -4.0));
        let t = Kelvin::new(rng.uniform(220.0, 400.0));
        let law = SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(eg),
            xti,
        );
        let vbe = vbe_for_current(&law, Ampere::new(ic), t);
        // Invert: IC = IS e^{v/vt}.
        let vt = icvbe_units::thermal_voltage(t).value();
        let back = law.is_at(t).value() * (vbe.value() / vt).exp();
        assert!((back - ic).abs() / ic < 1e-12);
    }
}

/// The eq.-13 closed form agrees with the direct inversion at every
/// temperature, for any card.
#[test]
fn eq13_equals_direct_inversion() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0DE0_0006);
    for _ in 0..CASES {
        let eg = rng.uniform(0.9, 1.3);
        let xti = rng.uniform(0.5, 5.0);
        let t = Kelvin::new(rng.uniform(220.0, 400.0));
        let law = SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(eg),
            xti,
        );
        let ic = Ampere::new(1e-6);
        let model = eq13_from_spice_law(&law, ic, Kelvin::new(298.15));
        let closed = model.vbe(t, 1.0).value();
        let direct = vbe_for_current(&law, ic, t).value();
        assert!((closed - direct).abs() < 1e-12);
    }
}

/// VBE always falls with temperature at fixed current (CTAT), for any
/// physical card.
#[test]
fn vbe_is_ctat() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x0DE0_0007);
    for _ in 0..CASES {
        let eg = rng.uniform(0.9, 1.3);
        let xti = rng.uniform(0.5, 5.0);
        let t = rng.uniform(220.0, 390.0);
        let law = SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(eg),
            xti,
        );
        let ic = Ampere::new(1e-6);
        let a = vbe_for_current(&law, ic, Kelvin::new(t)).value();
        let b = vbe_for_current(&law, ic, Kelvin::new(t + 5.0)).value();
        assert!(b < a, "VBE rose with T for eg {eg}, xti {xti}");
    }
}
