//! Additional published `EG(T)` parameterizations beyond the paper's five
//! (extension material): Bludau's low-temperature polynomial and Pässler's
//! analytic model.
//!
//! Both slot into the same [`EgModel`] trait so every analysis that
//! consumes the Fig.-1 models (0 K intercepts, linearization overshoot,
//! SPICE identification) can be repeated against newer silicon data.

use icvbe_units::{ElectronVolt, Kelvin};

use crate::eg::EgModel;

/// Bludau-Onton-Heinke piecewise polynomial (Si, 0..300 K), extended above
/// 300 K with its upper-segment polynomial.
///
/// `EG(T) = A + B T + C T²` with two segments switching at 190 K:
/// below, `(1.1700, 1.059e-5, -6.05e-7)`; above,
/// `(1.1785, -9.025e-5, -3.05e-7)`.
///
/// # Examples
///
/// ```
/// use icvbe_devphys::eg::EgModel;
/// use icvbe_devphys::eg_extra::BludauEgModel;
/// use icvbe_units::Kelvin;
///
/// let m = BludauEgModel::new();
/// assert!((m.eg_at_zero().value() - 1.17).abs() < 1e-12);
/// let room = m.eg(Kelvin::new(300.0)).value();
/// assert!(room > 1.11 && room < 1.13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BludauEgModel;

impl BludauEgModel {
    /// Creates the model (no free parameters).
    #[must_use]
    pub fn new() -> Self {
        BludauEgModel
    }
}

impl EgModel for BludauEgModel {
    fn eg(&self, temperature: Kelvin) -> ElectronVolt {
        let t = temperature.value().max(0.0);
        let (a, b, c) = if t < 190.0 {
            (1.1700, 1.059e-5, -6.05e-7)
        } else {
            (1.1785, -9.025e-5, -3.05e-7)
        };
        ElectronVolt::new(a + b * t + c * t * t)
    }

    fn name(&self) -> &str {
        "Bludau"
    }
}

/// Pässler's analytic model:
///
/// `EG(T) = EG(0) - (a Θ / 2) [ (1 + (2T/Θ)^p)^(1/p) - 1 ]`
///
/// with silicon constants `EG(0) = 1.1701 eV`, `a = 3.23e-4 eV/K`,
/// `Θ = 446 K`, `p = 2.33`. Unlike Varshni's form it has the physically
/// correct plateau at low temperature *and* the exact linear asymptote
/// `-a T` at high temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PasslerEgModel {
    eg_zero: ElectronVolt,
    a: f64,
    theta: f64,
    p: f64,
}

impl PasslerEgModel {
    /// Creates a model from explicit constants.
    #[must_use]
    pub fn new(eg_zero: ElectronVolt, a: f64, theta: f64, p: f64) -> Self {
        PasslerEgModel {
            eg_zero,
            a,
            theta,
            p,
        }
    }

    /// The published silicon constants.
    #[must_use]
    pub fn silicon() -> Self {
        PasslerEgModel {
            eg_zero: ElectronVolt::new(1.1701),
            a: 3.23e-4,
            theta: 446.0,
            p: 2.33,
        }
    }

    /// The high-temperature slope magnitude `a` in eV/K.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }
}

impl EgModel for PasslerEgModel {
    fn eg(&self, temperature: Kelvin) -> ElectronVolt {
        let t = temperature.value().max(0.0);
        let x = 2.0 * t / self.theta;
        let bracket = (1.0 + x.powf(self.p)).powf(1.0 / self.p) - 1.0;
        ElectronVolt::new(self.eg_zero.value() - 0.5 * self.a * self.theta * bracket)
    }

    fn name(&self) -> &str {
        "Passler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eg::VarshniEgModel;

    #[test]
    fn bludau_segments_are_continuous_at_the_switch() {
        let m = BludauEgModel::new();
        let below = m.eg(Kelvin::new(189.999)).value();
        let above = m.eg(Kelvin::new(190.001)).value();
        // The published segments meet to within a fraction of a meV.
        assert!(
            (below - above).abs() < 5e-4,
            "jump {}",
            (below - above).abs()
        );
    }

    #[test]
    fn passler_has_low_temperature_plateau() {
        let m = PasslerEgModel::silicon();
        let slope_cold = m.slope(Kelvin::new(10.0));
        // The -a asymptote is approached well above the phonon temperature
        // Θ = 446 K.
        let slope_hot = m.slope(Kelvin::new(2000.0));
        assert!(slope_cold.abs() < 2e-5, "no plateau: {slope_cold}");
        assert!((slope_hot + m.a()).abs() < 1e-5, "asymptote: {slope_hot}");
    }

    #[test]
    fn extra_models_agree_with_varshni_at_room_temperature() {
        let reference = VarshniEgModel::eg3().eg(Kelvin::new(300.0)).value();
        for (name, v) in [
            (
                "Bludau",
                BludauEgModel::new().eg(Kelvin::new(300.0)).value(),
            ),
            (
                "Passler",
                PasslerEgModel::silicon().eg(Kelvin::new(300.0)).value(),
            ),
        ] {
            assert!(
                (v - reference).abs() < 0.01,
                "{name}(300K) = {v} vs Varshni {reference}"
            );
        }
    }

    #[test]
    fn zero_kelvin_intercepts_cluster_near_1p17() {
        for m in [
            BludauEgModel::new().eg_at_zero().value(),
            PasslerEgModel::silicon().eg_at_zero().value(),
        ] {
            assert!(m > 1.16 && m < 1.18, "intercept {m}");
        }
    }

    #[test]
    fn both_decrease_over_the_measurement_range() {
        for t in (220..390).step_by(20) {
            let t = t as f64;
            assert!(
                BludauEgModel::new().eg(Kelvin::new(t + 10.0)).value()
                    < BludauEgModel::new().eg(Kelvin::new(t)).value()
            );
            assert!(
                PasslerEgModel::silicon().eg(Kelvin::new(t + 10.0)).value()
                    < PasslerEgModel::silicon().eg(Kelvin::new(t)).value()
            );
        }
    }
}
