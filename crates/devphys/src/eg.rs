//! Temperature models of the silicon energy bandgap (paper Fig. 1).
//!
//! Five published parameterizations of `EG(T)` are reproduced:
//!
//! | Curve | Model | Source |
//! |---|---|---|
//! | EG1 | linear, eq. 7: `EG(T) = EG(0) - a T` (EG5 linearized at T0) | paper |
//! | EG2 | Varshni, eq. 8, `alpha = 7.021e-4`, `beta = 1108`, `EG(0) = 1.1557` | Varshni 1967 |
//! | EG3 | Varshni, eq. 8, `alpha = 4.73e-4`, `beta = 636`, `EG(0) = 1.170` | Thurmond 1975 |
//! | EG4 | log, eq. 9, `EG(0) = 1.1663`, `a = 6.141e-4`, `b = -1.307e-4` | Gambetta & Celi 1992 |
//! | EG5 | log, eq. 9, `EG(0) = 1.1774`, `a = 3.042e-4`, `b = -8.459e-5` | Gambetta & Celi 1992 |
//!
//! The paper's headline observation is that the 0 K intercepts disagree —
//! `EG5(0) - EG2(0)` is about 22 meV, which is the whole accuracy budget of
//! a low-voltage bandgap reference.

use icvbe_units::{ElectronVolt, Kelvin};

/// A temperature model of the silicon energy bandgap.
///
/// Implementors are closed-form `EG(T)` curves valid on `[0 K, ~500 K]`.
pub trait EgModel {
    /// Bandgap at the given absolute temperature.
    fn eg(&self, temperature: Kelvin) -> ElectronVolt;

    /// Bandgap at absolute zero (the model's own intercept).
    fn eg_at_zero(&self) -> ElectronVolt {
        self.eg(Kelvin::new(0.0))
    }

    /// Linear extrapolation to 0 K from the tangent at `reference`:
    /// `EG0 = EG(Tref) - Tref * dEG/dT(Tref)`.
    ///
    /// This is the `EG0` arrow of Fig. 1 — the value a *linearized* model
    /// implies for 0 K, which overshoots the true intercept.
    fn extrapolated_eg0(&self, reference: Kelvin) -> ElectronVolt {
        let slope = self.slope(reference);
        ElectronVolt::new(self.eg(reference).value() - reference.value() * slope)
    }

    /// Numerical derivative `dEG/dT` in eV/K at `temperature`.
    fn slope(&self, temperature: Kelvin) -> f64 {
        let t = temperature.value();
        let h = (t.abs() * 1e-6).max(1e-4);
        let hi = self.eg(Kelvin::new(t + h)).value();
        let lo = self.eg(Kelvin::new((t - h).max(0.0))).value();
        (hi - lo) / (h + (t - (t - h).max(0.0)))
    }

    /// Short human-readable name ("EG1" ... "EG5").
    fn name(&self) -> &str;
}

/// Eq. 7 — the linear model `EG(T) = EG(0) - a T`.
///
/// # Examples
///
/// ```
/// use icvbe_devphys::eg::{EgModel, LinearEgModel};
/// use icvbe_units::{ElectronVolt, Kelvin};
///
/// let m = LinearEgModel::new(ElectronVolt::new(1.20), 2.73e-4);
/// assert!((m.eg(Kelvin::new(300.0)).value() - (1.20 - 0.0819)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearEgModel {
    eg_zero: ElectronVolt,
    /// Slope magnitude `a` in eV/K (the model subtracts `a T`).
    a: f64,
    name: &'static str,
}

impl LinearEgModel {
    /// Creates a linear model with intercept `eg_zero` and slope `a` (eV/K).
    #[must_use]
    pub fn new(eg_zero: ElectronVolt, a: f64) -> Self {
        LinearEgModel {
            eg_zero,
            a,
            name: "EG1",
        }
    }

    /// EG1 of Fig. 1: the linearization of [`LogEgModel::eg5`] at the
    /// reference temperature (300 K), i.e. the tangent line extended over
    /// the full range.
    #[must_use]
    pub fn eg1() -> Self {
        let base = LogEgModel::eg5();
        let t0 = Kelvin::new(300.0);
        let slope = base.slope(t0);
        LinearEgModel {
            eg_zero: base.extrapolated_eg0(t0),
            a: -slope,
            name: "EG1",
        }
    }

    /// The slope magnitude `a` in eV/K.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }
}

impl EgModel for LinearEgModel {
    fn eg(&self, temperature: Kelvin) -> ElectronVolt {
        ElectronVolt::new(self.eg_zero.value() - self.a * temperature.value())
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Eq. 8 — the Varshni model `EG(T) = EG(0) - alpha T^2 / (T + beta)`.
///
/// # Examples
///
/// ```
/// use icvbe_devphys::eg::{EgModel, VarshniEgModel};
/// use icvbe_units::Kelvin;
///
/// let eg2 = VarshniEgModel::eg2();
/// // Varshni 1967 gives ~1.115 eV at room temperature.
/// let v = eg2.eg(Kelvin::new(300.0)).value();
/// assert!(v > 1.10 && v < 1.13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarshniEgModel {
    eg_zero: ElectronVolt,
    alpha: f64,
    beta: f64,
    name: &'static str,
}

impl VarshniEgModel {
    /// Creates a Varshni model from its three constants
    /// (`alpha` in eV/K, `beta` in K).
    #[must_use]
    pub fn new(eg_zero: ElectronVolt, alpha: f64, beta: f64) -> Self {
        VarshniEgModel {
            eg_zero,
            alpha,
            beta,
            name: "Varshni",
        }
    }

    /// EG2 of Fig. 1: Varshni 1967 constants
    /// (`EG(0) = 1.1557 eV`, `alpha = 7.021e-4 eV/K`, `beta = 1108 K`).
    #[must_use]
    pub fn eg2() -> Self {
        VarshniEgModel {
            eg_zero: ElectronVolt::new(1.1557),
            alpha: 7.021e-4,
            beta: 1108.0,
            name: "EG2",
        }
    }

    /// EG3 of Fig. 1: Thurmond 1975 constants
    /// (`EG(0) = 1.170 eV`, `alpha = 4.73e-4 eV/K`, `beta = 636 K`).
    #[must_use]
    pub fn eg3() -> Self {
        VarshniEgModel {
            eg_zero: ElectronVolt::new(1.170),
            alpha: 4.73e-4,
            beta: 636.0,
            name: "EG3",
        }
    }
}

impl EgModel for VarshniEgModel {
    fn eg(&self, temperature: Kelvin) -> ElectronVolt {
        let t = temperature.value();
        ElectronVolt::new(self.eg_zero.value() - self.alpha * t * t / (t + self.beta))
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// Eq. 9 — the log model `EG(T) = EG(0) + a T + b T ln T`.
///
/// Unlike Varshni's form, this model makes the SPICE eq.-1 law *exactly*
/// derivable from the physics (eqs. 10-12): the `b T ln T` term becomes the
/// `-b/k` contribution to `XTI` and the rest folds into the effective `EG`.
///
/// # Examples
///
/// ```
/// use icvbe_devphys::eg::{EgModel, LogEgModel};
/// use icvbe_units::Kelvin;
///
/// let eg4 = LogEgModel::eg4();
/// assert!((eg4.eg_at_zero().value() - 1.1663).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogEgModel {
    eg_zero: ElectronVolt,
    /// Linear coefficient `a` in eV/K.
    a: f64,
    /// Logarithmic coefficient `b` in eV/K.
    b: f64,
    name: &'static str,
}

impl LogEgModel {
    /// Creates a log model from its constants (`a`, `b` in eV/K).
    #[must_use]
    pub fn new(eg_zero: ElectronVolt, a: f64, b: f64) -> Self {
        LogEgModel {
            eg_zero,
            a,
            b,
            name: "LogEg",
        }
    }

    /// EG4 of Fig. 1: `EG(0) = 1.1663 eV`, `a = 6.141e-4 eV/K`,
    /// `b = -1.307e-4 eV/K` (Gambetta & Celi).
    #[must_use]
    pub fn eg4() -> Self {
        LogEgModel {
            eg_zero: ElectronVolt::new(1.1663),
            a: 6.141e-4,
            b: -1.307e-4,
            name: "EG4",
        }
    }

    /// EG5 of Fig. 1: `EG(0) = 1.1774 eV`, `a = 3.042e-4 eV/K`,
    /// `b = -8.459e-5 eV/K` (Gambetta & Celi).
    #[must_use]
    pub fn eg5() -> Self {
        LogEgModel {
            eg_zero: ElectronVolt::new(1.1774),
            a: 3.042e-4,
            b: -8.459e-5,
            name: "EG5",
        }
    }

    /// The logarithmic coefficient `b` in eV/K, which feeds the `-b/k` term
    /// of the eq.-12 `XTI` identification.
    #[must_use]
    pub fn b(&self) -> f64 {
        self.b
    }

    /// The linear coefficient `a` in eV/K.
    #[must_use]
    pub fn a(&self) -> f64 {
        self.a
    }
}

impl EgModel for LogEgModel {
    fn eg(&self, temperature: Kelvin) -> ElectronVolt {
        let t = temperature.value();
        // T ln T -> 0 as T -> 0+, so the intercept is exactly eg_zero.
        let tlnt = if t > 0.0 { t * t.ln() } else { 0.0 };
        ElectronVolt::new(self.eg_zero.value() + self.a * t + self.b * tlnt)
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// All five Fig.-1 models, boxed, in curve order EG1..EG5.
#[must_use]
pub fn figure1_models() -> Vec<Box<dyn EgModel + Send + Sync>> {
    vec![
        Box::new(LinearEgModel::eg1()),
        Box::new(VarshniEgModel::eg2()),
        Box::new(VarshniEgModel::eg3()),
        Box::new(LogEgModel::eg4()),
        Box::new(LogEgModel::eg5()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varshni_intercepts_match_constants() {
        assert!((VarshniEgModel::eg2().eg_at_zero().value() - 1.1557).abs() < 1e-12);
        assert!((VarshniEgModel::eg3().eg_at_zero().value() - 1.170).abs() < 1e-12);
    }

    #[test]
    fn paper_quotes_22mev_gap_between_eg5_and_eg2_at_zero() {
        let gap =
            LogEgModel::eg5().eg_at_zero().value() - VarshniEgModel::eg2().eg_at_zero().value();
        // 1.1774 - 1.1557 = 21.7 meV, the paper rounds to "about 22mV".
        assert!((gap - 0.0217).abs() < 1e-12);
    }

    #[test]
    fn all_models_decrease_with_temperature_above_50k() {
        for m in figure1_models() {
            let lo = m.eg(Kelvin::new(50.0)).value();
            let hi = m.eg(Kelvin::new(450.0)).value();
            assert!(hi < lo, "{} is not decreasing", m.name());
        }
    }

    #[test]
    fn room_temperature_values_are_physical() {
        // Every published model should land in 1.08..1.15 eV at 300 K.
        for m in figure1_models() {
            let v = m.eg(Kelvin::new(300.0)).value();
            assert!(v > 1.08 && v < 1.15, "{}(300K) = {v}", m.name());
        }
    }

    #[test]
    fn eg0_extrapolation_overshoots_true_intercept() {
        // Fig. 1: the tangent extrapolation EG0 of EG5 lies above EG5(0).
        let eg5 = LogEgModel::eg5();
        let eg0 = eg5.extrapolated_eg0(Kelvin::new(300.0)).value();
        assert!(eg0 > eg5.eg_at_zero().value());
        // The magnified discrepancy the paper mentions: tens of meV.
        assert!(eg0 - eg5.eg_at_zero().value() > 0.01);
    }

    #[test]
    fn eg1_is_tangent_to_eg5_at_300k() {
        let eg1 = LinearEgModel::eg1();
        let eg5 = LogEgModel::eg5();
        let t0 = Kelvin::new(300.0);
        assert!((eg1.eg(t0).value() - eg5.eg(t0).value()).abs() < 1e-6);
        assert!((eg1.slope(t0) - eg5.slope(t0)).abs() < 1e-8);
    }

    #[test]
    fn log_model_slope_matches_analytic_derivative() {
        let m = LogEgModel::eg4();
        let t = 250.0_f64;
        let analytic = m.a() + m.b() * (t.ln() + 1.0);
        assert!((m.slope(Kelvin::new(t)) - analytic).abs() < 1e-8);
    }

    #[test]
    fn varshni_slope_is_zero_at_zero_kelvin() {
        let m = VarshniEgModel::eg2();
        assert!(m.slope(Kelvin::new(0.0)).abs() < 1e-6);
    }

    #[test]
    fn model_names_are_the_figure_labels() {
        let names: Vec<String> = figure1_models()
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        assert_eq!(names, ["EG1", "EG2", "EG3", "EG4", "EG5"]);
    }
}
