//! Minority-carrier transport in the base (eqs. 4-5).
//!
//! The electron diffusivity in the base follows the mobility through the
//! Einstein relation, `Dnb(T) = Dnb(T0) (T/T0)^(1-EN)` (eq. 4), and the
//! base Gummel number follows `NG(T) = NG(T0) (T/T0)^Erho` (eq. 5). Their
//! exponents `EN` and `Erho` enter the `XTI` identification of eq. 12.

use icvbe_units::Kelvin;

/// Temperature behaviour of the mean base diffusivity (eq. 4).
///
/// # Examples
///
/// ```
/// use icvbe_devphys::transport::BaseDiffusivity;
/// use icvbe_units::Kelvin;
///
/// let d = BaseDiffusivity::silicon_npn_base();
/// let r = d.value_at(Kelvin::new(400.0)) / d.value_at(Kelvin::new(300.0));
/// // EN ~ 2.4 in doped silicon => diffusivity FALLS with temperature.
/// assert!(r < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseDiffusivity {
    /// Diffusivity at the reference temperature, cm²/s.
    d_ref: f64,
    /// Reference temperature.
    t_ref: Kelvin,
    /// Mobility temperature exponent `EN` (mobility ~ T^-EN).
    en: f64,
}

impl BaseDiffusivity {
    /// Creates a diffusivity law from its reference value and exponent.
    #[must_use]
    pub fn new(d_ref: f64, t_ref: Kelvin, en: f64) -> Self {
        BaseDiffusivity { d_ref, t_ref, en }
    }

    /// Typical silicon NPN base: `Dnb(300 K) = 20 cm²/s`, `EN = 2.4`
    /// (phonon-dominated mobility in a moderately doped base).
    #[must_use]
    pub fn silicon_npn_base() -> Self {
        BaseDiffusivity {
            d_ref: 20.0,
            t_ref: Kelvin::new(300.0),
            en: 2.4,
        }
    }

    /// Heavily doped base where impurity scattering flattens the mobility:
    /// `EN ~ 1.5`.
    #[must_use]
    pub fn heavily_doped_base() -> Self {
        BaseDiffusivity {
            d_ref: 10.0,
            t_ref: Kelvin::new(300.0),
            en: 1.5,
        }
    }

    /// The mobility exponent `EN`.
    #[must_use]
    pub fn en(&self) -> f64 {
        self.en
    }

    /// Diffusivity at `temperature` per eq. 4:
    /// `D(T) = D(T0) (T/T0)^(1-EN)` (one power of `T` from the Einstein
    /// relation `D = (kT/q) mu`, `mu ~ T^-EN`).
    #[must_use]
    pub fn value_at(&self, temperature: Kelvin) -> f64 {
        self.d_ref * temperature.ratio_to(self.t_ref).powf(1.0 - self.en)
    }
}

/// Temperature behaviour of the base Gummel number (eq. 5).
///
/// The Gummel number is the integrated base doping `∫ Nab dx`; its weak
/// temperature dependence (incomplete ionization, base-width modulation)
/// is modelled as a power law with exponent `Erho`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GummelNumber {
    /// Gummel number at the reference temperature, cm^-2.
    ng_ref: f64,
    /// Reference temperature.
    t_ref: Kelvin,
    /// Temperature exponent `Erho`.
    erho: f64,
}

impl GummelNumber {
    /// Creates a Gummel-number law from its reference value and exponent.
    #[must_use]
    pub fn new(ng_ref: f64, t_ref: Kelvin, erho: f64) -> Self {
        GummelNumber {
            ng_ref,
            t_ref,
            erho,
        }
    }

    /// Typical silicon base: `NG = 1e13 cm^-2`, fully ionized (`Erho = 0`).
    #[must_use]
    pub fn silicon_base() -> Self {
        GummelNumber {
            ng_ref: 1.0e13,
            t_ref: Kelvin::new(300.0),
            erho: 0.0,
        }
    }

    /// A base with mild incomplete ionization at low temperature
    /// (`Erho = 0.1`).
    #[must_use]
    pub fn partially_ionized_base() -> Self {
        GummelNumber {
            ng_ref: 1.0e13,
            t_ref: Kelvin::new(300.0),
            erho: 0.1,
        }
    }

    /// The temperature exponent `Erho`.
    #[must_use]
    pub fn erho(&self) -> f64 {
        self.erho
    }

    /// Gummel number at `temperature` per eq. 5.
    #[must_use]
    pub fn value_at(&self, temperature: Kelvin) -> f64 {
        self.ng_ref * temperature.ratio_to(self.t_ref).powf(self.erho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusivity_reference_value_is_exact() {
        let d = BaseDiffusivity::silicon_npn_base();
        assert!((d.value_at(Kelvin::new(300.0)) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn diffusivity_power_law_exponent() {
        let d = BaseDiffusivity::new(10.0, Kelvin::new(300.0), 2.0);
        // 1 - EN = -1: doubling T halves D.
        let r = d.value_at(Kelvin::new(600.0)) / d.value_at(Kelvin::new(300.0));
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn en_one_makes_diffusivity_flat() {
        let d = BaseDiffusivity::new(10.0, Kelvin::new(300.0), 1.0);
        assert!((d.value_at(Kelvin::new(450.0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gummel_number_default_is_temperature_independent() {
        let g = GummelNumber::silicon_base();
        assert!((g.value_at(Kelvin::new(223.0)) - g.value_at(Kelvin::new(398.0))).abs() < 1.0);
    }

    #[test]
    fn partially_ionized_base_grows_with_temperature() {
        let g = GummelNumber::partially_ionized_base();
        assert!(g.value_at(Kelvin::new(398.0)) > g.value_at(Kelvin::new(223.0)));
    }
}
