//! Saturation-current temperature laws: the physical eq. 11 and the SPICE
//! eq. 1, linked by the eq.-12 identification.
//!
//! Eq. 11 (physics):
//!
//! ```text
//! IS(T) = IS(T0) (T/T0)^(4 - EN - Erho - b/k)
//!         * exp( -(q/k) (EG(0) - dEGbgn) (1/T - 1/T0) )
//! ```
//!
//! Eq. 1 (SPICE):
//!
//! ```text
//! IS(T) = IS(T0) (T/T0)^XTI exp( (q EG / k) (1/T0 - 1/T) )
//! ```
//!
//! Identifying the two (eq. 12):
//!
//! ```text
//! EG  = EG(0) - dEGbgn
//! XTI = 4 - EN - Erho - b/k
//! ```

use icvbe_units::constants::Q_OVER_BOLTZMANN;
use icvbe_units::{Ampere, ElectronVolt, Kelvin};

use crate::eg::{EgModel, LogEgModel};
use crate::narrowing::BandgapNarrowing;
use crate::transport::{BaseDiffusivity, GummelNumber};

/// The two-parameter SPICE saturation-current temperature law (eq. 1).
///
/// # Examples
///
/// ```
/// use icvbe_devphys::saturation::SpiceIsLaw;
/// use icvbe_units::{Ampere, ElectronVolt, Kelvin};
///
/// let law = SpiceIsLaw::new(
///     Ampere::new(1e-16),
///     Kelvin::new(300.0),
///     ElectronVolt::new(1.11),
///     3.0,
/// );
/// // IS grows by orders of magnitude over 100 K.
/// let r = law.is_at(Kelvin::new(400.0)).value() / 1e-16;
/// assert!(r > 1e3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpiceIsLaw {
    is_ref: Ampere,
    t_ref: Kelvin,
    eg: ElectronVolt,
    xti: f64,
}

impl SpiceIsLaw {
    /// Creates the law from `IS(T0)`, `T0`, `EG` and `XTI`.
    #[must_use]
    pub fn new(is_ref: Ampere, t_ref: Kelvin, eg: ElectronVolt, xti: f64) -> Self {
        SpiceIsLaw {
            is_ref,
            t_ref,
            eg,
            xti,
        }
    }

    /// Saturation current at `temperature` per eq. 1.
    #[must_use]
    pub fn is_at(&self, temperature: Kelvin) -> Ampere {
        let t = temperature.value();
        let t0 = self.t_ref.value();
        let ratio = (t / t0).powf(self.xti);
        // vexp, not libm exp: this feeds the per-temperature model cards
        // of the solver hot path (every self-heating update re-evaluates
        // it), and the deterministic kernel keeps the bits identical on
        // the scalar and lane-batched paths on every host.
        let arrhenius =
            icvbe_numerics::vexp::vexp(Q_OVER_BOLTZMANN * self.eg.value() * (1.0 / t0 - 1.0 / t));
        Ampere::new(self.is_ref.value() * ratio * arrhenius)
    }

    /// The `EG` parameter.
    #[must_use]
    pub fn eg(&self) -> ElectronVolt {
        self.eg
    }

    /// The `XTI` parameter.
    #[must_use]
    pub fn xti(&self) -> f64 {
        self.xti
    }

    /// The reference saturation current `IS(T0)`.
    #[must_use]
    pub fn is_ref(&self) -> Ampere {
        self.is_ref
    }

    /// The reference temperature `T0`.
    #[must_use]
    pub fn t_ref(&self) -> Kelvin {
        self.t_ref
    }
}

/// The fully physical saturation-current law of eq. 11, assembled from the
/// bandgap model, narrowing, diffusivity and Gummel number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhysicalIsLaw {
    is_ref: Ampere,
    t_ref: Kelvin,
    eg_model: LogEgModel,
    narrowing: BandgapNarrowing,
    diffusivity: BaseDiffusivity,
    gummel: GummelNumber,
}

impl PhysicalIsLaw {
    /// Assembles the physical law from its ingredients.
    #[must_use]
    pub fn new(
        is_ref: Ampere,
        t_ref: Kelvin,
        eg_model: LogEgModel,
        narrowing: BandgapNarrowing,
        diffusivity: BaseDiffusivity,
        gummel: GummelNumber,
    ) -> Self {
        PhysicalIsLaw {
            is_ref,
            t_ref,
            eg_model,
            narrowing,
            diffusivity,
            gummel,
        }
    }

    /// A representative silicon bipolar device: EG5 bandgap, 45 meV
    /// narrowing, moderately doped base.
    #[must_use]
    pub fn typical_silicon(is_ref: Ampere, t_ref: Kelvin) -> Self {
        PhysicalIsLaw::new(
            is_ref,
            t_ref,
            LogEgModel::eg5(),
            BandgapNarrowing::silicon_bipolar(),
            BaseDiffusivity::silicon_npn_base(),
            GummelNumber::silicon_base(),
        )
    }

    /// Saturation current at `temperature` per eq. 11.
    #[must_use]
    pub fn is_at(&self, temperature: Kelvin) -> Ampere {
        // IS ~ Ae q nie²(T) Dnb(T) / NG(T); take the ratio to T0 and use
        // the closed eq.-10 power law for nie².
        let nie_ratio = crate::carriers::nie_squared_ratio_eq10(
            &self.eg_model,
            self.narrowing,
            temperature,
            self.t_ref,
        );
        let d_ratio =
            self.diffusivity.value_at(temperature) / self.diffusivity.value_at(self.t_ref);
        let g_ratio = self.gummel.value_at(temperature) / self.gummel.value_at(self.t_ref);
        Ampere::new(self.is_ref.value() * nie_ratio * d_ratio / g_ratio)
    }

    /// The eq.-12 identification: the [`SpiceIsLaw`] that is *exactly*
    /// equivalent to this physical law.
    ///
    /// `EG = EG(0) - dEGbgn`, `XTI = 4 - EN - Erho - b/k`.
    #[must_use]
    pub fn to_spice_law(&self) -> SpiceIsLaw {
        let k_ev = 1.0 / Q_OVER_BOLTZMANN;
        let eg = self.narrowing.apply(self.eg_model.eg_at_zero());
        let xti = 4.0 - self.diffusivity.en() - self.gummel.erho() - self.eg_model.b() / k_ev;
        SpiceIsLaw::new(self.is_ref, self.t_ref, eg, xti)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> PhysicalIsLaw {
        PhysicalIsLaw::typical_silicon(Ampere::new(2e-17), Kelvin::new(298.15))
    }

    #[test]
    fn physical_and_spice_laws_agree_exactly() {
        // The eq.-12 identification must be exact for the log Eg model.
        let phys = typical();
        let spice = phys.to_spice_law();
        for t in [223.15, 248.15, 273.15, 298.15, 323.15, 348.15, 398.15] {
            let t = Kelvin::new(t);
            let a = phys.is_at(t).value();
            let b = spice.is_at(t).value();
            assert!(
                (a / b - 1.0).abs() < 1e-10,
                "mismatch at {t}: {a:e} vs {b:e}"
            );
        }
    }

    #[test]
    fn xti_identification_has_paper_magnitude() {
        // XTI = 4 - EN - Erho - b/k; with EG5's b = -8.459e-5 eV/K,
        // -b/k ~ +0.98, EN = 2.4, Erho = 0 => XTI ~ 2.6.
        let spice = typical().to_spice_law();
        assert!(
            spice.xti() > 1.5 && spice.xti() < 4.5,
            "XTI = {}",
            spice.xti()
        );
    }

    #[test]
    fn eg_identification_subtracts_narrowing() {
        let spice = typical().to_spice_law();
        assert!((spice.eg().value() - (1.1774 - 0.045)).abs() < 1e-12);
    }

    #[test]
    fn is_at_reference_is_reference() {
        let phys = typical();
        assert!((phys.is_at(Kelvin::new(298.15)).value() - 2e-17).abs() / 2e-17 < 1e-12);
    }

    #[test]
    fn sensitivity_is_about_20_percent_per_kelvin() {
        // The paper (citing Martinelli) says IS moves ~20%/K near room temp.
        let spice = typical().to_spice_law();
        let r = spice.is_at(Kelvin::new(299.15)).value() / spice.is_at(Kelvin::new(298.15)).value();
        assert!(r > 1.1 && r < 1.3, "IS sensitivity per K: {r}");
    }

    #[test]
    fn spice_law_is_monotone_in_temperature() {
        let spice = typical().to_spice_law();
        let mut prev = 0.0;
        for t in (200..450).step_by(10) {
            let v = spice.is_at(Kelvin::new(t as f64)).value();
            assert!(v > prev);
            prev = v;
        }
    }
}
