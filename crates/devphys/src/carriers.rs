//! Intrinsic and effective carrier concentrations (eqs. 3, 6, 10).
//!
//! Boltzmann statistics give `ni²(T) ~ T³ exp(-EG(T)/kT)` (eq. 6); heavy
//! doping multiplies by `exp(dEGbgn/kT)` (eq. 3). With the log bandgap
//! model (eq. 9) the combination collapses to the closed power-law form of
//! eq. 10, which is what makes the SPICE eq.-1 law exact rather than an
//! approximation.

use icvbe_units::constants::Q_OVER_BOLTZMANN;
use icvbe_units::{ElectronVolt, Kelvin};

use crate::eg::{EgModel, LogEgModel};
use crate::narrowing::BandgapNarrowing;

/// Intrinsic carrier concentration of silicon at 300 K, in cm^-3.
///
/// The modern consensus value (Green 1990); the absolute number scales all
/// saturation currents but cancels from every extracted parameter.
pub const NI_300K_CM3: f64 = 9.7e9;

/// Reference temperature at which [`NI_300K_CM3`] is quoted.
pub const NI_REFERENCE_KELVIN: f64 = 300.0;

/// Intrinsic carrier concentration squared, `ni²(T)`, per eq. 6, using an
/// arbitrary bandgap model.
///
/// `ni²(T) = ni²(T0) (T/T0)³ exp( -(q/k) (EG(T)/T - EG(T0)/T0) )`
///
/// # Examples
///
/// ```
/// use icvbe_devphys::carriers::ni_squared;
/// use icvbe_devphys::eg::LogEgModel;
/// use icvbe_units::Kelvin;
///
/// let eg = LogEgModel::eg5();
/// let cold = ni_squared(&eg, Kelvin::new(250.0));
/// let hot = ni_squared(&eg, Kelvin::new(350.0));
/// assert!(hot / cold > 1e6); // ni is savagely temperature dependent
/// ```
#[must_use]
pub fn ni_squared(eg_model: &dyn EgModel, temperature: Kelvin) -> f64 {
    let t = temperature.value();
    let t0 = NI_REFERENCE_KELVIN;
    if t <= 0.0 {
        return 0.0;
    }
    let eg_t = eg_model.eg(temperature).value();
    let eg_t0 = eg_model.eg(Kelvin::new(t0)).value();
    let exponent = -Q_OVER_BOLTZMANN * (eg_t / t - eg_t0 / t0);
    NI_300K_CM3 * NI_300K_CM3 * (t / t0).powi(3) * icvbe_numerics::vexp::vexp(exponent)
}

/// Effective (doping-enhanced) intrinsic concentration squared, per eq. 3:
/// `nie²(T) = ni²(T) exp(dEGbgn / kT)`.
#[must_use]
pub fn nie_squared(
    eg_model: &dyn EgModel,
    narrowing: BandgapNarrowing,
    temperature: Kelvin,
) -> f64 {
    let t = temperature.value();
    if t <= 0.0 {
        return 0.0;
    }
    let boost = icvbe_numerics::vexp::vexp(Q_OVER_BOLTZMANN * narrowing.delta_eg().value() / t);
    ni_squared(eg_model, temperature) * boost
}

/// The closed-form eq.-10 ratio `nie²(T)/nie²(T0)` for the log bandgap
/// model:
///
/// `nie²(T)/nie²(T0) = (T/T0)^(3 - b/k) exp( -(q/k)(EG(0) - dEGbgn)(1/T - 1/T0) )`
///
/// This is the power law that identifies with SPICE's eq. 1.
///
/// # Examples
///
/// ```
/// use icvbe_devphys::carriers::{nie_squared, nie_squared_ratio_eq10};
/// use icvbe_devphys::eg::LogEgModel;
/// use icvbe_devphys::narrowing::BandgapNarrowing;
/// use icvbe_units::Kelvin;
///
/// let eg = LogEgModel::eg5();
/// let nw = BandgapNarrowing::silicon_bipolar();
/// let (t, t0) = (Kelvin::new(350.0), Kelvin::new(300.0));
/// let direct = nie_squared(&eg, nw, t) / nie_squared(&eg, nw, t0);
/// let closed = nie_squared_ratio_eq10(&eg, nw, t, t0);
/// assert!((direct / closed - 1.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn nie_squared_ratio_eq10(
    eg_model: &LogEgModel,
    narrowing: BandgapNarrowing,
    temperature: Kelvin,
    reference: Kelvin,
) -> f64 {
    let t = temperature.value();
    let t0 = reference.value();
    let k_ev = 1.0 / Q_OVER_BOLTZMANN; // Boltzmann constant in eV/K
    let exponent_power = 3.0 - eg_model.b() / k_ev;
    let eg_eff: ElectronVolt = narrowing.apply(eg_model.eg_at_zero());
    let arrhenius = -Q_OVER_BOLTZMANN * eg_eff.value() * (1.0 / t - 1.0 / t0);
    // The a*T linear term of eq. 9 contributes exp(-a/k) to both T and T0
    // and cancels in the ratio; only EG(0), b and the T^3 term survive.
    (t / t0).powf(exponent_power) * icvbe_numerics::vexp::vexp(arrhenius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eg::VarshniEgModel;

    #[test]
    fn ni_at_reference_matches_constant() {
        let eg = LogEgModel::eg5();
        let v = ni_squared(&eg, Kelvin::new(NI_REFERENCE_KELVIN));
        assert!((v - NI_300K_CM3 * NI_300K_CM3).abs() / v < 1e-14);
    }

    #[test]
    fn ni_is_monotonically_increasing() {
        let eg = VarshniEgModel::eg3();
        let mut prev = 0.0;
        for t in [200.0, 250.0, 300.0, 350.0, 400.0] {
            let v = ni_squared(&eg, Kelvin::new(t));
            assert!(v > prev, "ni² not increasing at {t} K");
            prev = v;
        }
    }

    #[test]
    fn ni_doubles_roughly_every_8_kelvin_near_room() {
        // Rule of thumb: ni doubles every ~8 K, so ni² quadruples.
        let eg = VarshniEgModel::eg3();
        let r = ni_squared(&eg, Kelvin::new(308.0)) / ni_squared(&eg, Kelvin::new(300.0));
        assert!(r > 2.5 && r < 7.0, "ratio {r}");
    }

    #[test]
    fn narrowing_boosts_nie() {
        let eg = LogEgModel::eg5();
        let t = Kelvin::new(300.0);
        let plain = nie_squared(&eg, BandgapNarrowing::none(), t);
        let doped = nie_squared(&eg, BandgapNarrowing::silicon_bipolar(), t);
        // exp(45meV / 25.85meV) ~ 5.7
        assert!((doped / plain - (0.045_f64 / 0.02585).exp()).abs() < 0.1);
    }

    #[test]
    fn zero_kelvin_is_zero_not_nan() {
        let eg = LogEgModel::eg4();
        assert_eq!(ni_squared(&eg, Kelvin::new(0.0)), 0.0);
        assert_eq!(
            nie_squared(&eg, BandgapNarrowing::silicon_bipolar(), Kelvin::new(0.0)),
            0.0
        );
    }

    #[test]
    fn eq10_matches_direct_ratio_across_range() {
        let eg = LogEgModel::eg4();
        let nw = BandgapNarrowing::silicon_bipolar();
        let t0 = Kelvin::new(298.15);
        for t in [223.0, 273.0, 323.0, 398.0] {
            let t = Kelvin::new(t);
            let direct = nie_squared(&eg, nw, t) / nie_squared(&eg, nw, t0);
            let closed = nie_squared_ratio_eq10(&eg, nw, t, t0);
            assert!(
                (direct / closed - 1.0).abs() < 1e-9,
                "mismatch at {t}: {direct} vs {closed}"
            );
        }
    }
}
