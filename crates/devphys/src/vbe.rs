//! Closed-form `VBE(T)` at (quasi-)constant collector current — the forward
//! model behind the eq.-13 best fit.
//!
//! For an ideal forward-active BJT, `IC = IS(T) exp(VBE / (kT/q))`, so
//!
//! ```text
//! VBE(T) = (T/T0) VBE(T0)
//!        + EG (1 - T/T0)
//!        - XTI (kT/q) ln(T/T0)
//!        + (kT/q) ln( IC(T) / IC(T0) )
//! ```
//!
//! which is eq. 13 of the paper: *linear* in the unknowns `(EG, XTI)` once
//! `VBE(T0)` and the bias history `IC(T)` are known.

use icvbe_units::constants::BOLTZMANN_OVER_Q;
use icvbe_units::{thermal_voltage, Ampere, ElectronVolt, Kelvin, Volt};

use crate::saturation::SpiceIsLaw;

/// The eq.-13 closed form, parameterized directly by `(EG, XTI)` and the
/// reference point `(T0, VBE(T0))`.
///
/// # Examples
///
/// ```
/// use icvbe_devphys::vbe::Eq13Model;
/// use icvbe_units::{ElectronVolt, Kelvin, Volt};
///
/// let m = Eq13Model::new(
///     ElectronVolt::new(1.12),
///     3.0,
///     Kelvin::new(298.15),
///     Volt::new(0.62),
/// );
/// // VBE falls roughly 2 mV/K going up in temperature.
/// let v_hot = m.vbe(Kelvin::new(348.15), 1.0).value();
/// assert!(v_hot < 0.62 && v_hot > 0.62 - 0.150);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eq13Model {
    eg: ElectronVolt,
    xti: f64,
    t_ref: Kelvin,
    vbe_ref: Volt,
}

impl Eq13Model {
    /// Creates the model from its four constants.
    #[must_use]
    pub fn new(eg: ElectronVolt, xti: f64, t_ref: Kelvin, vbe_ref: Volt) -> Self {
        Eq13Model {
            eg,
            xti,
            t_ref,
            vbe_ref,
        }
    }

    /// Evaluates `VBE(T)`; `ic_ratio` is `IC(T)/IC(T0)` (1.0 for an ideal
    /// temperature-independent bias source).
    #[must_use]
    pub fn vbe(&self, temperature: Kelvin, ic_ratio: f64) -> Volt {
        let t = temperature.value();
        let t0 = self.t_ref.value();
        let ratio = t / t0;
        let vt = BOLTZMANN_OVER_Q * t;
        Volt::new(
            ratio * self.vbe_ref.value() + self.eg.value() * (1.0 - ratio)
                - self.xti * vt * ratio.ln()
                + vt * ic_ratio.ln(),
        )
    }

    /// `EG` parameter.
    #[must_use]
    pub fn eg(&self) -> ElectronVolt {
        self.eg
    }

    /// `XTI` parameter.
    #[must_use]
    pub fn xti(&self) -> f64 {
        self.xti
    }

    /// Reference temperature `T0`.
    #[must_use]
    pub fn t_ref(&self) -> Kelvin {
        self.t_ref
    }

    /// Reference built-in voltage `VBE(T0)`.
    #[must_use]
    pub fn vbe_ref(&self) -> Volt {
        self.vbe_ref
    }

    /// Numerical slope `dVBE/dT` in V/K at `temperature` (constant bias).
    #[must_use]
    pub fn slope(&self, temperature: Kelvin) -> f64 {
        let h = 0.01;
        let hi = self.vbe(Kelvin::new(temperature.value() + h), 1.0).value();
        let lo = self.vbe(Kelvin::new(temperature.value() - h), 1.0).value();
        (hi - lo) / (2.0 * h)
    }
}

/// Ideal-exponential inversion: the `VBE` at which a device following `law`
/// carries collector current `ic` at `temperature`.
///
/// `VBE = (kT/q) ln(IC / IS(T))` (forward-active, emission coefficient 1).
///
/// # Examples
///
/// ```
/// use icvbe_devphys::saturation::SpiceIsLaw;
/// use icvbe_devphys::vbe::vbe_for_current;
/// use icvbe_units::{Ampere, ElectronVolt, Kelvin};
///
/// let law = SpiceIsLaw::new(
///     Ampere::new(1e-16),
///     Kelvin::new(298.15),
///     ElectronVolt::new(1.12),
///     3.0,
/// );
/// let v = vbe_for_current(&law, Ampere::new(1e-6), Kelvin::new(298.15));
/// assert!(v.value() > 0.55 && v.value() < 0.70);
/// ```
#[must_use]
pub fn vbe_for_current(law: &SpiceIsLaw, ic: Ampere, temperature: Kelvin) -> Volt {
    let vt = thermal_voltage(temperature);
    Volt::new(vt.value() * (ic.value() / law.is_at(temperature).value()).ln())
}

/// Consistency check used across the workspace: builds the [`Eq13Model`]
/// implied by a [`SpiceIsLaw`] at bias `ic` and reference `t_ref`.
#[must_use]
pub fn eq13_from_spice_law(law: &SpiceIsLaw, ic: Ampere, t_ref: Kelvin) -> Eq13Model {
    let vbe_ref = vbe_for_current(law, ic, t_ref);
    Eq13Model::new(law.eg(), law.xti(), t_ref, vbe_ref)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn law() -> SpiceIsLaw {
        SpiceIsLaw::new(
            Ampere::new(2e-17),
            Kelvin::new(298.15),
            ElectronVolt::new(1.1324),
            2.58,
        )
    }

    #[test]
    fn eq13_matches_direct_inversion_everywhere() {
        // The closed form and the IS-law inversion are algebraically the
        // same statement; verify to near machine precision.
        let law = law();
        let ic = Ampere::new(1e-6);
        let t0 = Kelvin::new(298.15);
        let model = eq13_from_spice_law(&law, ic, t0);
        for t in [223.15, 248.15, 273.15, 323.15, 348.15, 398.15] {
            let t = Kelvin::new(t);
            let direct = vbe_for_current(&law, ic, t).value();
            let closed = model.vbe(t, 1.0).value();
            assert!(
                (direct - closed).abs() < 1e-12,
                "mismatch at {t}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn vbe_decreases_with_temperature() {
        let model = eq13_from_spice_law(&law(), Ampere::new(1e-6), Kelvin::new(298.15));
        let mut prev = f64::INFINITY;
        for t in (220..400).step_by(20) {
            let v = model.vbe(Kelvin::new(t as f64), 1.0).value();
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn slope_is_about_minus_2mv_per_kelvin() {
        let model = eq13_from_spice_law(&law(), Ampere::new(1e-6), Kelvin::new(298.15));
        let s = model.slope(Kelvin::new(298.15));
        assert!(s < -1.5e-3 && s > -2.5e-3, "dVBE/dT = {s}");
    }

    #[test]
    fn higher_bias_gives_higher_vbe() {
        let law = law();
        let t = Kelvin::new(298.15);
        let v1 = vbe_for_current(&law, Ampere::new(1e-8), t).value();
        let v2 = vbe_for_current(&law, Ampere::new(1e-5), t).value();
        // Three decades: dV = VT ln(1000) ~ 178 mV.
        assert!((v2 - v1 - 0.02569 * 3.0 * 10f64.ln()).abs() < 1e-3);
    }

    #[test]
    fn ic_ratio_term_shifts_vbe_by_vt_ln_ratio() {
        let model = eq13_from_spice_law(&law(), Ampere::new(1e-6), Kelvin::new(298.15));
        let t = Kelvin::new(348.15);
        let base = model.vbe(t, 1.0).value();
        let shifted = model.vbe(t, 2.0).value();
        let vt = BOLTZMANN_OVER_Q * 348.15;
        assert!((shifted - base - vt * 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn reference_point_is_reproduced() {
        let model = Eq13Model::new(
            ElectronVolt::new(1.12),
            3.0,
            Kelvin::new(298.15),
            Volt::new(0.6),
        );
        assert!((model.vbe(Kelvin::new(298.15), 1.0).value() - 0.6).abs() < 1e-15);
    }
}
