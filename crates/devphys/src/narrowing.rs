//! Bandgap narrowing from heavy impurity doping (the `dEGbgn` of eqs. 2-3).
//!
//! Modern bipolar emitters are doped hard enough that many-body effects
//! shrink the effective bandgap: the paper quotes about 45 meV for Si
//! devices and on the order of 150 meV for SiGe HBTs. The narrowing enters
//! the effective intrinsic concentration `nie` (eq. 3) and shifts the SPICE
//! `EG` parameter by eq. 12: `EG = EG(0) - dEGbgn`.

use icvbe_units::ElectronVolt;

/// Bandgap-narrowing magnitude for a device class or doping level.
///
/// # Examples
///
/// ```
/// use icvbe_devphys::narrowing::BandgapNarrowing;
///
/// let si = BandgapNarrowing::silicon_bipolar();
/// assert_eq!(si.delta_eg().value(), 0.045);
/// let sige = BandgapNarrowing::sige_hbt();
/// assert_eq!(sige.delta_eg().value(), 0.150);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandgapNarrowing {
    delta_eg: ElectronVolt,
}

/// Reference doping of the Slotboom-de Graaff narrowing law, in cm^-3.
const SLOTBOOM_N_REF: f64 = 1.0e17;

/// Energy scale of the Slotboom-de Graaff narrowing law, in eV.
const SLOTBOOM_E_REF: f64 = 9.0e-3;

impl BandgapNarrowing {
    /// Creates a narrowing of explicit magnitude.
    #[must_use]
    pub fn new(delta_eg: ElectronVolt) -> Self {
        BandgapNarrowing { delta_eg }
    }

    /// No narrowing (lightly doped reference device).
    #[must_use]
    pub fn none() -> Self {
        BandgapNarrowing {
            delta_eg: ElectronVolt::new(0.0),
        }
    }

    /// The ~45 meV narrowing the paper quotes for Si bipolar emitters.
    #[must_use]
    pub fn silicon_bipolar() -> Self {
        BandgapNarrowing {
            delta_eg: ElectronVolt::new(0.045),
        }
    }

    /// The ~150 meV narrowing the paper quotes for SiGe HBTs.
    #[must_use]
    pub fn sige_hbt() -> Self {
        BandgapNarrowing {
            delta_eg: ElectronVolt::new(0.150),
        }
    }

    /// Slotboom-de Graaff empirical law from the doping concentration
    /// `n` (cm^-3):
    ///
    /// `dEG = Eref * ( ln(n/Nref) + sqrt(ln²(n/Nref) + 0.5) )`
    ///
    /// clamped to zero below the reference doping.
    #[must_use]
    pub fn from_doping(n_cm3: f64) -> Self {
        if !(n_cm3 > 0.0) {
            return Self::none();
        }
        let x = (n_cm3 / SLOTBOOM_N_REF).ln();
        if x <= 0.0 {
            return Self::none();
        }
        let delta = SLOTBOOM_E_REF * (x + (x * x + 0.5).sqrt());
        BandgapNarrowing {
            delta_eg: ElectronVolt::new(delta),
        }
    }

    /// The narrowing magnitude `dEGbgn`.
    #[must_use]
    pub fn delta_eg(&self) -> ElectronVolt {
        self.delta_eg
    }

    /// Applies the narrowing to an unnarrowed bandgap: `EG_eff = EG - dEG`.
    #[must_use]
    pub fn apply(&self, eg: ElectronVolt) -> ElectronVolt {
        eg - self.delta_eg
    }
}

impl Default for BandgapNarrowing {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_magnitudes() {
        assert!((BandgapNarrowing::silicon_bipolar().delta_eg().value() - 0.045).abs() < 1e-15);
        assert!((BandgapNarrowing::sige_hbt().delta_eg().value() - 0.150).abs() < 1e-15);
    }

    #[test]
    fn slotboom_is_zero_below_reference_doping() {
        assert_eq!(BandgapNarrowing::from_doping(1e16).delta_eg().value(), 0.0);
        assert_eq!(BandgapNarrowing::from_doping(0.0).delta_eg().value(), 0.0);
        assert_eq!(BandgapNarrowing::from_doping(-1.0).delta_eg().value(), 0.0);
    }

    #[test]
    fn slotboom_grows_with_doping() {
        let lo = BandgapNarrowing::from_doping(1e18).delta_eg().value();
        let hi = BandgapNarrowing::from_doping(1e20).delta_eg().value();
        assert!(hi > lo && lo > 0.0);
    }

    #[test]
    fn slotboom_at_1e20_is_tens_of_mev() {
        // A modern emitter peak (~1e20) should narrow by several tens of meV,
        // the same ballpark as the paper's 45 meV.
        let d = BandgapNarrowing::from_doping(1e20).delta_eg().value();
        assert!(d > 0.03 && d < 0.2, "narrowing {d} eV");
    }

    #[test]
    fn apply_subtracts() {
        let eg = ElectronVolt::new(1.1774);
        let out = BandgapNarrowing::silicon_bipolar().apply(eg);
        assert!((out.value() - 1.1324).abs() < 1e-12);
    }
}
