//! Device physics behind the `IC(VBE)` temperature dependence.
//!
//! This crate implements sections 2 and 3 of the reproduced paper:
//!
//! - the five silicon bandgap temperature models of Fig. 1 ([`eg`]),
//! - bandgap narrowing from heavy emitter/base doping ([`narrowing`]),
//! - intrinsic and effective carrier concentrations, eqs. 3, 6, 10
//!   ([`carriers`]),
//! - minority-carrier transport: diffusivity and Gummel-number temperature
//!   exponents, eqs. 4-5 ([`transport`]),
//! - the full physical saturation-current law eq. 11 and its identification
//!   with the two-parameter SPICE law eq. 1 through eq. 12 ([`saturation`]),
//! - the closed-form `VBE(T)` at constant collector current (the forward
//!   model behind the eq.-13 best fit) ([`vbe`]).
//!
//! # Examples
//!
//! ```
//! use icvbe_devphys::eg::{EgModel, LogEgModel};
//! use icvbe_units::Kelvin;
//!
//! // EG5 of Fig. 1: the Gambetta/Celi log model.
//! let eg5 = LogEgModel::eg5();
//! let at_300k = eg5.eg(Kelvin::new(300.0));
//! assert!(at_300k.value() > 1.10 && at_300k.value() < 1.14);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod carriers;
pub mod eg;
pub mod eg_extra;
pub mod narrowing;
pub mod saturation;
pub mod transport;
pub mod vbe;
