//! Limited exponential — the classic SPICE junction-equation safeguard.
//!
//! Raw `exp(v/vt)` overflows `f64` for `v` above ~0.9 V at cryogenic
//! temperatures and produces Jacobians Newton cannot use. `limexp`
//! continues the exponential linearly (with matching value and slope) above
//! a cutoff argument, preserving convexity and keeping every iterate
//! finite.
//!
//! The exponential itself is [`icvbe_numerics::vexp`] — the deterministic,
//! branch-free in-tree kernel — not libm `exp`: the scalar and lane forms
//! therefore compute identical bits by construction, on every host.

use icvbe_numerics::vexp::{vexp, vexp_slice};

/// Cutoff argument above which the exponential continues linearly.
///
/// `exp(120) ~ 1.3e52` still leaves ~250 orders of magnitude of headroom
/// in `f64` after multiplying by a saturation current, while sitting far
/// above any *physical* junction operating point — even a cryogenic one:
/// at -80 °C a microamp-biased silicon junction runs near `v/vt ≈ 55`,
/// which must stay on the true exponential or the model is corrupted.
pub const LIMEXP_CUTOFF: f64 = 120.0;

/// Returns `(value, derivative)` of the limited exponential at `x`.
///
/// For `x <= LIMEXP_CUTOFF` this is exactly `(e^x, e^x)`; above it the
/// function continues as the tangent line `e^c (1 + x - c)` with constant
/// slope `e^c`.
///
/// # Examples
///
/// ```
/// use icvbe_spice::limexp::limexp;
///
/// let (v, d) = limexp(1.0);
/// assert!((v - 1.0_f64.exp()).abs() < 1e-12);
/// assert!((d - v).abs() < 1e-12);
/// // Far beyond the cutoff the value stays finite.
/// let (v, _) = limexp(10_000.0);
/// assert!(v.is_finite());
/// ```
#[must_use]
pub fn limexp(x: f64) -> (f64, f64) {
    if x <= LIMEXP_CUTOFF {
        let e = vexp(x);
        (e, e)
    } else {
        let e = vexp(LIMEXP_CUTOFF);
        (e * (1.0 + x - LIMEXP_CUTOFF), e)
    }
}

/// Lane-array variant of [`limexp`]: evaluates value and slope for every
/// lane of `xs` into `value`/`slope`.
///
/// The per-lane result is bit-identical to the scalar [`limexp`]: both
/// sides of the cutoff are computed unconditionally and selected per lane
/// (the overflow-to-infinity of `x.exp()` beyond the cutoff lands only in
/// the discarded branch), so the loop body is branch-free apart from the
/// select and auto-vectorizes around the independent `exp` calls — the
/// shape a SIMD or GPU backend consumes directly.
pub fn limexp_lanes(xs: &[f64], value: &mut [f64], slope: &mut [f64]) {
    debug_assert_eq!(xs.len(), value.len());
    debug_assert_eq!(xs.len(), slope.len());
    let e_cut = vexp(LIMEXP_CUTOFF);
    // One vectorized exponential pass fills `slope`, then a branch-free
    // select pass applies the tangent continuation per lane. Each lane's
    // result is bit-identical to the scalar [`limexp`] because vexp's
    // slice and scalar forms share one arithmetic core.
    vexp_slice(xs, slope);
    for ((&x, v), d) in xs.iter().zip(value.iter_mut()).zip(slope.iter_mut()) {
        let e = *d;
        let tangent = e_cut * (1.0 + x - LIMEXP_CUTOFF);
        let over = x > LIMEXP_CUTOFF;
        *v = if over { tangent } else { e };
        *d = if over { e_cut } else { e };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exp_below_cutoff() {
        for x in [-50.0, -1.0, 0.0, 5.0, LIMEXP_CUTOFF] {
            let (v, d) = limexp(x);
            assert!((v - x.exp()).abs() / x.exp() < 1e-14);
            assert!((d - x.exp()).abs() / x.exp() < 1e-14);
        }
    }

    #[test]
    fn is_continuous_at_cutoff() {
        let below = limexp(LIMEXP_CUTOFF - 1e-9).0;
        let above = limexp(LIMEXP_CUTOFF + 1e-9).0;
        assert!((above - below) / below < 1e-6);
    }

    #[test]
    fn derivative_is_continuous_at_cutoff() {
        let below = limexp(LIMEXP_CUTOFF - 1e-9).1;
        let above = limexp(LIMEXP_CUTOFF + 1e-9).1;
        assert!((above - below).abs() / below < 1e-6);
    }

    #[test]
    fn stays_finite_for_huge_arguments() {
        let (v, d) = limexp(1e9);
        assert!(v.is_finite() && d.is_finite());
    }

    #[test]
    fn lanes_match_scalar_bitwise() {
        let xs: Vec<f64> = (-400..2600).map(|i| f64::from(i) * 0.05).collect();
        let mut v = vec![0.0; xs.len()];
        let mut d = vec![0.0; xs.len()];
        limexp_lanes(&xs, &mut v, &mut d);
        for (i, &x) in xs.iter().enumerate() {
            let (sv, sd) = limexp(x);
            assert_eq!(sv.to_bits(), v[i].to_bits(), "value lane {i} x={x}");
            assert_eq!(sd.to_bits(), d[i].to_bits(), "slope lane {i} x={x}");
        }
    }

    #[test]
    fn is_monotone_increasing() {
        let mut prev = limexp(-10.0).0;
        let mut x = -9.0;
        while x < 100.0 {
            let v = limexp(x).0;
            assert!(v > prev);
            prev = v;
            x += 0.5;
        }
    }
}
