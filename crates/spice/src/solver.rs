//! DC operating-point solver: Newton with gmin and source stepping.

use icvbe_numerics::newton::NewtonOptions;
use icvbe_units::{Ampere, Kelvin, Volt};

use crate::netlist::{Circuit, NodeId};
use crate::system::CircuitAssembly;
use crate::workspace::{solve_dc_with, SolveWorkspace};
use crate::SpiceError;

/// SPICE-style device-evaluation bypass: reuse a device's cached currents
/// and conductances when its controlling voltages moved less than
/// `v_abs + v_rel * max(|v|, |v_anchor|)` since the last full evaluation.
///
/// This is an *approximation inside the iteration only*: the solver
/// re-verifies every accepted residual with bypass suspended, and the
/// polish runs bypass-free, so accepted solutions are bit-identical to a
/// bypass-free solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BypassOptions {
    /// Master switch (off by default — opt-in approximation).
    pub enabled: bool,
    /// Absolute voltage tolerance.
    pub v_abs: f64,
    /// Relative voltage tolerance.
    pub v_rel: f64,
}

impl Default for BypassOptions {
    fn default() -> Self {
        // Sized so the bypassed-residual error (~gm * dv) stays below the
        // 1e-9 A residual tolerance for the microamp-scale workloads:
        // gm ~ 4e-5 S at 1 uA, so dv ~ 1e-6 V keeps the error ~4e-11 A.
        BypassOptions {
            enabled: false,
            v_abs: 1e-6,
            v_rel: 1e-5,
        }
    }
}

impl BypassOptions {
    /// The default tolerances with the bypass switched on.
    #[must_use]
    pub fn active() -> Self {
        BypassOptions {
            enabled: true,
            ..BypassOptions::default()
        }
    }
}

/// Options controlling the DC solve and its continuation fallbacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcOptions {
    /// Inner Newton options.
    pub newton: NewtonOptions,
    /// Residual gmin left in place in the final solve (0 disables).
    pub gmin_floor: f64,
    /// Largest gmin used by the continuation ladder.
    pub gmin_start: f64,
    /// Number of source-stepping ramp points in the last-resort strategy.
    pub source_steps: usize,
    /// Factor through the frozen symbolic plan once the assembly has
    /// recorded one (bit-identical to dense LU; disable for ablations).
    pub sparse: bool,
    /// Device-evaluation bypass policy.
    pub bypass: BypassOptions,
}

impl Default for DcOptions {
    fn default() -> Self {
        // Residuals are KCL currents; 1e-9 A is far below any signal
        // current in the workloads while staying reachable in f64 for
        // microamp-scale circuits. The acceptable-residual escape hatch
        // tolerates a stagnated solve at up to 100 nA of KCL mismatch.
        let newton = NewtonOptions {
            residual_tolerance: 1e-9,
            acceptable_residual: 1e-7,
            max_iterations: 300,
            ..NewtonOptions::default()
        };
        DcOptions {
            newton,
            gmin_floor: 1e-12,
            gmin_start: 1e-3,
            source_steps: 10,
            sparse: true,
            bypass: BypassOptions::default(),
        }
    }
}

/// A converged DC operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    x: Vec<f64>,
    node_count: usize,
    branch_bases: Vec<usize>,
    temperature: Kelvin,
    /// Newton iterations spent across all continuation stages.
    pub iterations: usize,
}

impl OperatingPoint {
    /// Builds an operating point from solver-internal parts (the sweep
    /// drivers reuse one assembly and workspace across points).
    pub(crate) fn from_parts(
        x: Vec<f64>,
        assembly: &CircuitAssembly,
        temperature: Kelvin,
        iterations: usize,
    ) -> Self {
        OperatingPoint {
            x,
            node_count: assembly.node_count(),
            branch_bases: assembly.branch_bases().to_vec(),
            temperature,
            iterations,
        }
    }

    /// Voltage of a node.
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Volt {
        match node.unknown_index() {
            Some(i) => Volt::new(self.x[i]),
            None => Volt::new(0.0),
        }
    }

    /// Branch current `k` of element `element_index` (e.g. the current
    /// through a voltage source or op-amp output).
    ///
    /// # Panics
    ///
    /// Panics if the element has no `k`-th branch.
    #[must_use]
    pub fn branch_current(&self, element_index: usize, k: usize) -> Ampere {
        Ampere::new(self.x[self.node_count + self.branch_bases[element_index] + k])
    }

    /// The raw solution vector (node voltages then branch currents) —
    /// useful as a warm start for a neighbouring solve.
    #[must_use]
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Temperature the point was solved at.
    #[must_use]
    pub fn temperature(&self) -> Kelvin {
        self.temperature
    }
}

/// Solves the DC operating point of `circuit` at `temperature`.
///
/// Strategy: plain Newton from `initial` (or all zeros); on failure, a
/// gmin-continuation ladder from `gmin_start` down to `gmin_floor`; on
/// failure, source stepping at an intermediate gmin followed by the ladder.
///
/// # Errors
///
/// - Propagates [`Circuit::validate`] topology errors.
/// - [`SpiceError::LadderExhausted`] if every rung of the escalation
///   ladder fails.
pub fn solve_dc(
    circuit: &Circuit,
    temperature: Kelvin,
    options: &DcOptions,
    initial: Option<&[f64]>,
) -> Result<OperatingPoint, SpiceError> {
    let assembly = CircuitAssembly::new(circuit)?;
    let mut ws = SolveWorkspace::new();
    let info = solve_dc_with(circuit, &assembly, temperature, options, initial, &mut ws)?;
    Ok(OperatingPoint {
        x: ws.solution().to_vec(),
        node_count: assembly.node_count(),
        branch_bases: assembly.branch_bases().to_vec(),
        temperature,
        iterations: info.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjt::{Bjt, BjtParams, Polarity};
    use crate::element::{CurrentSource, OpAmp, Resistor, VoltageSource};
    use crate::netlist::Circuit;
    use icvbe_units::Ohm;

    #[test]
    fn resistive_divider_solves_exactly() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(2.0),
        ));
        c.add(Resistor::new("R1", vcc, out, Ohm::new(1e3)).unwrap());
        c.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(3e3)).unwrap());
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        assert!((op.voltage(out).value() - 1.5).abs() < 1e-6);
        // Source current = -2/(4k) = -0.5 mA.
        assert!((op.branch_current(0, 0).value() + 5e-4).abs() < 1e-9);
    }

    #[test]
    fn diode_connected_bjt_biased_by_current_source() {
        let mut c = Circuit::new();
        let b = c.node("vbe");
        c.add(CurrentSource::new(
            "Ibias",
            Circuit::ground(),
            b,
            Ampere::new(1e-6),
        ));
        let q = Bjt::new(
            "Q1",
            b,
            b,
            Circuit::ground(),
            Polarity::Npn,
            BjtParams::default_npn(),
        )
        .unwrap();
        c.add(q);
        let op = solve_dc(&c, Kelvin::new(298.15), &DcOptions::default(), None).unwrap();
        let vbe = op.voltage(b).value();
        assert!(vbe > 0.5 && vbe < 0.7, "VBE = {vbe}");
    }

    #[test]
    fn opamp_follower_tracks_input() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "Vin",
            inp,
            Circuit::ground(),
            Volt::new(0.8),
        ));
        // Unity follower: out fed back to the inverting input.
        c.add(OpAmp::new("U1", inp, out, out, 1e6).unwrap());
        // Load so `out` is not dangling for validation.
        c.add(Resistor::new("RL", out, Circuit::ground(), Ohm::new(10e3)).unwrap());
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        assert!((op.voltage(out).value() - 0.8).abs() < 1e-5);
    }

    #[test]
    fn opamp_offset_shifts_output() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "Vin",
            inp,
            Circuit::ground(),
            Volt::new(0.5),
        ));
        c.add(
            OpAmp::new("U1", inp, out, out, 1e6)
                .unwrap()
                .with_offset(Volt::new(0.01)),
        );
        c.add(Resistor::new("RL", out, Circuit::ground(), Ohm::new(10e3)).unwrap());
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        assert!((op.voltage(out).value() - 0.51).abs() < 1e-5);
    }

    #[test]
    fn warm_start_is_accepted() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(VoltageSource::new(
            "V1",
            a,
            Circuit::ground(),
            Volt::new(1.0),
        ));
        c.add(Resistor::new("R1", a, Circuit::ground(), Ohm::new(1e3)).unwrap());
        let op1 = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        let op2 = solve_dc(
            &c,
            Kelvin::new(300.0),
            &DcOptions::default(),
            Some(op1.solution()),
        )
        .unwrap();
        assert!((op2.voltage(a).value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_topology_is_rejected() {
        let c = Circuit::new();
        assert!(solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).is_err());
    }

    #[test]
    fn two_bjt_ptat_cell_solves() {
        // The Fig.-2 core: two PNPs at equal forced current, dVBE is PTAT.
        let mut c = Circuit::new();
        let va = c.node("va");
        let vb = c.node("vb");
        let gnd = Circuit::ground();
        c.add(CurrentSource::new("Ia", gnd, va, Ampere::new(1e-6)));
        c.add(CurrentSource::new("Ib", gnd, vb, Ampere::new(1e-6)));
        let qa = Bjt::new("QA", gnd, gnd, va, Polarity::Pnp, BjtParams::default_npn()).unwrap();
        let qb = Bjt::new("QB", gnd, gnd, vb, Polarity::Pnp, BjtParams::default_npn())
            .unwrap()
            .with_area(8.0)
            .unwrap();
        c.add(qa);
        c.add(qb);
        let t = Kelvin::new(298.15);
        let op = solve_dc(&c, t, &DcOptions::default(), None).unwrap();
        let dvbe = op.voltage(va).value() - op.voltage(vb).value();
        let expected = 8.617e-5 * t.value() * 8.0_f64.ln();
        assert!(
            (dvbe - expected).abs() < 5e-5,
            "dVBE = {dvbe} vs {expected}"
        );
    }
}
