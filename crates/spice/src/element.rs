//! Linear elements and the junction diode.
//!
//! The Gummel-Poon BJT lives in [`crate::bjt`]; everything else the Fig.-3
//! test cell needs is here: temperature-aware resistors, independent
//! sources (sweepable through [`Param`]), the op-amp macro-model (a VCVS
//! with input offset), and the diode used for substrate-leakage parasitics.

pub use crate::stamp::Element;

use icvbe_devphys::saturation::SpiceIsLaw;
use icvbe_units::{thermal_voltage, Ampere, ElectronVolt, Kelvin, Ohm, Volt};

use crate::limexp::limexp;
use crate::netlist::NodeId;
use crate::param::Param;
use crate::stamp::StampContext;
use crate::SpiceError;

/// A resistor with first- and second-order temperature coefficients:
/// `R(T) = R0 (1 + tc1 dT + tc2 dT²)`, `dT = T - Tnom`.
///
/// # Examples
///
/// ```
/// use icvbe_spice::element::Resistor;
/// use icvbe_spice::netlist::Circuit;
/// use icvbe_units::{Kelvin, Ohm};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let r = Resistor::new("R1", a, Circuit::ground(), Ohm::new(25e3))?
///     .with_tempco(5e-3, 0.0, Kelvin::new(298.15));
/// // An n-well resistor drifts strongly with temperature.
/// assert!(r.resistance_at(Kelvin::new(398.15)).value() > 25e3 * 1.4);
/// # Ok::<(), icvbe_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Resistor {
    name: String,
    a: NodeId,
    b: NodeId,
    r_nominal: Param,
    tc1: f64,
    tc2: f64,
    t_nominal: Kelvin,
}

impl Resistor {
    /// Creates an ideal (temperature-independent) resistor.
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] if the resistance is not positive and
    /// finite.
    pub fn new(name: &str, a: NodeId, b: NodeId, resistance: Ohm) -> Result<Self, SpiceError> {
        if !(resistance.value() > 0.0) || !resistance.value().is_finite() {
            return Err(SpiceError::parameter(
                name,
                format!("resistance must be positive and finite, got {resistance}"),
            ));
        }
        Ok(Resistor {
            name: name.to_string(),
            a,
            b,
            r_nominal: Param::new(resistance.value()),
            tc1: 0.0,
            tc2: 0.0,
            t_nominal: Kelvin::new(298.15),
        })
    }

    /// Adds linear/quadratic temperature coefficients about `t_nominal`.
    #[must_use]
    pub fn with_tempco(mut self, tc1: f64, tc2: f64, t_nominal: Kelvin) -> Self {
        self.tc1 = tc1;
        self.tc2 = tc2;
        self.t_nominal = t_nominal;
        self
    }

    /// Binds the nominal resistance to a shared [`Param`] for trim sweeps.
    #[must_use]
    pub fn with_handle(mut self, handle: Param) -> Self {
        self.r_nominal = handle;
        self
    }

    /// Resistance at the given temperature.
    #[must_use]
    pub fn resistance_at(&self, temperature: Kelvin) -> Ohm {
        let dt = temperature.value() - self.t_nominal.value();
        Ohm::new(self.r_nominal.get() * (1.0 + self.tc1 * dt + self.tc2 * dt * dt))
    }
}

impl Element for Resistor {
    fn name(&self) -> &str {
        &self.name
    }

    // Conductance depends on temperature and the bound parameter, never
    // on the iterate.
    fn jacobian_constant(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.a, self.b]
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let r = self.resistance_at(ctx.temperature()).value();
        // Tempco can drive R through zero far from Tnom; clamp to keep the
        // Jacobian sane and let validation catch real mistakes.
        let g = 1.0 / r.max(1e-6);
        let v = ctx.v(self.a) - ctx.v(self.b);
        let i = g * v;
        ctx.add_node_residual(self.a, i);
        ctx.add_node_residual(self.b, -i);
        ctx.add_jac_node_node(self.a, self.a, g);
        ctx.add_jac_node_node(self.a, self.b, -g);
        ctx.add_jac_node_node(self.b, self.a, -g);
        ctx.add_jac_node_node(self.b, self.b, g);
    }
}

/// An independent current source driving `value` amperes from node `from`
/// into node `to` (through the source).
#[derive(Debug, Clone)]
pub struct CurrentSource {
    name: String,
    from: NodeId,
    to: NodeId,
    value: Param,
}

impl CurrentSource {
    /// Creates a source pushing `value` from `from` into `to`.
    #[must_use]
    pub fn new(name: &str, from: NodeId, to: NodeId, value: Ampere) -> Self {
        CurrentSource {
            name: name.to_string(),
            from,
            to,
            value: Param::new(value.value()),
        }
    }

    /// Binds the current value to a shared [`Param`] for sweeps.
    #[must_use]
    pub fn with_handle(mut self, handle: Param) -> Self {
        self.value = handle;
        self
    }

    /// The present source value.
    #[must_use]
    pub fn value(&self) -> Ampere {
        Ampere::new(self.value.get())
    }
}

impl Element for CurrentSource {
    fn name(&self) -> &str {
        &self.name
    }

    // Stamps no Jacobian entries at all.
    fn jacobian_constant(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.from, self.to]
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let i = self.value.get() * ctx.source_scale();
        // Current leaves `from` and arrives at `to`.
        ctx.add_node_residual(self.from, i);
        ctx.add_node_residual(self.to, -i);
    }

    fn is_independent_source(&self) -> bool {
        true
    }
}

/// An independent voltage source (one branch-current unknown).
///
/// The branch current is defined flowing from `plus` through the source to
/// `minus`.
#[derive(Debug, Clone)]
pub struct VoltageSource {
    name: String,
    plus: NodeId,
    minus: NodeId,
    value: Param,
}

impl VoltageSource {
    /// Creates a source holding `v(plus) - v(minus) = value`.
    #[must_use]
    pub fn new(name: &str, plus: NodeId, minus: NodeId, value: Volt) -> Self {
        VoltageSource {
            name: name.to_string(),
            plus,
            minus,
            value: Param::new(value.value()),
        }
    }

    /// Binds the voltage value to a shared [`Param`] for sweeps.
    #[must_use]
    pub fn with_handle(mut self, handle: Param) -> Self {
        self.value = handle;
        self
    }

    /// The present source value.
    #[must_use]
    pub fn value(&self) -> Volt {
        Volt::new(self.value.get())
    }
}

impl Element for VoltageSource {
    fn name(&self) -> &str {
        &self.name
    }

    // Incidence entries (±1) only.
    fn jacobian_constant(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.plus, self.minus]
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let ib = ctx.branch(0);
        ctx.add_node_residual(self.plus, ib);
        ctx.add_node_residual(self.minus, -ib);
        ctx.add_jac_node_branch(self.plus, 0, 1.0);
        ctx.add_jac_node_branch(self.minus, 0, -1.0);
        // Branch equation: v+ - v- - E = 0.
        let e = self.value.get() * ctx.source_scale();
        ctx.add_branch_residual(0, ctx.v(self.plus) - ctx.v(self.minus) - e);
        ctx.add_jac_branch_node(0, self.plus, 1.0);
        ctx.add_jac_branch_node(0, self.minus, -1.0);
    }

    fn is_independent_source(&self) -> bool {
        true
    }
}

/// An op-amp macro-model: a voltage-controlled voltage source with finite
/// gain and an input-referred offset, output taken between `out` and
/// ground.
///
/// `v(out) = gain * ( v(in_p) - v(in_m) + offset )`
///
/// The input offset is the knob through which the instrument layer injects
/// per-sample op-amp offset — one of the second-order effects the paper's
/// analytical extraction captures and the best-fit extraction cannot.
#[derive(Debug, Clone)]
pub struct OpAmp {
    name: String,
    in_p: NodeId,
    in_m: NodeId,
    out: NodeId,
    gain: f64,
    offset: Param,
}

impl OpAmp {
    /// Creates an op-amp with the given open-loop gain and zero offset.
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] for non-finite or non-positive gain.
    pub fn new(
        name: &str,
        in_p: NodeId,
        in_m: NodeId,
        out: NodeId,
        gain: f64,
    ) -> Result<Self, SpiceError> {
        if !(gain > 0.0) || !gain.is_finite() {
            return Err(SpiceError::parameter(
                name,
                format!("op-amp gain must be positive and finite, got {gain}"),
            ));
        }
        Ok(OpAmp {
            name: name.to_string(),
            in_p,
            in_m,
            out,
            gain,
            offset: Param::new(0.0),
        })
    }

    /// Sets the input-referred offset voltage.
    #[must_use]
    pub fn with_offset(mut self, offset: Volt) -> Self {
        self.offset = Param::new(offset.value());
        self
    }

    /// Binds the offset to a shared [`Param`].
    #[must_use]
    pub fn with_offset_handle(mut self, handle: Param) -> Self {
        self.offset = handle;
        self
    }

    /// The present input-referred offset.
    #[must_use]
    pub fn offset(&self) -> Volt {
        Volt::new(self.offset.get())
    }

    /// The open-loop gain.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }
}

impl Element for OpAmp {
    fn name(&self) -> &str {
        &self.name
    }

    // Incidence and gain entries are fixed by the instance.
    fn jacobian_constant(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.in_p, self.in_m, self.out]
    }

    fn branch_count(&self) -> usize {
        1
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let ib = ctx.branch(0);
        ctx.add_node_residual(self.out, ib);
        ctx.add_jac_node_branch(self.out, 0, 1.0);
        // Branch equation: v(out) - gain (v+ - v- + vos) = 0.
        let vos = self.offset.get();
        let residual = ctx.v(self.out) - self.gain * (ctx.v(self.in_p) - ctx.v(self.in_m) + vos);
        ctx.add_branch_residual(0, residual);
        ctx.add_jac_branch_node(0, self.out, 1.0);
        ctx.add_jac_branch_node(0, self.in_p, -self.gain);
        ctx.add_jac_branch_node(0, self.in_m, self.gain);
    }
}

/// A junction diode following the eq.-1 saturation-current temperature law.
///
/// `I = area * IS(T) * ( e^{V/(n kT/q)} - 1 )`
///
/// Besides ordinary diodes, this element models the *parasitic substrate
/// junction* of the test cell's PNP devices: a diode from the collector
/// region to substrate whose leakage rises steeply with temperature and
/// perturbs `dVBE` — the effect behind Table 1.
#[derive(Debug, Clone)]
pub struct Diode {
    name: String,
    anode: NodeId,
    cathode: NodeId,
    law: SpiceIsLaw,
    emission: f64,
    area: f64,
}

impl Diode {
    /// Creates a diode from its saturation-current law and emission
    /// coefficient.
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] for non-positive emission coefficient
    /// or area.
    pub fn new(
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        law: SpiceIsLaw,
        emission: f64,
    ) -> Result<Self, SpiceError> {
        if !(emission > 0.0) || !emission.is_finite() {
            return Err(SpiceError::parameter(
                name,
                format!("emission coefficient must be positive, got {emission}"),
            ));
        }
        Ok(Diode {
            name: name.to_string(),
            anode,
            cathode,
            law,
            emission,
            area: 1.0,
        })
    }

    /// Scales the junction area (multiplies the saturation current).
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] for non-positive area.
    pub fn with_area(mut self, area: f64) -> Result<Self, SpiceError> {
        if !(area > 0.0) || !area.is_finite() {
            return Err(SpiceError::parameter(
                &self.name,
                format!("area must be positive, got {area}"),
            ));
        }
        self.area = area;
        Ok(self)
    }

    /// The saturation-current temperature law of this diode.
    #[must_use]
    pub fn law(&self) -> &SpiceIsLaw {
        &self.law
    }

    /// The emission coefficient.
    #[must_use]
    pub fn emission(&self) -> f64 {
        self.emission
    }

    /// The junction-area multiplier.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Diode current and small-signal conductance at junction voltage `v`
    /// and the given temperature.
    #[must_use]
    pub fn current(&self, v: Volt, temperature: Kelvin) -> (Ampere, f64) {
        let vt = thermal_voltage(temperature).value() * self.emission;
        let is = self.law.is_at(temperature).value() * self.area;
        let (e, de) = limexp(v.value() / vt);
        (Ampere::new(is * (e - 1.0)), is * de / vt)
    }

    /// Convenience: an ideal-ish diode with explicit `IS`, `EG`, `XTI`
    /// referenced to `t_nom`.
    ///
    /// # Errors
    ///
    /// Propagates [`Diode::new`] validation.
    #[allow(clippy::too_many_arguments)] // mirrors the SPICE .MODEL card fields
    pub fn from_card(
        name: &str,
        anode: NodeId,
        cathode: NodeId,
        is: Ampere,
        emission: f64,
        eg: ElectronVolt,
        xti: f64,
        t_nom: Kelvin,
    ) -> Result<Self, SpiceError> {
        Diode::new(
            name,
            anode,
            cathode,
            SpiceIsLaw::new(is, t_nom, eg, xti),
            emission,
        )
    }
}

impl Element for Diode {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.anode, self.cathode]
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let v = Volt::new(ctx.v(self.anode) - ctx.v(self.cathode));
        let (i, g) = self.current(v, ctx.temperature());
        let i = i.value();
        ctx.add_node_residual(self.anode, i);
        ctx.add_node_residual(self.cathode, -i);
        ctx.add_jac_node_node(self.anode, self.anode, g);
        ctx.add_jac_node_node(self.anode, self.cathode, -g);
        ctx.add_jac_node_node(self.cathode, self.anode, -g);
        ctx.add_jac_node_node(self.cathode, self.cathode, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    #[test]
    fn resistor_rejects_nonpositive_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(Resistor::new("R", a, Circuit::ground(), Ohm::new(0.0)).is_err());
        assert!(Resistor::new("R", a, Circuit::ground(), Ohm::new(-5.0)).is_err());
        assert!(Resistor::new("R", a, Circuit::ground(), Ohm::new(f64::NAN)).is_err());
    }

    #[test]
    fn resistor_tempco_moves_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let r = Resistor::new("R", a, Circuit::ground(), Ohm::new(1000.0))
            .unwrap()
            .with_tempco(1e-3, 0.0, Kelvin::new(300.0));
        assert!((r.resistance_at(Kelvin::new(400.0)).value() - 1100.0).abs() < 1e-9);
        assert!((r.resistance_at(Kelvin::new(300.0)).value() - 1000.0).abs() < 1e-12);
    }

    #[test]
    fn param_handle_shares_resistance() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let handle = Param::new(500.0);
        let r = Resistor::new("R", a, Circuit::ground(), Ohm::new(1.0))
            .unwrap()
            .with_handle(handle.clone());
        handle.set(750.0);
        assert_eq!(r.resistance_at(Kelvin::new(298.15)).value(), 750.0);
    }

    #[test]
    fn diode_current_is_exponential() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = Diode::from_card(
            "D1",
            a,
            Circuit::ground(),
            Ampere::new(1e-15),
            1.0,
            ElectronVolt::new(1.11),
            3.0,
            Kelvin::new(300.0),
        )
        .unwrap();
        let t = Kelvin::new(300.0);
        let (i1, g1) = d.current(Volt::new(0.6), t);
        let (i2, _) = d.current(Volt::new(0.6 + 0.02585 * 10f64.ln()), t);
        assert!((i2.value() / i1.value() - 10.0).abs() < 0.01);
        assert!(g1 > 0.0);
    }

    #[test]
    fn diode_reverse_current_saturates_at_minus_is() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let d = Diode::from_card(
            "D1",
            a,
            Circuit::ground(),
            Ampere::new(1e-15),
            1.0,
            ElectronVolt::new(1.11),
            3.0,
            Kelvin::new(300.0),
        )
        .unwrap();
        let (i, _) = d.current(Volt::new(-5.0), Kelvin::new(300.0));
        assert!((i.value() + 1e-15).abs() < 1e-20);
    }

    #[test]
    fn diode_area_scales_current() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let base = Diode::from_card(
            "D1",
            a,
            Circuit::ground(),
            Ampere::new(1e-15),
            1.0,
            ElectronVolt::new(1.11),
            3.0,
            Kelvin::new(300.0),
        )
        .unwrap();
        let big = base.clone().with_area(8.0).unwrap();
        let t = Kelvin::new(300.0);
        let r =
            big.current(Volt::new(0.55), t).0.value() / base.current(Volt::new(0.55), t).0.value();
        assert!((r - 8.0).abs() < 1e-9);
    }

    #[test]
    fn opamp_rejects_bad_gain() {
        let mut c = Circuit::new();
        let (p, m, o) = (c.node("p"), c.node("m"), c.node("o"));
        assert!(OpAmp::new("U1", p, m, o, 0.0).is_err());
        assert!(OpAmp::new("U1", p, m, o, f64::INFINITY).is_err());
    }

    #[test]
    fn sources_report_values() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let vs = VoltageSource::new("V1", a, Circuit::ground(), Volt::new(1.2));
        assert_eq!(vs.value().value(), 1.2);
        let is = CurrentSource::new("I1", a, Circuit::ground(), Ampere::new(1e-6));
        assert_eq!(is.value().value(), 1e-6);
        assert!(vs.is_independent_source());
        assert!(is.is_independent_source());
    }
}
