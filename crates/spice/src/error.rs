//! Error type for circuit construction and simulation.

use std::error::Error;
use std::fmt;

use icvbe_numerics::NumericsError;

use crate::ladder::SolveFailure;

/// Error produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A node name was used inconsistently or an element references an
    /// unknown node.
    BadTopology {
        /// Human-readable description.
        detail: String,
    },
    /// An element parameter is unphysical (negative resistance, zero IS...).
    BadParameter {
        /// Element name.
        element: String,
        /// Human-readable description.
        detail: String,
    },
    /// The DC solver failed to converge even with gmin and source stepping.
    NoConvergence {
        /// Description of the last attempted strategy.
        strategy: String,
        /// Residual at the last iterate.
        residual: f64,
    },
    /// Every rung of the DC escalation ladder failed; carries the full
    /// per-strategy trace (see [`crate::ladder`]).
    LadderExhausted(SolveFailure),
    /// An underlying numerical kernel failed.
    Numerics(NumericsError),
}

impl SpiceError {
    /// Convenience constructor for [`SpiceError::BadTopology`].
    #[must_use]
    pub fn topology(detail: impl Into<String>) -> Self {
        SpiceError::BadTopology {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`SpiceError::BadParameter`].
    #[must_use]
    pub fn parameter(element: impl Into<String>, detail: impl Into<String>) -> Self {
        SpiceError::BadParameter {
            element: element.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::BadTopology { detail } => write!(f, "bad topology: {detail}"),
            SpiceError::BadParameter { element, detail } => {
                write!(f, "bad parameter on element '{element}': {detail}")
            }
            SpiceError::NoConvergence { strategy, residual } => write!(
                f,
                "dc solve did not converge ({strategy}, residual {residual:e})"
            ),
            SpiceError::LadderExhausted(failure) => write!(f, "dc solve failed: {failure}"),
            SpiceError::Numerics(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NumericsError> for SpiceError {
    fn from(e: NumericsError) -> Self {
        SpiceError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SpiceError::topology("dangling node n3")
            .to_string()
            .contains("n3"));
        assert!(SpiceError::parameter("R1", "negative resistance")
            .to_string()
            .contains("R1"));
        let e: SpiceError = NumericsError::invalid("x").into();
        assert!(e.to_string().contains("numerical failure"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpiceError>();
    }
}
