//! Voltage-controlled current source (transconductor).
//!
//! The behavioural stand-in for a MOS current mirror in the sub-1V
//! current-mode bandgap (Banba) extension: the op-amp output drives the
//! control voltage and each mirror leg is one VCCS with matched `gm`.

use icvbe_units::Ampere;

use crate::netlist::NodeId;
use crate::stamp::{Element, StampContext};
use crate::SpiceError;

/// A linear transconductor: drives `gm * (v(ctrl_p) - v(ctrl_m))` from
/// node `from` into node `to`.
///
/// # Examples
///
/// ```
/// use icvbe_spice::element::{Resistor, VoltageSource};
/// use icvbe_spice::netlist::Circuit;
/// use icvbe_spice::solver::{solve_dc, DcOptions};
/// use icvbe_spice::vccs::Vccs;
/// use icvbe_units::{Kelvin, Ohm, Volt};
///
/// let mut ckt = Circuit::new();
/// let ctl = ckt.node("ctl");
/// let out = ckt.node("out");
/// let gnd = Circuit::ground();
/// ckt.add(VoltageSource::new("VC", ctl, gnd, Volt::new(0.5)));
/// ckt.add(Vccs::new("G1", ctl, gnd, gnd, out, 1e-3)?);
/// ckt.add(Resistor::new("RL", out, gnd, Ohm::new(1e3))?);
/// let op = solve_dc(&ckt, Kelvin::new(300.0), &DcOptions::default(), None)?;
/// // 1 mS * 0.5 V = 0.5 mA into 1 kΩ -> 0.5 V.
/// assert!((op.voltage(out).value() - 0.5).abs() < 1e-9);
/// # Ok::<(), icvbe_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Vccs {
    name: String,
    ctrl_p: NodeId,
    ctrl_m: NodeId,
    from: NodeId,
    to: NodeId,
    gm: f64,
}

impl Vccs {
    /// Creates a transconductor with transconductance `gm` (siemens).
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] for non-finite or zero `gm`.
    pub fn new(
        name: &str,
        ctrl_p: NodeId,
        ctrl_m: NodeId,
        from: NodeId,
        to: NodeId,
        gm: f64,
    ) -> Result<Self, SpiceError> {
        if !(gm != 0.0) || !gm.is_finite() {
            return Err(SpiceError::parameter(
                name,
                format!("transconductance must be non-zero and finite, got {gm}"),
            ));
        }
        Ok(Vccs {
            name: name.to_string(),
            ctrl_p,
            ctrl_m,
            from,
            to,
            gm,
        })
    }

    /// The transconductance in siemens.
    #[must_use]
    pub fn gm(&self) -> f64 {
        self.gm
    }

    /// The output current for a given control voltage difference.
    #[must_use]
    pub fn output_current(&self, v_ctrl: f64) -> Ampere {
        Ampere::new(self.gm * v_ctrl)
    }
}

impl Element for Vccs {
    fn name(&self) -> &str {
        &self.name
    }

    // The four ±gm entries are fixed by the instance.
    fn jacobian_constant(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn nodes(&self) -> Vec<NodeId> {
        vec![self.ctrl_p, self.ctrl_m, self.from, self.to]
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let vc = ctx.v(self.ctrl_p) - ctx.v(self.ctrl_m);
        let i = self.gm * vc;
        ctx.add_node_residual(self.from, i);
        ctx.add_node_residual(self.to, -i);
        ctx.add_jac_node_node(self.from, self.ctrl_p, self.gm);
        ctx.add_jac_node_node(self.from, self.ctrl_m, -self.gm);
        ctx.add_jac_node_node(self.to, self.ctrl_p, -self.gm);
        ctx.add_jac_node_node(self.to, self.ctrl_m, self.gm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Resistor, VoltageSource};
    use crate::netlist::Circuit;
    use crate::solver::{solve_dc, DcOptions};
    use icvbe_units::{Kelvin, Ohm, Volt};

    #[test]
    fn rejects_degenerate_gm() {
        let mut c = Circuit::new();
        let (a, b) = (c.node("a"), c.node("b"));
        assert!(Vccs::new("G", a, b, a, b, 0.0).is_err());
        assert!(Vccs::new("G", a, b, a, b, f64::NAN).is_err());
    }

    #[test]
    fn mirror_legs_match() {
        // One control node driving two VCCS legs produces equal currents.
        let mut c = Circuit::new();
        let gnd = Circuit::ground();
        let ctl = c.node("ctl");
        let o1 = c.node("o1");
        let o2 = c.node("o2");
        c.add(VoltageSource::new("VC", ctl, gnd, Volt::new(0.3)));
        c.add(Vccs::new("G1", ctl, gnd, gnd, o1, 2e-3).unwrap());
        c.add(Vccs::new("G2", ctl, gnd, gnd, o2, 2e-3).unwrap());
        c.add(Resistor::new("R1", o1, gnd, Ohm::new(500.0)).unwrap());
        c.add(Resistor::new("R2", o2, gnd, Ohm::new(500.0)).unwrap());
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        assert!((op.voltage(o1).value() - op.voltage(o2).value()).abs() < 1e-12);
        assert!((op.voltage(o1).value() - 0.3).abs() < 1e-9); // 0.6mA * 500
    }

    #[test]
    fn negative_gm_inverts_current() {
        let mut c = Circuit::new();
        let gnd = Circuit::ground();
        let ctl = c.node("ctl");
        let out = c.node("out");
        c.add(VoltageSource::new("VC", ctl, gnd, Volt::new(1.0)));
        c.add(Vccs::new("G1", ctl, gnd, gnd, out, -1e-3).unwrap());
        c.add(Resistor::new("RL", out, gnd, Ohm::new(1e3)).unwrap());
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        assert!((op.voltage(out).value() + 1.0).abs() < 1e-9);
    }

    #[test]
    fn output_current_helper() {
        let mut c = Circuit::new();
        let (a, b) = (c.node("a"), c.node("b"));
        let g = Vccs::new("G", a, b, a, b, 5e-4).unwrap();
        assert!((g.output_current(0.2).value() - 1e-4).abs() < 1e-18);
        assert_eq!(g.gm(), 5e-4);
    }
}
