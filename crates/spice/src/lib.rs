//! A SPICE-class DC circuit simulator for the `icvbe` reproduction.
//!
//! The paper's evaluation is entirely DC: `IC(VBE)` families swept in
//! voltage and temperature (Fig. 5), a bandgap test cell solved across
//! temperature (Figs. 3 and 8), and transistor pairs under forced bias
//! (Fig. 2). This crate provides exactly that machinery, built from
//! scratch:
//!
//! - [`netlist`]: named nodes and element storage,
//! - [`stamp`]: the element interface (residual/Jacobian stamping),
//! - [`element`]: resistors with tempco, independent sources, op-amp
//!   macro-model with input offset, junction diodes,
//! - [`bjt`]: the Gummel-Poon transistor with the eq.-1 `EG`/`XTI`
//!   temperature mapping and an optional parasitic substrate junction,
//! - [`system`]: MNA assembly into a nonlinear system, with a shareable
//!   [`system::CircuitAssembly`] caching the unknown layout,
//! - [`solver`]: Newton with gmin and source stepping,
//! - [`ladder`]: the typed DC escalation ladder (strategy enumeration,
//!   per-rung failure trace),
//! - [`workspace`]: reusable solve buffers + statistics
//!   ([`workspace::SolveWorkspace`], [`workspace::solve_dc_with`]) so
//!   repeated solves allocate nothing,
//! - [`sweep`]: DC parameter and temperature sweeps with warm starts,
//! - [`param`]: shared mutable values so analyses can sweep sources
//!   without rebuilding circuits,
//! - [`limexp`]: the junction-exponential safeguard.
//!
//! # Examples
//!
//! Solve a resistive divider:
//!
//! ```
//! use icvbe_spice::element::{Resistor, VoltageSource};
//! use icvbe_spice::netlist::Circuit;
//! use icvbe_spice::solver::{solve_dc, DcOptions};
//! use icvbe_units::{Kelvin, Ohm, Volt};
//!
//! let mut ckt = Circuit::new();
//! let vcc = ckt.node("vcc");
//! let out = ckt.node("out");
//! ckt.add(VoltageSource::new("V1", vcc, Circuit::ground(), Volt::new(2.0)));
//! ckt.add(Resistor::new("R1", vcc, out, Ohm::new(1e3))?);
//! ckt.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(1e3))?);
//! let op = solve_dc(&ckt, Kelvin::new(300.0), &DcOptions::default(), None)?;
//! assert!((op.voltage(out).value() - 1.0).abs() < 1e-9);
//! # Ok::<(), icvbe_spice::SpiceError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod bjt;
pub mod cache;
pub mod element;
mod error;
pub mod export;
pub mod ladder;
pub mod limexp;
pub mod netlist;
pub mod param;
pub mod solver;
pub mod stamp;
pub mod sweep;
pub mod system;
pub mod vccs;
pub mod workspace;

pub use error::SpiceError;
