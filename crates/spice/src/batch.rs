//! Lane-batched lockstep DC solving: several same-topology dies step
//! through damped Newton together.
//!
//! A campaign measures thousands of dies whose circuits differ only in
//! element *values* (Monte-Carlo mismatch draws), not structure. The
//! scalar path ([`crate::workspace::solve_dc_with`]) solves them one at a
//! time; this module packs up to [`MAX_LANES`] of them into a single
//! driver that advances every lane through the same Newton iteration in
//! lockstep:
//!
//! - **SoA state** — iterate, residual, trial and update vectors are
//!   lane-major contiguous arrays in a reusable [`BatchWorkspace`], the
//!   layout a SIMD or GPU backend consumes directly;
//! - **batched device evaluation, live in the hot loop** — before every
//!   residual round at a fresh iterate, the BJT junction exponentials of
//!   all stepping lanes run through the lane-array kernel
//!   ([`crate::limexp::limexp_lanes`] over [`icvbe_numerics::vexp`],
//!   feeding the shared Gummel-Poon combine), and the payloads land in
//!   each lane's exact-bit device cache — so the per-lane stamp that
//!   follows takes pure cache hits. Because `vexp`'s scalar and lane
//!   forms share one arithmetic core, the prewarmed bits *are* the bits
//!   the scalar in-stamp path computes, by construction;
//! - **lockstep sparse LU** — all lanes factor and solve against one
//!   frozen symbolic plan through
//!   [`icvbe_numerics::sparse::SparseLuBatch`], whose per-lane arithmetic
//!   is the scalar kernel verbatim;
//! - **per-lane masking** — a lane that converges retires from the
//!   stepping set with its iteration count; a lane that fails (singular
//!   factor, divergence, non-finite residual) retires to the scalar
//!   escalation ladder without stalling its neighbors.
//!
//! # The "same accepted bits" contract
//!
//! Every accepted operating point is **bit-identical** to what the scalar
//! path produces:
//!
//! - the per-lane arithmetic *is* the scalar op sequence — the driver
//!   mirrors `newton_damped` decision for decision (damping halves on
//!   every failed line-search round, the most-damped fallback step, the
//!   step-tolerance early exit, the acceptable-residual escape);
//! - the lane-array device kernel computes, per lane, exactly the bits
//!   the scalar in-stamp miss path would compute (one shared `vexp`
//!   core), and only ever *prewarms* the exact-bit eval cache with them;
//!   the per-lane stamp replay that consumes the cache is unchanged;
//! - batched solves run with the tolerance bypass off (exactly like the
//!   scalar warm rung), so no approximate residual ever leaks in;
//! - a lane that cannot finish batched is rerun through the scalar path
//!   from scratch by the caller, reproducing the scalar escalation ladder
//!   byte for byte (exact-bit cache entries left behind by the batched
//!   attempt are bits the scalar path would recompute identically).
//!
//! Solver-effort *counters* are observability, not part of the
//! accepted-bits contract: a lane-kernel evaluation books one eval (plus
//! the lane attribution) and the stamp replay books one exact-bit reuse,
//! where the scalar driver books one eval.

use std::sync::Arc;

use icvbe_numerics::newton::{polish_converged, NonlinearSystem};
use icvbe_numerics::sparse::{LuSymbolic, SparseLuBatch};
use icvbe_numerics::Matrix;
use icvbe_trace::{SpanKind, SpanToken};
use icvbe_units::Kelvin;

use crate::bjt::{eval_bjt_lanes, Bjt, BjtLaneScratch};
use crate::ladder::SolveStrategy;
use crate::netlist::{Circuit, NodeId};
use crate::solver::DcOptions;
use crate::stamp::{
    BypassTolerance, DeviceSlot, EvalContext, DEVICE_EVAL_SLOTS, DEVICE_TEMP_SLOTS,
};
use crate::system::{CircuitAssembly, CircuitSystem};
use crate::workspace::{drain_effort, rung_succeeded, DcSolveInfo, SolveWorkspace};

/// Hard upper bound on the lane count of one batched solve; the driver's
/// per-lane bookkeeping lives in stack arrays of this size so steady-state
/// batched solves allocate nothing.
pub const MAX_LANES: usize = 16;

/// One lane's solve request: the compiled circuit, its assembly, the
/// evaluation temperature and the warm-start seed.
///
/// Each lane must own a **distinct** assembly — lanes share nothing but
/// the symbolic factorization plan, and aliasing one assembly across two
/// lanes would cross-contaminate their device caches.
#[derive(Debug, Clone, Copy)]
pub struct LaneCtx<'a> {
    /// The lane's circuit (same topology across the batch, per-die values).
    pub circuit: &'a Circuit,
    /// The lane's own assembly (layout, device caches, restamp plan).
    pub assembly: &'a CircuitAssembly,
    /// Evaluation temperature for this lane.
    pub temperature: Kelvin,
    /// Warm-start seed; must have the assembly's dimension for the lane
    /// to be batch-eligible.
    pub seed: &'a [f64],
}

/// Per-lane outcome of [`solve_dc_batch`].
#[derive(Debug, Clone, Copy)]
pub enum LaneOutcome {
    /// The lane converged batched; the solution is in its workspace
    /// ([`SolveWorkspace::solution`]) exactly as after a scalar solve.
    Solved(DcSolveInfo),
    /// The lane did not finish batched (ineligible, factor failure,
    /// divergence, or a non-finite residual). The caller must rerun it
    /// through the scalar path from scratch, which reproduces the scalar
    /// escalation ladder byte for byte.
    Retired,
}

/// Reusable lane-strided storage for [`solve_dc_batch`]: iterate/residual
/// state for every MNA unknown of every lane, the lockstep sparse LU
/// workspace, and the gather/scatter buffers of the batched device kernel.
///
/// Sized lazily to the largest `(lanes, n)` it has seen; steady-state
/// batched solves perform no heap allocation.
#[derive(Debug, Default)]
pub struct BatchWorkspace {
    /// Lockstep LU bound to the shared symbolic plan.
    lu: Option<SparseLuBatch>,
    /// Shared per-lane Jacobian scratch (scattered into `lu` lane-strided).
    jac: Option<Matrix>,
    /// Lane-major iterate: lane `l` occupies `x[l*n .. (l+1)*n]`.
    x: Vec<f64>,
    /// Lane-major residual at `x`.
    f: Vec<f64>,
    /// Lane-major line-search trial point.
    trial: Vec<f64>,
    /// Lane-major residual at `trial`.
    f_trial: Vec<f64>,
    /// Lane-major Newton update.
    dx: Vec<f64>,
    /// Lane-major negated residual (LU right-hand side).
    neg_f: Vec<f64>,
    /// Per-lane residual infinity norm.
    fnorm: Vec<f64>,
    /// Per-lane line-search damping.
    damping: Vec<f64>,
    /// Lane-array limexp scratch for the batched BJT kernel.
    bjt: BjtLaneScratch,
    /// Per-lane base-emitter voltage gather.
    vbe: Vec<f64>,
    /// Per-lane base-collector voltage gather.
    vbc: Vec<f64>,
    /// Per-lane cached model slots feeding the batched kernel.
    model: Vec<[f64; DEVICE_TEMP_SLOTS]>,
    /// Per-lane eval payloads scattered back into the device caches.
    eval: Vec<[f64; DEVICE_EVAL_SLOTS]>,
    /// Element indices holding BJTs (scanned once per batched solve from
    /// the first lane's circuit, so every prewarm pass skips the linear
    /// elements without a downcast).
    bjt_candidates: Vec<usize>,
    /// Shape the buffers were last sized for: `(lanes, n, plan address)`.
    /// When unchanged, [`BatchWorkspace::ensure`] returns without touching
    /// the ~30 buffer headers (they are cache-cold after the per-lane
    /// polish tail of the previous call). The plan address is only ever
    /// compared, never dereferenced.
    sized_for: (usize, usize, usize),
}

impl BatchWorkspace {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        BatchWorkspace::default()
    }

    /// Sizes every buffer for `lanes` lanes of dimension `n` against
    /// `plan`, reusing prior storage whenever the shape is unchanged.
    fn ensure(&mut self, lanes: usize, n: usize, plan: &Arc<LuSymbolic>) {
        let shape = (lanes, n, Arc::as_ptr(plan) as usize);
        if self.sized_for == shape {
            return;
        }
        let rebuild = match &self.lu {
            Some(lu) => {
                lu.lanes() != lanes || !(Arc::ptr_eq(lu.plan(), plan) || **lu.plan() == **plan)
            }
            None => true,
        };
        if rebuild {
            self.lu = Some(SparseLuBatch::new(Arc::clone(plan), lanes));
        }
        match &mut self.jac {
            Some(m) if m.rows() == n => {}
            slot => *slot = Some(Matrix::zeros(n, n)),
        }
        let total = lanes * n;
        for buf in [
            &mut self.x,
            &mut self.f,
            &mut self.trial,
            &mut self.f_trial,
            &mut self.dx,
            &mut self.neg_f,
        ] {
            buf.resize(total, 0.0);
        }
        self.fnorm.resize(lanes, 0.0);
        self.damping.resize(lanes, 0.0);
        self.sized_for = shape;
    }

    /// Records the element indices holding BJTs in `circuit` (the first
    /// lane's; topology is shared across the batch, so a lane that
    /// disagrees keeps its cold cache for the unlisted device and takes
    /// the in-stamp miss — same bits). Scanned once per batched solve so
    /// the per-round prewarm passes skip every linear element without a
    /// downcast.
    fn scan_bjt_candidates(&mut self, circuit: &Circuit) {
        self.bjt_candidates.clear();
        for (j, element) in circuit.elements().iter().enumerate() {
            if element.as_any().downcast_ref::<Bjt>().is_some() {
                self.bjt_candidates.push(j);
            }
        }
    }

    /// Prewarms the exact-bit BJT eval caches of every masked lane at the
    /// selected lane-major point buffer (lane `l` at
    /// `buf[l * n..(l + 1) * n]`): terminal voltages are gathered per
    /// lane, the junction exponentials run through the lane-array kernel
    /// ([`crate::limexp::limexp_lanes`] over the shared `vexp` core,
    /// feeding the Gummel-Poon combine), and the payloads are scattered
    /// into each lane's device slots — the same bits the in-stamp miss
    /// path would compute, so the per-lane stamp replay that follows
    /// takes pure cache hits. Lanes whose cache already holds the point
    /// are skipped (the replay books the exact-bit reuse as usual).
    ///
    /// [`solve_dc_batch`] calls this before every residual evaluation at
    /// a fresh point: the seeds, each line-search trial round, and the
    /// most-damped fallback. Calling it is always bit-inert — since
    /// `vexp`'s scalar and lane forms share one arithmetic core, the
    /// prewarmed bits equal the scalar in-stamp bits by construction.
    fn prewarm_bjt_caches(&mut self, ctx: &[LaneCtx<'_>], mask: &[bool], at: PrewarmAt, n: usize) {
        let lanes = ctx.len();
        if lanes == 0 || lanes > MAX_LANES || mask.len() < lanes {
            return;
        }
        self.bjt.ensure(lanes);
        self.vbe.resize(lanes, 0.0);
        self.vbc.resize(lanes, 0.0);
        self.model.resize(lanes, [0.0; DEVICE_TEMP_SLOTS]);
        self.eval.resize(lanes, [0.0; DEVICE_EVAL_SLOTS]);
        // Split borrows: the point buffer is read while the gather/scatter
        // buffers are written, so destructure the workspace fields.
        let BatchWorkspace {
            x,
            trial,
            bjt,
            vbe,
            vbc,
            model,
            eval,
            bjt_candidates,
            ..
        } = self;
        let xs: &[f64] = match at {
            PrewarmAt::Iterate => x,
            PrewarmAt::Trial => trial,
        };
        if xs.len() < lanes * n {
            return;
        }
        let mut slots: [Option<std::cell::RefMut<'_, Vec<DeviceSlot>>>; MAX_LANES] =
            std::array::from_fn(|l| {
                (l < lanes && mask[l]).then(|| ctx[l].assembly.device_slots_mut())
            });
        let mut devs: [Option<&Bjt>; MAX_LANES] = [None; MAX_LANES];
        for ci in 0..bjt_candidates.len() {
            let j = bjt_candidates[ci];
            let mut any = false;
            for l in 0..lanes {
                devs[l] = None;
                if !mask[l] {
                    continue;
                }
                let Some(element) = ctx[l].circuit.elements().get(j) else {
                    continue;
                };
                let Some(dev) = element.as_any().downcast_ref::<Bjt>() else {
                    continue;
                };
                let s = dev.polarity().sign();
                let (c, b, e) = dev.terminals();
                let x = &xs[l * n..(l + 1) * n];
                let read = |node: NodeId| node.unknown_index().map_or(0.0, |i| x[i]);
                let (vc, vb, ve) = (read(c), read(b), read(e));
                let vbe_l = s * (vb - ve);
                let vbc_l = s * (vb - vc);
                let t = ctx[l].temperature;
                let t_bits = t.value().to_bits();
                let Some(slot) = slots[l].as_mut().and_then(|s| s.get_mut(j)) else {
                    continue;
                };
                let slots_cached = match slot.model_at(t_bits) {
                    Some(m) => m,
                    None => {
                        let m = dev.model_slots(t);
                        slot.put_model(t_bits, m);
                        m
                    }
                };
                if slot.eval_hit([vbe_l, vbc_l]) {
                    continue;
                }
                vbe[l] = vbe_l;
                vbc[l] = vbc_l;
                model[l] = slots_cached;
                devs[l] = Some(dev);
                any = true;
            }
            if !any {
                continue;
            }
            eval_bjt_lanes(
                &devs[..lanes],
                &model[..lanes],
                &vbe[..lanes],
                &vbc[..lanes],
                bjt,
                &mut eval[..lanes],
            );
            for l in 0..lanes {
                if devs[l].is_none() {
                    continue;
                }
                if let Some(slot) = slots[l].as_mut().and_then(|s| s.get_mut(j)) {
                    slot.put_eval([vbe[l], vbc[l]], eval[l]);
                }
                // Book the evaluation exactly as the in-stamp miss path
                // would — the replay's exact-bit hit then books the reuse —
                // plus the lane attribution for observability.
                let counters = ctx[l].assembly.stamp_counters();
                counters.device_evals.set(counters.device_evals.get() + 1);
                counters.lane_evals.set(counters.lane_evals.get() + 1);
            }
        }
    }
}

/// Which lane-major point buffer a prewarm pass reads.
#[derive(Debug, Clone, Copy)]
enum PrewarmAt {
    /// The accepted iterate `x` (the initial-residual evaluation at the
    /// seeds).
    Iterate,
    /// The line-search / most-damped-fallback trial point.
    Trial,
}

/// Infinity norm, bit-identical to the scalar Newton driver's.
fn inf_norm(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// Closes a failed lane's spans, drains its stamp counters and books the
/// retirement. The caller reruns the lane's solve through the scalar path
/// from scratch.
fn retire_lane(
    ws: &mut SolveWorkspace,
    assembly: &CircuitAssembly,
    newton: SpanToken,
    rung: SpanToken,
    solve: SpanToken,
) {
    ws.trace.span_end(newton);
    ws.trace.span_end(rung);
    let bypass = drain_effort(ws, assembly);
    ws.trace.span_end_with(solve, 0, bypass);
    ws.stats.lane_retires += 1;
}

/// Steps up to [`MAX_LANES`] warm-seeded dies through damped Newton in
/// lockstep (see the module docs for the architecture and the
/// bit-identity contract).
///
/// `ctx`, `workspaces` and `outcomes` are parallel slices, one entry per
/// lane. On return every `outcomes[l]` is either
/// [`LaneOutcome::Solved`] — the lane's workspace holds the operating
/// point exactly as a scalar [`crate::workspace::solve_dc_with`] would
/// have left it — or [`LaneOutcome::Retired`], in which case the caller
/// **must** rerun that lane through the scalar path (the retired lane's
/// workspace holds no solution).
///
/// A lane is batch-eligible when sparse solving is enabled, its seed has
/// the assembly's dimension, and its assembly has an armed symbolic plan
/// equal to the first eligible lane's (one prior scalar solve per
/// assembly arms the plan). Ineligible lanes retire without a batched
/// attempt and without touching their stats.
///
/// Returns the number of lanes that entered batched stepping (the
/// utilization observability feed).
pub fn solve_dc_batch(
    ctx: &[LaneCtx<'_>],
    options: &DcOptions,
    workspaces: &mut [&mut SolveWorkspace],
    batch: &mut BatchWorkspace,
    outcomes: &mut [LaneOutcome],
) -> usize {
    for o in outcomes.iter_mut() {
        *o = LaneOutcome::Retired;
    }
    let lanes = ctx.len();
    if lanes == 0 || lanes > MAX_LANES || workspaces.len() != lanes || outcomes.len() != lanes {
        return 0;
    }
    if !options.sparse {
        return 0;
    }
    let n = ctx[0].assembly.dimension();
    if n == 0 {
        return 0;
    }
    let Some(plan) = ctx[0].assembly.symbolic_plan() else {
        return 0;
    };
    let mut eligible = [false; MAX_LANES];
    let mut entered = 0usize;
    for l in 0..lanes {
        let a = ctx[l].assembly;
        eligible[l] = a.dimension() == n
            && ctx[l].seed.len() == n
            && a.symbolic_plan()
                .is_some_and(|p| Arc::ptr_eq(&p, &plan) || *p == *plan);
        if eligible[l] {
            entered += 1;
        }
    }
    if entered == 0 {
        return 0;
    }
    batch.ensure(lanes, n, &plan);
    batch.scan_bjt_candidates(ctx[0].circuit);

    // Per-lane systems: hot path with the tolerance bypass off, exactly
    // like the scalar warm rung — accepted residuals are always exact.
    let systems: [Option<CircuitSystem<'_>>; MAX_LANES] = std::array::from_fn(|l| {
        (l < lanes && eligible[l]).then(|| {
            let eval = EvalContext {
                temperature: ctx[l].temperature,
                gmin: options.gmin_floor,
                source_scale: 1.0,
            };
            CircuitSystem::hot_path(ctx[l].circuit, eval, ctx[l].assembly, BypassTolerance::OFF)
        })
    });

    // Per-lane entry bookkeeping, mirroring the scalar driver's.
    let mut solve_span = [None::<SpanToken>; MAX_LANES];
    let mut rung_span = [None::<SpanToken>; MAX_LANES];
    let mut newton_span = [None::<SpanToken>; MAX_LANES];
    let mut active = [false; MAX_LANES];
    let mut converged = [None::<usize>; MAX_LANES];
    for l in 0..lanes {
        if !eligible[l] {
            continue;
        }
        let ws = &mut *workspaces[l];
        ctx[l].assembly.invalidate_constants();
        ws.newton.use_sparse_plan(&plan);
        ws.ensure(n);
        ws.x0.copy_from_slice(ctx[l].seed);
        ws.stats.solves += 1;
        ws.stats.warm_starts += 1;
        ws.stats.batched_solves += 1;
        solve_span[l] = Some(ws.trace.span(SpanKind::DcSolve));
        rung_span[l] = Some(
            ws.trace
                .span_labeled(SpanKind::Rung, SolveStrategy::WarmStart.label()),
        );
        newton_span[l] = Some(ws.trace.span(SpanKind::Newton));
        batch.x[l * n..(l + 1) * n].copy_from_slice(ctx[l].seed);
        active[l] = true;
    }

    // Initial residual: one lane-array device-kernel pass prewarms every
    // active lane's eval cache at its seed, then the per-lane stamp
    // replay (identical to the scalar driver's) assembles the residual
    // from pure cache hits.
    batch.prewarm_bjt_caches(ctx, &active[..lanes], PrewarmAt::Iterate, n);
    for l in 0..lanes {
        if !active[l] {
            continue;
        }
        let Some(sys) = systems[l].as_ref() else {
            continue;
        };
        let x = &batch.x[l * n..(l + 1) * n];
        let fl = &mut batch.f[l * n..(l + 1) * n];
        if sys.residual(x, fl).is_err() {
            active[l] = false;
            let (Some(nw), Some(rg), Some(sv)) = (newton_span[l], rung_span[l], solve_span[l])
            else {
                continue;
            };
            retire_lane(&mut *workspaces[l], ctx[l].assembly, nw, rg, sv);
            continue;
        }
        batch.fnorm[l] = inf_norm(fl);
    }

    let opts = options.newton;
    for iter in 0..opts.max_iterations {
        // Convergence check at the top of the iteration, like the scalar
        // driver. The scalar path re-verifies against the exact system
        // here (`exactify`); with the bypass off that is a no-op.
        let mut stepping = 0usize;
        for l in 0..lanes {
            if !active[l] {
                continue;
            }
            if batch.fnorm[l] <= opts.residual_tolerance {
                converged[l] = Some(iter);
                active[l] = false;
            } else {
                stepping += 1;
            }
        }
        if stepping == 0 {
            break;
        }

        // Jacobian per lane into the shared scratch, scattered into the
        // lane-strided LU storage; then one lockstep masked factor.
        let Some(lu) = batch.lu.as_mut() else {
            break;
        };
        let Some(jac) = batch.jac.as_mut() else {
            break;
        };
        for l in 0..lanes {
            if !active[l] {
                continue;
            }
            let Some(sys) = systems[l].as_ref() else {
                continue;
            };
            let x = &batch.x[l * n..(l + 1) * n];
            if sys.jacobian(x, jac).is_err() {
                active[l] = false;
                if let (Some(nw), Some(rg), Some(sv)) =
                    (newton_span[l], rung_span[l], solve_span[l])
                {
                    retire_lane(&mut *workspaces[l], ctx[l].assembly, nw, rg, sv);
                }
                continue;
            }
            let values = lu.values_mut();
            for r in 0..n {
                for c in 0..n {
                    values[(r * n + c) * lanes + l] = jac[(r, c)];
                }
            }
        }
        let mut factored = active;
        lu.factor(&mut factored[..lanes]);
        for l in 0..lanes {
            if active[l] && !factored[l] {
                // Singular or non-finite lane: the scalar driver would
                // error out of the warm rung here.
                active[l] = false;
                if let (Some(nw), Some(rg), Some(sv)) =
                    (newton_span[l], rung_span[l], solve_span[l])
                {
                    retire_lane(&mut *workspaces[l], ctx[l].assembly, nw, rg, sv);
                }
            }
        }

        // Lockstep solve + step clamp, per-lane arithmetic unchanged.
        for l in 0..lanes {
            if !active[l] {
                continue;
            }
            for i in 0..n {
                batch.neg_f[l * n + i] = -batch.f[l * n + i];
            }
            let rhs = &batch.neg_f[l * n..(l + 1) * n];
            let dx = &mut batch.dx[l * n..(l + 1) * n];
            if lu.solve_lane(l, rhs, dx).is_err() {
                active[l] = false;
                if let (Some(nw), Some(rg), Some(sv)) =
                    (newton_span[l], rung_span[l], solve_span[l])
                {
                    retire_lane(&mut *workspaces[l], ctx[l].assembly, nw, rg, sv);
                }
                continue;
            }
            let dx_norm = inf_norm(dx);
            if dx_norm > opts.max_step {
                let scale = opts.max_step / dx_norm;
                for d in dx {
                    *d *= scale;
                }
            }
        }

        // Lockstep line search: every lane halves its own damping on a
        // failed round, exactly as the scalar loop does.
        let mut searching = active;
        let mut advanced = [false; MAX_LANES];
        for l in 0..lanes {
            batch.damping[l] = 1.0;
        }
        for _round in 0..20 {
            if !searching[..lanes].iter().any(|&s| s) {
                break;
            }
            for l in 0..lanes {
                if !searching[l] {
                    continue;
                }
                for i in 0..n {
                    batch.trial[l * n + i] =
                        batch.x[l * n + i] + batch.damping[l] * batch.dx[l * n + i];
                }
            }
            // Fresh trial points: one lane-array kernel pass, then the
            // per-lane residual replay below runs on cache hits.
            batch.prewarm_bjt_caches(ctx, &searching[..lanes], PrewarmAt::Trial, n);
            for l in 0..lanes {
                if !searching[l] {
                    continue;
                }
                let Some(sys) = systems[l].as_ref() else {
                    continue;
                };
                let trial = &batch.trial[l * n..(l + 1) * n];
                let f_trial = &mut batch.f_trial[l * n..(l + 1) * n];
                if sys.residual(trial, f_trial).is_ok() {
                    let t_norm = inf_norm(f_trial);
                    if t_norm.is_finite()
                        && (t_norm < batch.fnorm[l] || t_norm <= opts.residual_tolerance)
                    {
                        batch.x[l * n..(l + 1) * n].copy_from_slice(trial);
                        batch.f[l * n..(l + 1) * n]
                            .copy_from_slice(&batch.f_trial[l * n..(l + 1) * n]);
                        batch.fnorm[l] = t_norm;
                        advanced[l] = true;
                        searching[l] = false;
                        continue;
                    }
                }
                batch.damping[l] *= 0.5;
            }
        }

        // Most-damped fallback for lanes the search did not advance: take
        // the step if it still moves the iterate (the scalar escape from
        // locally increasing residuals), else accept-or-retire in place.
        let mut fallback = [false; MAX_LANES];
        for l in 0..lanes {
            if !active[l] || advanced[l] {
                continue;
            }
            for i in 0..n {
                batch.trial[l * n + i] =
                    batch.x[l * n + i] + batch.damping[l] * batch.dx[l * n + i];
            }
            if batch.trial[l * n..(l + 1) * n] == batch.x[l * n..(l + 1) * n] {
                // Bitwise stationary: the scalar driver accepts on the
                // acceptable-residual escape or reports no convergence.
                active[l] = false;
                if batch.fnorm[l] <= opts.acceptable_residual {
                    converged[l] = Some(iter);
                } else if let (Some(nw), Some(rg), Some(sv)) =
                    (newton_span[l], rung_span[l], solve_span[l])
                {
                    retire_lane(&mut *workspaces[l], ctx[l].assembly, nw, rg, sv);
                }
            } else {
                fallback[l] = true;
            }
        }
        if fallback[..lanes].iter().any(|&f| f) {
            batch.prewarm_bjt_caches(ctx, &fallback[..lanes], PrewarmAt::Trial, n);
            for l in 0..lanes {
                if !fallback[l] {
                    continue;
                }
                let Some(sys) = systems[l].as_ref() else {
                    continue;
                };
                let trial = &batch.trial[l * n..(l + 1) * n];
                let f_trial = &mut batch.f_trial[l * n..(l + 1) * n];
                let fail = match sys.residual(trial, f_trial) {
                    Err(_) => true,
                    Ok(()) => {
                        let t_norm = inf_norm(f_trial);
                        if t_norm.is_finite() {
                            batch.x[l * n..(l + 1) * n].copy_from_slice(trial);
                            batch.f[l * n..(l + 1) * n]
                                .copy_from_slice(&batch.f_trial[l * n..(l + 1) * n]);
                            batch.fnorm[l] = t_norm;
                            false
                        } else {
                            true
                        }
                    }
                };
                if fail {
                    active[l] = false;
                    if let (Some(nw), Some(rg), Some(sv)) =
                        (newton_span[l], rung_span[l], solve_span[l])
                    {
                        retire_lane(&mut *workspaces[l], ctx[l].assembly, nw, rg, sv);
                    }
                }
            }
        }

        // Step-tolerance early exit, same double condition as scalar.
        for l in 0..lanes {
            if !active[l] {
                continue;
            }
            let dx = &batch.dx[l * n..(l + 1) * n];
            if inf_norm(dx) * batch.damping[l] <= opts.step_tolerance
                && batch.fnorm[l] <= opts.residual_tolerance.max(1e-9)
            {
                converged[l] = Some(iter + 1);
                active[l] = false;
            }
        }
    }

    // Iteration budget exhausted: the scalar acceptable-residual escape.
    for l in 0..lanes {
        if !active[l] {
            continue;
        }
        active[l] = false;
        if batch.fnorm[l] <= opts.acceptable_residual {
            converged[l] = Some(opts.max_iterations);
        } else if let (Some(nw), Some(rg), Some(sv)) = (newton_span[l], rung_span[l], solve_span[l])
        {
            retire_lane(&mut *workspaces[l], ctx[l].assembly, nw, rg, sv);
        }
    }

    // Converged lanes: scalar polish against the exact system (the same
    // `options.polish` tail the scalar driver runs inside its Newton
    // span), then the scalar success bookkeeping.
    for l in 0..lanes {
        let Some(iterations) = converged[l] else {
            continue;
        };
        let ws = &mut *workspaces[l];
        ws.x.copy_from_slice(&batch.x[l * n..(l + 1) * n]);
        let polish = match (opts.polish, systems[l].as_ref()) {
            (true, Some(sys)) => polish_converged(sys, &mut ws.x, &mut ws.newton),
            _ => 0,
        };
        let (Some(nw), Some(rg), Some(sv)) = (newton_span[l], rung_span[l], solve_span[l]) else {
            continue;
        };
        ws.trace.span_end_with(nw, iterations as u64, polish as u64);
        let info = rung_succeeded(
            ws,
            ctx[l].assembly,
            SolveStrategy::WarmStart,
            iterations,
            true,
            rg,
            sv,
        );
        outcomes[l] = LaneOutcome::Solved(info);
    }
    entered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjt::{BjtParams, Polarity};
    use crate::element::CurrentSource;
    use crate::workspace::solve_dc_with;
    use icvbe_units::Ampere;

    /// The paper's PTAT pair cell with a per-lane area/bias variation —
    /// same topology, different values, like Monte-Carlo die draws.
    fn ptat_cell(lane: usize) -> Circuit {
        let mut c = Circuit::new();
        let va = c.node("va");
        let vb = c.node("vb");
        let gnd = Circuit::ground();
        let bias = 1e-6 * (1.0 + 0.07 * lane as f64);
        c.add(CurrentSource::new("Ia", gnd, va, Ampere::new(bias)));
        c.add(CurrentSource::new("Ib", gnd, vb, Ampere::new(bias)));
        c.add(
            Bjt::new("QA", gnd, gnd, va, Polarity::Pnp, BjtParams::default_npn())
                .expect("valid device"),
        );
        c.add(
            Bjt::new("QB", gnd, gnd, vb, Polarity::Pnp, BjtParams::default_npn())
                .expect("valid device")
                .with_area(8.0 + 0.5 * lane as f64)
                .expect("valid area"),
        );
        c
    }

    /// Cold-solves the lane's circuit once (arming the symbolic plan and
    /// the warm seed) and returns the seed.
    fn prime(
        circuit: &Circuit,
        assembly: &CircuitAssembly,
        t: Kelvin,
        opts: &DcOptions,
        ws: &mut SolveWorkspace,
    ) -> Vec<f64> {
        solve_dc_with(circuit, assembly, t, opts, None, ws).expect("cold prime solve");
        ws.solution().to_vec()
    }

    #[test]
    fn batched_lanes_match_scalar_solves_bitwise() {
        let t_prime = Kelvin::new(278.15);
        let lane_temps = [248.15, 298.15, 318.15, 348.15];
        let mut opts = DcOptions::default();
        opts.newton.polish = true;

        for lanes in [1usize, 2, 4] {
            // Scalar reference: cold prime, then a scalar warm solve at
            // the lane temperature.
            let mut reference = Vec::new();
            for l in 0..lanes {
                let c = ptat_cell(l);
                let assembly = CircuitAssembly::new(&c).expect("valid cell");
                let mut ws = SolveWorkspace::new();
                let seed = prime(&c, &assembly, t_prime, &opts, &mut ws);
                let info = solve_dc_with(
                    &c,
                    &assembly,
                    Kelvin::new(lane_temps[l]),
                    &opts,
                    Some(&seed),
                    &mut ws,
                )
                .expect("scalar warm solve");
                reference.push((ws.solution().to_vec(), info));
            }

            // Batched run over fresh per-lane state, same prime.
            let circuits: Vec<Circuit> = (0..lanes).map(ptat_cell).collect();
            let assemblies: Vec<CircuitAssembly> = circuits
                .iter()
                .map(|c| CircuitAssembly::new(c).expect("valid cell"))
                .collect();
            let mut workspaces: Vec<SolveWorkspace> =
                (0..lanes).map(|_| SolveWorkspace::new()).collect();
            let mut seeds = Vec::new();
            for l in 0..lanes {
                seeds.push(prime(
                    &circuits[l],
                    &assemblies[l],
                    t_prime,
                    &opts,
                    &mut workspaces[l],
                ));
            }
            let ctx: Vec<LaneCtx<'_>> = (0..lanes)
                .map(|l| LaneCtx {
                    circuit: &circuits[l],
                    assembly: &assemblies[l],
                    temperature: Kelvin::new(lane_temps[l]),
                    seed: &seeds[l],
                })
                .collect();
            let mut ws_refs: Vec<&mut SolveWorkspace> = workspaces.iter_mut().collect();
            let mut batch = BatchWorkspace::new();
            let mut outcomes = vec![LaneOutcome::Retired; lanes];
            let entered = solve_dc_batch(&ctx, &opts, &mut ws_refs, &mut batch, &mut outcomes);
            assert_eq!(entered, lanes);

            for l in 0..lanes {
                let (ref_x, ref_info) = &reference[l];
                match outcomes[l] {
                    LaneOutcome::Solved(info) => {
                        assert_eq!(info, *ref_info, "lane {l} info diverged ({lanes} lanes)");
                    }
                    LaneOutcome::Retired => panic!("lane {l} retired ({lanes} lanes)"),
                }
                let got: Vec<u64> = workspaces[l]
                    .solution()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let want: Vec<u64> = ref_x.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "lane {l} solution bits diverged ({lanes} lanes)");
                assert_eq!(workspaces[l].stats.batched_solves, 1);
                assert_eq!(workspaces[l].stats.lane_retires, 0);
            }
        }
    }

    #[test]
    fn prewarm_kernel_is_bit_inert() {
        let t_prime = Kelvin::new(278.15);
        let t_solve = Kelvin::new(308.15);
        let mut opts = DcOptions::default();
        opts.newton.polish = true;
        let lanes = 3usize;

        // Two identical fresh setups; run B prewarms every lane's device
        // cache through the lane-array kernel at the seed points before
        // the batched solve (which prewarms again internally — the extra
        // pass must be absorbed as pure exact-bit hits). Outcomes and
        // solution bits must not move.
        let mut runs: Vec<Vec<(Vec<u64>, DcSolveInfo)>> = Vec::new();
        for prewarm in [false, true] {
            let circuits: Vec<Circuit> = (0..lanes).map(ptat_cell).collect();
            let assemblies: Vec<CircuitAssembly> = circuits
                .iter()
                .map(|c| CircuitAssembly::new(c).expect("valid cell"))
                .collect();
            let mut workspaces: Vec<SolveWorkspace> =
                (0..lanes).map(|_| SolveWorkspace::new()).collect();
            let mut seeds = Vec::new();
            for l in 0..lanes {
                seeds.push(prime(
                    &circuits[l],
                    &assemblies[l],
                    t_prime,
                    &opts,
                    &mut workspaces[l],
                ));
            }
            let ctx: Vec<LaneCtx<'_>> = (0..lanes)
                .map(|l| LaneCtx {
                    circuit: &circuits[l],
                    assembly: &assemblies[l],
                    temperature: t_solve,
                    seed: &seeds[l],
                })
                .collect();
            let mut batch = BatchWorkspace::new();
            let n = assemblies[0].dimension();
            if prewarm {
                batch.scan_bjt_candidates(&circuits[0]);
                batch.x.resize(lanes * n, 0.0);
                for l in 0..lanes {
                    batch.x[l * n..(l + 1) * n].copy_from_slice(&seeds[l]);
                }
                batch.prewarm_bjt_caches(&ctx, &[true; MAX_LANES][..lanes], PrewarmAt::Iterate, n);
            }
            let mut ws_refs: Vec<&mut SolveWorkspace> = workspaces.iter_mut().collect();
            let mut outcomes = vec![LaneOutcome::Retired; lanes];
            let entered = solve_dc_batch(&ctx, &opts, &mut ws_refs, &mut batch, &mut outcomes);
            assert_eq!(entered, lanes);
            let mut run = Vec::new();
            for l in 0..lanes {
                let LaneOutcome::Solved(info) = outcomes[l] else {
                    panic!("lane {l} retired (prewarm={prewarm})");
                };
                let bits = workspaces[l]
                    .solution()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                run.push((bits, info));
            }
            runs.push(run);
        }
        assert_eq!(runs[0], runs[1], "prewarm changed accepted bits");
    }

    #[test]
    fn faulty_lanes_retire_without_disturbing_neighbors() {
        let t_prime = Kelvin::new(278.15);
        let t_solve = Kelvin::new(308.15);
        let mut opts = DcOptions::default();
        opts.newton.polish = true;
        let lanes = 4usize;

        // Scalar reference for the two healthy lanes (0 and 3).
        let mut reference = Vec::new();
        for l in [0usize, 3] {
            let c = ptat_cell(l);
            let assembly = CircuitAssembly::new(&c).expect("valid cell");
            let mut ws = SolveWorkspace::new();
            let seed = prime(&c, &assembly, t_prime, &opts, &mut ws);
            solve_dc_with(&c, &assembly, t_solve, &opts, Some(&seed), &mut ws)
                .expect("scalar warm solve");
            reference.push(ws.solution().to_vec());
        }

        let circuits: Vec<Circuit> = (0..lanes).map(ptat_cell).collect();
        let assemblies: Vec<CircuitAssembly> = circuits
            .iter()
            .map(|c| CircuitAssembly::new(c).expect("valid cell"))
            .collect();
        let mut workspaces: Vec<SolveWorkspace> =
            (0..lanes).map(|_| SolveWorkspace::new()).collect();
        let mut seeds = Vec::new();
        for l in 0..lanes {
            seeds.push(prime(
                &circuits[l],
                &assemblies[l],
                t_prime,
                &opts,
                &mut workspaces[l],
            ));
        }
        // Lane 1: seed of the wrong length — ineligible, no batched
        // attempt. Lane 2: a poisoned (non-finite) seed — enters the
        // batch, fails the lockstep factor, retires to the ladder.
        seeds[1] = vec![0.0];
        for v in &mut seeds[2] {
            *v = f64::NAN;
        }
        let ctx: Vec<LaneCtx<'_>> = (0..lanes)
            .map(|l| LaneCtx {
                circuit: &circuits[l],
                assembly: &assemblies[l],
                temperature: t_solve,
                seed: &seeds[l],
            })
            .collect();
        let mut ws_refs: Vec<&mut SolveWorkspace> = workspaces.iter_mut().collect();
        let mut batch = BatchWorkspace::new();
        let mut outcomes = vec![LaneOutcome::Retired; lanes];
        let entered = solve_dc_batch(&ctx, &opts, &mut ws_refs, &mut batch, &mut outcomes);
        assert_eq!(entered, 3, "lane 1 is ineligible, the rest enter");

        assert!(matches!(outcomes[0], LaneOutcome::Solved(_)));
        assert!(matches!(outcomes[1], LaneOutcome::Retired));
        assert!(matches!(outcomes[2], LaneOutcome::Retired));
        assert!(matches!(outcomes[3], LaneOutcome::Solved(_)));
        assert_eq!(workspaces[1].stats.batched_solves, 0, "no batched attempt");
        assert_eq!(workspaces[1].stats.lane_retires, 0);
        assert_eq!(workspaces[2].stats.batched_solves, 1);
        assert_eq!(workspaces[2].stats.lane_retires, 1);

        for (i, l) in [0usize, 3].into_iter().enumerate() {
            let got: Vec<u64> = workspaces[l]
                .solution()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let want: Vec<u64> = reference[i].iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "healthy lane {l} diverged next to faulty lanes");
        }
    }

    #[test]
    fn batch_requires_sparse_and_an_armed_plan() {
        let c = ptat_cell(0);
        let assembly = CircuitAssembly::new(&c).expect("valid cell");
        let mut ws = SolveWorkspace::new();
        let opts = DcOptions::default();
        // No prior solve: the symbolic plan is not armed yet.
        let seed = vec![0.0; assembly.dimension()];
        let ctx = [LaneCtx {
            circuit: &c,
            assembly: &assembly,
            temperature: Kelvin::new(298.15),
            seed: &seed,
        }];
        let mut batch = BatchWorkspace::new();
        let mut outcomes = [LaneOutcome::Retired];
        let mut ws_refs = [&mut ws];
        assert_eq!(
            solve_dc_batch(&ctx, &opts, &mut ws_refs, &mut batch, &mut outcomes),
            0
        );
        assert!(matches!(outcomes[0], LaneOutcome::Retired));

        // Armed plan but dense solving requested: still scalar-only.
        let seed = prime(&c, &assembly, Kelvin::new(298.15), &opts, &mut ws);
        let mut dense = opts;
        dense.sparse = false;
        let ctx = [LaneCtx {
            circuit: &c,
            assembly: &assembly,
            temperature: Kelvin::new(298.15),
            seed: &seed,
        }];
        let mut ws_refs = [&mut ws];
        assert_eq!(
            solve_dc_batch(&ctx, &dense, &mut ws_refs, &mut batch, &mut outcomes),
            0
        );
        assert!(matches!(outcomes[0], LaneOutcome::Retired));
    }
}
