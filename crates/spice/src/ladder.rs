//! The DC escalation ladder: a typed description of the continuation
//! strategies [`crate::workspace::solve_dc_with`] climbs through, and the
//! structured [`SolveFailure`] produced when every rung is exhausted.
//!
//! Historically the driver ran an anonymous 3-strategy chain and reported
//! failure as one opaque string. The ladder makes each rung a named
//! [`SolveStrategy`], records a [`RungAttempt`] per failed rung, and hands
//! the whole trace to the caller — so a campaign can count *which* rung
//! rescued a die, and a quarantine report can say exactly how a solve
//! died. Success-path behavior is unchanged: the trace is only
//! materialized on the failure path, keeping the hot path allocation-free.

use std::fmt;

/// One rung of the DC escalation ladder, in the order it is attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStrategy {
    /// Direct damped Newton from a caller-provided seed.
    WarmStart,
    /// Direct damped Newton from the all-zeros operating point.
    ColdStart,
    /// Gmin continuation: a ladder of shrinking shunt conductances, each
    /// solve seeded from the previous one.
    GminStepping,
    /// Source stepping at a relaxed gmin, then gmin relaxation back to
    /// the floor.
    SourceStepping,
}

impl SolveStrategy {
    /// Every rung in escalation order (cheapest first).
    pub const ALL: [SolveStrategy; 4] = [
        SolveStrategy::WarmStart,
        SolveStrategy::ColdStart,
        SolveStrategy::GminStepping,
        SolveStrategy::SourceStepping,
    ];

    /// Stable machine-readable label, used in traces and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SolveStrategy::WarmStart => "warm_start",
            SolveStrategy::ColdStart => "cold_start",
            SolveStrategy::GminStepping => "gmin_stepping",
            SolveStrategy::SourceStepping => "source_stepping",
        }
    }

    /// Position in the ladder (0 = cheapest).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SolveStrategy::WarmStart => 0,
            SolveStrategy::ColdStart => 1,
            SolveStrategy::GminStepping => 2,
            SolveStrategy::SourceStepping => 3,
        }
    }
}

impl fmt::Display for SolveStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One failed rung, recorded in the [`SolveFailure`] trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RungAttempt {
    /// The strategy that was attempted.
    pub strategy: SolveStrategy,
    /// Newton iterations accumulated *before* this rung gave up.
    pub iterations_before: usize,
    /// Why the rung failed, as reported by the inner solver.
    pub detail: String,
}

/// Structured failure after every applicable rung of the escalation
/// ladder has been exhausted; carries the full per-strategy trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveFailure {
    /// Every rung attempted, in order, with its failure detail.
    pub trace: Vec<RungAttempt>,
}

impl SolveFailure {
    /// An empty trace (no rungs attempted yet).
    #[must_use]
    pub fn new() -> Self {
        SolveFailure::default()
    }

    /// The last strategy attempted, if any rung ran at all.
    #[must_use]
    pub fn last_strategy(&self) -> Option<SolveStrategy> {
        self.trace.last().map(|a| a.strategy)
    }

    pub(crate) fn record(
        &mut self,
        strategy: SolveStrategy,
        iterations_before: usize,
        detail: impl Into<String>,
    ) {
        self.trace.push(RungAttempt {
            strategy,
            iterations_before,
            detail: detail.into(),
        });
    }
}

impl fmt::Display for SolveFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "escalation ladder exhausted after {} rung(s)",
            self.trace.len()
        )?;
        for (i, a) in self.trace.iter().enumerate() {
            let sep = if i == 0 { ": " } else { "; " };
            write!(f, "{sep}{}: {}", a.strategy, a.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_are_ordered_and_labelled() {
        for (i, s) in SolveStrategy::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(SolveStrategy::GminStepping.label(), "gmin_stepping");
        assert_eq!(SolveStrategy::WarmStart.to_string(), "warm_start");
    }

    #[test]
    fn failure_records_trace_in_order() {
        let mut fail = SolveFailure::new();
        assert!(fail.last_strategy().is_none());
        fail.record(SolveStrategy::ColdStart, 0, "diverged");
        fail.record(SolveStrategy::GminStepping, 12, "stalled at gmin 1e-6");
        assert_eq!(fail.last_strategy(), Some(SolveStrategy::GminStepping));
        let text = fail.to_string();
        assert!(text.contains("2 rung(s)"), "{text}");
        assert!(text.contains("cold_start: diverged"), "{text}");
        assert!(text.contains("gmin_stepping: stalled"), "{text}");
    }
}
