//! The Gummel-Poon bipolar transistor (DC) with the eq.-1 `EG`/`XTI`
//! temperature mapping.
//!
//! The model covers what the paper's evaluation exercises:
//!
//! - ideal transport current with emission coefficients `NF`/`NR`,
//! - base-emitter and base-collector leakage (`ISE`/`NE`, `ISC`/`NC`) —
//!   the low-current floor of the Fig.-5 family,
//! - high-injection roll-off (`IKF`) and base-width modulation
//!   (`VAF`/`VAR`) — the high-current bend of Fig. 5,
//! - full SPICE temperature mapping of `IS`, `ISE`, `ISC` and `BF` through
//!   `EG`, `XTI` and `XTB`,
//! - an optional parasitic substrate junction whose leakage grows steeply
//!   with temperature — the second-order effect that perturbs `dVBE` in the
//!   silicon test cell (Table 1 and the rising measured curve of Fig. 8).

use icvbe_devphys::saturation::SpiceIsLaw;
use icvbe_units::{thermal_voltage, Ampere, ElectronVolt, Kelvin, Volt};

use crate::limexp::{limexp, limexp_lanes};
use crate::netlist::NodeId;
use crate::stamp::{Element, StampContext, DEVICE_EVAL_SLOTS, DEVICE_TEMP_SLOTS};
use crate::SpiceError;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// NPN: forward-active with `VBE > 0`.
    Npn,
    /// PNP: forward-active with `VEB > 0` (the paper's test devices).
    Pnp,
}

impl Polarity {
    /// Sign convention: +1 for NPN, -1 for PNP.
    #[must_use]
    pub fn sign(self) -> f64 {
        match self {
            Polarity::Npn => 1.0,
            Polarity::Pnp => -1.0,
        }
    }
}

/// Gummel-Poon model card (DC subset).
///
/// Leakage saturation currents and the knee current are per unit area; the
/// device [`Bjt::with_area`] factor scales them all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtParams {
    /// Transport saturation current at `t_nom`.
    pub is: Ampere,
    /// Forward beta at `t_nom`.
    pub bf: f64,
    /// Reverse beta at `t_nom`.
    pub br: f64,
    /// Forward emission coefficient.
    pub nf: f64,
    /// Reverse emission coefficient.
    pub nr: f64,
    /// Base-emitter leakage saturation current at `t_nom`.
    pub ise: Ampere,
    /// Base-emitter leakage emission coefficient.
    pub ne: f64,
    /// Base-collector leakage saturation current at `t_nom`.
    pub isc: Ampere,
    /// Base-collector leakage emission coefficient.
    pub nc: f64,
    /// Forward knee current (high injection); `f64::INFINITY` disables.
    pub ikf: Ampere,
    /// Forward Early voltage; `f64::INFINITY` disables.
    pub vaf: Volt,
    /// Reverse Early voltage; `f64::INFINITY` disables.
    pub var: Volt,
    /// Bandgap parameter of the eq.-1 temperature law.
    pub eg: ElectronVolt,
    /// Saturation-current temperature exponent of eq. 1.
    pub xti: f64,
    /// Beta temperature exponent.
    pub xtb: f64,
    /// Model-card reference temperature.
    pub t_nom: Kelvin,
}

impl BjtParams {
    /// A generic small-signal silicon NPN card.
    #[must_use]
    pub fn default_npn() -> Self {
        BjtParams {
            is: Ampere::new(1e-16),
            bf: 100.0,
            br: 2.0,
            nf: 1.0,
            nr: 1.0,
            ise: Ampere::new(1e-14),
            ne: 2.0,
            isc: Ampere::new(0.0),
            nc: 1.5,
            ikf: Ampere::new(f64::INFINITY),
            vaf: Volt::new(f64::INFINITY),
            var: Volt::new(f64::INFINITY),
            eg: ElectronVolt::new(1.11),
            xti: 3.0,
            xtb: 0.0,
            t_nom: Kelvin::new(298.15),
        }
    }

    /// Validates physical ranges.
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] on the first violation.
    pub fn validate(&self, name: &str) -> Result<(), SpiceError> {
        let checks: [(&str, bool); 8] = [
            ("IS must be positive", self.is.value() > 0.0),
            ("BF must be positive", self.bf > 0.0),
            ("BR must be positive", self.br > 0.0),
            ("NF must be in (0, 10]", self.nf > 0.0 && self.nf <= 10.0),
            ("NE must be in (0, 10]", self.ne > 0.0 && self.ne <= 10.0),
            ("IKF must be positive", self.ikf.value() > 0.0),
            (
                "EG must be in (0.1, 3) eV",
                self.eg.value() > 0.1 && self.eg.value() < 3.0,
            ),
            ("TNOM must be physical", self.t_nom.value() > 0.0),
        ];
        for (msg, ok) in checks {
            if !ok {
                return Err(SpiceError::parameter(name, msg));
            }
        }
        Ok(())
    }

    /// The eq.-1 law governing this card's `IS(T)`.
    #[must_use]
    pub fn is_law(&self) -> SpiceIsLaw {
        SpiceIsLaw::new(self.is, self.t_nom, self.eg, self.xti)
    }
}

/// Per-temperature evaluation of the card.
#[derive(Debug, Clone, Copy)]
struct BjtAtTemperature {
    vt_f: f64,
    vt_r: f64,
    vt_e: f64,
    vt_c: f64,
    is: f64,
    ise: f64,
    isc: f64,
    bf: f64,
    br: f64,
    ikf: f64,
    inv_vaf: f64,
    inv_var: f64,
}

impl BjtAtTemperature {
    /// Packs the card values into the first 12 device-cache slots.
    fn to_slots(self) -> [f64; DEVICE_TEMP_SLOTS] {
        let mut s = [0.0; DEVICE_TEMP_SLOTS];
        s[0] = self.vt_f;
        s[1] = self.vt_r;
        s[2] = self.vt_e;
        s[3] = self.vt_c;
        s[4] = self.is;
        s[5] = self.ise;
        s[6] = self.isc;
        s[7] = self.bf;
        s[8] = self.br;
        s[9] = self.ikf;
        s[10] = self.inv_vaf;
        s[11] = self.inv_var;
        s
    }

    fn from_slots(s: &[f64; DEVICE_TEMP_SLOTS]) -> Self {
        BjtAtTemperature {
            vt_f: s[0],
            vt_r: s[1],
            vt_e: s[2],
            vt_c: s[3],
            is: s[4],
            ise: s[5],
            isc: s[6],
            bf: s[7],
            br: s[8],
            ikf: s[9],
            inv_vaf: s[10],
            inv_var: s[11],
        }
    }
}

/// Device-cache slot of the parasitic saturation current (`is * area`).
const SLOT_SUB_IS: usize = 12;
/// Device-cache slot of the parasitic thermal voltage (`vt * emission`).
const SLOT_SUB_VT: usize = 13;

/// Terminal currents (defined flowing *into* each terminal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BjtCurrents {
    /// Current into the collector.
    pub ic: Ampere,
    /// Current into the base.
    pub ib: Ampere,
    /// Current into the emitter (`-(ic + ib)`).
    pub ie: Ampere,
}

/// Optional parasitic vertical transistor under the emitter.
///
/// In a junction-isolated lateral/substrate PNP, the p+ emitter, n-epi
/// base and p-substrate form a *vertical* PNP in parallel with the wanted
/// device: a fraction of the emitter current is injected straight into the
/// substrate. The stolen fraction is controlled by the same emitter-base
/// voltage but with its own saturation current, emission coefficient and
/// temperature law — so it grows disproportionately at high temperature,
/// perturbing `dVBE` (Table 1) and bending `VREF(T)` upward (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubstrateJunction {
    /// Parasitic transport saturation current at the card's `t_nom` (per
    /// unit area of the main device; scaled by the device area).
    pub is: Ampere,
    /// Emission coefficient of the parasitic injection (recombination
    /// dominated: ~2).
    pub emission: f64,
    /// Bandgap parameter of the parasitic temperature law. A small
    /// effective `EG` makes the leakage rise steeply with temperature.
    pub eg: ElectronVolt,
    /// Temperature exponent of the parasitic temperature law.
    pub xti: f64,
}

impl SubstrateJunction {
    /// A junction-isolation parasitic typical of the paper's BiCMOS
    /// process: recombination-dominated injection (`n = 2`) with a small
    /// effective `EG`, so the stolen fraction of the bias current grows
    /// from ~0.1% at room temperature to percents at the hot end of the
    /// -50..125 °C range.
    #[must_use]
    pub fn bicmos_default() -> Self {
        SubstrateJunction {
            is: Ampere::new(1e-13),
            emission: 2.0,
            eg: ElectronVolt::new(0.66),
            xti: 3.0,
        }
    }
}

/// A Gummel-Poon BJT instance.
///
/// # Examples
///
/// ```
/// use icvbe_spice::bjt::{Bjt, BjtParams, Polarity};
/// use icvbe_spice::netlist::Circuit;
/// use icvbe_units::{Kelvin, Volt};
///
/// let mut ckt = Circuit::new();
/// let (c, b, e) = (ckt.node("c"), ckt.node("b"), ckt.node("e"));
/// let q = Bjt::new("Q1", c, b, e, Polarity::Npn, BjtParams::default_npn())?;
/// let i = q.dc_currents(Volt::new(3.0), Volt::new(0.65), Volt::new(0.0), Kelvin::new(298.15));
/// assert!(i.ic.value() > 0.0 && i.ic.value() > 50.0 * i.ib.value());
/// # Ok::<(), icvbe_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Bjt {
    name: String,
    collector: NodeId,
    base: NodeId,
    emitter: NodeId,
    substrate: Option<(NodeId, SubstrateJunction)>,
    polarity: Polarity,
    params: BjtParams,
    area: f64,
}

impl Bjt {
    /// Creates a transistor with unit area and no substrate parasitic.
    ///
    /// # Errors
    ///
    /// Propagates [`BjtParams::validate`].
    pub fn new(
        name: &str,
        collector: NodeId,
        base: NodeId,
        emitter: NodeId,
        polarity: Polarity,
        params: BjtParams,
    ) -> Result<Self, SpiceError> {
        params.validate(name)?;
        Ok(Bjt {
            name: name.to_string(),
            collector,
            base,
            emitter,
            substrate: None,
            polarity,
            params,
            area: 1.0,
        })
    }

    /// Scales the emitter area (`IS`, `ISE`, `ISC`, `IKF` and the substrate
    /// leakage all scale with it). The paper's QB uses `area = 8`.
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] for non-positive area.
    pub fn with_area(mut self, area: f64) -> Result<Self, SpiceError> {
        if !(area > 0.0) || !area.is_finite() {
            return Err(SpiceError::parameter(
                &self.name,
                format!("area must be positive, got {area}"),
            ));
        }
        self.area = area;
        Ok(self)
    }

    /// Attaches a parasitic substrate junction between the collector and
    /// `substrate` (usually ground).
    #[must_use]
    pub fn with_substrate(mut self, substrate: NodeId, junction: SubstrateJunction) -> Self {
        self.substrate = Some((substrate, junction));
        self
    }

    /// The model card.
    #[must_use]
    pub fn params(&self) -> &BjtParams {
        &self.params
    }

    /// The emitter-area multiplier.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Device polarity.
    #[must_use]
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    fn at_temperature(&self, t: Kelvin) -> BjtAtTemperature {
        let p = &self.params;
        let vt = thermal_voltage(t).value();
        let t_ratio = t.value() / p.t_nom.value();
        let is_t = p.is_law().is_at(t).value();
        let is_ratio = is_t / p.is.value();
        let beta_factor = t_ratio.powf(p.xtb);
        BjtAtTemperature {
            vt_f: vt * p.nf,
            vt_r: vt * p.nr,
            vt_e: vt * p.ne,
            vt_c: vt * p.nc,
            is: is_t * self.area,
            ise: p.ise.value() * self.area * is_ratio.powf(1.0 / p.ne) / beta_factor,
            isc: p.isc.value() * self.area * is_ratio.powf(1.0 / p.nc) / beta_factor,
            bf: p.bf * beta_factor,
            br: p.br * beta_factor,
            ikf: p.ikf.value() * self.area,
            inv_vaf: if p.vaf.value().is_finite() {
                1.0 / p.vaf.value()
            } else {
                0.0
            },
            inv_var: if p.var.value().is_finite() {
                1.0 / p.var.value()
            } else {
                0.0
            },
        }
    }

    /// Core NPN-referenced Gummel-Poon evaluation.
    ///
    /// Returns `(ic, ib, dic/dvbe, dic/dvbc, dib/dvbe, dib/dvbc)`.
    fn gummel_poon(
        &self,
        vbe: f64,
        vbc: f64,
        m: &BjtAtTemperature,
    ) -> (f64, f64, f64, f64, f64, f64) {
        // Junction exponentials (limited). Leakage limexps are computed
        // only when their saturation current is live — the combine stage
        // never reads them otherwise, which is what lets the batched
        // kernel evaluate them unconditionally with identical results.
        let ef = limexp(vbe / m.vt_f);
        let er = limexp(vbc / m.vt_r);
        let ee = if m.ise > 0.0 {
            limexp(vbe / m.vt_e)
        } else {
            (0.0, 0.0)
        };
        let ec = if m.isc > 0.0 {
            limexp(vbc / m.vt_c)
        } else {
            (0.0, 0.0)
        };
        gummel_poon_combine(vbe, vbc, m, ef, er, ee, ec)
    }
}

/// Post-exponential Gummel-Poon combine, shared bit-for-bit by the scalar
/// and lane-batched evaluation paths. `ef`/`er` are the `(value, slope)`
/// pairs of the transport junction limexps; `ee`/`ec` the leakage ones,
/// read only when `ise`/`isc` are positive — a batched caller may pass
/// unconditionally computed values for dead leakage diodes.
///
/// Returns `(ic, ib, dic/dvbe, dic/dvbc, dib/dvbe, dib/dvbc)`.
#[allow(clippy::similar_names)]
fn gummel_poon_combine(
    vbe: f64,
    vbc: f64,
    m: &BjtAtTemperature,
    ef: (f64, f64),
    er: (f64, f64),
    ee: (f64, f64),
    ec: (f64, f64),
) -> (f64, f64, f64, f64, f64, f64) {
    let (ef, def) = ef;
    let (er, der) = er;
    let ibe_id = m.is * (ef - 1.0);
    let gbe_id = m.is * def / m.vt_f;
    let ibc_id = m.is * (er - 1.0);
    let gbc_id = m.is * der / m.vt_r;

    // Leakage diodes.
    let (ibe_lk, gbe_lk) = if m.ise > 0.0 {
        let (e, de) = ee;
        (m.ise * (e - 1.0), m.ise * de / m.vt_e)
    } else {
        (0.0, 0.0)
    };
    let (ibc_lk, gbc_lk) = if m.isc > 0.0 {
        let (e, de) = ec;
        (m.isc * (e - 1.0), m.isc * de / m.vt_c)
    } else {
        (0.0, 0.0)
    };

    // Base charge qb = q1 (1 + sqrt(1 + 4 q2)) / 2.
    let denom_raw = 1.0 - vbc * m.inv_vaf - vbe * m.inv_var;
    let clamped = denom_raw < 1e-4;
    let denom = denom_raw.max(1e-4);
    let q1 = 1.0 / denom;
    let (dq1_dvbe, dq1_dvbc) = if clamped {
        (0.0, 0.0)
    } else {
        (q1 * q1 * m.inv_var, q1 * q1 * m.inv_vaf)
    };
    let q2 = if m.ikf.is_finite() {
        ibe_id / m.ikf
    } else {
        0.0
    };
    let (dq2_dvbe, dq2_dvbc) = if m.ikf.is_finite() {
        (gbe_id / m.ikf, 0.0)
    } else {
        (0.0, 0.0)
    };
    let sq = (1.0 + 4.0 * q2.max(-0.24)).sqrt();
    let qb = q1 * (1.0 + sq) * 0.5;
    let dqb_dvbe = dq1_dvbe * (1.0 + sq) * 0.5 + q1 * dq2_dvbe / sq;
    let dqb_dvbc = dq1_dvbc * (1.0 + sq) * 0.5 + q1 * dq2_dvbc / sq;

    // Transport current and terminal currents.
    let it = (ibe_id - ibc_id) / qb;
    let dit_dvbe = gbe_id / qb - it * dqb_dvbe / qb;
    let dit_dvbc = -gbc_id / qb - it * dqb_dvbc / qb;

    let ic = it - ibc_id / m.br - ibc_lk;
    let dic_dvbe = dit_dvbe;
    let dic_dvbc = dit_dvbc - gbc_id / m.br - gbc_lk;

    let ib = ibe_id / m.bf + ibe_lk + ibc_id / m.br + ibc_lk;
    let dib_dvbe = gbe_id / m.bf + gbe_lk;
    let dib_dvbc = gbc_id / m.br + gbc_lk;

    (ic, ib, dic_dvbe, dic_dvbc, dib_dvbe, dib_dvbc)
}

impl Bjt {
    /// Terminal currents at explicit terminal voltages, excluding the
    /// substrate parasitic (which is reported by
    /// [`Bjt::substrate_leakage`]).
    #[must_use]
    pub fn dc_currents(&self, vc: Volt, vb: Volt, ve: Volt, temperature: Kelvin) -> BjtCurrents {
        let s = self.polarity.sign();
        let m = self.at_temperature(temperature);
        let vbe = s * (vb.value() - ve.value());
        let vbc = s * (vb.value() - vc.value());
        let (ic, ib, ..) = self.gummel_poon(vbe, vbc, &m);
        BjtCurrents {
            ic: Ampere::new(s * ic),
            ib: Ampere::new(s * ib),
            ie: Ampere::new(-s * (ic + ib)),
        }
    }

    /// Current the parasitic vertical transistor injects from the emitter
    /// into the substrate, at the given base/emitter voltages (positive =
    /// emitter-to-substrate for a PNP).
    #[must_use]
    pub fn substrate_leakage(&self, vb: Volt, ve: Volt, temperature: Kelvin) -> Ampere {
        let Some((_, j)) = self.substrate else {
            return Ampere::new(0.0);
        };
        let law = SpiceIsLaw::new(j.is, self.params.t_nom, j.eg, j.xti);
        let is = law.is_at(temperature).value() * self.area;
        let vt = thermal_voltage(temperature).value() * j.emission;
        let vbe = self.polarity.sign() * (vb.value() - ve.value());
        let (e, _) = limexp(vbe / vt);
        Ampere::new(is * (e - 1.0))
    }

    /// The `VBE` this device needs to conduct collector current `ic` with
    /// collector-base junction at zero bias (diode-connected measurement
    /// configuration), at the given temperature. Ideal inversion used for
    /// test setup and cross-checks.
    #[must_use]
    pub fn vbe_for_ic(&self, ic: Ampere, temperature: Kelvin) -> Volt {
        let m = self.at_temperature(temperature);
        Volt::new(m.vt_f * (ic.value() / m.is + 1.0).ln())
    }

    /// Collector, base and emitter node ids — the gather indices a batched
    /// driver needs to read terminal voltages out of a solution vector.
    pub(crate) fn terminals(&self) -> (NodeId, NodeId, NodeId) {
        (self.collector, self.base, self.emitter)
    }

    /// The full per-temperature model slot array, exactly as the stamp
    /// path caches it: the Gummel-Poon card via
    /// [`BjtAtTemperature::to_slots`] plus the substrate parasitic's
    /// saturation current and thermal voltage when present.
    pub(crate) fn model_slots(&self, t: Kelvin) -> [f64; DEVICE_TEMP_SLOTS] {
        let mut slots = self.at_temperature(t).to_slots();
        if let Some((_, j)) = self.substrate {
            let law = SpiceIsLaw::new(j.is, self.params.t_nom, j.eg, j.xti);
            slots[SLOT_SUB_IS] = law.is_at(t).value() * self.area;
            slots[SLOT_SUB_VT] = thermal_voltage(t).value() * j.emission;
        }
        slots
    }

    /// The full eval-cache payload at `(vbe, vbc)` from cached model
    /// slots: `[ic, ib, y11, y12, y21, y22, i_raw, g]`. This is the eval
    /// miss path of [`Element::stamp`], shared with the batched kernel so
    /// both produce identical bits.
    ///
    /// All five junction sites run through one fixed-width
    /// [`limexp_lanes`] block — the same shape [`eval_bjt_lanes`] uses
    /// across lanes, vectorized *within* a single device here, so even
    /// the scalar miss path pays one SIMD exponential pass instead of
    /// up to five serial scalar calls. Dead leakage/substrate sites
    /// compute whatever their (possibly `inf`/`NaN`) argument yields;
    /// the combine never reads them, mirroring [`Bjt::gummel_poon`]'s
    /// conditionals bit-for-bit.
    pub(crate) fn eval_slots(
        &self,
        vbe: f64,
        vbc: f64,
        slots: &[f64; DEVICE_TEMP_SLOTS],
    ) -> [f64; DEVICE_EVAL_SLOTS] {
        let m = BjtAtTemperature::from_slots(slots);
        let args = [
            vbe / m.vt_f,
            vbc / m.vt_r,
            vbe / m.vt_e,
            vbc / m.vt_c,
            vbe / slots[SLOT_SUB_VT],
        ];
        let mut vals = [0.0; 5];
        let mut slopes = [0.0; 5];
        limexp_lanes(&args, &mut vals, &mut slopes);
        let site = |s: usize| (vals[s], slopes[s]);
        let (ic, ib, y11, y12, y21, y22) =
            gummel_poon_combine(vbe, vbc, &m, site(0), site(1), site(2), site(3));
        let (i_raw, g) = if self.substrate.is_some() {
            substrate_combine(slots[SLOT_SUB_IS], slots[SLOT_SUB_VT], site(4))
        } else {
            (0.0, 0.0)
        };
        [ic, ib, y11, y12, y21, y22, i_raw, g]
    }
}

/// Substrate-parasitic combine shared by the scalar and batched eval
/// paths: `(i_raw, g)` from the junction limexp pair.
fn substrate_combine(is: f64, vt: f64, (e, de): (f64, f64)) -> (f64, f64) {
    (is * (e - 1.0), is * de / vt)
}

/// Reusable lane-length scratch for [`eval_bjt_lanes`]: argument and
/// value/slope arrays for the five limexp sites (forward, reverse, BE
/// leakage, BC leakage, substrate). Owned by the batch workspace so
/// steady-state batched evaluation allocates nothing.
#[derive(Debug, Default, Clone)]
pub(crate) struct BjtLaneScratch {
    args: [Vec<f64>; 5],
    vals: [Vec<f64>; 5],
    slopes: [Vec<f64>; 5],
}

impl BjtLaneScratch {
    pub(crate) fn ensure(&mut self, lanes: usize) {
        for buf in self
            .args
            .iter_mut()
            .chain(self.vals.iter_mut())
            .chain(self.slopes.iter_mut())
        {
            buf.resize(lanes, 0.0);
        }
    }
}

/// Lane-batched BJT evaluation: for every lane with a device, computes
/// the same `[f64; DEVICE_EVAL_SLOTS]` payload as [`Bjt::eval_slots`] —
/// bit-for-bit — with the junction exponentials evaluated across lanes
/// through [`limexp_lanes`] (the SoA hot loop) and the polynomial tail
/// combined per lane through the shared [`gummel_poon_combine`].
///
/// Lanes whose `devs` slot is `None` are skipped; their `out` slot is
/// untouched. Dead leakage/substrate sites still run through the lane
/// exponential with whatever argument falls out (possibly `inf`/`NaN`
/// from a zero thermal-voltage slot) — the combine never reads those
/// lanes' values, mirroring the scalar conditionals.
pub(crate) fn eval_bjt_lanes(
    devs: &[Option<&Bjt>],
    slots: &[[f64; DEVICE_TEMP_SLOTS]],
    vbe: &[f64],
    vbc: &[f64],
    scratch: &mut BjtLaneScratch,
    out: &mut [[f64; DEVICE_EVAL_SLOTS]],
) {
    let lanes = devs.len();
    debug_assert_eq!(slots.len(), lanes);
    debug_assert_eq!(vbe.len(), lanes);
    debug_assert_eq!(vbc.len(), lanes);
    debug_assert_eq!(out.len(), lanes);
    scratch.ensure(lanes);
    for l in 0..lanes {
        if devs[l].is_none() {
            for site in 0..5 {
                scratch.args[site][l] = 0.0;
            }
            continue;
        }
        let m = BjtAtTemperature::from_slots(&slots[l]);
        scratch.args[0][l] = vbe[l] / m.vt_f;
        scratch.args[1][l] = vbc[l] / m.vt_r;
        scratch.args[2][l] = vbe[l] / m.vt_e;
        scratch.args[3][l] = vbc[l] / m.vt_c;
        scratch.args[4][l] = vbe[l] / slots[l][SLOT_SUB_VT];
    }
    for site in 0..5 {
        limexp_lanes(
            &scratch.args[site],
            &mut scratch.vals[site],
            &mut scratch.slopes[site],
        );
    }
    for l in 0..lanes {
        let Some(dev) = devs[l] else { continue };
        let m = BjtAtTemperature::from_slots(&slots[l]);
        let site = |s: usize| (scratch.vals[s][l], scratch.slopes[s][l]);
        let (ic, ib, y11, y12, y21, y22) =
            gummel_poon_combine(vbe[l], vbc[l], &m, site(0), site(1), site(2), site(3));
        let (i_raw, g) = if dev.substrate.is_some() {
            substrate_combine(slots[l][SLOT_SUB_IS], slots[l][SLOT_SUB_VT], site(4))
        } else {
            (0.0, 0.0)
        };
        out[l] = [ic, ib, y11, y12, y21, y22, i_raw, g];
    }
}

impl Element for Bjt {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn nodes(&self) -> Vec<NodeId> {
        let mut n = vec![self.collector, self.base, self.emitter];
        if let Some((s, _)) = self.substrate {
            n.push(s);
        }
        n
    }

    fn stamp(&self, ctx: &mut StampContext<'_>) {
        let s = self.polarity.sign();
        let t = ctx.temperature();

        // Model cache: the powf-heavy per-temperature card values (and the
        // parasitic's saturation current / thermal voltage) are pure
        // functions of T, so reusing them at the same temperature bits is
        // exact.
        let t_bits = t.value().to_bits();
        let slots = match ctx.cached_model(t_bits) {
            Some(slots) => slots,
            None => {
                let slots = self.model_slots(t);
                ctx.store_model(t_bits, slots);
                slots
            }
        };

        let (vc, vb, ve) = (ctx.v(self.collector), ctx.v(self.base), ctx.v(self.emitter));
        let vbe = s * (vb - ve);
        let vbc = s * (vb - vc);

        // Evaluation cache: every output is a pure function of (vbe, vbc)
        // and the cached model values — including the substrate parasitic,
        // which is controlled by vbe alone.
        let out: [f64; DEVICE_EVAL_SLOTS] = match ctx.cached_eval([vbe, vbc]) {
            Some(out) => out,
            None => {
                let out = self.eval_slots(vbe, vbc, &slots);
                ctx.store_eval([vbe, vbc], out);
                out
            }
        };
        let [ic, ib, y11, y12, y21, y22, i_raw, g] = out;

        // Out-currents: collector s*ic, base s*ib, emitter -s*(ic+ib).
        ctx.add_node_residual(self.collector, s * ic);
        ctx.add_node_residual(self.base, s * ib);
        ctx.add_node_residual(self.emitter, -s * (ic + ib));

        // d out_c (note s^2 = 1 cancels in node-voltage derivatives).
        ctx.add_jac_node_node(self.collector, self.base, y11 + y12);
        ctx.add_jac_node_node(self.collector, self.emitter, -y11);
        ctx.add_jac_node_node(self.collector, self.collector, -y12);
        // d out_b.
        ctx.add_jac_node_node(self.base, self.base, y21 + y22);
        ctx.add_jac_node_node(self.base, self.emitter, -y21);
        ctx.add_jac_node_node(self.base, self.collector, -y22);
        // d out_e.
        ctx.add_jac_node_node(self.emitter, self.base, -(y11 + y12 + y21 + y22));
        ctx.add_jac_node_node(self.emitter, self.emitter, y11 + y21);
        ctx.add_jac_node_node(self.emitter, self.collector, y12 + y22);

        // Parasitic vertical transistor: transport current controlled by
        // the emitter-base junction, flowing emitter -> substrate (for the
        // PNP orientation; mirrored for NPN).
        if let Some((sub, _)) = self.substrate {
            // Out-of-emitter current is -s * i_raw (for PNP, s = -1:
            // positive i_raw leaves the emitter node), and the substrate
            // receives it.
            ctx.add_node_residual(self.emitter, -s * i_raw);
            ctx.add_node_residual(sub, s * i_raw);
            // vbe = s (vb - ve): the s^2 factors cancel in the Jacobian.
            ctx.add_jac_node_node(self.emitter, self.base, -g);
            ctx.add_jac_node_node(self.emitter, self.emitter, g);
            ctx.add_jac_node_node(sub, self.base, g);
            ctx.add_jac_node_node(sub, self.emitter, -g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    fn npn() -> (Circuit, Bjt) {
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let q = Bjt::new("Q1", nc, nb, ne, Polarity::Npn, BjtParams::default_npn()).unwrap();
        (c, q)
    }

    #[test]
    fn forward_active_has_beta_ratio() {
        let (_, q) = npn();
        let i = q.dc_currents(
            Volt::new(3.0),
            Volt::new(0.62),
            Volt::new(0.0),
            Kelvin::new(298.15),
        );
        let beta = i.ic.value() / i.ib.value();
        // Leakage makes beta < BF at moderate bias but well above 10.
        assert!(beta > 10.0 && beta < 120.0, "beta = {beta}");
        // KCL: currents into all three terminals sum to zero.
        assert!((i.ic.value() + i.ib.value() + i.ie.value()).abs() < 1e-18);
    }

    #[test]
    fn collector_current_is_exponential_in_vbe() {
        let (_, q) = npn();
        let t = Kelvin::new(298.15);
        let i1 = q
            .dc_currents(Volt::new(3.0), Volt::new(0.60), Volt::new(0.0), t)
            .ic
            .value();
        let dv = 0.0257 * 10f64.ln();
        let i2 = q
            .dc_currents(Volt::new(3.0), Volt::new(0.60 + dv), Volt::new(0.0), t)
            .ic
            .value();
        assert!((i2 / i1 - 10.0).abs() < 0.3, "decade ratio {}", i2 / i1);
    }

    #[test]
    fn pnp_mirrors_npn() {
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let q = Bjt::new("Q1", nc, nb, ne, Polarity::Pnp, BjtParams::default_npn()).unwrap();
        // PNP forward active: emitter above base.
        let i = q.dc_currents(
            Volt::new(0.0),
            Volt::new(0.58),
            Volt::new(1.2),
            Kelvin::new(298.15),
        );
        // Collector current flows OUT of the collector: negative into it.
        assert!(i.ic.value() < 0.0);
        assert!(i.ie.value() > 0.0);
        assert!((i.ic.value() + i.ib.value() + i.ie.value()).abs() < 1e-18);
    }

    #[test]
    fn is_temperature_law_matches_eq1() {
        let (_, q) = npn();
        let p = q.params();
        let hot = Kelvin::new(348.15);
        // vbe_for_ic inverts IS(T): check IS(T) ratio appears in VBE shift.
        let v_cold = q.vbe_for_ic(Ampere::new(1e-6), p.t_nom).value();
        let v_hot = q.vbe_for_ic(Ampere::new(1e-6), hot).value();
        assert!(v_hot < v_cold - 0.05, "VBE must drop strongly with T");
    }

    #[test]
    fn high_injection_bends_the_gummel_plot() {
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let mut params = BjtParams::default_npn();
        params.ikf = Ampere::new(1e-4);
        let q = Bjt::new("Q1", nc, nb, ne, Polarity::Npn, params).unwrap();
        let t = Kelvin::new(298.15);
        // Below the knee: full slope; far above: half slope.
        let v_lo = 0.55;
        let v_hi = 0.95;
        let dv = 0.010;
        let slope = |v: f64| {
            let i1 = q
                .dc_currents(Volt::new(3.0), Volt::new(v), Volt::new(0.0), t)
                .ic
                .value();
            let i2 = q
                .dc_currents(Volt::new(3.0), Volt::new(v + dv), Volt::new(0.0), t)
                .ic
                .value();
            (i2 / i1).ln() / dv
        };
        let s_lo = slope(v_lo);
        let s_hi = slope(v_hi);
        assert!(
            s_hi < 0.65 * s_lo,
            "expected high-injection slope reduction: {s_lo} -> {s_hi}"
        );
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let (_, q) = npn();
        let m = q.at_temperature(Kelvin::new(298.15));
        let (vbe, vbc) = (0.63, -2.0);
        let h = 1e-8;
        let (ic, ib, y11, y12, y21, y22) = q.gummel_poon(vbe, vbc, &m);
        let (ic_e, ib_e, ..) = q.gummel_poon(vbe + h, vbc, &m);
        let (ic_c, ib_c, ..) = q.gummel_poon(vbe, vbc + h, &m);
        assert!(((ic_e - ic) / h - y11).abs() / y11.abs().max(1e-12) < 1e-4);
        assert!(((ic_c - ic) / h - y12).abs() / y12.abs().max(1e-9) < 1e-3);
        assert!(((ib_e - ib) / h - y21).abs() / y21.abs().max(1e-12) < 1e-4);
        assert!(((ib_c - ib) / h - y22).abs() / y22.abs().max(1e-9) < 1e-3);
    }

    #[test]
    fn jacobian_with_early_and_knee_matches_finite_difference() {
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let mut params = BjtParams::default_npn();
        params.ikf = Ampere::new(1e-5);
        params.vaf = Volt::new(50.0);
        params.var = Volt::new(5.0);
        let q = Bjt::new("Q1", nc, nb, ne, Polarity::Npn, params).unwrap();
        let m = q.at_temperature(Kelvin::new(298.15));
        let (vbe, vbc) = (0.68, -1.0);
        let h = 1e-8;
        let (ic, _, y11, y12, ..) = q.gummel_poon(vbe, vbc, &m);
        let (ic_e, ..) = q.gummel_poon(vbe + h, vbc, &m);
        let (ic_c, ..) = q.gummel_poon(vbe, vbc + h, &m);
        assert!(((ic_e - ic) / h - y11).abs() / y11.abs() < 1e-3);
        assert!(((ic_c - ic) / h - y12).abs() / y12.abs().max(1e-9) < 1e-2);
    }

    #[test]
    fn area_scales_collector_current() {
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let q1 = Bjt::new("Q1", nc, nb, ne, Polarity::Npn, BjtParams::default_npn()).unwrap();
        let q8 = q1.clone().with_area(8.0).unwrap();
        let t = Kelvin::new(298.15);
        let i1 = q1
            .dc_currents(Volt::new(3.0), Volt::new(0.6), Volt::new(0.0), t)
            .ic
            .value();
        let i8 = q8
            .dc_currents(Volt::new(3.0), Volt::new(0.6), Volt::new(0.0), t)
            .ic
            .value();
        assert!((i8 / i1 - 8.0).abs() < 1e-6);
    }

    #[test]
    fn area_ratio_8_gives_ptat_dvbe() {
        // The Fig.-2 principle: at equal IC, dVBE = (kT/q) ln 8.
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let qa = Bjt::new("QA", nc, nb, ne, Polarity::Pnp, BjtParams::default_npn()).unwrap();
        let qb = qa.clone().with_area(8.0).unwrap();
        for t in [248.15, 298.15, 348.15] {
            let t = Kelvin::new(t);
            let ic = Ampere::new(1e-6);
            let dvbe = qa.vbe_for_ic(ic, t).value() - qb.vbe_for_ic(ic, t).value();
            let expected = icvbe_units::constants::BOLTZMANN_OVER_Q * t.value() * 8.0_f64.ln();
            assert!(
                (dvbe - expected).abs() < 1e-7,
                "dVBE at {t}: {dvbe} vs {expected}"
            );
        }
    }

    #[test]
    fn substrate_leakage_grows_with_temperature() {
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let q = Bjt::new("QB", nc, nb, ne, Polarity::Pnp, BjtParams::default_npn())
            .unwrap()
            .with_area(8.0)
            .unwrap()
            .with_substrate(Circuit::ground(), SubstrateJunction::bicmos_default());
        // PNP forward: emitter 0.5 V above base.
        let lo = q
            .substrate_leakage(Volt::new(0.0), Volt::new(0.5), Kelvin::new(298.15))
            .value();
        let hi = q
            .substrate_leakage(Volt::new(0.0), Volt::new(0.5), Kelvin::new(398.15))
            .value();
        assert!(lo > 0.0, "forward parasitic must conduct, got {lo:e}");
        assert!(
            hi > 10.0 * lo,
            "leakage must rise steeply: {lo:e} -> {hi:e}"
        );
    }

    #[test]
    fn validation_rejects_bad_cards() {
        let mut c = Circuit::new();
        let (nc, nb, ne) = (c.node("c"), c.node("b"), c.node("e"));
        let mut p = BjtParams::default_npn();
        p.is = Ampere::new(-1.0);
        assert!(Bjt::new("Q", nc, nb, ne, Polarity::Npn, p).is_err());
        let mut p = BjtParams::default_npn();
        p.eg = ElectronVolt::new(5.0);
        assert!(Bjt::new("Q", nc, nb, ne, Polarity::Npn, p).is_err());
        let q = Bjt::new("Q", nc, nb, ne, Polarity::Npn, BjtParams::default_npn()).unwrap();
        assert!(q.with_area(-1.0).is_err());
    }
}
