//! Assembly of a [`Circuit`] into the nonlinear MNA system the Newton
//! solver consumes.

use std::cell::RefCell;

use icvbe_numerics::newton::NonlinearSystem;
use icvbe_numerics::{Matrix, NumericsError};

use crate::netlist::Circuit;
use crate::stamp::{EvalContext, StampContext};
use crate::SpiceError;

/// The solve-invariant part of a circuit binding: unknown layout plus the
/// Jacobian residual scratch.
///
/// Everything here depends only on the circuit *topology*, not on
/// temperature, gmin or source scale — so one assembly can back thousands
/// of solves (a whole campaign die, or a worker thread's lifetime) without
/// recomputing branch offsets or reallocating scratch. Holds a `RefCell`
/// scratch buffer, so an assembly is per-thread, not shared across threads.
#[derive(Debug)]
pub struct CircuitAssembly {
    /// First branch index of each element (parallel to `circuit.elements()`).
    branch_bases: Vec<usize>,
    node_count: usize,
    dimension: usize,
    /// Residual accumulator for Jacobian-only stamping passes.
    jac_scratch: RefCell<Vec<f64>>,
}

impl CircuitAssembly {
    /// Validates the circuit topology and computes the unknown layout.
    ///
    /// # Errors
    ///
    /// Propagates [`Circuit::validate`] errors — hoisting validation here
    /// is what lets the per-solve hot path skip it.
    pub fn new(circuit: &Circuit) -> Result<Self, SpiceError> {
        circuit.validate()?;
        Ok(CircuitAssembly::new_unchecked(circuit))
    }

    /// Computes the unknown layout without validating the topology.
    #[must_use]
    pub fn new_unchecked(circuit: &Circuit) -> Self {
        let mut branch_bases = Vec::with_capacity(circuit.elements().len());
        let mut next = 0usize;
        for e in circuit.elements() {
            branch_bases.push(next);
            next += e.branch_count();
        }
        let node_count = circuit.node_count();
        CircuitAssembly {
            branch_bases,
            node_count,
            dimension: node_count + next,
            jac_scratch: RefCell::new(vec![0.0; node_count + next]),
        }
    }

    /// Total number of unknowns (node voltages plus branch currents).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of node-voltage unknowns.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// First branch index of each element, parallel to the element list.
    #[must_use]
    pub fn branch_bases(&self) -> &[usize] {
        &self.branch_bases
    }
}

/// How a [`CircuitSystem`] holds its assembly: built on the spot, or
/// borrowed from a caller that amortizes it across solves.
#[derive(Debug)]
enum AssemblyRef<'a> {
    Owned(CircuitAssembly),
    Borrowed(&'a CircuitAssembly),
}

/// A circuit bound to evaluation conditions, presented as `f(x) = 0`.
///
/// Unknown ordering: node voltages (creation order, ground excluded), then
/// branch currents (element order, each element's branches contiguous).
#[derive(Debug)]
pub struct CircuitSystem<'a> {
    circuit: &'a Circuit,
    eval: EvalContext,
    assembly: AssemblyRef<'a>,
}

impl<'a> CircuitSystem<'a> {
    /// Binds a circuit to evaluation conditions, assembling the layout on
    /// the spot.
    #[must_use]
    pub fn new(circuit: &'a Circuit, eval: EvalContext) -> Self {
        CircuitSystem {
            circuit,
            eval,
            assembly: AssemblyRef::Owned(CircuitAssembly::new_unchecked(circuit)),
        }
    }

    /// Binds a circuit to evaluation conditions over a caller-owned
    /// assembly (the hot-path form: nothing is recomputed or allocated).
    #[must_use]
    pub fn with_assembly(
        circuit: &'a Circuit,
        eval: EvalContext,
        assembly: &'a CircuitAssembly,
    ) -> Self {
        CircuitSystem {
            circuit,
            eval,
            assembly: AssemblyRef::Borrowed(assembly),
        }
    }

    fn asm(&self) -> &CircuitAssembly {
        match &self.assembly {
            AssemblyRef::Owned(a) => a,
            AssemblyRef::Borrowed(a) => a,
        }
    }

    /// The evaluation conditions in force.
    #[must_use]
    pub fn eval(&self) -> EvalContext {
        self.eval
    }

    /// Changes the evaluation conditions (gmin/source stepping reuse the
    /// same assembled structure).
    pub fn set_eval(&mut self, eval: EvalContext) {
        self.eval = eval;
    }

    /// First absolute branch index of element `element_index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn branch_base(&self, element_index: usize) -> usize {
        self.asm().branch_bases[element_index]
    }

    /// Number of node-voltage unknowns.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.asm().node_count
    }

    fn stamp_all(&self, x: &[f64], residual: &mut [f64], mut jacobian: Option<&mut Matrix>) {
        let asm = self.asm();
        for (e, &base) in self.circuit.elements().iter().zip(&asm.branch_bases) {
            let mut ctx = StampContext::new(
                self.eval,
                x,
                asm.node_count,
                base,
                residual,
                jacobian.as_deref_mut(),
            );
            e.stamp(&mut ctx);
        }
        // Global gmin: a conductance from every node to ground keeps the
        // Jacobian nonsingular for floating subcircuits and eases Newton.
        let g = self.eval.gmin;
        if g > 0.0 {
            for i in 0..asm.node_count {
                residual[i] += g * x[i];
                if let Some(j) = jacobian.as_deref_mut() {
                    j[(i, i)] += g;
                }
            }
        }
    }
}

impl NonlinearSystem for CircuitSystem<'_> {
    fn dimension(&self) -> usize {
        self.asm().dimension
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
        out.fill(0.0);
        self.stamp_all(x, out, None);
        if out.iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::invalid("non-finite circuit residual"));
        }
        Ok(())
    }

    fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError> {
        let asm = self.asm();
        let n = asm.dimension;
        out.fill(0.0);
        // Stamping writes residual and Jacobian together; the residual
        // lands in the assembly-owned scratch instead of a fresh vec.
        let mut scratch = asm.jac_scratch.borrow_mut();
        debug_assert_eq!(scratch.len(), n);
        scratch.fill(0.0);
        self.stamp_all(x, &mut scratch, Some(out));
        if !out.is_finite() {
            return Err(NumericsError::invalid("non-finite circuit jacobian"));
        }
        Ok(())
    }

    fn residual_and_jacobian(
        &self,
        x: &[f64],
        f: &mut [f64],
        jac: &mut Matrix,
    ) -> Result<(), NumericsError> {
        // One stamping pass fills both. Residual accumulation does not
        // depend on whether a Jacobian is attached, so `f` is bitwise
        // identical to what `residual` alone writes — the contract the
        // polish canonicalization depends on.
        f.fill(0.0);
        jac.fill(0.0);
        self.stamp_all(x, f, Some(jac));
        if f.iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::invalid("non-finite circuit residual"));
        }
        if !jac.is_finite() {
            return Err(NumericsError::invalid("non-finite circuit jacobian"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Resistor, VoltageSource};
    use crate::netlist::Circuit;
    use icvbe_units::{Kelvin, Ohm, Volt};

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(2.0),
        ));
        c.add(Resistor::new("R1", vcc, out, Ohm::new(1e3)).unwrap());
        c.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(1e3)).unwrap());
        c
    }

    #[test]
    fn dimension_counts_nodes_and_branches() {
        let c = divider();
        let sys = CircuitSystem::new(&c, EvalContext::nominal(Kelvin::new(300.0)));
        assert_eq!(sys.dimension(), 3);
        assert_eq!(sys.node_count(), 2);
        assert_eq!(sys.branch_base(0), 0);
    }

    #[test]
    fn residual_vanishes_at_exact_solution() {
        let c = divider();
        let mut eval = EvalContext::nominal(Kelvin::new(300.0));
        eval.gmin = 0.0;
        let sys = CircuitSystem::new(&c, eval);
        // vcc = 2, out = 1, source current = -(2-1)/1k ... source branch
        // current flows plus->through->minus: current out of vcc node into
        // R1 is 1 mA, so branch current is -1 mA.
        let x = [2.0, 1.0, -1e-3];
        let mut f = vec![0.0; 3];
        sys.residual(&x, &mut f).unwrap();
        for v in f {
            assert!(v.abs() < 1e-15, "residual {v}");
        }
    }

    #[test]
    fn jacobian_of_linear_circuit_is_constant() {
        let c = divider();
        let sys = CircuitSystem::new(&c, EvalContext::nominal(Kelvin::new(300.0)));
        let mut j1 = Matrix::zeros(3, 3);
        let mut j2 = Matrix::zeros(3, 3);
        sys.jacobian(&[0.0, 0.0, 0.0], &mut j1).unwrap();
        sys.jacobian(&[5.0, -3.0, 1.0], &mut j2).unwrap();
        assert_eq!(j1, j2);
    }

    #[test]
    fn gmin_appears_on_the_diagonal() {
        let c = divider();
        let mut eval = EvalContext::nominal(Kelvin::new(300.0));
        eval.gmin = 1e-3;
        let sys = CircuitSystem::new(&c, eval);
        let mut j = Matrix::zeros(3, 3);
        sys.jacobian(&[0.0; 3], &mut j).unwrap();
        // Node diagonals include 1/R sums plus gmin.
        assert!((j[(0, 0)] - (1e-3 + 1e-3)).abs() < 1e-12);
    }
}
