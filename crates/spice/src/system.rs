//! Assembly of a [`Circuit`] into the nonlinear MNA system the Newton
//! solver consumes.
//!
//! Two stamping regimes share one arithmetic contract. A *cold* system
//! ([`CircuitSystem::new`] / [`CircuitSystem::with_assembly`]) stamps every
//! element densely on every call — the reference path. A *hot* system (the
//! solver's internal path) additionally records, on its first Jacobian
//! pass, the exact post-ground-drop `(row, col)` call sequence of every
//! element; later passes re-stamp only elements whose Jacobian depends on
//! the operating point and rebuild each matrix entry by summing its
//! recorded slots in original call order. Because floating-point addition
//! is order-sensitive, preserving the call order is what makes the
//! incremental result bit-identical to the dense one. The recorded pattern
//! also arms the frozen symbolic plan the sparse LU path factors against.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::Arc;

use icvbe_numerics::newton::NonlinearSystem;
use icvbe_numerics::sparse::LuSymbolic;
use icvbe_numerics::{Matrix, NumericsError};

use crate::cache::SymbolicCache;
use crate::netlist::Circuit;
use crate::stamp::{
    BypassTolerance, DeviceSlot, EvalContext, JacSink, StampContext, StampCounters, StampEffort,
};
use crate::SpiceError;

/// The recorded incremental-restamp plan of one assembly: slot ranges per
/// element, the global call sequence with current values, and the ordered
/// per-entry reduction lists.
#[derive(Debug)]
struct StampPlan {
    /// `(start, end)` slot range of each element, parallel to the circuit.
    ranges: Vec<(u32, u32)>,
    /// Whether each element's Jacobian is independent of the iterate.
    constant: Vec<bool>,
    /// Recorded `(row, col)` of every Jacobian call, in call order.
    seq: Vec<(u32, u32)>,
    /// Current value of every recorded call, parallel to `seq`.
    values: Vec<f64>,
    /// Unique matrix entries touched (plus every node diagonal for gmin).
    entries: Vec<(u32, u32)>,
    /// Per-entry range into `contrib_idx` (`entries.len() + 1` offsets).
    contrib_ptr: Vec<u32>,
    /// Slot indices contributing to each entry, ascending (= call order).
    contrib_idx: Vec<u32>,
    /// Evaluation context the constant slots were last stamped at.
    const_eval: Option<EvalContext>,
    /// Set when a replay diverged from the recording; the assembly then
    /// permanently falls back to dense stamping.
    broken: bool,
}

/// The solve-invariant part of a circuit binding: unknown layout plus the
/// Jacobian residual scratch.
///
/// Everything here depends only on the circuit *topology*, not on
/// temperature, gmin or source scale — so one assembly can back thousands
/// of solves (a whole campaign die, or a worker thread's lifetime) without
/// recomputing branch offsets or reallocating scratch. Holds a `RefCell`
/// scratch buffer, so an assembly is per-thread, not shared across threads.
#[derive(Debug)]
pub struct CircuitAssembly {
    /// First branch index of each element (parallel to `circuit.elements()`).
    branch_bases: Vec<usize>,
    node_count: usize,
    dimension: usize,
    /// Residual accumulator for Jacobian-only stamping passes.
    jac_scratch: RefCell<Vec<f64>>,
    /// Per-element device caches (model + evaluation reuse), persistent
    /// across the solves backed by this assembly.
    device_slots: RefCell<Vec<DeviceSlot>>,
    /// Stamping-effort counters, drained per solve into the solve stats.
    counters: StampCounters,
    /// Incremental-restamp plan, recorded by the first hot Jacobian pass.
    plan: RefCell<Option<StampPlan>>,
    /// Frozen symbolic elimination plan derived from the recorded pattern.
    symbolic: RefCell<Option<Arc<LuSymbolic>>>,
    /// Optional process-wide plan cache consulted (instead of a private
    /// analysis) when the recorded pattern arms the symbolic plan.
    symbolic_cache: RefCell<Option<Arc<SymbolicCache>>>,
    /// Forces the next hot Jacobian pass to restamp constant elements
    /// (bound parameters may have changed between solves).
    constants_dirty: Cell<bool>,
}

impl CircuitAssembly {
    /// Validates the circuit topology and computes the unknown layout.
    ///
    /// # Errors
    ///
    /// Propagates [`Circuit::validate`] errors — hoisting validation here
    /// is what lets the per-solve hot path skip it.
    pub fn new(circuit: &Circuit) -> Result<Self, SpiceError> {
        circuit.validate()?;
        Ok(CircuitAssembly::new_unchecked(circuit))
    }

    /// Computes the unknown layout without validating the topology.
    #[must_use]
    pub fn new_unchecked(circuit: &Circuit) -> Self {
        let mut branch_bases = Vec::with_capacity(circuit.elements().len());
        let mut next = 0usize;
        for e in circuit.elements() {
            branch_bases.push(next);
            next += e.branch_count();
        }
        let node_count = circuit.node_count();
        let element_count = circuit.elements().len();
        CircuitAssembly {
            branch_bases,
            node_count,
            dimension: node_count + next,
            jac_scratch: RefCell::new(vec![0.0; node_count + next]),
            device_slots: RefCell::new(vec![DeviceSlot::default(); element_count]),
            counters: StampCounters::default(),
            plan: RefCell::new(None),
            symbolic: RefCell::new(None),
            symbolic_cache: RefCell::new(None),
            constants_dirty: Cell::new(true),
        }
    }

    /// The frozen symbolic elimination plan for this topology, available
    /// once the first hot Jacobian pass has recorded the sparsity pattern.
    /// Factorizations through it are bit-identical to dense LU.
    #[must_use]
    pub fn symbolic_plan(&self) -> Option<Arc<LuSymbolic>> {
        self.symbolic.borrow().clone()
    }

    /// Installs a shared [`SymbolicCache`]: when the first hot Jacobian
    /// pass records the sparsity pattern, the symbolic plan is taken from
    /// (or analyzed into) the cache instead of analyzed privately. The
    /// cache is keyed by the exact pattern, so solves through a cached
    /// plan are bit-identical to solves through a private analysis.
    ///
    /// A no-op on an assembly whose plan is already armed.
    pub fn set_symbolic_cache(&self, cache: Arc<SymbolicCache>) {
        *self.symbolic_cache.borrow_mut() = Some(cache);
    }

    /// Marks parameter-dependent constants stale so the next Jacobian pass
    /// restamps every element. Called at solve entry: bound [`crate::param::Param`]
    /// values may have changed since the previous solve.
    pub fn invalidate_constants(&self) {
        self.constants_dirty.set(true);
    }

    /// Returns and resets the stamping-effort counters accumulated since
    /// the last call.
    pub fn take_stamp_effort(&self) -> StampEffort {
        self.counters.take()
    }

    /// Tolerance-bypass hits accumulated since the counters were last
    /// drained (monotonic between drains; used for trace payloads).
    #[must_use]
    pub fn bypass_hits(&self) -> u64 {
        self.counters.bypass_hits.get()
    }

    /// Total number of unknowns (node voltages plus branch currents).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of node-voltage unknowns.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// First branch index of each element, parallel to the element list.
    #[must_use]
    pub fn branch_bases(&self) -> &[usize] {
        &self.branch_bases
    }

    /// Direct per-element device-slot access for the batched prewarm pass
    /// (same thread only, like every other use of the assembly). Slot `i`
    /// belongs to element `i` of the circuit this assembly was built for.
    pub(crate) fn device_slots_mut(&self) -> std::cell::RefMut<'_, Vec<DeviceSlot>> {
        self.device_slots.borrow_mut()
    }

    /// The live stamping-effort counters, so a batched prewarm pass can
    /// book its evaluations exactly like the stamp path would.
    pub(crate) fn stamp_counters(&self) -> &StampCounters {
        &self.counters
    }
}

/// How a [`CircuitSystem`] holds its assembly: built on the spot, or
/// borrowed from a caller that amortizes it across solves.
///
/// The size skew between the variants is deliberate: `Borrowed` is the
/// hot path, `Owned` happens once per ad-hoc solve, and boxing it would
/// add an allocation for no access-path win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum AssemblyRef<'a> {
    Owned(CircuitAssembly),
    Borrowed(&'a CircuitAssembly),
}

/// A circuit bound to evaluation conditions, presented as `f(x) = 0`.
///
/// Unknown ordering: node voltages (creation order, ground excluded), then
/// branch currents (element order, each element's branches contiguous).
#[derive(Debug)]
pub struct CircuitSystem<'a> {
    circuit: &'a Circuit,
    eval: EvalContext,
    assembly: AssemblyRef<'a>,
    /// Hot systems use the assembly's device caches and incremental
    /// restamp plan; cold systems stamp densely on every call.
    hot: bool,
    bypass: BypassTolerance,
    /// While set, tolerance-based device bypass is suspended so residuals
    /// are exact (the solver sets this around acceptance checks).
    exact: Cell<bool>,
}

impl<'a> CircuitSystem<'a> {
    /// Binds a circuit to evaluation conditions, assembling the layout on
    /// the spot.
    #[must_use]
    pub fn new(circuit: &'a Circuit, eval: EvalContext) -> Self {
        CircuitSystem {
            circuit,
            eval,
            assembly: AssemblyRef::Owned(CircuitAssembly::new_unchecked(circuit)),
            hot: false,
            bypass: BypassTolerance::OFF,
            exact: Cell::new(false),
        }
    }

    /// Binds a circuit to evaluation conditions over a caller-owned
    /// assembly (the hot-path form: nothing is recomputed or allocated).
    #[must_use]
    pub fn with_assembly(
        circuit: &'a Circuit,
        eval: EvalContext,
        assembly: &'a CircuitAssembly,
    ) -> Self {
        CircuitSystem {
            circuit,
            eval,
            assembly: AssemblyRef::Borrowed(assembly),
            hot: false,
            bypass: BypassTolerance::OFF,
            exact: Cell::new(false),
        }
    }

    /// The solver's internal binding: device caches, incremental
    /// restamping and (optionally) tolerance bypass are all active.
    pub(crate) fn hot_path(
        circuit: &'a Circuit,
        eval: EvalContext,
        assembly: &'a CircuitAssembly,
        bypass: BypassTolerance,
    ) -> Self {
        CircuitSystem {
            circuit,
            eval,
            assembly: AssemblyRef::Borrowed(assembly),
            hot: true,
            bypass,
            exact: Cell::new(false),
        }
    }

    fn asm(&self) -> &CircuitAssembly {
        match &self.assembly {
            AssemblyRef::Owned(a) => a,
            AssemblyRef::Borrowed(a) => a,
        }
    }

    /// The evaluation conditions in force.
    #[must_use]
    pub fn eval(&self) -> EvalContext {
        self.eval
    }

    /// Changes the evaluation conditions (gmin/source stepping reuse the
    /// same assembled structure).
    pub fn set_eval(&mut self, eval: EvalContext) {
        self.eval = eval;
    }

    /// Changes the bypass policy between solve rungs: warm solves run
    /// exact-reuse-only (re-evaluation is already rare there), escalated
    /// rungs arm the tolerance bypass where it pays for itself.
    pub(crate) fn set_bypass(&mut self, bypass: BypassTolerance) {
        self.bypass = bypass;
    }

    /// First absolute branch index of element `element_index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn branch_base(&self, element_index: usize) -> usize {
        self.asm().branch_bases[element_index]
    }

    /// Number of node-voltage unknowns.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.asm().node_count
    }

    /// The bypass policy in force for this pass: suspended in exact mode
    /// and on cold systems.
    fn effective_bypass(&self) -> BypassTolerance {
        if self.hot && self.bypass.active && !self.exact.get() {
            self.bypass
        } else {
            BypassTolerance::OFF
        }
    }

    fn stamp_all(&self, x: &[f64], residual: &mut [f64], mut jacobian: Option<&mut Matrix>) {
        let asm = self.asm();
        let mut slots = if self.hot {
            Some(asm.device_slots.borrow_mut())
        } else {
            None
        };
        let bypass = self.effective_bypass();
        for (i, (e, &base)) in self
            .circuit
            .elements()
            .iter()
            .zip(&asm.branch_bases)
            .enumerate()
        {
            let mut ctx = StampContext::new(
                self.eval,
                x,
                asm.node_count,
                base,
                residual,
                jacobian.as_deref_mut(),
            );
            if let Some(s) = slots.as_mut() {
                ctx.attach_device(&mut s[i], bypass, &asm.counters);
            }
            e.stamp(&mut ctx);
        }
        drop(slots);
        self.gmin_residual_and_jac(x, residual, jacobian);
    }

    /// Global gmin: a conductance from every node to ground keeps the
    /// Jacobian nonsingular for floating subcircuits and eases Newton.
    /// Always applied *after* every element stamp — the accumulation order
    /// is part of the bit-reproducibility contract.
    fn gmin_residual_and_jac(
        &self,
        x: &[f64],
        residual: &mut [f64],
        mut jacobian: Option<&mut Matrix>,
    ) {
        let g = self.eval.gmin;
        if g > 0.0 {
            for i in 0..self.asm().node_count {
                residual[i] += g * x[i];
                if let Some(j) = jacobian.as_deref_mut() {
                    j[(i, i)] += g;
                }
            }
        }
    }

    /// One Jacobian-bearing stamping pass: records the plan on first use,
    /// replays it incrementally afterwards, and falls back to the dense
    /// pass on cold systems or a diverged recording. Residual accumulation
    /// is bitwise identical across all three routes.
    fn stamp_jacobian(&self, x: &[f64], residual: &mut [f64], out: &mut Matrix) {
        if !self.hot {
            out.fill(0.0);
            self.stamp_all(x, residual, Some(out));
            return;
        }
        let asm = self.asm();
        let mut plan_cell = asm.plan.borrow_mut();
        match plan_cell.as_mut() {
            None => {
                *plan_cell = Some(self.record_plan(x, residual, out));
                bump(&asm.counters.restamp_full);
            }
            Some(plan) if plan.broken => {
                out.fill(0.0);
                self.stamp_all(x, residual, Some(out));
                bump(&asm.counters.restamp_full);
            }
            Some(plan) => {
                let refresh = asm.constants_dirty.get() || plan.const_eval != Some(self.eval);
                if self.replay_plan(plan, refresh, x, residual) {
                    if refresh {
                        plan.const_eval = Some(self.eval);
                        asm.constants_dirty.set(false);
                        bump(&asm.counters.restamp_full);
                    } else {
                        bump(&asm.counters.restamp_incremental);
                    }
                    Self::reduce_plan(plan, asm.node_count, self.eval.gmin, out);
                    self.gmin_residual_and_jac(x, residual, None);
                } else {
                    // The call sequence diverged from the recording (an
                    // element with value-dependent stamping structure):
                    // permanently fall back to dense stamping.
                    plan.broken = true;
                    residual.fill(0.0);
                    out.fill(0.0);
                    self.stamp_all(x, residual, Some(out));
                    bump(&asm.counters.restamp_full);
                }
            }
        }
    }

    /// Records the full stamp-call sequence at `x`, builds the per-entry
    /// reduction lists, arms the frozen symbolic plan, and produces this
    /// pass's Jacobian and residual.
    fn record_plan(&self, x: &[f64], residual: &mut [f64], out: &mut Matrix) -> StampPlan {
        let asm = self.asm();
        let elements = self.circuit.elements();
        let mut seq: Vec<(u32, u32)> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut ranges = Vec::with_capacity(elements.len());
        let mut constant = Vec::with_capacity(elements.len());
        {
            let mut slots = asm.device_slots.borrow_mut();
            let bypass = self.effective_bypass();
            for (i, (e, &base)) in elements.iter().zip(&asm.branch_bases).enumerate() {
                let start = seq.len() as u32;
                let mut ctx = StampContext::with_sink(
                    self.eval,
                    x,
                    asm.node_count,
                    base,
                    residual,
                    JacSink::Record {
                        seq: &mut seq,
                        values: &mut values,
                    },
                );
                ctx.attach_device(&mut slots[i], bypass, &asm.counters);
                e.stamp(&mut ctx);
                ranges.push((start, seq.len() as u32));
                constant.push(e.jacobian_constant());
            }
        }

        // Per-entry reduction lists: BTreeMap gives deterministic entry
        // order; within an entry the slot list is ascending, i.e. call
        // order — the order a dense pass accumulates in. Node diagonals
        // are forced so gmin lands even where no element stamps.
        let mut map: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
        for (slot, &rc) in seq.iter().enumerate() {
            map.entry(rc).or_default().push(slot as u32);
        }
        for i in 0..asm.node_count as u32 {
            map.entry((i, i)).or_default();
        }
        let mut entries = Vec::with_capacity(map.len());
        let mut contrib_ptr = Vec::with_capacity(map.len() + 1);
        let mut contrib_idx = Vec::new();
        contrib_ptr.push(0u32);
        for (rc, slots) in &map {
            entries.push(*rc);
            contrib_idx.extend_from_slice(slots);
            contrib_ptr.push(contrib_idx.len() as u32);
        }

        if asm.symbolic.borrow().is_none() {
            // A shared cache (if installed) answers from the process-wide
            // map; the fallback analyzes privately. Either way the plan is
            // a pure function of (dimension, entries).
            let shared = asm
                .symbolic_cache
                .borrow()
                .as_ref()
                .and_then(|cache| cache.plan_for(asm.dimension, &entries));
            let sym = match shared {
                Some(plan) => Some(plan),
                None => {
                    let pattern: Vec<(usize, usize)> = entries
                        .iter()
                        .map(|&(r, c)| (r as usize, c as usize))
                        .collect();
                    LuSymbolic::analyze(asm.dimension, &pattern)
                        .ok()
                        .map(Arc::new)
                }
            };
            *asm.symbolic.borrow_mut() = sym;
        }

        let plan = StampPlan {
            ranges,
            constant,
            seq,
            values,
            entries,
            contrib_ptr,
            contrib_idx,
            const_eval: Some(self.eval),
            broken: false,
        };
        asm.constants_dirty.set(false);
        Self::reduce_plan(&plan, asm.node_count, self.eval.gmin, out);
        self.gmin_residual_and_jac(x, residual, None);
        plan
    }

    /// Re-stamps the residual of every element and the Jacobian slots of
    /// non-constant elements (all elements when `refresh` is set). Returns
    /// false if any element's call sequence diverged from the recording.
    fn replay_plan(
        &self,
        plan: &mut StampPlan,
        refresh: bool,
        x: &[f64],
        residual: &mut [f64],
    ) -> bool {
        let asm = self.asm();
        let elements = self.circuit.elements();
        if plan.ranges.len() != elements.len() {
            return false;
        }
        let mut slots = asm.device_slots.borrow_mut();
        let bypass = self.effective_bypass();
        let StampPlan {
            ranges,
            constant,
            seq,
            values,
            ..
        } = plan;
        for (i, (e, &base)) in elements.iter().zip(&asm.branch_bases).enumerate() {
            let (lo, hi) = (ranges[i].0 as usize, ranges[i].1 as usize);
            let mut cursor = 0usize;
            let mut ok = true;
            let skip = constant[i] && !refresh;
            let sink = if skip {
                JacSink::None
            } else {
                JacSink::Replay {
                    seq: &seq[lo..hi],
                    values: &mut values[lo..hi],
                    cursor: &mut cursor,
                    ok: &mut ok,
                }
            };
            let mut ctx =
                StampContext::with_sink(self.eval, x, asm.node_count, base, residual, sink);
            ctx.attach_device(&mut slots[i], bypass, &asm.counters);
            e.stamp(&mut ctx);
            if !skip && (!ok || cursor != hi - lo) {
                return false;
            }
        }
        true
    }

    /// Rebuilds every recorded matrix entry from its slot values: sum in
    /// recorded call order starting from zero, then gmin on node diagonals
    /// — exactly the accumulation sequence of a dense pass.
    fn reduce_plan(plan: &StampPlan, node_count: usize, gmin: f64, out: &mut Matrix) {
        out.fill(0.0);
        for (e, &(r, c)) in plan.entries.iter().enumerate() {
            let lo = plan.contrib_ptr[e] as usize;
            let hi = plan.contrib_ptr[e + 1] as usize;
            let mut s = 0.0;
            for &ci in &plan.contrib_idx[lo..hi] {
                s += plan.values[ci as usize];
            }
            if r == c && (r as usize) < node_count && gmin > 0.0 {
                s += gmin;
            }
            out[(r as usize, c as usize)] = s;
        }
    }
}

fn bump(cell: &Cell<u64>) {
    cell.set(cell.get() + 1);
}

impl NonlinearSystem for CircuitSystem<'_> {
    fn dimension(&self) -> usize {
        self.asm().dimension
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) -> Result<(), NumericsError> {
        out.fill(0.0);
        self.stamp_all(x, out, None);
        if out.iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::invalid("non-finite circuit residual"));
        }
        Ok(())
    }

    fn jacobian(&self, x: &[f64], out: &mut Matrix) -> Result<(), NumericsError> {
        let asm = self.asm();
        let n = asm.dimension;
        // Stamping writes residual and Jacobian together; the residual
        // lands in the assembly-owned scratch instead of a fresh vec.
        let mut scratch = asm.jac_scratch.borrow_mut();
        debug_assert_eq!(scratch.len(), n);
        scratch.fill(0.0);
        self.stamp_jacobian(x, &mut scratch, out);
        if !out.is_finite() {
            return Err(NumericsError::invalid("non-finite circuit jacobian"));
        }
        Ok(())
    }

    fn residual_and_jacobian(
        &self,
        x: &[f64],
        f: &mut [f64],
        jac: &mut Matrix,
    ) -> Result<(), NumericsError> {
        // One stamping pass fills both. Residual accumulation does not
        // depend on whether a Jacobian is attached (or replayed
        // incrementally), so `f` is bitwise identical to what `residual`
        // alone writes — the contract the polish canonicalization
        // depends on.
        f.fill(0.0);
        self.stamp_jacobian(x, f, jac);
        if f.iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::invalid("non-finite circuit residual"));
        }
        if !jac.is_finite() {
            return Err(NumericsError::invalid("non-finite circuit jacobian"));
        }
        Ok(())
    }

    fn set_exact(&self, exact: bool) {
        self.exact.set(exact);
    }

    fn residual_is_approximate(&self) -> bool {
        self.hot && self.bypass.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Resistor, VoltageSource};
    use crate::netlist::Circuit;
    use icvbe_units::{Kelvin, Ohm, Volt};

    fn divider() -> Circuit {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(2.0),
        ));
        c.add(Resistor::new("R1", vcc, out, Ohm::new(1e3)).unwrap());
        c.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(1e3)).unwrap());
        c
    }

    #[test]
    fn dimension_counts_nodes_and_branches() {
        let c = divider();
        let sys = CircuitSystem::new(&c, EvalContext::nominal(Kelvin::new(300.0)));
        assert_eq!(sys.dimension(), 3);
        assert_eq!(sys.node_count(), 2);
        assert_eq!(sys.branch_base(0), 0);
    }

    #[test]
    fn residual_vanishes_at_exact_solution() {
        let c = divider();
        let mut eval = EvalContext::nominal(Kelvin::new(300.0));
        eval.gmin = 0.0;
        let sys = CircuitSystem::new(&c, eval);
        // vcc = 2, out = 1, source current = -(2-1)/1k ... source branch
        // current flows plus->through->minus: current out of vcc node into
        // R1 is 1 mA, so branch current is -1 mA.
        let x = [2.0, 1.0, -1e-3];
        let mut f = vec![0.0; 3];
        sys.residual(&x, &mut f).unwrap();
        for v in f {
            assert!(v.abs() < 1e-15, "residual {v}");
        }
    }

    #[test]
    fn jacobian_of_linear_circuit_is_constant() {
        let c = divider();
        let sys = CircuitSystem::new(&c, EvalContext::nominal(Kelvin::new(300.0)));
        let mut j1 = Matrix::zeros(3, 3);
        let mut j2 = Matrix::zeros(3, 3);
        sys.jacobian(&[0.0, 0.0, 0.0], &mut j1).unwrap();
        sys.jacobian(&[5.0, -3.0, 1.0], &mut j2).unwrap();
        assert_eq!(j1, j2);
    }

    #[test]
    fn gmin_appears_on_the_diagonal() {
        let c = divider();
        let mut eval = EvalContext::nominal(Kelvin::new(300.0));
        eval.gmin = 1e-3;
        let sys = CircuitSystem::new(&c, eval);
        let mut j = Matrix::zeros(3, 3);
        sys.jacobian(&[0.0; 3], &mut j).unwrap();
        // Node diagonals include 1/R sums plus gmin.
        assert!((j[(0, 0)] - (1e-3 + 1e-3)).abs() < 1e-12);
    }

    /// Every element kind wired into one circuit, including a BJT with the
    /// substrate parasitic — the widest stamp-call surface we have.
    fn menagerie() -> Circuit {
        use crate::bjt::{Bjt, BjtParams, Polarity, SubstrateJunction};
        use crate::element::{CurrentSource, Diode, OpAmp};
        use crate::vccs::Vccs;
        use icvbe_devphys::saturation::SpiceIsLaw;
        use icvbe_units::{Ampere, ElectronVolt};

        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let b = c.node("b");
        let e = c.node("e");
        let o = c.node("o");
        let gnd = Circuit::ground();
        c.add(VoltageSource::new("V1", vcc, gnd, Volt::new(1.2)));
        c.add(Resistor::new("R1", vcc, b, Ohm::new(50e3)).unwrap());
        c.add(Resistor::new("R2", e, gnd, Ohm::new(1e3)).unwrap());
        c.add(CurrentSource::new("I1", gnd, b, Ampere::new(1e-7)));
        c.add(
            Bjt::new("Q1", vcc, b, e, Polarity::Npn, BjtParams::default_npn())
                .unwrap()
                .with_substrate(gnd, SubstrateJunction::bicmos_default()),
        );
        let law = SpiceIsLaw::new(
            Ampere::new(1e-14),
            Kelvin::new(298.15),
            ElectronVolt::new(1.11),
            3.0,
        );
        c.add(Diode::new("D1", b, gnd, law, 1.0).unwrap());
        c.add(Vccs::new("G1", b, e, o, gnd, 1e-4).unwrap());
        c.add(OpAmp::new("U1", e, o, o, 1e5).unwrap());
        c.add(Resistor::new("RL", o, gnd, Ohm::new(10e3)).unwrap());
        c
    }

    #[test]
    fn hot_incremental_jacobian_matches_cold_dense_bitwise() {
        let c = menagerie();
        let asm = CircuitAssembly::new(&c).unwrap();
        let n = asm.dimension();
        let mut eval = EvalContext::nominal(Kelvin::new(298.15));
        eval.gmin = 1e-9;
        let hot = CircuitSystem::hot_path(&c, eval, &asm, BypassTolerance::OFF);
        let cold = CircuitSystem::new(&c, eval);

        let points: Vec<Vec<f64>> = vec![
            vec![0.0; n],
            (0..n).map(|i| 0.1 * i as f64 - 0.2).collect(),
            (0..n).map(|i| 0.55 - 0.01 * i as f64).collect(),
            vec![0.3; n],
        ];
        let mut jh = Matrix::zeros(n, n);
        let mut jc = Matrix::zeros(n, n);
        let mut fh = vec![0.0; n];
        let mut fc = vec![0.0; n];
        for x in &points {
            hot.residual_and_jacobian(x, &mut fh, &mut jh).unwrap();
            cold.residual_and_jacobian(x, &mut fc, &mut jc).unwrap();
            let fh_bits: Vec<u64> = fh.iter().map(|v| v.to_bits()).collect();
            let fc_bits: Vec<u64> = fc.iter().map(|v| v.to_bits()).collect();
            assert_eq!(fh_bits, fc_bits, "residual bits at {x:?}");
            let jh_bits: Vec<u64> = jh.as_slice().iter().map(|v| v.to_bits()).collect();
            let jc_bits: Vec<u64> = jc.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(jh_bits, jc_bits, "jacobian bits at {x:?}");
        }
        // The first pass recorded, later passes replayed incrementally.
        let effort = asm.take_stamp_effort();
        assert_eq!(effort.restamp_full, 1);
        assert_eq!(effort.restamp_incremental, points.len() as u64 - 1);
        assert!(effort.device_evals > 0);
    }

    #[test]
    fn eval_context_change_refreshes_constant_elements() {
        let c = menagerie();
        let asm = CircuitAssembly::new(&c).unwrap();
        let n = asm.dimension();
        let eval_a = EvalContext::nominal(Kelvin::new(298.15));
        let mut eval_b = eval_a;
        eval_b.gmin = 1e-3;
        let mut hot = CircuitSystem::hot_path(&c, eval_a, &asm, BypassTolerance::OFF);
        let x: Vec<f64> = (0..n).map(|i| 0.05 * i as f64).collect();
        let mut j_hot = Matrix::zeros(n, n);
        let mut f = vec![0.0; n];
        hot.residual_and_jacobian(&x, &mut f, &mut j_hot).unwrap();
        hot.set_eval(eval_b);
        hot.residual_and_jacobian(&x, &mut f, &mut j_hot).unwrap();

        let cold = CircuitSystem::new(&c, eval_b);
        let mut j_cold = Matrix::zeros(n, n);
        let mut fc = vec![0.0; n];
        cold.residual_and_jacobian(&x, &mut fc, &mut j_cold)
            .unwrap();
        assert_eq!(
            j_hot
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            j_cold
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
        // Both passes were full restamps (record, then constant refresh).
        let effort = asm.take_stamp_effort();
        assert_eq!(effort.restamp_full, 2);
        assert_eq!(effort.restamp_incremental, 0);
    }

    #[test]
    fn recording_arms_the_symbolic_plan_with_forced_diagonals() {
        let c = divider();
        let asm = CircuitAssembly::new(&c).unwrap();
        assert!(asm.symbolic_plan().is_none());
        let eval = EvalContext::nominal(Kelvin::new(300.0));
        let hot = CircuitSystem::hot_path(&c, eval, &asm, BypassTolerance::OFF);
        let mut j = Matrix::zeros(3, 3);
        hot.jacobian(&[0.0; 3], &mut j).unwrap();
        let plan = asm.symbolic_plan().expect("armed by first jacobian pass");
        assert_eq!(plan.dimension(), 3);
        // The voltage-source branch has no diagonal stamp, but the plan
        // must still pivot through it.
        assert!(plan.in_pattern(2, 2));
    }

    #[test]
    fn exact_mode_reports_approximation_only_when_bypass_is_active() {
        let c = divider();
        let asm = CircuitAssembly::new(&c).unwrap();
        let eval = EvalContext::nominal(Kelvin::new(300.0));
        let plain = CircuitSystem::hot_path(&c, eval, &asm, BypassTolerance::OFF);
        assert!(!plain.residual_is_approximate());
        let bypassed = CircuitSystem::hot_path(
            &c,
            eval,
            &asm,
            BypassTolerance {
                active: true,
                v_abs: 1e-6,
                v_rel: 1e-5,
            },
        );
        assert!(bypassed.residual_is_approximate());
        // In exact mode the effective bypass is suspended.
        bypassed.set_exact(true);
        assert_eq!(bypassed.effective_bypass(), BypassTolerance::OFF);
        bypassed.set_exact(false);
        assert!(bypassed.effective_bypass().active);
    }
}
