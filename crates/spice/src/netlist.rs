//! Circuit netlist: named nodes and a list of elements.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::element::Element;
use crate::SpiceError;

/// A circuit node handle.
///
/// `NodeId::GROUND` is the reference node; every other node is an MNA
/// unknown. Obtain nodes from [`Circuit::node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// The reference (ground) node, always index 0.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index (0 = ground, 1.. = unknowns in creation order).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Index into the MNA unknown vector, or `None` for ground.
    #[must_use]
    pub fn unknown_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "gnd")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// A DC circuit: an interned node table plus a list of elements.
///
/// # Examples
///
/// ```
/// use icvbe_spice::netlist::Circuit;
/// use icvbe_spice::element::{Resistor, VoltageSource};
/// use icvbe_units::{Ohm, Volt};
///
/// let mut ckt = Circuit::new();
/// let vcc = ckt.node("vcc");
/// let out = ckt.node("out");
/// let gnd = Circuit::ground();
/// ckt.add(VoltageSource::new("V1", vcc, gnd, Volt::new(5.0)));
/// ckt.add(Resistor::new("R1", vcc, out, Ohm::new(1e3))?);
/// ckt.add(Resistor::new("R2", out, gnd, Ohm::new(1e3))?);
/// assert_eq!(ckt.node_count(), 2); // vcc and out (ground excluded)
/// # Ok::<(), icvbe_spice::SpiceError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    node_by_name: HashMap<String, NodeId>,
    elements: Vec<Arc<dyn Element>>,
}

impl Circuit {
    /// Creates an empty circuit (ground node pre-registered).
    #[must_use]
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["gnd".to_string()],
            node_by_name: HashMap::new(),
            elements: Vec::new(),
        };
        c.node_by_name.insert("gnd".to_string(), NodeId::GROUND);
        c.node_by_name.insert("0".to_string(), NodeId::GROUND);
        c
    }

    /// The ground node.
    #[must_use]
    pub fn ground() -> NodeId {
        NodeId::GROUND
    }

    /// Returns the node with the given name, creating it on first use.
    ///
    /// The names `"gnd"` and `"0"` are reserved for the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_by_name.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    #[must_use]
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_by_name.get(name).copied()
    }

    /// The display name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    #[must_use]
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Number of non-ground nodes (MNA voltage unknowns).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.node_names.len() - 1
    }

    /// Adds an element, returning its index for later lookup.
    pub fn add<E: Element + 'static>(&mut self, element: E) -> usize {
        self.elements.push(Arc::new(element));
        self.elements.len() - 1
    }

    /// Adds a shared element (used when one model card instance backs
    /// several circuit variants).
    pub fn add_shared(&mut self, element: Arc<dyn Element>) -> usize {
        self.elements.push(element);
        self.elements.len() - 1
    }

    /// All elements in insertion order.
    #[must_use]
    pub fn elements(&self) -> &[Arc<dyn Element>] {
        &self.elements
    }

    /// Finds an element by name.
    #[must_use]
    pub fn element_by_name(&self, name: &str) -> Option<&Arc<dyn Element>> {
        self.elements.iter().find(|e| e.name() == name)
    }

    /// Total number of extra branch unknowns contributed by the elements.
    #[must_use]
    pub fn branch_count(&self) -> usize {
        self.elements.iter().map(|e| e.branch_count()).sum()
    }

    /// Dimension of the MNA system (node voltages + branch currents).
    #[must_use]
    pub fn unknown_count(&self) -> usize {
        self.node_count() + self.branch_count()
    }

    /// Validates connectivity: every element node must exist, every
    /// non-ground node must touch at least two element terminals, and the
    /// circuit must reference ground at least once.
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadTopology`] describing the first violation found.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.elements.is_empty() {
            return Err(SpiceError::topology("circuit has no elements"));
        }
        let mut touch = vec![0usize; self.node_names.len()];
        for e in &self.elements {
            for n in e.nodes() {
                if n.index() >= self.node_names.len() {
                    return Err(SpiceError::topology(format!(
                        "element '{}' references unknown node {}",
                        e.name(),
                        n
                    )));
                }
                touch[n.index()] += 1;
            }
        }
        if touch[0] == 0 {
            return Err(SpiceError::topology("no element is connected to ground"));
        }
        for (i, &t) in touch.iter().enumerate().skip(1) {
            if t == 0 {
                return Err(SpiceError::topology(format!(
                    "node '{}' was created but never connected",
                    self.node_names[i]
                )));
            }
            if t == 1 {
                return Err(SpiceError::topology(format!(
                    "node '{}' is dangling (single connection)",
                    self.node_names[i]
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{CurrentSource, Resistor, VoltageSource};
    use icvbe_units::{Ampere, Ohm, Volt};

    #[test]
    fn node_interning_is_stable() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_ne!(a, b);
        assert_eq!(c.node("a"), a);
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("gnd"), NodeId::GROUND);
        assert_eq!(c.node("0"), NodeId::GROUND);
        assert_eq!(c.node_count(), 0);
    }

    #[test]
    fn unknown_index_excludes_ground() {
        assert_eq!(NodeId::GROUND.unknown_index(), None);
        let mut c = Circuit::new();
        let a = c.node("a");
        assert_eq!(a.unknown_index(), Some(0));
    }

    #[test]
    fn validate_catches_dangling_node() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(CurrentSource::new(
            "I1",
            Circuit::ground(),
            a,
            Ampere::new(1e-3),
        ));
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("dangling"));
    }

    #[test]
    fn validate_catches_empty_circuit() {
        let c = Circuit::new();
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_accepts_divider() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(5.0),
        ));
        c.add(Resistor::new("R1", vcc, out, Ohm::new(1e3)).unwrap());
        c.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(1e3)).unwrap());
        assert!(c.validate().is_ok());
        assert_eq!(c.unknown_count(), 3); // 2 nodes + 1 source branch
    }

    #[test]
    fn element_lookup_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(Resistor::new("Rx", a, Circuit::ground(), Ohm::new(10.0)).unwrap());
        assert!(c.element_by_name("Rx").is_some());
        assert!(c.element_by_name("Ry").is_none());
    }
}
