//! Cross-thread sharing of frozen symbolic LU plans.
//!
//! A [`CircuitAssembly`](crate::system::CircuitAssembly) is per-thread
//! (it holds `RefCell` scratch), but the expensive part of arming its
//! sparse path — [`LuSymbolic::analyze`] over the recorded stamp pattern —
//! depends only on the pattern itself. Every die of a campaign, and every
//! job of a multi-tenant service, compiles structurally identical
//! netlists, so one analysis can back thousands of assemblies across any
//! number of threads and tenants.
//!
//! [`SymbolicCache`] is that share point: a mutex-guarded map from the
//! exact `(dimension, entry pattern)` to the analyzed plan, plus lock-free
//! hit/miss counters for the service metrics. Keying by the *full* pattern
//! (not a hash of it) makes aliasing impossible: two different patterns
//! can never receive each other's plan, so a cached solve is bit-identical
//! to a freshly analyzed one — `LuSymbolic::analyze` is a pure function of
//! the key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use icvbe_numerics::sparse::LuSymbolic;

/// The exact identity of a sparsity pattern: matrix dimension plus every
/// recorded `(row, col)` entry in deterministic (BTreeMap) order.
type PatternKey = (usize, Vec<(u32, u32)>);

/// A thread-safe cache of frozen symbolic LU plans keyed by the exact
/// recorded sparsity pattern.
///
/// Sharing one cache across worker threads (and across service tenants)
/// means the elimination analysis for each distinct circuit topology runs
/// once per process instead of once per compiled netlist. Results are
/// unchanged by construction: the cached value for a key is exactly what
/// [`LuSymbolic::analyze`] would return for that key.
#[derive(Debug, Default)]
pub struct SymbolicCache {
    plans: Mutex<HashMap<PatternKey, Arc<LuSymbolic>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Locks a mutex, recovering the guard from a poisoned lock. The cache
/// map is always left consistent (plain inserts), so a panic elsewhere
/// cannot corrupt it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SymbolicCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        SymbolicCache::default()
    }

    /// Returns the symbolic plan for `(dimension, entries)`, analyzing and
    /// inserting it on first sight. Returns `None` only when the analysis
    /// itself rejects the pattern (and never caches the rejection, so a
    /// malformed probe cannot poison later lookups).
    pub fn plan_for(&self, dimension: usize, entries: &[(u32, u32)]) -> Option<Arc<LuSymbolic>> {
        {
            let plans = lock(&self.plans);
            // Borrowed probe: (usize, &[(u32,u32)]) cannot index a HashMap
            // keyed by (usize, Vec<_>) without an owned key, so the probe
            // allocates only on the miss path below.
            if let Some(plan) = plans.iter().find_map(|((d, e), plan)| {
                (*d == dimension && e.as_slice() == entries).then(|| Arc::clone(plan))
            }) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(plan);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let pattern: Vec<(usize, usize)> = entries
            .iter()
            .map(|&(r, c)| (r as usize, c as usize))
            .collect();
        let plan = Arc::new(LuSymbolic::analyze(dimension, &pattern).ok()?);
        let mut plans = lock(&self.plans);
        // A racing thread may have inserted meanwhile; keep the first
        // plan so every assembly shares one allocation.
        let entry = plans
            .entry((dimension, entries.to_vec()))
            .or_insert_with(|| Arc::clone(&plan));
        Some(Arc::clone(entry))
    }

    /// Lookups answered from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the analysis.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct patterns currently cached.
    #[must_use]
    pub fn patterns(&self) -> usize {
        lock(&self.plans).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // A tiny valid pattern: 2x2 with both diagonals and one off-diagonal.
    fn pattern() -> Vec<(u32, u32)> {
        vec![(0, 0), (0, 1), (1, 1)]
    }

    #[test]
    fn first_lookup_misses_then_hits() {
        let cache = SymbolicCache::new();
        let a = cache.plan_for(2, &pattern()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let b = cache.plan_for(2, &pattern()).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!(Arc::ptr_eq(&a, &b), "hit must share the analyzed plan");
        assert_eq!(cache.patterns(), 1);
    }

    #[test]
    fn distinct_patterns_do_not_alias() {
        let cache = SymbolicCache::new();
        let a = cache.plan_for(2, &pattern()).unwrap();
        let b = cache.plan_for(2, &[(0, 0), (1, 0), (1, 1)]).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.patterns(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn cached_plan_equals_fresh_analysis() {
        let cache = SymbolicCache::new();
        let cached = cache.plan_for(2, &pattern()).unwrap();
        let fresh = LuSymbolic::analyze(2, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        assert_eq!(*cached, fresh);
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(SymbolicCache::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for _ in 0..8 {
                        assert!(cache.plan_for(2, &pattern()).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.hits() + cache.misses(), 32);
        assert_eq!(cache.patterns(), 1);
    }
}
