//! The element interface: how devices contribute to the MNA system.
//!
//! The solver iterates Newton on `f(x) = 0` where `x` stacks node voltages
//! (all non-ground nodes, in creation order) followed by branch currents
//! (one block per element that declares branches). Each element implements
//! [`Element::stamp`], reading the current iterate through
//! [`StampContext`] and accumulating its residual and Jacobian
//! contributions.
//!
//! Sign convention: a node residual is the sum of currents *leaving* the
//! node; Kirchhoff demands it be zero.

use std::cell::Cell;
use std::fmt;

use icvbe_numerics::Matrix;
use icvbe_units::Kelvin;

use crate::netlist::NodeId;

/// Ambient conditions and continuation knobs for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalContext {
    /// Device temperature for model-card evaluation.
    pub temperature: Kelvin,
    /// Conductance from every node to ground added by the solver
    /// (gmin continuation; the floor value in a final solve).
    pub gmin: f64,
    /// Scale factor applied to independent sources (source stepping).
    pub source_scale: f64,
}

impl EvalContext {
    /// Nominal context: given temperature, gmin floor, full sources.
    #[must_use]
    pub fn nominal(temperature: Kelvin) -> Self {
        EvalContext {
            temperature,
            gmin: 1e-12,
            source_scale: 1.0,
        }
    }
}

/// Where Jacobian contributions of one element land during a stamping pass.
///
/// `Record` and `Replay` implement incremental restamping: the first
/// Jacobian pass over a hot assembly records every post-ground-drop
/// `(row, col)` an element touches, in call order, together with the value.
/// Later passes replay only the slot ranges of elements whose Jacobian
/// depends on the operating point and re-reduce each matrix entry by
/// summing its recorded slots in the original call order — so the
/// floating-point accumulation order, and therefore every bit of the
/// result, matches a dense pass.
#[derive(Debug)]
pub(crate) enum JacSink<'a> {
    /// Residual-only pass: Jacobian contributions are dropped.
    None,
    /// Accumulate straight into a dense matrix (the legacy pass).
    Dense(&'a mut Matrix),
    /// Capture `(row, col)` and value of every surviving call, in order.
    Record {
        /// Global call sequence, appended per call.
        seq: &'a mut Vec<(u32, u32)>,
        /// Value of each recorded call, parallel to `seq`.
        values: &'a mut Vec<f64>,
    },
    /// Rewrite the recorded values of one element's slot range, verifying
    /// the call sequence still matches the recording (`ok` is cleared on
    /// any divergence so the caller can fall back to a dense pass).
    Replay {
        /// This element's recorded `(row, col)` sequence.
        seq: &'a [(u32, u32)],
        /// This element's value slots, rewritten in place.
        values: &'a mut [f64],
        /// Next slot to write; must equal `seq.len()` after the stamp.
        cursor: &'a mut usize,
        /// Cleared when a call does not match the recording.
        ok: &'a mut bool,
    },
}

/// Number of per-temperature model-card values a [`DeviceSlot`] caches.
pub const DEVICE_TEMP_SLOTS: usize = 16;
/// Number of evaluation outputs a [`DeviceSlot`] caches.
pub const DEVICE_EVAL_SLOTS: usize = 8;

/// Per-element cache of the most recent model-card refresh and device
/// evaluation, owned by the assembly so it persists across solves.
///
/// Two layers: a *model* cache keyed on the raw bits of the temperature
/// (holding the expensive `powf`-laden per-temperature card values) and an
/// *evaluation* cache keyed on the raw bits of the controlling voltages
/// (holding currents and conductances). Exact-bit reuse is always sound —
/// the device equations are pure functions, so recomputing would produce
/// identical bits — while tolerance-based reuse (SPICE bypass) is an
/// opt-in approximation the solver re-verifies at acceptance.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSlot {
    temp_key: u64,
    temp_valid: bool,
    temp: [f64; DEVICE_TEMP_SLOTS],
    eval_key: [u64; 2],
    eval_valid: bool,
    eval: [f64; DEVICE_EVAL_SLOTS],
}

impl Default for DeviceSlot {
    fn default() -> Self {
        DeviceSlot {
            temp_key: 0,
            temp_valid: false,
            temp: [0.0; DEVICE_TEMP_SLOTS],
            eval_key: [0; 2],
            eval_valid: false,
            eval: [0.0; DEVICE_EVAL_SLOTS],
        }
    }
}

impl DeviceSlot {
    /// Cached model values if the slot was last refreshed at exactly this
    /// key — [`StampContext::cached_model`] semantics for a batched
    /// prewarm pass that addresses slots directly.
    pub(crate) fn model_at(&self, key: u64) -> Option<[f64; DEVICE_TEMP_SLOTS]> {
        (self.temp_valid && self.temp_key == key).then_some(self.temp)
    }

    /// Stores fresh model values, invalidating the dependent eval layer —
    /// [`StampContext::store_model`] semantics.
    pub(crate) fn put_model(&mut self, key: u64, values: [f64; DEVICE_TEMP_SLOTS]) {
        self.temp_key = key;
        self.temp = values;
        self.temp_valid = true;
        self.eval_valid = false;
    }

    /// Whether an evaluation at `inputs` would hit the exact-bit cache.
    /// Prewarm skips lanes that already hold the answer.
    pub(crate) fn eval_hit(&self, inputs: [f64; 2]) -> bool {
        self.eval_valid && [inputs[0].to_bits(), inputs[1].to_bits()] == self.eval_key
    }

    /// Stores evaluation outputs as the new exact-bit anchor —
    /// [`StampContext::store_eval`] semantics. Exact-bit prewarm is always
    /// sound: the device equations are pure functions, so the later stamp
    /// pass would recompute identical bits on a miss.
    pub(crate) fn put_eval(&mut self, inputs: [f64; 2], outputs: [f64; DEVICE_EVAL_SLOTS]) {
        self.eval_key = [inputs[0].to_bits(), inputs[1].to_bits()];
        self.eval = outputs;
        self.eval_valid = true;
    }
}

/// Tolerances under which a device evaluation may be reused for nearby
/// controlling voltages (inactive ⇒ only exact-bit reuse).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct BypassTolerance {
    pub(crate) active: bool,
    pub(crate) v_abs: f64,
    pub(crate) v_rel: f64,
}

impl BypassTolerance {
    /// Exact-bit reuse only.
    pub(crate) const OFF: BypassTolerance = BypassTolerance {
        active: false,
        v_abs: 0.0,
        v_rel: 0.0,
    };
}

/// Stamping-effort counters accumulated on the assembly (single-threaded
/// interior mutability; an assembly is per-thread by construction).
#[derive(Debug, Default)]
pub(crate) struct StampCounters {
    pub(crate) device_evals: Cell<u64>,
    pub(crate) lane_evals: Cell<u64>,
    pub(crate) device_reuses: Cell<u64>,
    pub(crate) bypass_hits: Cell<u64>,
    pub(crate) restamp_incremental: Cell<u64>,
    pub(crate) restamp_full: Cell<u64>,
}

impl StampCounters {
    pub(crate) fn take(&self) -> StampEffort {
        StampEffort {
            device_evals: self.device_evals.take(),
            lane_evals: self.lane_evals.take(),
            device_reuses: self.device_reuses.take(),
            bypass_hits: self.bypass_hits.take(),
            restamp_incremental: self.restamp_incremental.take(),
            restamp_full: self.restamp_full.take(),
        }
    }
}

fn bump(cell: &Cell<u64>) {
    cell.set(cell.get() + 1);
}

/// A snapshot of stamping effort: how much device evaluation and matrix
/// restamping work a stretch of solves actually performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StampEffort {
    /// Full device evaluations performed (model equations run).
    pub device_evals: u64,
    /// The subset of [`StampEffort::device_evals`] computed by the
    /// lane-array device kernel of the batched driver (each also counts
    /// in `device_evals`; `device_evals - lane_evals` is the scalar
    /// in-stamp share).
    pub lane_evals: u64,
    /// Evaluations skipped because the controlling voltages matched the
    /// cached anchor bit-for-bit (always sound).
    pub device_reuses: u64,
    /// Evaluations skipped by the tolerance-based bypass (approximation;
    /// re-verified at acceptance).
    pub bypass_hits: u64,
    /// Jacobian passes that rewrote only operating-point-dependent slots.
    pub restamp_incremental: u64,
    /// Jacobian passes that stamped every element (recording, constant
    /// refresh, or dense fallback).
    pub restamp_full: u64,
}

/// Mutable view an element stamps through.
///
/// Rows/columns are addressed by [`NodeId`] (ground rows/columns are
/// silently dropped) or by the element's local branch ordinal `0..branch_count`.
#[derive(Debug)]
pub struct StampContext<'a> {
    eval: EvalContext,
    x: &'a [f64],
    node_count: usize,
    /// Absolute index of this element's first branch unknown.
    branch_base: usize,
    residual: &'a mut [f64],
    jac: JacSink<'a>,
    device: Option<&'a mut DeviceSlot>,
    bypass: BypassTolerance,
    counters: Option<&'a StampCounters>,
}

impl<'a> StampContext<'a> {
    /// Creates a context for one element. Used by the system assembler.
    pub(crate) fn new(
        eval: EvalContext,
        x: &'a [f64],
        node_count: usize,
        branch_base: usize,
        residual: &'a mut [f64],
        jacobian: Option<&'a mut Matrix>,
    ) -> Self {
        let jac = match jacobian {
            Some(m) => JacSink::Dense(m),
            None => JacSink::None,
        };
        StampContext::with_sink(eval, x, node_count, branch_base, residual, jac)
    }

    /// Creates a context with an explicit Jacobian sink.
    pub(crate) fn with_sink(
        eval: EvalContext,
        x: &'a [f64],
        node_count: usize,
        branch_base: usize,
        residual: &'a mut [f64],
        jac: JacSink<'a>,
    ) -> Self {
        StampContext {
            eval,
            x,
            node_count,
            branch_base,
            residual,
            jac,
            device: None,
            bypass: BypassTolerance::OFF,
            counters: None,
        }
    }

    /// Attaches this element's persistent device-cache slot plus the
    /// bypass policy and effort counters of the owning assembly.
    pub(crate) fn attach_device(
        &mut self,
        slot: &'a mut DeviceSlot,
        bypass: BypassTolerance,
        counters: &'a StampCounters,
    ) {
        self.device = Some(slot);
        self.bypass = bypass;
        self.counters = Some(counters);
    }

    /// Device temperature.
    #[must_use]
    pub fn temperature(&self) -> Kelvin {
        self.eval.temperature
    }

    /// Independent-source scale factor (1.0 except during source stepping).
    #[must_use]
    pub fn source_scale(&self) -> f64 {
        self.eval.source_scale
    }

    /// Voltage of a node at the current iterate (0 for ground).
    #[must_use]
    pub fn v(&self, node: NodeId) -> f64 {
        match node.unknown_index() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Value of this element's `k`-th branch unknown.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the element's declared branch count (caught by
    /// the debug assertions of the assembler).
    #[must_use]
    pub fn branch(&self, k: usize) -> f64 {
        self.x[self.node_count + self.branch_base + k]
    }

    /// Adds `current` to the KCL residual of `node` (current leaving the
    /// node through this element). Ground is dropped.
    pub fn add_node_residual(&mut self, node: NodeId, current: f64) {
        if let Some(i) = node.unknown_index() {
            self.residual[i] += current;
        }
    }

    /// Adds `value` to this element's `k`-th branch equation residual.
    pub fn add_branch_residual(&mut self, k: usize, value: f64) {
        self.residual[self.node_count + self.branch_base + k] += value;
    }

    /// Routes one surviving (post-ground-drop) Jacobian contribution into
    /// the active sink.
    fn push_jac(&mut self, r: usize, c: usize, value: f64) {
        match &mut self.jac {
            JacSink::None => {}
            JacSink::Dense(j) => j[(r, c)] += value,
            JacSink::Record { seq, values } => {
                seq.push((r as u32, c as u32));
                values.push(value);
            }
            JacSink::Replay {
                seq,
                values,
                cursor,
                ok,
            } => {
                let i = **cursor;
                if i < seq.len() && seq[i] == (r as u32, c as u32) {
                    values[i] = value;
                    **cursor = i + 1;
                } else {
                    **ok = false;
                }
            }
        }
    }

    /// Adds `dI/dV`: derivative of the `row` node's residual with respect
    /// to the `col` node's voltage.
    pub fn add_jac_node_node(&mut self, row: NodeId, col: NodeId, value: f64) {
        if let (Some(r), Some(c)) = (row.unknown_index(), col.unknown_index()) {
            self.push_jac(r, c, value);
        }
    }

    /// Adds derivative of the `row` node's residual with respect to this
    /// element's `k`-th branch current.
    pub fn add_jac_node_branch(&mut self, row: NodeId, k: usize, value: f64) {
        let col = self.node_count + self.branch_base + k;
        if let Some(r) = row.unknown_index() {
            self.push_jac(r, col, value);
        }
    }

    /// Adds derivative of this element's `k`-th branch equation with
    /// respect to the `col` node's voltage.
    pub fn add_jac_branch_node(&mut self, k: usize, col: NodeId, value: f64) {
        let row = self.node_count + self.branch_base + k;
        if let Some(c) = col.unknown_index() {
            self.push_jac(row, c, value);
        }
    }

    /// Adds derivative of branch equation `k` with respect to branch
    /// current `c` (both local to this element).
    pub fn add_jac_branch_branch(&mut self, k: usize, c: usize, value: f64) {
        let row = self.node_count + self.branch_base + k;
        let col = self.node_count + self.branch_base + c;
        self.push_jac(row, col, value);
    }

    /// Cached per-temperature model values, if the attached device slot
    /// was last refreshed at exactly this key (typically `T.to_bits()`).
    /// Always `None` when no slot is attached (cold paths).
    #[must_use]
    pub fn cached_model(&self, key: u64) -> Option<[f64; DEVICE_TEMP_SLOTS]> {
        let slot = self.device.as_ref()?;
        (slot.temp_valid && slot.temp_key == key).then_some(slot.temp)
    }

    /// Stores freshly computed per-temperature model values. Invalidates
    /// the evaluation cache: its outputs depend on the model values.
    pub fn store_model(&mut self, key: u64, values: [f64; DEVICE_TEMP_SLOTS]) {
        if let Some(slot) = self.device.as_mut() {
            slot.temp_key = key;
            slot.temp = values;
            slot.temp_valid = true;
            slot.eval_valid = false;
        }
    }

    /// Cached evaluation outputs for controlling voltages `inputs`.
    ///
    /// An exact bit match always hits (the device equations are pure, so a
    /// recompute would produce identical bits). Inputs merely *within
    /// tolerance* of the cached anchor hit only when bypass is active; the
    /// anchor is deliberately not moved on such a hit, so drift cannot
    /// accumulate.
    #[must_use]
    pub fn cached_eval(&self, inputs: [f64; 2]) -> Option<[f64; DEVICE_EVAL_SLOTS]> {
        let slot = self.device.as_ref()?;
        if !slot.eval_valid {
            return None;
        }
        if [inputs[0].to_bits(), inputs[1].to_bits()] == slot.eval_key {
            if let Some(c) = self.counters {
                bump(&c.device_reuses);
            }
            return Some(slot.eval);
        }
        if self.bypass.active {
            let a0 = f64::from_bits(slot.eval_key[0]);
            let a1 = f64::from_bits(slot.eval_key[1]);
            let tol0 = self.bypass.v_abs + self.bypass.v_rel * inputs[0].abs().max(a0.abs());
            let tol1 = self.bypass.v_abs + self.bypass.v_rel * inputs[1].abs().max(a1.abs());
            if (inputs[0] - a0).abs() <= tol0 && (inputs[1] - a1).abs() <= tol1 {
                if let Some(c) = self.counters {
                    bump(&c.bypass_hits);
                }
                return Some(slot.eval);
            }
        }
        None
    }

    /// Stores the outputs of a full device evaluation at `inputs`, making
    /// them the new reuse anchor, and counts the evaluation.
    pub fn store_eval(&mut self, inputs: [f64; 2], outputs: [f64; DEVICE_EVAL_SLOTS]) {
        if let Some(c) = self.counters {
            bump(&c.device_evals);
        }
        if let Some(slot) = self.device.as_mut() {
            slot.eval_key = [inputs[0].to_bits(), inputs[1].to_bits()];
            slot.eval = outputs;
            slot.eval_valid = true;
        }
    }
}

/// A circuit element.
///
/// Implementors stamp their DC equations through [`StampContext`]. The
/// trait is object-safe: circuits store `Arc<dyn Element>`.
pub trait Element: fmt::Debug + Send + Sync {
    /// Instance name (unique within a circuit by convention).
    fn name(&self) -> &str;

    /// Concrete-type access for exporters and inspectors.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Every node this element touches (used for topology validation).
    fn nodes(&self) -> Vec<NodeId>;

    /// Number of extra branch-current unknowns this element introduces.
    fn branch_count(&self) -> usize {
        0
    }

    /// Accumulates residual and Jacobian contributions at the iterate
    /// exposed by `ctx`.
    fn stamp(&self, ctx: &mut StampContext<'_>);

    /// Whether every Jacobian value this element stamps is independent of
    /// the iterate `x` (it may still depend on temperature, gmin, source
    /// scale or bound parameters). Constant elements are skipped by
    /// incremental restamp passes until the evaluation context changes.
    fn jacobian_constant(&self) -> bool {
        false
    }

    /// Whether the element is an independent source whose value should be
    /// ramped during source stepping.
    fn is_independent_source(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_rows_are_dropped() {
        let mut residual = vec![0.0; 2];
        let x = vec![1.0, 2.0];
        let mut ctx = StampContext::new(
            EvalContext::nominal(Kelvin::new(300.0)),
            &x,
            2,
            0,
            &mut residual,
            None,
        );
        ctx.add_node_residual(NodeId::GROUND, 5.0);
        assert_eq!(residual, vec![0.0, 0.0]);
    }

    #[test]
    fn node_and_branch_addressing() {
        // 1 node + 1 branch system.
        let x = vec![3.0, 0.25];
        let mut residual = vec![0.0; 2];
        let mut jac = Matrix::zeros(2, 2);
        let mut ckt = crate::netlist::Circuit::new();
        let n1 = ckt.node("n1");
        let mut ctx = StampContext::new(
            EvalContext::nominal(Kelvin::new(300.0)),
            &x,
            1,
            0,
            &mut residual,
            Some(&mut jac),
        );
        assert_eq!(ctx.v(n1), 3.0);
        assert_eq!(ctx.branch(0), 0.25);
        ctx.add_node_residual(n1, 1.0);
        ctx.add_branch_residual(0, -2.0);
        ctx.add_jac_node_branch(n1, 0, 1.0);
        ctx.add_jac_branch_node(0, n1, 1.0);
        ctx.add_jac_branch_branch(0, 0, 7.0);
        assert_eq!(residual, vec![1.0, -2.0]);
        assert_eq!(jac[(0, 1)], 1.0);
        assert_eq!(jac[(1, 0)], 1.0);
        assert_eq!(jac[(1, 1)], 7.0);
    }

    #[test]
    fn record_then_replay_round_trips_bitwise() {
        let x = vec![0.5, -0.25];
        let mut ckt = crate::netlist::Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let eval = EvalContext::nominal(Kelvin::new(300.0));

        let mut seq = Vec::new();
        let mut values = Vec::new();
        let mut residual = vec![0.0; 2];
        let mut ctx = StampContext::with_sink(
            eval,
            &x,
            2,
            0,
            &mut residual,
            JacSink::Record {
                seq: &mut seq,
                values: &mut values,
            },
        );
        ctx.add_jac_node_node(a, a, 1.5);
        ctx.add_jac_node_node(a, b, -1.5);
        ctx.add_jac_node_node(NodeId::GROUND, a, 9.0); // dropped, not recorded
        ctx.add_jac_node_node(b, b, 2.5);
        assert_eq!(seq, vec![(0, 0), (0, 1), (1, 1)]);
        assert_eq!(values, vec![1.5, -1.5, 2.5]);

        let mut cursor = 0usize;
        let mut ok = true;
        let mut residual = vec![0.0; 2];
        let mut ctx = StampContext::with_sink(
            eval,
            &x,
            2,
            0,
            &mut residual,
            JacSink::Replay {
                seq: &seq,
                values: &mut values,
                cursor: &mut cursor,
                ok: &mut ok,
            },
        );
        ctx.add_jac_node_node(a, a, 3.5);
        ctx.add_jac_node_node(a, b, -3.5);
        ctx.add_jac_node_node(NodeId::GROUND, a, 9.0);
        ctx.add_jac_node_node(b, b, 4.5);
        assert!(ok);
        assert_eq!(cursor, 3);
        assert_eq!(values, vec![3.5, -3.5, 4.5]);
    }

    #[test]
    fn replay_flags_a_diverging_sequence() {
        let x = vec![0.0];
        let seq = vec![(0u32, 0u32)];
        let mut values = vec![1.0];
        let mut cursor = 0usize;
        let mut ok = true;
        let mut residual = vec![0.0; 1];
        let mut ctx = StampContext::with_sink(
            EvalContext::nominal(Kelvin::new(300.0)),
            &x,
            1,
            0,
            &mut residual,
            JacSink::Replay {
                seq: &seq,
                values: &mut values,
                cursor: &mut cursor,
                ok: &mut ok,
            },
        );
        // Recorded (0,0) but the element now stamps a branch entry.
        ctx.add_jac_branch_branch(0, 0, 2.0);
        assert!(!ok);
    }

    #[test]
    fn device_slot_exact_reuse_and_temperature_invalidation() {
        let x: Vec<f64> = vec![];
        let mut residual: Vec<f64> = vec![];
        let mut slot = DeviceSlot::default();
        let counters = StampCounters::default();
        let mut ctx = StampContext::with_sink(
            EvalContext::nominal(Kelvin::new(300.0)),
            &x,
            0,
            0,
            &mut residual,
            JacSink::None,
        );
        ctx.attach_device(&mut slot, BypassTolerance::OFF, &counters);

        assert!(ctx.cached_model(300.0f64.to_bits()).is_none());
        ctx.store_model(300.0f64.to_bits(), [1.0; DEVICE_TEMP_SLOTS]);
        assert!(ctx.cached_model(300.0f64.to_bits()).is_some());
        assert!(ctx.cached_model(301.0f64.to_bits()).is_none());

        assert!(ctx.cached_eval([0.6, 0.0]).is_none());
        ctx.store_eval([0.6, 0.0], [2.0; DEVICE_EVAL_SLOTS]);
        assert_eq!(ctx.cached_eval([0.6, 0.0]), Some([2.0; DEVICE_EVAL_SLOTS]));
        // Off-key without bypass: miss.
        assert!(ctx.cached_eval([0.6 + 1e-9, 0.0]).is_none());
        // A model refresh invalidates the evaluation cache.
        ctx.store_model(301.0f64.to_bits(), [1.0; DEVICE_TEMP_SLOTS]);
        assert!(ctx.cached_eval([0.6, 0.0]).is_none());

        let effort = counters.take();
        assert_eq!(effort.device_evals, 1);
        assert_eq!(effort.device_reuses, 1);
        assert_eq!(effort.bypass_hits, 0);
        assert_eq!(counters.take(), StampEffort::default());
    }

    #[test]
    fn bypass_tolerance_reuses_nearby_points_without_moving_the_anchor() {
        let x: Vec<f64> = vec![];
        let mut residual: Vec<f64> = vec![];
        let mut slot = DeviceSlot::default();
        let counters = StampCounters::default();
        let bypass = BypassTolerance {
            active: true,
            v_abs: 1e-6,
            v_rel: 0.0,
        };
        let mut ctx = StampContext::with_sink(
            EvalContext::nominal(Kelvin::new(300.0)),
            &x,
            0,
            0,
            &mut residual,
            JacSink::None,
        );
        ctx.attach_device(&mut slot, bypass, &counters);
        ctx.store_model(300.0f64.to_bits(), [0.0; DEVICE_TEMP_SLOTS]);
        ctx.store_eval([0.6, 0.0], [7.0; DEVICE_EVAL_SLOTS]);
        // Within tolerance: reused.
        assert_eq!(
            ctx.cached_eval([0.6 + 5e-7, 0.0]),
            Some([7.0; DEVICE_EVAL_SLOTS])
        );
        // Anchor unmoved: a point within tolerance of the *new* input but
        // beyond tolerance of the anchor misses.
        assert!(ctx.cached_eval([0.6 + 15e-7, 0.0]).is_none());
        let effort = counters.take();
        assert_eq!(effort.bypass_hits, 1);
        assert_eq!(effort.device_evals, 1);
    }
}
