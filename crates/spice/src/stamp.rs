//! The element interface: how devices contribute to the MNA system.
//!
//! The solver iterates Newton on `f(x) = 0` where `x` stacks node voltages
//! (all non-ground nodes, in creation order) followed by branch currents
//! (one block per element that declares branches). Each element implements
//! [`Element::stamp`], reading the current iterate through
//! [`StampContext`] and accumulating its residual and Jacobian
//! contributions.
//!
//! Sign convention: a node residual is the sum of currents *leaving* the
//! node; Kirchhoff demands it be zero.

use std::fmt;

use icvbe_numerics::Matrix;
use icvbe_units::Kelvin;

use crate::netlist::NodeId;

/// Ambient conditions and continuation knobs for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalContext {
    /// Device temperature for model-card evaluation.
    pub temperature: Kelvin,
    /// Conductance from every node to ground added by the solver
    /// (gmin continuation; the floor value in a final solve).
    pub gmin: f64,
    /// Scale factor applied to independent sources (source stepping).
    pub source_scale: f64,
}

impl EvalContext {
    /// Nominal context: given temperature, gmin floor, full sources.
    #[must_use]
    pub fn nominal(temperature: Kelvin) -> Self {
        EvalContext {
            temperature,
            gmin: 1e-12,
            source_scale: 1.0,
        }
    }
}

/// Mutable view an element stamps through.
///
/// Rows/columns are addressed by [`NodeId`] (ground rows/columns are
/// silently dropped) or by the element's local branch ordinal `0..branch_count`.
#[derive(Debug)]
pub struct StampContext<'a> {
    eval: EvalContext,
    x: &'a [f64],
    node_count: usize,
    /// Absolute index of this element's first branch unknown.
    branch_base: usize,
    residual: &'a mut [f64],
    jacobian: Option<&'a mut Matrix>,
}

impl<'a> StampContext<'a> {
    /// Creates a context for one element. Used by the system assembler.
    pub(crate) fn new(
        eval: EvalContext,
        x: &'a [f64],
        node_count: usize,
        branch_base: usize,
        residual: &'a mut [f64],
        jacobian: Option<&'a mut Matrix>,
    ) -> Self {
        StampContext {
            eval,
            x,
            node_count,
            branch_base,
            residual,
            jacobian,
        }
    }

    /// Device temperature.
    #[must_use]
    pub fn temperature(&self) -> Kelvin {
        self.eval.temperature
    }

    /// Independent-source scale factor (1.0 except during source stepping).
    #[must_use]
    pub fn source_scale(&self) -> f64 {
        self.eval.source_scale
    }

    /// Voltage of a node at the current iterate (0 for ground).
    #[must_use]
    pub fn v(&self, node: NodeId) -> f64 {
        match node.unknown_index() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// Value of this element's `k`-th branch unknown.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the element's declared branch count (caught by
    /// the debug assertions of the assembler).
    #[must_use]
    pub fn branch(&self, k: usize) -> f64 {
        self.x[self.node_count + self.branch_base + k]
    }

    /// Adds `current` to the KCL residual of `node` (current leaving the
    /// node through this element). Ground is dropped.
    pub fn add_node_residual(&mut self, node: NodeId, current: f64) {
        if let Some(i) = node.unknown_index() {
            self.residual[i] += current;
        }
    }

    /// Adds `value` to this element's `k`-th branch equation residual.
    pub fn add_branch_residual(&mut self, k: usize, value: f64) {
        self.residual[self.node_count + self.branch_base + k] += value;
    }

    /// Adds `dI/dV`: derivative of the `row` node's residual with respect
    /// to the `col` node's voltage.
    pub fn add_jac_node_node(&mut self, row: NodeId, col: NodeId, value: f64) {
        if let Some(j) = &mut self.jacobian {
            if let (Some(r), Some(c)) = (row.unknown_index(), col.unknown_index()) {
                j[(r, c)] += value;
            }
        }
    }

    /// Adds derivative of the `row` node's residual with respect to this
    /// element's `k`-th branch current.
    pub fn add_jac_node_branch(&mut self, row: NodeId, k: usize, value: f64) {
        let col = self.node_count + self.branch_base + k;
        if let Some(j) = &mut self.jacobian {
            if let Some(r) = row.unknown_index() {
                j[(r, col)] += value;
            }
        }
    }

    /// Adds derivative of this element's `k`-th branch equation with
    /// respect to the `col` node's voltage.
    pub fn add_jac_branch_node(&mut self, k: usize, col: NodeId, value: f64) {
        let row = self.node_count + self.branch_base + k;
        if let Some(j) = &mut self.jacobian {
            if let Some(c) = col.unknown_index() {
                j[(row, c)] += value;
            }
        }
    }

    /// Adds derivative of branch equation `k` with respect to branch
    /// current `c` (both local to this element).
    pub fn add_jac_branch_branch(&mut self, k: usize, c: usize, value: f64) {
        let row = self.node_count + self.branch_base + k;
        let col = self.node_count + self.branch_base + c;
        if let Some(j) = &mut self.jacobian {
            j[(row, col)] += value;
        }
    }
}

/// A circuit element.
///
/// Implementors stamp their DC equations through [`StampContext`]. The
/// trait is object-safe: circuits store `Arc<dyn Element>`.
pub trait Element: fmt::Debug + Send + Sync {
    /// Instance name (unique within a circuit by convention).
    fn name(&self) -> &str;

    /// Concrete-type access for exporters and inspectors.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Every node this element touches (used for topology validation).
    fn nodes(&self) -> Vec<NodeId>;

    /// Number of extra branch-current unknowns this element introduces.
    fn branch_count(&self) -> usize {
        0
    }

    /// Accumulates residual and Jacobian contributions at the iterate
    /// exposed by `ctx`.
    fn stamp(&self, ctx: &mut StampContext<'_>);

    /// Whether the element is an independent source whose value should be
    /// ramped during source stepping.
    fn is_independent_source(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_rows_are_dropped() {
        let mut residual = vec![0.0; 2];
        let x = vec![1.0, 2.0];
        let mut ctx = StampContext::new(
            EvalContext::nominal(Kelvin::new(300.0)),
            &x,
            2,
            0,
            &mut residual,
            None,
        );
        ctx.add_node_residual(NodeId::GROUND, 5.0);
        assert_eq!(residual, vec![0.0, 0.0]);
    }

    #[test]
    fn node_and_branch_addressing() {
        // 1 node + 1 branch system.
        let x = vec![3.0, 0.25];
        let mut residual = vec![0.0; 2];
        let mut jac = Matrix::zeros(2, 2);
        let mut ckt = crate::netlist::Circuit::new();
        let n1 = ckt.node("n1");
        let mut ctx = StampContext::new(
            EvalContext::nominal(Kelvin::new(300.0)),
            &x,
            1,
            0,
            &mut residual,
            Some(&mut jac),
        );
        assert_eq!(ctx.v(n1), 3.0);
        assert_eq!(ctx.branch(0), 0.25);
        ctx.add_node_residual(n1, 1.0);
        ctx.add_branch_residual(0, -2.0);
        ctx.add_jac_node_branch(n1, 0, 1.0);
        ctx.add_jac_branch_node(0, n1, 1.0);
        ctx.add_jac_branch_branch(0, 0, 7.0);
        assert_eq!(residual, vec![1.0, -2.0]);
        assert_eq!(jac[(0, 1)], 1.0);
        assert_eq!(jac[(1, 0)], 1.0);
        assert_eq!(jac[(1, 1)], 7.0);
    }
}
