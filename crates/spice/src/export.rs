//! SPICE-deck export: render a [`Circuit`] as classic `.cir` netlist text.
//!
//! The reproduced paper's whole point is producing *model cards* a SPICE
//! user can consume; this module closes the loop by emitting the circuits
//! themselves in SPICE-2G6-flavoured syntax, so a deck built here can be
//! cross-checked in any external simulator.
//!
//! Elements are rendered by downcasting the trait objects to the concrete
//! types of this crate; foreign [`Element`] implementations are emitted as
//! comment lines (the format has no way to describe them).

use std::fmt::Write as _;

use icvbe_units::Kelvin;

use crate::bjt::{Bjt, Polarity};
use crate::element::{CurrentSource, Diode, OpAmp, Resistor, VoltageSource};
use crate::netlist::{Circuit, NodeId};
use crate::stamp::Element;

/// Options controlling deck rendering.
#[derive(Debug, Clone)]
pub struct DeckOptions {
    /// Title line (first line of a SPICE deck).
    pub title: String,
    /// Temperature for the `.TEMP` card and for evaluating
    /// temperature-dependent resistances.
    pub temperature: Kelvin,
    /// Emit a `.OP` analysis card.
    pub include_op_card: bool,
}

impl Default for DeckOptions {
    fn default() -> Self {
        DeckOptions {
            title: "icvbe exported deck".to_string(),
            temperature: Kelvin::new(298.15),
            include_op_card: true,
        }
    }
}

fn node_name(circuit: &Circuit, n: NodeId) -> String {
    if n == NodeId::GROUND {
        "0".to_string()
    } else {
        circuit.node_name(n).to_string()
    }
}

/// Renders the circuit as SPICE deck text.
///
/// Every model card referenced by a BJT or diode instance is emitted as a
/// `.MODEL` line named after the element; op-amps become E-source VCVS
/// lines (offset folded into a series V-source on the non-inverting
/// input via an auxiliary node).
#[must_use]
pub fn to_spice_deck(circuit: &Circuit, options: &DeckOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {}", options.title);
    let _ = writeln!(
        out,
        "* exported by icvbe-spice at T = {:.2} K",
        options.temperature.value()
    );
    let mut models = String::new();
    let mut aux_index = 0usize;

    for e in circuit.elements() {
        let any = e.as_any();
        if let Some(r) = any.downcast_ref::<Resistor>() {
            let nodes = r.nodes();
            let _ = writeln!(
                out,
                "R{} {} {} {:.6e}",
                sanitize(r.name()),
                node_name(circuit, nodes[0]),
                node_name(circuit, nodes[1]),
                r.resistance_at(options.temperature).value()
            );
        } else if let Some(v) = any.downcast_ref::<VoltageSource>() {
            let nodes = v.nodes();
            let _ = writeln!(
                out,
                "V{} {} {} DC {:.6e}",
                sanitize(v.name()),
                node_name(circuit, nodes[0]),
                node_name(circuit, nodes[1]),
                v.value().value()
            );
        } else if let Some(i) = any.downcast_ref::<CurrentSource>() {
            let nodes = i.nodes();
            // SPICE convention: positive I flows from node1 through the
            // source to node2; our `from -> to` matches that order.
            let _ = writeln!(
                out,
                "I{} {} {} DC {:.6e}",
                sanitize(i.name()),
                node_name(circuit, nodes[0]),
                node_name(circuit, nodes[1]),
                i.value().value()
            );
        } else if let Some(u) = any.downcast_ref::<OpAmp>() {
            let nodes = u.nodes(); // in_p, in_m, out
            let offset = u.offset().value();
            if offset == 0.0 {
                let _ = writeln!(
                    out,
                    "E{} {} 0 {} {} {:.6e}",
                    sanitize(u.name()),
                    node_name(circuit, nodes[2]),
                    node_name(circuit, nodes[0]),
                    node_name(circuit, nodes[1]),
                    u.gain()
                );
            } else {
                // Offset as a series source into an auxiliary node on the
                // non-inverting input.
                aux_index += 1;
                let aux = format!("icvbe_aux{aux_index}");
                let _ = writeln!(
                    out,
                    "VOS{} {} {} DC {:.6e}",
                    sanitize(u.name()),
                    aux,
                    node_name(circuit, nodes[0]),
                    offset
                );
                let _ = writeln!(
                    out,
                    "E{} {} 0 {} {} {:.6e}",
                    sanitize(u.name()),
                    node_name(circuit, nodes[2]),
                    aux,
                    node_name(circuit, nodes[1]),
                    u.gain()
                );
            }
        } else if let Some(d) = any.downcast_ref::<Diode>() {
            let nodes = d.nodes();
            let model = format!("DM_{}", sanitize(d.name()));
            let _ = writeln!(
                out,
                "D{} {} {} {} AREA={:.6e}",
                sanitize(d.name()),
                node_name(circuit, nodes[0]),
                node_name(circuit, nodes[1]),
                model,
                d.area()
            );
            let card = d.law();
            let _ = writeln!(
                models,
                ".MODEL {model} D (IS={:.6e} N={:.4} EG={:.4} XTI={:.4} TNOM={:.2})",
                card.is_ref().value(),
                d.emission(),
                card.eg().value(),
                card.xti(),
                card.t_ref().to_celsius().value()
            );
        } else if let Some(q) = any.downcast_ref::<Bjt>() {
            let nodes = q.nodes(); // c, b, e [, substrate]
            let model = format!("QM_{}", sanitize(q.name()));
            let sub = if nodes.len() > 3 {
                format!(" {}", node_name(circuit, nodes[3]))
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "Q{} {} {} {}{} {} AREA={:.6e}",
                sanitize(q.name()),
                node_name(circuit, nodes[0]),
                node_name(circuit, nodes[1]),
                node_name(circuit, nodes[2]),
                sub,
                model,
                q.area()
            );
            let p = q.params();
            let kind = match q.polarity() {
                Polarity::Npn => "NPN",
                Polarity::Pnp => "PNP",
            };
            let _ = writeln!(
                models,
                ".MODEL {model} {kind} (IS={:.6e} BF={:.3} BR={:.3} NF={:.3} NR={:.3} \
                 ISE={:.6e} NE={:.3} IKF={} VAF={} EG={:.4} XTI={:.4} XTB={:.3} TNOM={:.2})",
                p.is.value(),
                p.bf,
                p.br,
                p.nf,
                p.nr,
                p.ise.value(),
                p.ne,
                finite_or(p.ikf.value(), "1e3"),
                finite_or(p.vaf.value(), "1e6"),
                p.eg.value(),
                p.xti,
                p.xtb,
                p.t_nom.to_celsius().value()
            );
        } else {
            let _ = writeln!(out, "* (unexportable element '{}')", e.name());
        }
    }
    out.push_str(&models);
    let _ = writeln!(out, ".TEMP {:.2}", options.temperature.to_celsius().value());
    if options.include_op_card {
        let _ = writeln!(out, ".OP");
    }
    let _ = writeln!(out, ".END");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn finite_or(v: f64, fallback: &str) -> String {
    if v.is_finite() {
        format!("{v:.6e}")
    } else {
        fallback.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjt::BjtParams;
    use icvbe_units::{Ampere, Ohm, Volt};

    fn divider_deck() -> String {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(5.0),
        ));
        c.add(Resistor::new("R1", vcc, out, Ohm::new(1e3)).unwrap());
        c.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(1e3)).unwrap());
        to_spice_deck(&c, &DeckOptions::default())
    }

    #[test]
    fn deck_has_title_and_end() {
        let deck = divider_deck();
        assert!(deck.starts_with("* icvbe exported deck"));
        assert!(deck.trim_end().ends_with(".END"));
        assert!(deck.contains(".OP"));
    }

    #[test]
    fn divider_elements_render() {
        let deck = divider_deck();
        assert!(deck.contains("VV1 vcc 0 DC 5"));
        assert!(deck.contains("RR1 vcc out 1.000000e3"));
        assert!(deck.contains("RR2 out 0 1.000000e3"));
    }

    #[test]
    fn bjt_renders_model_card() {
        let mut c = Circuit::new();
        let e = c.node("e");
        c.add(CurrentSource::new(
            "IB",
            Circuit::ground(),
            e,
            Ampere::new(1e-6),
        ));
        c.add(
            Bjt::new(
                "QA",
                Circuit::ground(),
                Circuit::ground(),
                e,
                Polarity::Pnp,
                BjtParams::default_npn(),
            )
            .unwrap()
            .with_area(8.0)
            .unwrap(),
        );
        let deck = to_spice_deck(&c, &DeckOptions::default());
        assert!(deck.contains("QQA 0 0 e QM_QA AREA=8"));
        assert!(deck.contains(".MODEL QM_QA PNP"));
        assert!(deck.contains("EG=1.1100"));
        assert!(deck.contains("XTI=3.0000"));
    }

    #[test]
    fn opamp_offset_creates_auxiliary_source() {
        let mut c = Circuit::new();
        let (p, m, o) = (c.node("p"), c.node("m"), c.node("o"));
        c.add(
            OpAmp::new("U1", p, m, o, 1e6)
                .unwrap()
                .with_offset(Volt::new(0.002)),
        );
        let deck = to_spice_deck(&c, &DeckOptions::default());
        assert!(deck.contains("VOSU1 icvbe_aux1 p DC 2.000000e-3"));
        assert!(deck.contains("EU1 o 0 icvbe_aux1 m 1.000000e6"));
    }

    #[test]
    fn temperature_dependent_resistance_is_evaluated() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(
            Resistor::new("RT", a, Circuit::ground(), Ohm::new(1000.0))
                .unwrap()
                .with_tempco(1e-3, 0.0, Kelvin::new(298.15)),
        );
        let opts = DeckOptions {
            temperature: Kelvin::new(398.15),
            ..DeckOptions::default()
        };
        let deck = to_spice_deck(&c, &opts);
        assert!(deck.contains("1.100000e3"), "deck: {deck}");
        assert!(deck.contains(".TEMP 125.00"));
    }

    #[test]
    fn infinite_parameters_get_fallbacks() {
        let mut c = Circuit::new();
        let e = c.node("e");
        c.add(CurrentSource::new(
            "IB",
            Circuit::ground(),
            e,
            Ampere::new(1e-6),
        ));
        c.add(
            Bjt::new(
                "Q",
                Circuit::ground(),
                Circuit::ground(),
                e,
                Polarity::Npn,
                BjtParams::default_npn(),
            )
            .unwrap(),
        );
        let deck = to_spice_deck(&c, &DeckOptions::default());
        // Default card has IKF = VAF = infinity.
        assert!(deck.contains("IKF=1e3"));
        assert!(deck.contains("VAF=1e6"));
    }
}
