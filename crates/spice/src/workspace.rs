//! Reusable solve state: workspace, statistics, and the allocation-free
//! DC driver.
//!
//! [`crate::solver::solve_dc`] is the convenient entry point — it
//! validates the circuit, assembles the unknown layout, allocates scratch,
//! and returns an owned operating point. A campaign die pays that setup
//! thousands of times for solves that are structurally identical. This
//! module splits the invariants out:
//!
//! - [`crate::system::CircuitAssembly`] — topology validation + unknown
//!   layout, computed once per circuit;
//! - [`SolveWorkspace`] — every solver buffer (Newton trial/residual
//!   vectors, Jacobian, LU storage, strategy restart copies), reused
//!   across solves;
//! - [`solve_dc_with`] — the same continuation strategy chain as
//!   `solve_dc`, arithmetic-identical, but drawing all storage from the
//!   workspace and leaving the solution in it.
//!
//! The workspace also keeps running [`SolveStats`] so callers (the
//! campaign metrics pipeline) can observe Newton iteration counts and
//! warm-start hit rates without threading counters through every layer.

use icvbe_numerics::newton::{solve_newton_traced, NewtonWorkspace};
use icvbe_trace::{SpanKind, SpanToken, TraceBuf};
use icvbe_units::Kelvin;

use crate::ladder::{SolveFailure, SolveStrategy};
use crate::netlist::Circuit;
use crate::solver::DcOptions;
use crate::stamp::{BypassTolerance, EvalContext};
use crate::system::{CircuitAssembly, CircuitSystem};
use crate::SpiceError;

/// Running counters over the solves driven through one [`SolveWorkspace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// DC solves completed (successfully or not).
    pub solves: u64,
    /// Damped Newton iterations accumulated across successful strategy
    /// stages (same counting as [`crate::solver::OperatingPoint::iterations`]).
    pub newton_iterations: u64,
    /// Solves seeded from a caller-provided initial vector.
    pub warm_starts: u64,
    /// Solves started from all zeros.
    pub cold_starts: u64,
    /// Successful solves by the ladder rung that produced them, indexed
    /// by [`SolveStrategy::index`].
    pub ladder_success: [u64; 4],
    /// Solves that exhausted every rung of the ladder.
    pub ladder_exhausted: u64,
    /// Full device evaluations performed.
    pub device_evals: u64,
    /// The subset of [`SolveStats::device_evals`] computed by the
    /// lane-array device kernel of the batched driver.
    pub lane_evals: u64,
    /// Device evaluations skipped by an exact-bit cache hit.
    pub device_reuses: u64,
    /// Device evaluations skipped by the tolerance bypass.
    pub bypass_hits: u64,
    /// Jacobian passes that rewrote only operating-point-dependent slots.
    pub restamp_incremental: u64,
    /// Jacobian passes that stamped every element.
    pub restamp_full: u64,
    /// Warm solves completed through the lane-batched driver
    /// ([`crate::batch::solve_dc_batch`]).
    pub batched_solves: u64,
    /// Batched solve attempts that retired this lane to the scalar path
    /// (factor failure, divergence, or a non-finite residual).
    pub lane_retires: u64,
}

impl SolveStats {
    /// Returns the counters and resets them to zero.
    pub fn take(&mut self) -> SolveStats {
        std::mem::take(self)
    }
}

/// Per-solve outcome of [`solve_dc_with`]; the solution vector stays in
/// the workspace ([`SolveWorkspace::solution`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcSolveInfo {
    /// Newton iterations across all continuation stages.
    pub iterations: usize,
    /// Whether the solve was seeded from a caller-provided vector.
    pub warm_started: bool,
    /// The ladder rung that produced the converged solution.
    pub strategy: SolveStrategy,
}

/// Caller-owned storage for [`solve_dc_with`]: the Newton workspace plus
/// the solution and strategy-restart buffers.
///
/// Sized lazily to the largest system it has seen; steady-state solves
/// perform no heap allocation at all.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    pub(crate) newton: NewtonWorkspace,
    pub(crate) x: Vec<f64>,
    pub(crate) x0: Vec<f64>,
    /// Counters accumulated across every solve through this workspace.
    pub stats: SolveStats,
    /// Span capture for the solves driven through this workspace. Disabled
    /// by default (records nothing, reads no clock on the solver path);
    /// the campaign worker pool enables it when the run is traced.
    pub trace: TraceBuf,
}

impl SolveWorkspace {
    /// An empty workspace.
    #[must_use]
    pub fn new() -> Self {
        SolveWorkspace::default()
    }

    /// The solution vector left by the most recent successful
    /// [`solve_dc_with`] (node voltages then branch currents).
    #[must_use]
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    pub(crate) fn ensure(&mut self, n: usize) {
        if self.x.len() != n {
            self.x.resize(n, 0.0);
            self.x0.resize(n, 0.0);
        }
    }
}

/// Drains the assembly's per-solve stamp counters into the workspace
/// stats and returns the solve's bypass-hit count (for the solve span
/// payload).
pub(crate) fn drain_effort(ws: &mut SolveWorkspace, assembly: &CircuitAssembly) -> u64 {
    let effort = assembly.take_stamp_effort();
    ws.stats.device_evals += effort.device_evals;
    ws.stats.lane_evals += effort.lane_evals;
    ws.stats.device_reuses += effort.device_reuses;
    ws.stats.bypass_hits += effort.bypass_hits;
    ws.stats.restamp_incremental += effort.restamp_incremental;
    ws.stats.restamp_full += effort.restamp_full;
    effort.bypass_hits
}

/// Books a successful solve into the stats, closes the rung and solve
/// spans, and builds the info.
pub(crate) fn rung_succeeded(
    ws: &mut SolveWorkspace,
    assembly: &CircuitAssembly,
    strategy: SolveStrategy,
    iterations: usize,
    warm: bool,
    rung: SpanToken,
    solve: SpanToken,
) -> DcSolveInfo {
    let bypass = drain_effort(ws, assembly);
    ws.trace.span_end(rung);
    ws.trace.span_end_with(solve, iterations as u64, bypass);
    ws.stats.newton_iterations += iterations as u64;
    ws.stats.ladder_success[strategy.index()] += 1;
    DcSolveInfo {
        iterations,
        warm_started: warm,
        strategy,
    }
}

/// Books an exhausted ladder into the stats, closes the solve span, and
/// wraps the failure trace.
fn ladder_exhausted(
    ws: &mut SolveWorkspace,
    assembly: &CircuitAssembly,
    iterations: usize,
    failure: SolveFailure,
    solve: SpanToken,
) -> SpiceError {
    let bypass = drain_effort(ws, assembly);
    ws.trace.span_end_with(solve, iterations as u64, bypass);
    ws.stats.newton_iterations += iterations as u64;
    ws.stats.ladder_exhausted += 1;
    SpiceError::LadderExhausted(failure)
}

/// [`crate::solver::solve_dc`] with caller-owned invariants and scratch.
///
/// Runs the explicit escalation ladder ([`SolveStrategy`]): warm start
/// (when a seed is provided) → cold start → gmin stepping → source
/// stepping plus gmin relaxation. For the historical entry points the
/// arithmetic is unchanged — an unseeded solve starts at the cold rung
/// exactly as the old "strategy 1" did — the ladder only *adds* a cold
/// retry between a failed warm start and gmin stepping. The circuit is
/// *not* re-validated (build the [`CircuitAssembly`] through
/// [`CircuitAssembly::new`] to validate once), nothing is allocated in
/// steady state, and the solution is left in `ws` rather than moved into
/// an owned return value. Statistics accumulate in `ws.stats`, including
/// per-rung success counters; the failure trace is only materialized on
/// the failure path, so the hot path stays allocation-free.
///
/// `assembly` must describe `circuit`; pairing an assembly with a
/// different circuit of another shape is caught by the dimension checks,
/// same shape gives garbage answers — keep them together.
///
/// # Errors
///
/// [`SpiceError::LadderExhausted`] if every rung fails, carrying one
/// [`crate::ladder::RungAttempt`] per failed rung.
pub fn solve_dc_with(
    circuit: &Circuit,
    assembly: &CircuitAssembly,
    temperature: Kelvin,
    options: &DcOptions,
    initial: Option<&[f64]>,
    ws: &mut SolveWorkspace,
) -> Result<DcSolveInfo, SpiceError> {
    let eval = EvalContext {
        temperature,
        gmin: options.gmin_floor,
        source_scale: 1.0,
    };
    // Bound element parameters may have changed since the last solve
    // through this assembly; force one full restamp before going
    // incremental again.
    assembly.invalidate_constants();
    let bypass = BypassTolerance {
        active: options.bypass.enabled,
        v_abs: options.bypass.v_abs,
        v_rel: options.bypass.v_rel,
    };
    // Bypass is gated to the escalated rungs: warm solves re-evaluate so
    // rarely that the tolerance bookkeeping costs more than it saves
    // (measured on the campaign bench — see DESIGN.md §10), while cold and
    // ladder solves take tens of thousands of profitable hits. Accepted
    // bits are unchanged either way (the bypass on/off contract).
    let mut system = CircuitSystem::hot_path(circuit, eval, assembly, BypassTolerance::OFF);
    // The symbolic plan is armed by the first recording pass, so a fresh
    // assembly runs its first solve through dense LU and binds the frozen
    // factorization from the second solve on (bitwise identical results).
    match assembly.symbolic_plan() {
        Some(plan) if options.sparse => ws.newton.use_sparse_plan(&plan),
        _ => ws.newton.use_dense(),
    }
    let n = assembly.dimension();
    ws.ensure(n);
    let warm = matches!(initial, Some(x) if x.len() == n);
    match initial {
        Some(x) if x.len() == n => ws.x0.copy_from_slice(x),
        _ => ws.x0.fill(0.0),
    }
    ws.stats.solves += 1;
    if warm {
        ws.stats.warm_starts += 1;
    } else {
        ws.stats.cold_starts += 1;
    }

    let solve_span = ws.trace.span(SpanKind::DcSolve);
    let mut iterations = 0usize;
    let mut failure = SolveFailure::new();

    // Rung 1 — warm start: direct Newton from the caller's seed.
    if warm {
        let rung = ws
            .trace
            .span_labeled(SpanKind::Rung, SolveStrategy::WarmStart.label());
        ws.x.copy_from_slice(&ws.x0);
        match solve_newton_traced(
            &system,
            &mut ws.x,
            options.newton,
            &mut ws.newton,
            &mut ws.trace,
        ) {
            Ok(info) => {
                iterations += info.iterations;
                return Ok(rung_succeeded(
                    ws,
                    assembly,
                    SolveStrategy::WarmStart,
                    iterations,
                    warm,
                    rung,
                    solve_span,
                ));
            }
            Err(e) => {
                ws.trace.span_end(rung);
                failure.record(SolveStrategy::WarmStart, iterations, e.to_string());
            }
        }
    }

    // Rung 2 — cold start: direct Newton from all zeros. When no seed was
    // provided `x0` is already zeros, so this reproduces the historical
    // "strategy 1" arithmetic exactly. From here down the solve is cold or
    // escalated, where the tolerance bypass pays for itself — arm it.
    system.set_bypass(bypass);
    let rung = ws
        .trace
        .span_labeled(SpanKind::Rung, SolveStrategy::ColdStart.label());
    ws.x.fill(0.0);
    match solve_newton_traced(
        &system,
        &mut ws.x,
        options.newton,
        &mut ws.newton,
        &mut ws.trace,
    ) {
        Ok(info) => {
            iterations += info.iterations;
            return Ok(rung_succeeded(
                ws,
                assembly,
                SolveStrategy::ColdStart,
                iterations,
                warm,
                rung,
                solve_span,
            ));
        }
        Err(e) => {
            ws.trace.span_end(rung);
            failure.record(SolveStrategy::ColdStart, iterations, e.to_string());
        }
    }

    // Rung 3 — gmin stepping, seeded from the caller's start point as the
    // historical chain did.
    let rung = ws
        .trace
        .span_labeled(SpanKind::Rung, SolveStrategy::GminStepping.label());
    ws.x.copy_from_slice(&ws.x0);
    let mut ladder_ok = true;
    let mut gmin = options.gmin_start;
    while gmin >= options.gmin_floor.max(1e-14) {
        system.set_eval(EvalContext {
            temperature,
            gmin,
            source_scale: 1.0,
        });
        match solve_newton_traced(
            &system,
            &mut ws.x,
            options.newton,
            &mut ws.newton,
            &mut ws.trace,
        ) {
            Ok(info) => iterations += info.iterations,
            Err(e) => {
                failure.record(
                    SolveStrategy::GminStepping,
                    iterations,
                    format!("stalled at gmin {gmin:e}: {e}"),
                );
                ladder_ok = false;
                break;
            }
        }
        if gmin <= options.gmin_floor {
            break;
        }
        gmin = (gmin / 10.0).max(options.gmin_floor);
    }
    if ladder_ok {
        system.set_eval(EvalContext {
            temperature,
            gmin: options.gmin_floor,
            source_scale: 1.0,
        });
        match solve_newton_traced(
            &system,
            &mut ws.x,
            options.newton,
            &mut ws.newton,
            &mut ws.trace,
        ) {
            Ok(info) => {
                iterations += info.iterations;
                return Ok(rung_succeeded(
                    ws,
                    assembly,
                    SolveStrategy::GminStepping,
                    iterations,
                    warm,
                    rung,
                    solve_span,
                ));
            }
            Err(e) => failure.record(
                SolveStrategy::GminStepping,
                iterations,
                format!("final solve at the gmin floor: {e}"),
            ),
        }
    }
    ws.trace.span_end(rung);

    // Rung 4 — source stepping at a mid gmin, then relax gmin.
    let rung = ws
        .trace
        .span_labeled(SpanKind::Rung, SolveStrategy::SourceStepping.label());
    ws.x.copy_from_slice(&ws.x0);
    let steps = options.source_steps.max(2);
    for s in 1..=steps {
        let scale = s as f64 / steps as f64;
        system.set_eval(EvalContext {
            temperature,
            gmin: 1e-9,
            source_scale: scale,
        });
        match solve_newton_traced(
            &system,
            &mut ws.x,
            options.newton,
            &mut ws.newton,
            &mut ws.trace,
        ) {
            Ok(info) => iterations += info.iterations,
            Err(e) => {
                failure.record(
                    SolveStrategy::SourceStepping,
                    iterations,
                    format!("source stepping at scale {scale:.2}: {e}"),
                );
                ws.trace.span_end(rung);
                return Err(ladder_exhausted(
                    ws, assembly, iterations, failure, solve_span,
                ));
            }
        }
    }
    let mut gmin = 1e-9;
    loop {
        system.set_eval(EvalContext {
            temperature,
            gmin,
            source_scale: 1.0,
        });
        match solve_newton_traced(
            &system,
            &mut ws.x,
            options.newton,
            &mut ws.newton,
            &mut ws.trace,
        ) {
            Ok(info) => iterations += info.iterations,
            Err(e) => {
                failure.record(
                    SolveStrategy::SourceStepping,
                    iterations,
                    format!("gmin relaxation after source stepping: {e}"),
                );
                ws.trace.span_end(rung);
                return Err(ladder_exhausted(
                    ws, assembly, iterations, failure, solve_span,
                ));
            }
        }
        if gmin <= options.gmin_floor {
            break;
        }
        gmin = (gmin / 10.0).max(options.gmin_floor);
    }
    Ok(rung_succeeded(
        ws,
        assembly,
        SolveStrategy::SourceStepping,
        iterations,
        warm,
        rung,
        solve_span,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjt::{Bjt, BjtParams, Polarity};
    use crate::element::{CurrentSource, Resistor, VoltageSource};
    use crate::solver::solve_dc;
    use icvbe_units::{Ampere, Ohm, Volt};

    fn ptat_cell() -> Circuit {
        let mut c = Circuit::new();
        let va = c.node("va");
        let vb = c.node("vb");
        let gnd = Circuit::ground();
        c.add(CurrentSource::new("Ia", gnd, va, Ampere::new(1e-6)));
        c.add(CurrentSource::new("Ib", gnd, vb, Ampere::new(1e-6)));
        c.add(Bjt::new("QA", gnd, gnd, va, Polarity::Pnp, BjtParams::default_npn()).unwrap());
        c.add(
            Bjt::new("QB", gnd, gnd, vb, Polarity::Pnp, BjtParams::default_npn())
                .unwrap()
                .with_area(8.0)
                .unwrap(),
        );
        c
    }

    #[test]
    fn workspace_solve_matches_owned_solve_bitwise() {
        let c = ptat_cell();
        let t = Kelvin::new(298.15);
        let opts = DcOptions::default();
        let owned = solve_dc(&c, t, &opts, None).unwrap();

        let assembly = CircuitAssembly::new(&c).unwrap();
        let mut ws = SolveWorkspace::new();
        let info = solve_dc_with(&c, &assembly, t, &opts, None, &mut ws).unwrap();
        assert_eq!(owned.solution(), ws.solution());
        assert_eq!(owned.iterations, info.iterations);
        assert!(!info.warm_started);
    }

    #[test]
    fn workspace_reuse_across_temperatures_stays_consistent() {
        let c = ptat_cell();
        let opts = DcOptions::default();
        let assembly = CircuitAssembly::new(&c).unwrap();
        let mut ws = SolveWorkspace::new();
        for t in [248.15, 298.15, 348.15] {
            let t = Kelvin::new(t);
            let owned = solve_dc(&c, t, &opts, None).unwrap();
            solve_dc_with(&c, &assembly, t, &opts, None, &mut ws).unwrap();
            assert_eq!(owned.solution(), ws.solution(), "temperature {t:?}");
        }
        assert_eq!(ws.stats.solves, 3);
        assert_eq!(ws.stats.cold_starts, 3);
        assert_eq!(ws.stats.warm_starts, 0);
        assert!(ws.stats.newton_iterations > 0);
    }

    #[test]
    fn warm_start_is_counted_and_converges_fast() {
        let c = ptat_cell();
        let t = Kelvin::new(298.15);
        let opts = DcOptions::default();
        let assembly = CircuitAssembly::new(&c).unwrap();
        let mut ws = SolveWorkspace::new();
        let cold = solve_dc_with(&c, &assembly, t, &opts, None, &mut ws).unwrap();
        let seed: Vec<f64> = ws.solution().to_vec();
        let warm = solve_dc_with(&c, &assembly, t, &opts, Some(&seed), &mut ws).unwrap();
        assert!(warm.warm_started);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        assert_eq!(ws.stats.warm_starts, 1);
        assert_eq!(ws.stats.cold_starts, 1);
    }

    #[test]
    fn stats_take_resets_counters() {
        let mut stats = SolveStats {
            solves: 3,
            newton_iterations: 17,
            warm_starts: 1,
            cold_starts: 2,
            ladder_success: [1, 2, 0, 0],
            ladder_exhausted: 0,
            device_evals: 42,
            lane_evals: 7,
            device_reuses: 9,
            bypass_hits: 4,
            restamp_incremental: 11,
            restamp_full: 3,
            batched_solves: 0,
            lane_retires: 0,
        };
        let taken = stats.take();
        assert_eq!(taken.solves, 3);
        assert_eq!(taken.ladder_success[1], 2);
        assert_eq!(stats, SolveStats::default());
    }

    #[test]
    fn ladder_rung_is_reported_and_counted() {
        let c = ptat_cell();
        let t = Kelvin::new(298.15);
        let opts = DcOptions::default();
        let assembly = CircuitAssembly::new(&c).unwrap();
        let mut ws = SolveWorkspace::new();
        let cold = solve_dc_with(&c, &assembly, t, &opts, None, &mut ws).unwrap();
        assert_eq!(cold.strategy, SolveStrategy::ColdStart);
        let seed: Vec<f64> = ws.solution().to_vec();
        let warm = solve_dc_with(&c, &assembly, t, &opts, Some(&seed), &mut ws).unwrap();
        assert_eq!(warm.strategy, SolveStrategy::WarmStart);
        assert_eq!(ws.stats.ladder_success, [1, 1, 0, 0]);
        assert_eq!(ws.stats.ladder_exhausted, 0);
    }

    #[test]
    fn exhausted_ladder_carries_a_full_strategy_trace() {
        // A degenerate bias far beyond anything the BJT model can sink
        // forces every rung to fail.
        let mut c = Circuit::new();
        let b = c.node("vbe");
        c.add(CurrentSource::new(
            "Ibias",
            Circuit::ground(),
            b,
            Ampere::new(1e30),
        ));
        c.add(
            Bjt::new(
                "Q1",
                b,
                b,
                Circuit::ground(),
                Polarity::Npn,
                BjtParams::default_npn(),
            )
            .unwrap(),
        );
        let assembly = CircuitAssembly::new(&c).unwrap();
        let mut opts = DcOptions::default();
        opts.newton.max_iterations = 20;
        opts.source_steps = 2;
        let mut ws = SolveWorkspace::new();
        let err =
            solve_dc_with(&c, &assembly, Kelvin::new(298.15), &opts, None, &mut ws).unwrap_err();
        match err {
            SpiceError::LadderExhausted(failure) => {
                let tried: Vec<SolveStrategy> = failure.trace.iter().map(|a| a.strategy).collect();
                assert!(tried.contains(&SolveStrategy::ColdStart), "{tried:?}");
                assert!(tried.contains(&SolveStrategy::SourceStepping), "{tried:?}");
                // No seed was provided, so the warm rung must not appear.
                assert!(!tried.contains(&SolveStrategy::WarmStart), "{tried:?}");
            }
            other => panic!("expected LadderExhausted, got {other:?}"),
        }
        assert_eq!(ws.stats.ladder_exhausted, 1);
    }

    #[test]
    fn linear_circuit_through_workspace_matches_exact_solution() {
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(2.0),
        ));
        c.add(Resistor::new("R1", vcc, out, Ohm::new(1e3)).unwrap());
        c.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(3e3)).unwrap());
        let assembly = CircuitAssembly::new(&c).unwrap();
        let mut ws = SolveWorkspace::new();
        solve_dc_with(
            &c,
            &assembly,
            Kelvin::new(300.0),
            &DcOptions::default(),
            None,
            &mut ws,
        )
        .unwrap();
        assert!((ws.solution()[1] - 1.5).abs() < 1e-6);
    }
}
