//! DC analyses built on the operating-point solver: parameter sweeps and
//! temperature sweeps with warm starting.

use icvbe_units::Kelvin;

use crate::netlist::Circuit;
use crate::param::Param;
use crate::solver::{solve_dc, DcOptions, OperatingPoint};
use crate::SpiceError;

/// Sweeps a [`Param`]-bound source or component value over `values`,
/// solving the DC point at each step with the previous solution as the
/// warm start.
///
/// Returns one operating point per value, in order.
///
/// # Errors
///
/// Propagates the first solver failure, restoring the parameter to its
/// original value either way.
///
/// # Examples
///
/// ```
/// use icvbe_spice::element::{Resistor, VoltageSource};
/// use icvbe_spice::netlist::Circuit;
/// use icvbe_spice::param::Param;
/// use icvbe_spice::solver::DcOptions;
/// use icvbe_spice::sweep::dc_sweep;
/// use icvbe_units::{Kelvin, Ohm, Volt};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let vin = Param::new(0.0);
/// ckt.add(VoltageSource::new("V1", a, Circuit::ground(), Volt::new(0.0)).with_handle(vin.clone()));
/// ckt.add(Resistor::new("R1", a, Circuit::ground(), Ohm::new(1e3))?);
/// let pts = dc_sweep(&ckt, &vin, &[0.0, 1.0, 2.0], Kelvin::new(300.0), &DcOptions::default())?;
/// assert_eq!(pts.len(), 3);
/// assert!((pts[2].voltage(a).value() - 2.0).abs() < 1e-9);
/// # Ok::<(), icvbe_spice::SpiceError>(())
/// ```
pub fn dc_sweep(
    circuit: &Circuit,
    param: &Param,
    values: &[f64],
    temperature: Kelvin,
    options: &DcOptions,
) -> Result<Vec<OperatingPoint>, SpiceError> {
    let original = param.get();
    let mut out = Vec::with_capacity(values.len());
    let mut warm: Option<Vec<f64>> = None;
    for &v in values {
        param.set(v);
        let solved = solve_dc(circuit, temperature, options, warm.as_deref());
        match solved {
            Ok(op) => {
                warm = Some(op.solution().to_vec());
                out.push(op);
            }
            Err(e) => {
                param.set(original);
                return Err(e);
            }
        }
    }
    param.set(original);
    Ok(out)
}

/// Solves the circuit across a list of temperatures, warm-starting each
/// point from the previous one.
///
/// # Errors
///
/// Propagates the first solver failure, labelled with the temperature.
pub fn temperature_sweep(
    circuit: &Circuit,
    temperatures: &[Kelvin],
    options: &DcOptions,
) -> Result<Vec<OperatingPoint>, SpiceError> {
    let mut out = Vec::with_capacity(temperatures.len());
    let mut warm: Option<Vec<f64>> = None;
    for &t in temperatures {
        let solved = solve_dc(circuit, t, options, warm.as_deref());
        match solved {
            Ok(op) => {
                warm = Some(op.solution().to_vec());
                out.push(op);
            }
            Err(e) => {
                return Err(SpiceError::NoConvergence {
                    strategy: format!("temperature sweep at {t}: {e}"),
                    residual: f64::NAN,
                });
            }
        }
    }
    Ok(out)
}

/// Builds an inclusive linear grid of `n` temperatures between `lo` and
/// `hi` (single point if `n == 1`).
#[must_use]
pub fn temperature_grid(lo: Kelvin, hi: Kelvin, n: usize) -> Vec<Kelvin> {
    if n <= 1 {
        return vec![lo];
    }
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            Kelvin::new(lo.value() + f * (hi.value() - lo.value()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjt::{Bjt, BjtParams, Polarity};
    use crate::element::{CurrentSource, Resistor};
    use crate::netlist::Circuit;
    use icvbe_units::{Ampere, Ohm};

    #[test]
    fn temperature_grid_endpoints() {
        let g = temperature_grid(Kelvin::new(223.15), Kelvin::new(398.15), 8);
        assert_eq!(g.len(), 8);
        assert!((g[0].value() - 223.15).abs() < 1e-12);
        assert!((g[7].value() - 398.15).abs() < 1e-12);
    }

    #[test]
    fn temperature_grid_single_point() {
        let g = temperature_grid(Kelvin::new(300.0), Kelvin::new(400.0), 1);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].value(), 300.0);
    }

    #[test]
    fn sweep_restores_param_value() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let p = Param::new(1e-6);
        c.add(
            CurrentSource::new("I1", Circuit::ground(), a, Ampere::new(0.0)).with_handle(p.clone()),
        );
        c.add(Resistor::new("R1", a, Circuit::ground(), Ohm::new(1e3)).unwrap());
        let _ = dc_sweep(
            &c,
            &p,
            &[1e-6, 2e-6, 3e-6],
            Kelvin::new(300.0),
            &DcOptions::default(),
        )
        .unwrap();
        assert_eq!(p.get(), 1e-6);
    }

    #[test]
    fn vbe_falls_with_temperature_in_sweep() {
        // A diode-connected PNP under constant current: VEB must fall with
        // temperature at roughly -2 mV/K.
        let mut c = Circuit::new();
        let e = c.node("e");
        let gnd = Circuit::ground();
        c.add(CurrentSource::new("Ibias", gnd, e, Ampere::new(1e-6)));
        c.add(Bjt::new("Q1", gnd, gnd, e, Polarity::Pnp, BjtParams::default_npn()).unwrap());
        let temps = temperature_grid(Kelvin::new(248.15), Kelvin::new(348.15), 5);
        let pts = temperature_sweep(&c, &temps, &DcOptions::default()).unwrap();
        let vs: Vec<f64> = pts.iter().map(|p| p.voltage(e).value()).collect();
        for w in vs.windows(2) {
            assert!(w[1] < w[0], "VEB not falling: {vs:?}");
        }
        let slope = (vs[4] - vs[0]) / 100.0;
        assert!(slope < -1.2e-3 && slope > -3e-3, "slope {slope}");
    }
}
