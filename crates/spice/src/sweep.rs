//! DC analyses built on the operating-point solver: parameter sweeps,
//! temperature sweeps with warm starting, and multi-RHS small-signal
//! solves against a single Jacobian factorization.
//!
//! All sweep points share one [`CircuitAssembly`] and one
//! [`SolveWorkspace`], so the frozen symbolic factorization, the
//! incremental restamping plan, and the device caches survive from point
//! to point exactly as they do inside a campaign die. The solve path is
//! a pure speed knob: results are bitwise identical whether the sparse
//! plan or the dense fallback ran, and whether device bypass was on.

use icvbe_numerics::lu::LuFactors;
use icvbe_numerics::newton::NonlinearSystem;
use icvbe_numerics::Matrix;
use icvbe_units::Kelvin;

use crate::netlist::Circuit;
use crate::param::Param;
use crate::solver::{DcOptions, OperatingPoint};
use crate::stamp::EvalContext;
use crate::system::{CircuitAssembly, CircuitSystem};
use crate::workspace::{solve_dc_with, SolveWorkspace};
use crate::SpiceError;

/// Sweeps a [`Param`]-bound source or component value over `values`,
/// solving the DC point at each step with the previous solution as the
/// warm start.
///
/// The circuit is compiled once; every step reuses the same assembly and
/// workspace, so steps after the first restamp incrementally and solve
/// through the frozen sparse plan.
///
/// Returns one operating point per value, in order.
///
/// # Errors
///
/// Propagates the first solver failure, restoring the parameter to its
/// original value either way.
///
/// # Examples
///
/// ```
/// use icvbe_spice::element::{Resistor, VoltageSource};
/// use icvbe_spice::netlist::Circuit;
/// use icvbe_spice::param::Param;
/// use icvbe_spice::solver::DcOptions;
/// use icvbe_spice::sweep::dc_sweep;
/// use icvbe_units::{Kelvin, Ohm, Volt};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let vin = Param::new(0.0);
/// ckt.add(VoltageSource::new("V1", a, Circuit::ground(), Volt::new(0.0)).with_handle(vin.clone()));
/// ckt.add(Resistor::new("R1", a, Circuit::ground(), Ohm::new(1e3))?);
/// let pts = dc_sweep(&ckt, &vin, &[0.0, 1.0, 2.0], Kelvin::new(300.0), &DcOptions::default())?;
/// assert_eq!(pts.len(), 3);
/// assert!((pts[2].voltage(a).value() - 2.0).abs() < 1e-9);
/// # Ok::<(), icvbe_spice::SpiceError>(())
/// ```
pub fn dc_sweep(
    circuit: &Circuit,
    param: &Param,
    values: &[f64],
    temperature: Kelvin,
    options: &DcOptions,
) -> Result<Vec<OperatingPoint>, SpiceError> {
    let original = param.get();
    let assembly = CircuitAssembly::new(circuit)?;
    let mut ws = SolveWorkspace::new();
    let mut out = Vec::with_capacity(values.len());
    let mut warm: Option<Vec<f64>> = None;
    for &v in values {
        param.set(v);
        match solve_dc_with(
            circuit,
            &assembly,
            temperature,
            options,
            warm.as_deref(),
            &mut ws,
        ) {
            Ok(info) => {
                let x = ws.solution().to_vec();
                warm = Some(x.clone());
                out.push(OperatingPoint::from_parts(
                    x,
                    &assembly,
                    temperature,
                    info.iterations,
                ));
            }
            Err(e) => {
                param.set(original);
                return Err(e);
            }
        }
    }
    param.set(original);
    Ok(out)
}

/// Solves the circuit across a list of temperatures, warm-starting each
/// point from the previous one through a single compiled assembly.
///
/// # Errors
///
/// Propagates the first solver failure, labelled with the temperature.
pub fn temperature_sweep(
    circuit: &Circuit,
    temperatures: &[Kelvin],
    options: &DcOptions,
) -> Result<Vec<OperatingPoint>, SpiceError> {
    let assembly = CircuitAssembly::new(circuit)?;
    let mut ws = SolveWorkspace::new();
    let mut out = Vec::with_capacity(temperatures.len());
    let mut warm: Option<Vec<f64>> = None;
    for &t in temperatures {
        match solve_dc_with(circuit, &assembly, t, options, warm.as_deref(), &mut ws) {
            Ok(info) => {
                let x = ws.solution().to_vec();
                warm = Some(x.clone());
                out.push(OperatingPoint::from_parts(x, &assembly, t, info.iterations));
            }
            Err(e) => {
                return Err(SpiceError::NoConvergence {
                    strategy: format!("temperature sweep at {t}: {e}"),
                    residual: f64::NAN,
                });
            }
        }
    }
    Ok(out)
}

/// Builds an inclusive linear grid of `n` temperatures between `lo` and
/// `hi` (single point if `n == 1`).
#[must_use]
pub fn temperature_grid(lo: Kelvin, hi: Kelvin, n: usize) -> Vec<Kelvin> {
    if n <= 1 {
        return vec![lo];
    }
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            Kelvin::new(lo.value() + f * (hi.value() - lo.value()))
        })
        .collect()
}

/// Solves the linearized (small-signal) system at a solved operating
/// point for many right-hand sides against **one** Jacobian
/// factorization.
///
/// `rhs` holds `k` stacked excitation vectors, each of length
/// `assembly.dimension()` (node-current injections followed by branch
/// voltage excitations, in MNA unknown order); `out` receives the `k`
/// response vectors in the same layout. The MNA Jacobian is evaluated
/// once at `op`, LU-factored once, and every column is a
/// back-substitution — the classic AC/sensitivity pattern where
/// factoring dominates and extra right-hand sides are nearly free.
///
/// # Errors
///
/// - [`SpiceError::Numerics`] if the Jacobian is singular at `op` or the
///   `rhs`/`out` lengths are not matching multiples of the dimension.
pub fn small_signal_solve(
    circuit: &Circuit,
    assembly: &CircuitAssembly,
    op: &OperatingPoint,
    options: &DcOptions,
    rhs: &[f64],
    out: &mut [f64],
) -> Result<(), SpiceError> {
    let eval = EvalContext {
        temperature: op.temperature(),
        gmin: options.gmin_floor,
        source_scale: 1.0,
    };
    let system = CircuitSystem::with_assembly(circuit, eval, assembly);
    let n = assembly.dimension();
    let mut jac = Matrix::zeros(n, n);
    system.jacobian(op.solution(), &mut jac)?;
    let mut lu = LuFactors::new();
    lu.factor_from(&jac)?;
    lu.solve_many_into(rhs, out)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bjt::{Bjt, BjtParams, Polarity};
    use crate::element::{CurrentSource, Resistor};
    use crate::netlist::Circuit;
    use crate::solver::{solve_dc, BypassOptions};
    use icvbe_units::{Ampere, Ohm};

    #[test]
    fn temperature_grid_endpoints() {
        let g = temperature_grid(Kelvin::new(223.15), Kelvin::new(398.15), 8);
        assert_eq!(g.len(), 8);
        assert!((g[0].value() - 223.15).abs() < 1e-12);
        assert!((g[7].value() - 398.15).abs() < 1e-12);
    }

    #[test]
    fn temperature_grid_single_point() {
        let g = temperature_grid(Kelvin::new(300.0), Kelvin::new(400.0), 1);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].value(), 300.0);
    }

    #[test]
    fn sweep_restores_param_value() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let p = Param::new(1e-6);
        c.add(
            CurrentSource::new("I1", Circuit::ground(), a, Ampere::new(0.0)).with_handle(p.clone()),
        );
        c.add(Resistor::new("R1", a, Circuit::ground(), Ohm::new(1e3)).unwrap());
        let _ = dc_sweep(
            &c,
            &p,
            &[1e-6, 2e-6, 3e-6],
            Kelvin::new(300.0),
            &DcOptions::default(),
        )
        .unwrap();
        assert_eq!(p.get(), 1e-6);
    }

    #[test]
    fn vbe_falls_with_temperature_in_sweep() {
        // A diode-connected PNP under constant current: VEB must fall with
        // temperature at roughly -2 mV/K.
        let mut c = Circuit::new();
        let e = c.node("e");
        let gnd = Circuit::ground();
        c.add(CurrentSource::new("Ibias", gnd, e, Ampere::new(1e-6)));
        c.add(Bjt::new("Q1", gnd, gnd, e, Polarity::Pnp, BjtParams::default_npn()).unwrap());
        let temps = temperature_grid(Kelvin::new(248.15), Kelvin::new(348.15), 5);
        let pts = temperature_sweep(&c, &temps, &DcOptions::default()).unwrap();
        let vs: Vec<f64> = pts.iter().map(|p| p.voltage(e).value()).collect();
        for w in vs.windows(2) {
            assert!(w[1] < w[0], "VEB not falling: {vs:?}");
        }
        let slope = (vs[4] - vs[0]) / 100.0;
        assert!(slope < -1.2e-3 && slope > -3e-3, "slope {slope}");
    }

    /// The PNP test structure used by every bit-identity test below.
    fn pnp_under_bias() -> (Circuit, crate::netlist::NodeId) {
        let mut c = Circuit::new();
        let e = c.node("e");
        let gnd = Circuit::ground();
        c.add(CurrentSource::new("Ibias", gnd, e, Ampere::new(1e-6)));
        c.add(Bjt::new("Q1", gnd, gnd, e, Polarity::Pnp, BjtParams::default_npn()).unwrap());
        (c, e)
    }

    #[test]
    fn sweep_results_follow_setpoint_order() {
        // Each returned point belongs to its setpoint, regardless of the
        // direction the sweep walked the axis.
        let mut c = Circuit::new();
        let a = c.node("a");
        let p = Param::new(1e-6);
        c.add(
            CurrentSource::new("I1", Circuit::ground(), a, Ampere::new(0.0)).with_handle(p.clone()),
        );
        c.add(Resistor::new("R1", a, Circuit::ground(), Ohm::new(1e3)).unwrap());
        let up = dc_sweep(
            &c,
            &p,
            &[1e-6, 2e-6, 3e-6],
            Kelvin::new(300.0),
            &DcOptions::default(),
        )
        .unwrap();
        let down = dc_sweep(
            &c,
            &p,
            &[3e-6, 2e-6, 1e-6],
            Kelvin::new(300.0),
            &DcOptions::default(),
        )
        .unwrap();
        for (i, (u, d)) in up.iter().zip(down.iter().rev()).enumerate() {
            let vu = u.voltage(a).value();
            let vd = d.voltage(a).value();
            assert!((vu - (i + 1) as f64 * 1e-3).abs() < 1e-9, "point {i}: {vu}");
            assert!((vu - vd).abs() < 1e-9, "order-dependent point {i}");
        }
    }

    #[test]
    fn single_point_sweep_matches_standalone_solve_bitwise() {
        // A one-value sweep takes the same dense first-solve path as
        // `solve_dc` on a fresh assembly: the answer must be bit-equal.
        let (c, e) = pnp_under_bias();
        let t = Kelvin::new(300.0);
        let opts = DcOptions::default();
        let swept = temperature_sweep(&c, &[t], &opts).unwrap();
        let standalone = solve_dc(&c, t, &opts, None).unwrap();
        assert_eq!(swept.len(), 1);
        assert_eq!(
            swept[0].voltage(e).value().to_bits(),
            standalone.voltage(e).value().to_bits()
        );
        assert_eq!(swept[0].solution(), standalone.solution());
    }

    #[test]
    fn sparse_and_dense_paths_are_bit_identical() {
        // The frozen symbolic plan kicks in from the second point of the
        // sparse sweep; every point must still match the dense fallback
        // bit for bit.
        let (c, _) = pnp_under_bias();
        let temps = temperature_grid(Kelvin::new(248.15), Kelvin::new(348.15), 7);
        let sparse = DcOptions {
            sparse: true,
            ..DcOptions::default()
        };
        let dense = DcOptions {
            sparse: false,
            ..DcOptions::default()
        };
        let a = temperature_sweep(&c, &temps, &sparse).unwrap();
        let b = temperature_sweep(&c, &temps, &dense).unwrap();
        for (i, (pa, pb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(pa.solution(), pb.solution(), "point {i} diverged");
        }
    }

    #[test]
    fn bypass_on_and_off_are_bit_identical() {
        // Device bypass is suspended while a candidate solution is
        // verified, so accepted operating points carry no bypass error:
        // bitwise equality, not approximate agreement.
        let (c, _) = pnp_under_bias();
        let temps = temperature_grid(Kelvin::new(248.15), Kelvin::new(348.15), 7);
        let with_bypass = DcOptions {
            bypass: BypassOptions::active(),
            ..DcOptions::default()
        };
        let a = temperature_sweep(&c, &temps, &with_bypass).unwrap();
        let b = temperature_sweep(&c, &temps, &DcOptions::default()).unwrap();
        for (i, (pa, pb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(pa.solution(), pb.solution(), "point {i} diverged");
        }
    }

    #[test]
    fn small_signal_scales_linearly_across_rhs_columns() {
        // One resistor to ground: the Jacobian is the 1x1 conductance
        // matrix, so unit current injections map to R-scaled voltages and
        // stacked right-hand sides solve column by column.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add(CurrentSource::new(
            "I1",
            Circuit::ground(),
            a,
            Ampere::new(1e-6),
        ));
        c.add(Resistor::new("R1", a, Circuit::ground(), Ohm::new(1e3)).unwrap());
        let opts = DcOptions::default();
        let op = solve_dc(&c, Kelvin::new(300.0), &opts, None).unwrap();
        let assembly = CircuitAssembly::new(&c).unwrap();
        assert_eq!(assembly.dimension(), 1);
        let rhs = [1e-6, 2e-6, -4e-6];
        let mut out = [0.0; 3];
        small_signal_solve(&c, &assembly, &op, &opts, &rhs, &mut out).unwrap();
        assert!((out[0] - 1e-3).abs() < 1e-9, "unit response {}", out[0]);
        assert_eq!((2.0 * out[0]).to_bits(), out[1].to_bits());
        assert_eq!((-4.0 * out[0]).to_bits(), out[2].to_bits());
    }
}
