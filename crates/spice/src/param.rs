//! Shared, mutable scalar parameters for sweepable sources and resistors.
//!
//! Elements are stored behind `Arc<dyn Element>` and are immutable once in
//! the netlist; a [`Param`] is an atomically-shared `f64` cell that lets an
//! analysis (DC transfer sweep, trim search) change a source value or a
//! resistance without rebuilding the circuit.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared mutable `f64`, readable from element stamps and writable from
/// analyses.
///
/// # Examples
///
/// ```
/// use icvbe_spice::param::Param;
///
/// let p = Param::new(1.5);
/// let alias = p.clone();
/// alias.set(2.5);
/// assert_eq!(p.get(), 2.5);
/// ```
#[derive(Clone, Default)]
pub struct Param {
    bits: Arc<AtomicU64>,
}

impl Param {
    /// Creates a parameter with an initial value.
    #[must_use]
    pub fn new(value: f64) -> Self {
        Param {
            bits: Arc::new(AtomicU64::new(value.to_bits())),
        }
    }

    /// Reads the current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Writes a new value, visible to all clones.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Param({})", self.get())
    }
}

impl From<f64> for Param {
    fn from(v: f64) -> Self {
        Param::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Param::new(0.0);
        let b = a.clone();
        a.set(42.0);
        assert_eq!(b.get(), 42.0);
        b.set(-1.5);
        assert_eq!(a.get(), -1.5);
    }

    #[test]
    fn from_f64() {
        let p: Param = 3.25.into();
        assert_eq!(p.get(), 3.25);
    }

    #[test]
    fn debug_shows_value() {
        assert_eq!(format!("{:?}", Param::new(1.0)), "Param(1)");
    }

    #[test]
    fn nan_round_trips() {
        let p = Param::new(f64::NAN);
        assert!(p.get().is_nan());
    }
}
