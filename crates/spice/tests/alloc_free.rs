//! Enforces the workspace contract with a counting allocator: once a
//! [`SolveWorkspace`] has been sized by a first solve, further solves of
//! the same system — cold- or warm-started, with polish enabled — perform
//! **zero** heap allocations. This pins the "allocation-free hot path"
//! property the campaign engine's throughput rests on; a stray `Vec` or
//! `format!` sneaking into the Newton inner loop fails this test rather
//! than quietly costing a malloc per iteration.
//!
//! The test lives in its own integration-test binary so the global
//! allocator hook cannot interfere with (or be confused by) allocations
//! from unrelated tests. Counting is gated on a thread-local flag, so the
//! test harness's own threads never pollute the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use icvbe_spice::bjt::{Bjt, BjtParams, Polarity};
use icvbe_spice::element::{CurrentSource, Resistor};
use icvbe_spice::netlist::Circuit;
use icvbe_spice::solver::{BypassOptions, DcOptions};
use icvbe_spice::system::CircuitAssembly;
use icvbe_spice::workspace::{solve_dc_with, SolveWorkspace};
use icvbe_units::{Ampere, Kelvin, Ohm};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting_enabled() -> bool {
    // `try_with` so the allocator stays safe during TLS teardown.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting_enabled() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting_enabled() {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation counting enabled on this thread and returns
/// `(allocations, reallocations)` attributed to it.
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let r0 = REALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    let out = f();
    COUNTING.with(|c| c.set(false));
    (
        ALLOCS.load(Ordering::Relaxed) - a0,
        REALLOCS.load(Ordering::Relaxed) - r0,
        out,
    )
}

/// A bandgap-flavoured nonlinear cell: two mismatched diode-connected
/// PNPs plus a resistor, so the solve exercises the exponential device
/// path, damping, and (with polish on) the fixed-point canonicalization.
fn test_cell() -> Circuit {
    let mut c = Circuit::new();
    let va = c.node("va");
    let vb = c.node("vb");
    let gnd = Circuit::ground();
    c.add(CurrentSource::new("Ia", gnd, va, Ampere::new(1e-6)));
    c.add(CurrentSource::new("Ib", gnd, vb, Ampere::new(1e-6)));
    c.add(Resistor::new("Rab", va, vb, Ohm::new(50e3)).unwrap());
    c.add(Bjt::new("QA", gnd, gnd, va, Polarity::Pnp, BjtParams::default_npn()).unwrap());
    c.add(
        Bjt::new("QB", gnd, gnd, vb, Polarity::Pnp, BjtParams::default_npn())
            .unwrap()
            .with_area(8.0)
            .unwrap(),
    );
    c
}

#[test]
fn steady_state_solves_do_not_allocate() {
    let circuit = test_cell();
    let assembly = CircuitAssembly::new(&circuit).unwrap();
    let mut opts = DcOptions::default();
    // The campaign runs with polish enabled; cover its cluster-walk
    // buffers too.
    opts.newton.polish = true;
    let mut ws = SolveWorkspace::new();

    // Warm-up: the first solve sizes every workspace buffer (Newton
    // scratch, Jacobian, LU storage, polish cluster), records the stamp
    // plan, and arms the symbolic factorization; the second binds the
    // frozen sparse plan and sizes its factor storage. After that the
    // sparse path owns all of its memory.
    let t0 = Kelvin::new(298.15);
    solve_dc_with(&circuit, &assembly, t0, &opts, None, &mut ws).unwrap();
    let seed: Vec<f64> = ws.solution().to_vec();
    solve_dc_with(&circuit, &assembly, t0, &opts, Some(&seed), &mut ws).unwrap();

    // Steady state: cold starts, warm starts, and temperature changes of
    // the same system must all run entirely out of the workspace.
    let temperatures = [248.15, 273.15, 298.15, 323.15, 348.15];
    let (allocs, reallocs, iterations) = count_allocations(|| {
        let mut iterations = 0usize;
        for &t in &temperatures {
            let t = Kelvin::new(t);
            let cold = solve_dc_with(&circuit, &assembly, t, &opts, None, &mut ws).unwrap();
            let warm = solve_dc_with(&circuit, &assembly, t, &opts, Some(&seed), &mut ws).unwrap();
            assert!(warm.warm_started);
            iterations += cold.iterations + warm.iterations;
        }
        iterations
    });

    assert!(iterations > 0, "solves must do real Newton work");
    assert_eq!(
        allocs, 0,
        "steady-state solves allocated {allocs} time(s) ({iterations} Newton iterations)"
    );
    assert_eq!(
        reallocs, 0,
        "steady-state solves reallocated {reallocs} time(s)"
    );
}

#[test]
fn steady_state_bypassed_solves_do_not_allocate() {
    // Same contract with the device-evaluation bypass switched on: the
    // tolerance cache, exact-mode re-verification, and incremental
    // restamping all draw from storage sized during warm-up.
    let circuit = test_cell();
    let assembly = CircuitAssembly::new(&circuit).unwrap();
    let mut opts = DcOptions::default();
    opts.newton.polish = true;
    opts.bypass = BypassOptions::active();
    let mut ws = SolveWorkspace::new();

    let t0 = Kelvin::new(298.15);
    solve_dc_with(&circuit, &assembly, t0, &opts, None, &mut ws).unwrap();
    let seed: Vec<f64> = ws.solution().to_vec();
    solve_dc_with(&circuit, &assembly, t0, &opts, Some(&seed), &mut ws).unwrap();
    ws.stats.take();

    let (allocs, reallocs, ()) = count_allocations(|| {
        for &t in &[260.15, 298.15, 335.15] {
            let t = Kelvin::new(t);
            solve_dc_with(&circuit, &assembly, t, &opts, None, &mut ws).unwrap();
            solve_dc_with(&circuit, &assembly, t, &opts, Some(&seed), &mut ws).unwrap();
        }
    });
    assert_eq!(allocs, 0, "bypassed solves allocated {allocs} time(s)");
    assert_eq!(
        reallocs, 0,
        "bypassed solves reallocated {reallocs} time(s)"
    );
    // The measured region must actually have taken the fast paths.
    let stats = ws.stats.take();
    assert!(stats.restamp_incremental > 0, "{stats:?}");
    assert!(stats.device_reuses > 0, "{stats:?}");
}

#[test]
fn steady_state_batched_solves_do_not_allocate() {
    // The lane-parallel driver extends the same contract: once each
    // lane's workspace has armed its frozen sparse plan and the shared
    // BatchWorkspace has been sized by a first batched call, lockstep
    // solves run entirely out of the lane-strided buffers.
    use icvbe_spice::batch::{solve_dc_batch, BatchWorkspace, LaneCtx, LaneOutcome};

    const LANES: usize = 4;
    let circuits: [Circuit; LANES] = std::array::from_fn(|_| test_cell());
    let assemblies: [CircuitAssembly; LANES] =
        std::array::from_fn(|l| CircuitAssembly::new(&circuits[l]).unwrap());
    let mut opts = DcOptions::default();
    opts.newton.polish = true;
    let mut workspaces: [SolveWorkspace; LANES] = std::array::from_fn(|_| SolveWorkspace::new());

    // Scalar warm-up per lane: size the buffers, record the stamp plan,
    // arm and bind the frozen symbolic factorization, produce a warm seed.
    let t0 = Kelvin::new(298.15);
    let mut seeds: Vec<Vec<f64>> = Vec::new();
    for ((c, a), ws) in circuits.iter().zip(&assemblies).zip(workspaces.iter_mut()) {
        solve_dc_with(c, a, t0, &opts, None, ws).unwrap();
        let seed: Vec<f64> = ws.solution().to_vec();
        solve_dc_with(c, a, t0, &opts, Some(&seed), ws).unwrap();
        seeds.push(seed);
    }

    // Batched warm-up: the first lockstep call sizes the lane-strided
    // state and factor storage.
    let mut batch = BatchWorkspace::new();
    {
        let ctx: [LaneCtx<'_>; LANES] = std::array::from_fn(|l| LaneCtx {
            circuit: &circuits[l],
            assembly: &assemblies[l],
            temperature: t0,
            seed: &seeds[l],
        });
        let mut ws_refs = workspaces.each_mut();
        let mut outcomes = [LaneOutcome::Retired; LANES];
        let entered = solve_dc_batch(&ctx, &opts, &mut ws_refs, &mut batch, &mut outcomes);
        assert_eq!(entered, LANES, "warm-up batch must carry every lane");
    }

    // Steady state: lockstep rounds at changing temperatures must not
    // touch the heap.
    let (allocs, reallocs, entered_total) = count_allocations(|| {
        let mut total = 0usize;
        for &t in &[260.15, 298.15, 335.15] {
            let ctx: [LaneCtx<'_>; LANES] = std::array::from_fn(|l| LaneCtx {
                circuit: &circuits[l],
                assembly: &assemblies[l],
                temperature: Kelvin::new(t),
                seed: &seeds[l],
            });
            let mut ws_refs = workspaces.each_mut();
            let mut outcomes = [LaneOutcome::Retired; LANES];
            total += solve_dc_batch(&ctx, &opts, &mut ws_refs, &mut batch, &mut outcomes);
            assert!(
                outcomes.iter().all(|o| matches!(o, LaneOutcome::Solved(_))),
                "every lane must converge in lockstep"
            );
        }
        total
    });
    assert_eq!(
        entered_total,
        3 * LANES,
        "every lane must enter every round"
    );
    assert_eq!(
        allocs, 0,
        "steady-state batched solves allocated {allocs} time(s)"
    );
    assert_eq!(
        reallocs, 0,
        "steady-state batched solves reallocated {reallocs} time(s)"
    );
}

/// A small contaminated line-fit model: enough residuals to exercise the
/// IRLS weight loop, MAD scale estimation and the weighted LM pass.
struct LineModel {
    x: Vec<f64>,
    y: Vec<f64>,
}

impl icvbe_numerics::lm::ResidualModel for LineModel {
    fn residual_count(&self) -> usize {
        self.x.len()
    }

    fn parameter_count(&self) -> usize {
        2
    }

    fn residuals(&self, p: &[f64], out: &mut [f64]) -> Result<(), icvbe_numerics::NumericsError> {
        for ((o, &x), &y) in out.iter_mut().zip(&self.x).zip(&self.y) {
            *o = p[0] + p[1] * x - y;
        }
        Ok(())
    }
}

#[test]
fn steady_state_robust_fits_do_not_allocate() {
    use icvbe_numerics::robust::{fit_robust_with, RobustOptions, RobustWorkspace};

    // y = 2 + 3x with two gross outliers the Huber loss must down-weight.
    let x: Vec<f64> = (0..24).map(|i| i as f64 * 0.25).collect();
    let mut y: Vec<f64> = x.iter().map(|&x| 2.0 + 3.0 * x).collect();
    y[5] += 40.0;
    y[17] -= 25.0;
    let model = LineModel { x, y };
    let options = RobustOptions::default();
    let mut ws = RobustWorkspace::default();

    // Warm-up sizes every IRLS/LM buffer for this residual count.
    let mut p = [0.0, 0.0];
    fit_robust_with(&model, &mut p, &options, &mut ws).unwrap();

    // Steady state: repeated robust fits from different starting points
    // must run entirely out of the sized workspace.
    let (allocs, reallocs, rounds) = count_allocations(|| {
        let mut rounds = 0usize;
        for start in [[0.0, 0.0], [5.0, -1.0], [1.9, 3.2]] {
            let mut p = start;
            let fit = fit_robust_with(&model, &mut p, &options, &mut ws).unwrap();
            rounds += fit.rounds;
            assert!((p[0] - 2.0).abs() < 0.1 && (p[1] - 3.0).abs() < 0.1);
        }
        rounds
    });
    assert!(rounds > 0, "fits must do real IRLS work");
    assert_eq!(
        allocs, 0,
        "steady-state robust fits allocated {allocs} time(s)"
    );
    assert_eq!(
        reallocs, 0,
        "steady-state robust fits reallocated {reallocs} time(s)"
    );
}

#[test]
fn workspace_growth_happens_only_on_first_contact() {
    // The complementary claim: a *fresh* workspace does allocate on its
    // first solve (that's where the buffers come from), so the zero above
    // is meaningful rather than the counter being dead.
    let circuit = test_cell();
    let assembly = CircuitAssembly::new(&circuit).unwrap();
    let opts = DcOptions::default();
    let mut ws = SolveWorkspace::new();
    let (allocs, _, ()) = count_allocations(|| {
        solve_dc_with(
            &circuit,
            &assembly,
            Kelvin::new(298.15),
            &opts,
            None,
            &mut ws,
        )
        .unwrap();
    });
    assert!(allocs > 0, "first solve must size the workspace buffers");
}
