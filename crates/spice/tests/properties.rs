//! Randomized property tests for the circuit simulator: linear-circuit
//! laws must hold for arbitrary component values. Driven by the in-tree
//! seeded PRNG (hermetic build: no `proptest`).

use icvbe_numerics::rng::Xoshiro256PlusPlus;
use icvbe_spice::element::{CurrentSource, Resistor, VoltageSource};
use icvbe_spice::netlist::Circuit;
use icvbe_spice::solver::{solve_dc, DcOptions};
use icvbe_units::{Ampere, Kelvin, Ohm, Volt};

const CASES: usize = 48;

/// A two-resistor divider obeys the divider formula for any values.
#[test]
fn divider_formula_holds() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x05B1_0001);
    for _ in 0..CASES {
        let vin = rng.uniform(0.1, 20.0);
        let r1 = rng.uniform(1.0, 1e6);
        let r2 = rng.uniform(1.0, 1e6);
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let out = c.node("out");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(vin),
        ));
        c.add(Resistor::new("R1", vcc, out, Ohm::new(r1)).unwrap());
        c.add(Resistor::new("R2", out, Circuit::ground(), Ohm::new(r2)).unwrap());
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        let expected = vin * r2 / (r1 + r2);
        assert!((op.voltage(out).value() - expected).abs() < 1e-6 * vin.max(1.0));
    }
}

/// Superposition: the response to two sources equals the sum of the
/// responses to each alone (linear circuit).
#[test]
fn superposition_holds() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x05B1_0002);
    for _ in 0..CASES {
        let v = rng.uniform(-5.0, 5.0);
        let i = rng.uniform(-1e-3, 1e-3);
        let r = rng.uniform(10.0, 1e5);
        let build = |vs: f64, is: f64| {
            let mut c = Circuit::new();
            let a = c.node("a");
            let b = c.node("b");
            c.add(VoltageSource::new(
                "V1",
                a,
                Circuit::ground(),
                Volt::new(vs),
            ));
            c.add(Resistor::new("R1", a, b, Ohm::new(r)).unwrap());
            c.add(Resistor::new("R2", b, Circuit::ground(), Ohm::new(2.0 * r)).unwrap());
            c.add(CurrentSource::new(
                "I1",
                Circuit::ground(),
                b,
                Ampere::new(is),
            ));
            let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
            op.voltage(b).value()
        };
        let both = build(v, i);
        let v_only = build(v, 0.0);
        let i_only = build(0.0, i);
        assert!(
            (both - v_only - i_only).abs() < 1e-6 * (both.abs().max(1.0)),
            "superposition violated: {both} vs {v_only} + {i_only}"
        );
    }
}

/// Series resistors divide like one resistor: current through a chain
/// matches Ohm's law on the total.
#[test]
fn series_chain_reduces() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x05B1_0003);
    for _ in 0..CASES {
        let vin = rng.uniform(0.5, 10.0);
        let r = rng.uniform(10.0, 1e4);
        let n = 2 + rng.below(4) as usize;
        let mut c = Circuit::new();
        let top = c.node("n0");
        c.add(VoltageSource::new(
            "V1",
            top,
            Circuit::ground(),
            Volt::new(vin),
        ));
        let mut prev = top;
        for k in 1..=n {
            let next = if k == n {
                Circuit::ground()
            } else {
                c.node(&format!("n{k}"))
            };
            c.add(Resistor::new(&format!("R{k}"), prev, next, Ohm::new(r)).unwrap());
            prev = next;
        }
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        // Source branch current = -vin / (n r).
        let i = op.branch_current(0, 0).value();
        let expected = -vin / (n as f64 * r);
        assert!((i - expected).abs() < 1e-9 + 1e-6 * expected.abs());
    }
}

/// The solved node voltages of a divider lie between the rails.
#[test]
fn node_voltages_bounded_by_rails() {
    let mut rng = Xoshiro256PlusPlus::seeded(0x05B1_0004);
    for _ in 0..CASES {
        let vin = rng.uniform(0.1, 10.0);
        let r1 = rng.uniform(1.0, 1e5);
        let r2 = rng.uniform(1.0, 1e5);
        let r3 = rng.uniform(1.0, 1e5);
        let mut c = Circuit::new();
        let vcc = c.node("vcc");
        let m1 = c.node("m1");
        let m2 = c.node("m2");
        c.add(VoltageSource::new(
            "V1",
            vcc,
            Circuit::ground(),
            Volt::new(vin),
        ));
        c.add(Resistor::new("R1", vcc, m1, Ohm::new(r1)).unwrap());
        c.add(Resistor::new("R2", m1, m2, Ohm::new(r2)).unwrap());
        c.add(Resistor::new("R3", m2, Circuit::ground(), Ohm::new(r3)).unwrap());
        let op = solve_dc(&c, Kelvin::new(300.0), &DcOptions::default(), None).unwrap();
        for node in [m1, m2] {
            let v = op.voltage(node).value();
            assert!(v >= -1e-9 && v <= vin + 1e-9, "node at {v} outside rails");
        }
        assert!(op.voltage(m1).value() >= op.voltage(m2).value() - 1e-9);
    }
}
