//! Electrical quantities: [`Volt`], [`Ampere`], [`Ohm`].

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Creates a quantity from a raw value in base units.
            #[must_use]
            pub fn new(value: f64) -> Self {
                $name(value)
            }

            /// Returns the raw value in base units.
            #[must_use]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                $name(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
    };
}

quantity!(
    /// An electrical potential difference in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use icvbe_units::Volt;
    ///
    /// let vbe = Volt::new(0.65);
    /// let dvbe = vbe - Volt::new(0.597);
    /// assert!((dvbe.value() - 0.053).abs() < 1e-12);
    /// ```
    Volt,
    "V"
);

quantity!(
    /// An electrical current in amperes.
    ///
    /// # Examples
    ///
    /// ```
    /// use icvbe_units::Ampere;
    ///
    /// let ic = Ampere::new(1e-6);
    /// assert_eq!((ic * 2.0).value(), 2e-6);
    /// ```
    Ampere,
    "A"
);

quantity!(
    /// An electrical resistance in ohms.
    ///
    /// # Examples
    ///
    /// ```
    /// use icvbe_units::Ohm;
    ///
    /// let radj = Ohm::new(1.8e3);
    /// assert_eq!(radj.value(), 1800.0);
    /// ```
    Ohm,
    "Ω"
);

impl Div<Ohm> for Volt {
    type Output = Ampere;
    /// Ohm's law: `I = V / R`.
    fn div(self, rhs: Ohm) -> Ampere {
        Ampere(self.0 / rhs.0)
    }
}

impl Mul<Ohm> for Ampere {
    type Output = Volt;
    /// Ohm's law: `V = I * R`.
    fn mul(self, rhs: Ohm) -> Volt {
        Volt(self.0 * rhs.0)
    }
}

impl Div<Ampere> for Volt {
    type Output = Ohm;
    /// Ohm's law: `R = V / I`.
    fn div(self, rhs: Ampere) -> Ohm {
        Ohm(self.0 / rhs.0)
    }
}

impl Mul<Ampere> for Volt {
    type Output = f64;
    /// Instantaneous power `P = V * I`, returned as a plain `f64` in watts
    /// (power only feeds the thermal model, which works in raw floats).
    fn mul(self, rhs: Ampere) -> f64 {
        self.0 * rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trips() {
        let v = Volt::new(1.2);
        let r = Ohm::new(25_000.0);
        let i = v / r;
        assert!(((i * r).value() - v.value()).abs() < 1e-15);
        assert!(((v / i).value() - r.value()).abs() < 1e-9);
    }

    #[test]
    fn power_is_v_times_i() {
        let p = Volt::new(1.2) * Ampere::new(1e-3);
        assert!((p - 1.2e-3).abs() < 1e-18);
    }

    #[test]
    fn negation_and_abs() {
        let v = -Volt::new(0.7);
        assert_eq!(v.value(), -0.7);
        assert_eq!(v.abs().value(), 0.7);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Volt::new(0.5).to_string(), "0.5 V");
        assert_eq!(Ampere::new(1e-6).to_string(), "0.000001 A");
    }
}
