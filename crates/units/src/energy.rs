//! Energies in electron-volts.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::constants::ELEMENTARY_CHARGE;
use crate::Volt;

/// An energy in electron-volts.
///
/// Silicon's bandgap is about 1.12 eV at 300 K; the SPICE `EG` parameter is
/// an energy expressed in eV (numerically equal to a potential in volts).
///
/// # Examples
///
/// ```
/// use icvbe_units::ElectronVolt;
///
/// let eg = ElectronVolt::new(1.17);
/// assert!((eg.to_joule() - 1.17 * 1.602_176_634e-19).abs() < 1e-30);
/// // SPICE treats EG as a voltage in exponents: same numeric value.
/// assert_eq!(eg.as_volt().value(), 1.17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct ElectronVolt(f64);

impl ElectronVolt {
    /// Creates an energy from a value in electron-volts.
    #[must_use]
    pub fn new(ev: f64) -> Self {
        ElectronVolt(ev)
    }

    /// Returns the raw value in electron-volts.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to joules.
    #[must_use]
    pub fn to_joule(self) -> f64 {
        self.0 * ELEMENTARY_CHARGE
    }

    /// Reinterprets the energy as the numerically-equal potential in volts.
    ///
    /// An electron crossing a potential difference of `V` volts gains `V`
    /// electron-volts, so this conversion is free and exact. It is how the
    /// `EG` energy enters voltage-domain equations such as eq. 13.
    #[must_use]
    pub fn as_volt(self) -> Volt {
        Volt::new(self.0)
    }
}

impl From<Volt> for ElectronVolt {
    /// The energy gained by one elementary charge crossing the potential.
    fn from(v: Volt) -> Self {
        ElectronVolt(v.value())
    }
}

impl fmt::Display for ElectronVolt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} eV", self.0)
    }
}

impl Add for ElectronVolt {
    type Output = ElectronVolt;
    fn add(self, rhs: ElectronVolt) -> ElectronVolt {
        ElectronVolt(self.0 + rhs.0)
    }
}

impl Sub for ElectronVolt {
    type Output = ElectronVolt;
    fn sub(self, rhs: ElectronVolt) -> ElectronVolt {
        ElectronVolt(self.0 - rhs.0)
    }
}

impl Neg for ElectronVolt {
    type Output = ElectronVolt;
    fn neg(self) -> ElectronVolt {
        ElectronVolt(-self.0)
    }
}

impl Mul<f64> for ElectronVolt {
    type Output = ElectronVolt;
    fn mul(self, rhs: f64) -> ElectronVolt {
        ElectronVolt(self.0 * rhs)
    }
}

impl Div<f64> for ElectronVolt {
    type Output = ElectronVolt;
    fn div(self, rhs: f64) -> ElectronVolt {
        ElectronVolt(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volt_and_ev_are_numerically_equal() {
        let e = ElectronVolt::from(Volt::new(1.1557));
        assert_eq!(e.value(), 1.1557);
        assert_eq!(e.as_volt().value(), 1.1557);
    }

    #[test]
    fn bandgap_narrowing_subtraction() {
        // EG = EG(0) - dEGbgn, the 45 meV narrowing quoted in the paper.
        let eg0 = ElectronVolt::new(1.1774);
        let narrowing = ElectronVolt::new(0.045);
        let eg = eg0 - narrowing;
        assert!((eg.value() - 1.1324).abs() < 1e-12);
    }

    #[test]
    fn joule_conversion() {
        assert!((ElectronVolt::new(1.0).to_joule() - 1.602_176_634e-19).abs() < 1e-30);
    }
}
