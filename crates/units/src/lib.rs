//! Physical constants and typed physical quantities used throughout the
//! `icvbe` workspace.
//!
//! The extraction mathematics of the reproduced paper mixes temperatures in
//! Kelvin and Celsius, voltages from hundreds of millivolts down to tens of
//! microvolts, and energies in electron-volts. Confusing any two of those is
//! a silent catastrophic bug, so this crate wraps each in a newtype
//! ([`Kelvin`], [`Celsius`], [`Volt`], [`Ampere`], [`Ohm`], [`ElectronVolt`])
//! and provides the conversions between them ([C-NEWTYPE]).
//!
//! # Examples
//!
//! ```
//! use icvbe_units::{Celsius, Kelvin, thermal_voltage};
//!
//! let t2 = Celsius::new(25.0).to_kelvin();
//! assert!((t2.value() - 298.15).abs() < 1e-12);
//! // kT/q at room temperature is about 25.7 mV.
//! let vt = thermal_voltage(t2);
//! assert!((vt.value() - 0.0257).abs() < 2e-4);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod constants;
mod electrical;
mod energy;
mod temperature;

pub use electrical::{Ampere, Ohm, Volt};
pub use energy::ElectronVolt;
pub use temperature::{Celsius, Kelvin, NotFiniteTemperatureError};

use constants::BOLTZMANN_OVER_Q;

/// Returns the thermal voltage `kT/q` at the given temperature.
///
/// The thermal voltage is the natural unit of the diode equation: a BJT's
/// collector current scales as `exp(VBE / (n * kT/q))`.
///
/// # Examples
///
/// ```
/// use icvbe_units::{thermal_voltage, Kelvin};
///
/// let vt = thermal_voltage(Kelvin::new(300.0));
/// assert!((vt.value() - 0.02585).abs() < 1e-4);
/// ```
#[must_use]
pub fn thermal_voltage(temperature: Kelvin) -> Volt {
    Volt::new(BOLTZMANN_OVER_Q * temperature.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_absolute_zero_is_zero() {
        assert_eq!(thermal_voltage(Kelvin::new(0.0)).value(), 0.0);
    }

    #[test]
    fn thermal_voltage_is_linear_in_temperature() {
        let v1 = thermal_voltage(Kelvin::new(100.0)).value();
        let v3 = thermal_voltage(Kelvin::new(300.0)).value();
        assert!((v3 - 3.0 * v1).abs() < 1e-15);
    }

    #[test]
    fn quantities_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Kelvin>();
        assert_send_sync::<Celsius>();
        assert_send_sync::<Volt>();
        assert_send_sync::<Ampere>();
        assert_send_sync::<Ohm>();
        assert_send_sync::<ElectronVolt>();
    }
}
