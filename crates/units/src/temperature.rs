//! Absolute ([`Kelvin`]) and conventional ([`Celsius`]) temperatures.

use std::error::Error;
use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

use crate::constants::ABSOLUTE_ZERO_CELSIUS;

/// An absolute temperature in kelvin.
///
/// All internal physics in the workspace is done in kelvin; Celsius values
/// only appear at input/output boundaries (thermal-chamber setpoints, figure
/// axes). Construct with [`Kelvin::new`] or convert from a [`Celsius`].
///
/// # Examples
///
/// ```
/// use icvbe_units::{Celsius, Kelvin};
///
/// let t = Kelvin::new(348.0);
/// assert!((t.to_celsius().value() - 74.85).abs() < 1e-9);
/// assert_eq!(Kelvin::from(Celsius::new(25.0)).value(), 298.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Creates an absolute temperature from a value in kelvin.
    ///
    /// Negative or non-finite values are accepted here to keep arithmetic
    /// composable (differences of temperatures are formed freely); use
    /// [`Kelvin::try_physical`] at validation boundaries.
    #[must_use]
    pub fn new(kelvin: f64) -> Self {
        Kelvin(kelvin)
    }

    /// Creates an absolute temperature, rejecting non-finite or negative
    /// values.
    ///
    /// # Errors
    ///
    /// Returns [`NotFiniteTemperatureError`] if `kelvin` is NaN, infinite, or
    /// below absolute zero.
    pub fn try_physical(kelvin: f64) -> Result<Self, NotFiniteTemperatureError> {
        if kelvin.is_finite() && kelvin >= 0.0 {
            Ok(Kelvin(kelvin))
        } else {
            Err(NotFiniteTemperatureError { value: kelvin })
        }
    }

    /// Returns the raw value in kelvin.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to degrees Celsius.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 + ABSOLUTE_ZERO_CELSIUS)
    }

    /// Returns the dimensionless ratio `self / reference`.
    ///
    /// This ratio `T/T0` is raised to the `XTI` power in eq. 1 of the paper.
    #[must_use]
    pub fn ratio_to(self, reference: Kelvin) -> f64 {
        self.0 / reference.0
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Self {
        c.to_kelvin()
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} K", self.0)
    }
}

impl Add for Kelvin {
    type Output = Kelvin;
    fn add(self, rhs: Kelvin) -> Kelvin {
        Kelvin(self.0 + rhs.0)
    }
}

impl Sub for Kelvin {
    type Output = Kelvin;
    fn sub(self, rhs: Kelvin) -> Kelvin {
        Kelvin(self.0 - rhs.0)
    }
}

impl Mul<f64> for Kelvin {
    type Output = Kelvin;
    fn mul(self, rhs: f64) -> Kelvin {
        Kelvin(self.0 * rhs)
    }
}

impl Div<f64> for Kelvin {
    type Output = Kelvin;
    fn div(self, rhs: f64) -> Kelvin {
        Kelvin(self.0 / rhs)
    }
}

/// A conventional temperature in degrees Celsius.
///
/// # Examples
///
/// ```
/// use icvbe_units::Celsius;
///
/// let chamber = Celsius::new(-50.0);
/// assert!((chamber.to_kelvin().value() - 223.15).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature from a value in degrees Celsius.
    #[must_use]
    pub fn new(celsius: f64) -> Self {
        Celsius(celsius)
    }

    /// Returns the raw value in degrees Celsius.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to kelvin.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 - ABSOLUTE_ZERO_CELSIUS)
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Self {
        k.to_celsius()
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} °C", self.0)
    }
}

/// Error returned by [`Kelvin::try_physical`] for unphysical inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NotFiniteTemperatureError {
    value: f64,
}

impl NotFiniteTemperatureError {
    /// The offending raw value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for NotFiniteTemperatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "temperature {} K is not finite and non-negative",
            self.value
        )
    }
}

impl Error for NotFiniteTemperatureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_round_trips_through_kelvin() {
        let c = Celsius::new(-50.88);
        let back = c.to_kelvin().to_celsius();
        assert!((back.value() - c.value()).abs() < 1e-12);
    }

    #[test]
    fn try_physical_rejects_negative_and_nan() {
        assert!(Kelvin::try_physical(-1.0).is_err());
        assert!(Kelvin::try_physical(f64::NAN).is_err());
        assert!(Kelvin::try_physical(f64::INFINITY).is_err());
        assert!(Kelvin::try_physical(0.0).is_ok());
    }

    #[test]
    fn ratio_to_matches_division() {
        let t = Kelvin::new(348.0);
        let t0 = Kelvin::new(298.15);
        assert!((t.ratio_to(t0) - 348.0 / 298.15).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Kelvin::new(300.0) + Kelvin::new(25.0);
        assert_eq!(a.value(), 325.0);
        let d = Kelvin::new(300.0) - Kelvin::new(25.0);
        assert_eq!(d.value(), 275.0);
        assert_eq!((Kelvin::new(100.0) * 2.0).value(), 200.0);
        assert_eq!((Kelvin::new(100.0) / 2.0).value(), 50.0);
    }

    #[test]
    fn error_display_mentions_value() {
        let e = Kelvin::try_physical(-3.0).unwrap_err();
        assert!(e.to_string().contains("-3"));
        assert_eq!(e.value(), -3.0);
    }
}
