//! Fundamental physical constants (CODATA 2018, exact where SI-defined).
//!
//! These are the constants that enter the Gummel-Poon saturation-current
//! temperature law (eq. 1 of the paper) and Meijer's analytical extraction
//! equations (eqs. 14-16).

/// Boltzmann constant `k` in J/K (exact, SI 2019 definition).
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge `q` in C (exact, SI 2019 definition).
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// `k/q` in V/K — the thermal voltage per kelvin, about 86.17 µV/K.
///
/// This ratio is the slope constant of every PTAT voltage in the paper:
/// `dVBE(T) = (k/q) * T * ln(p)` for an emitter-area ratio `p`.
pub const BOLTZMANN_OVER_Q: f64 = BOLTZMANN / ELEMENTARY_CHARGE;

/// `q/k` in K/V — the inverse of [`BOLTZMANN_OVER_Q`], used when converting
/// an energy expressed in (electron-)volts into the exponent of eq. 1.
pub const Q_OVER_BOLTZMANN: f64 = ELEMENTARY_CHARGE / BOLTZMANN;

/// Absolute zero expressed in degrees Celsius.
pub const ABSOLUTE_ZERO_CELSIUS: f64 = -273.15;

/// Default SPICE nominal temperature `T0 = 27 °C = 300.15 K`.
///
/// Classical SPICE uses 27 °C; the paper's extraction reference is
/// T2 = 25 °C. Both appear in the workspace, always explicitly.
pub const SPICE_TNOM_KELVIN: f64 = 300.15;

/// Room temperature 25 °C in kelvin, the paper's extraction reference T2.
pub const ROOM_TEMPERATURE_KELVIN: f64 = 298.15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_over_q_matches_expected_magnitude() {
        assert!((BOLTZMANN_OVER_Q - 8.617e-5).abs() < 1e-8);
    }

    #[test]
    fn q_over_k_is_reciprocal() {
        assert!((BOLTZMANN_OVER_Q * Q_OVER_BOLTZMANN - 1.0).abs() < 1e-15);
    }

    #[test]
    fn room_temperature_is_25c() {
        assert!((ROOM_TEMPERATURE_KELVIN + ABSOLUTE_ZERO_CELSIUS - 25.0).abs() < 1e-12);
    }
}
