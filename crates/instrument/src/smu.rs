//! The virtual source-measure unit (the HP4156 of the paper's bench).

use icvbe_units::{Ampere, Volt};

use crate::noise::{quantize, NoiseSource};

/// Error model of one measurement channel: `reading = (1 + gain_error) *
/// true + offset + noise`, then quantized to the instrument resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelModel {
    /// Relative gain error (calibration residue).
    pub gain_error: f64,
    /// Additive offset in channel units.
    pub offset: f64,
    /// RMS noise in channel units.
    pub noise_rms: f64,
    /// Quantization step (0 = continuous).
    pub resolution: f64,
}

impl ChannelModel {
    /// A perfect channel.
    #[must_use]
    pub fn ideal() -> Self {
        ChannelModel {
            gain_error: 0.0,
            offset: 0.0,
            noise_rms: 0.0,
            resolution: 0.0,
        }
    }

    fn apply(&self, truth: f64, noise: &mut NoiseSource) -> f64 {
        let raw = (1.0 + self.gain_error) * truth
            + self.offset
            + noise.sample_normal(0.0, self.noise_rms);
        quantize(raw, self.resolution)
    }
}

/// A two-channel (volt/amp) source-measure unit with an error model per
/// channel and a deterministic noise stream.
///
/// # Examples
///
/// ```
/// use icvbe_instrument::smu::VirtualSmu;
/// use icvbe_units::Volt;
///
/// let mut smu = VirtualSmu::hp4156_class(1);
/// let r = smu.measure_voltage(Volt::new(0.620000));
/// // Within a few microvolts of truth.
/// assert!((r.value() - 0.62).abs() < 2e-5);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualSmu {
    voltage_channel: ChannelModel,
    current_channel: ChannelModel,
    noise: NoiseSource,
}

impl VirtualSmu {
    /// Builds an SMU from explicit channel models and a seed.
    #[must_use]
    pub fn new(voltage_channel: ChannelModel, current_channel: ChannelModel, seed: u64) -> Self {
        VirtualSmu {
            voltage_channel,
            current_channel,
            noise: NoiseSource::seeded(seed),
        }
    }

    /// An HP4156-class instrument: 2 µV rms noise, 1 µV resolution, 20 ppm
    /// gain error on voltage; 0.05% + 10 fA floor on current.
    #[must_use]
    pub fn hp4156_class(seed: u64) -> Self {
        VirtualSmu::new(
            ChannelModel {
                gain_error: 20e-6,
                offset: 0.0,
                noise_rms: 2e-6,
                resolution: 1e-6,
            },
            ChannelModel {
                gain_error: 5e-4,
                offset: 0.0,
                noise_rms: 1e-14,
                resolution: 0.0,
            },
            seed,
        )
    }

    /// An ideal (noiseless, error-free) instrument.
    #[must_use]
    pub fn ideal(seed: u64) -> Self {
        VirtualSmu::new(ChannelModel::ideal(), ChannelModel::ideal(), seed)
    }

    /// Measures a voltage.
    pub fn measure_voltage(&mut self, truth: Volt) -> Volt {
        Volt::new(self.voltage_channel.apply(truth.value(), &mut self.noise))
    }

    /// Measures a current. The relative part of the error model applies to
    /// the reading magnitude (SMU ranging).
    pub fn measure_current(&mut self, truth: Ampere) -> Ampere {
        Ampere::new(self.current_channel.apply(truth.value(), &mut self.noise))
    }

    /// Averages `n` voltage readings — the long-integration mode the paper
    /// implies by waiting for full equilibrium at every point.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn measure_voltage_averaged(&mut self, truth: Volt, n: usize) -> Volt {
        assert!(n > 0, "need at least one reading");
        let sum: f64 = (0..n).map(|_| self.measure_voltage(truth).value()).sum();
        Volt::new(sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_smu_is_transparent() {
        let mut smu = VirtualSmu::ideal(0);
        assert_eq!(
            smu.measure_voltage(Volt::new(0.123456789)).value(),
            0.123456789
        );
        assert_eq!(smu.measure_current(Ampere::new(1e-6)).value(), 1e-6);
    }

    #[test]
    fn gain_error_scales_reading() {
        let mut smu = VirtualSmu::new(
            ChannelModel {
                gain_error: 0.01,
                offset: 0.0,
                noise_rms: 0.0,
                resolution: 0.0,
            },
            ChannelModel::ideal(),
            0,
        );
        assert!((smu.measure_voltage(Volt::new(1.0)).value() - 1.01).abs() < 1e-12);
    }

    #[test]
    fn averaging_reduces_noise() {
        let mut smu = VirtualSmu::new(
            ChannelModel {
                gain_error: 0.0,
                offset: 0.0,
                noise_rms: 1e-3,
                resolution: 0.0,
            },
            ChannelModel::ideal(),
            3,
        );
        let single_err: f64 = (0..50)
            .map(|_| (smu.measure_voltage(Volt::new(0.5)).value() - 0.5).abs())
            .sum::<f64>()
            / 50.0;
        let avg_err: f64 = (0..50)
            .map(|_| (smu.measure_voltage_averaged(Volt::new(0.5), 64).value() - 0.5).abs())
            .sum::<f64>()
            / 50.0;
        assert!(avg_err < single_err / 3.0, "{avg_err} vs {single_err}");
    }

    #[test]
    fn resolution_quantizes() {
        let mut smu = VirtualSmu::new(
            ChannelModel {
                gain_error: 0.0,
                offset: 0.0,
                noise_rms: 0.0,
                resolution: 1e-3,
            },
            ChannelModel::ideal(),
            0,
        );
        assert_eq!(smu.measure_voltage(Volt::new(0.6204)).value(), 0.620);
    }

    #[test]
    fn hp4156_class_is_microvolt_accurate() {
        let mut smu = VirtualSmu::hp4156_class(11);
        let worst = (0..100)
            .map(|_| (smu.measure_voltage(Volt::new(0.65)).value() - 0.65).abs())
            .fold(0.0_f64, f64::max);
        assert!(worst < 3e-5, "worst error {worst}");
    }
}
