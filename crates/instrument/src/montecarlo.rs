//! Seeded per-die process variation: the "five samples of the test cell"
//! of Table 1.
//!
//! Each [`DieSample`] bundles everything that differs die to die on a real
//! diffusion lot: saturation-current spread, bias mismatch, op-amp offset,
//! the `dVBE` readout-chain offset, substrate-leakage strength and the
//! package thermal resistance. A [`SampleFactory`] draws samples
//! deterministically from a seed, so Table 1 reproduces bit-for-bit.

use icvbe_bandgap::card::st_bicmos_pnp;
use icvbe_bandgap::cell::BandgapCell;
use icvbe_bandgap::pair::PairStructure;
use icvbe_spice::bjt::{BjtParams, SubstrateJunction};
use icvbe_units::{Ampere, Volt};

use crate::noise::NoiseSource;

/// Statistical spec of the process variation (one-sigma values unless
/// noted).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSpec {
    /// Relative sigma of the (lot-common) saturation current.
    pub is_sigma: f64,
    /// Sigma of the QA/QB bias-source mismatch.
    pub bias_mismatch_sigma: f64,
    /// Mean of the dVBE readout-chain offset (volts). The paper observes a
    /// systematic perturbation of the dVBE slope — millivolts — from the
    /// op-amp stage and the parasitics.
    pub readout_offset_mean: f64,
    /// Sigma of the readout offset (volts).
    pub readout_offset_sigma: f64,
    /// Sigma of the bandgap op-amp input offset (volts).
    pub opamp_offset_sigma: f64,
    /// Mean multiplier of the substrate-leakage saturation current.
    pub leak_scale_mean: f64,
    /// Relative sigma of the substrate-leakage saturation current
    /// (log-normal-ish spread realized as a clamped normal multiplier).
    pub leak_scale_sigma: f64,
    /// Relative sigma of the package thermal resistance.
    pub rth_sigma: f64,
}

impl Default for VariationSpec {
    fn default() -> Self {
        VariationSpec {
            is_sigma: 0.08,
            bias_mismatch_sigma: 0.004,
            // Post-calibration residue: the cell's P4/P5 pads null the
            // op-amp-stage offset out of the dVBE readout at the reference
            // temperature; since the offset is additive, the trim holds
            // across the range and only drift/noise-level residue remains.
            // (The eq.-14/15 solve is ~75 meV of EG per kelvin of
            // *differential* temperature error, so this residue is the
            // accuracy budget of the whole method.)
            readout_offset_mean: 0.0,
            readout_offset_sigma: 30e-6,
            opamp_offset_sigma: 2.0e-3,
            leak_scale_mean: 1.5,
            leak_scale_sigma: 0.35,
            rth_sigma: 0.15,
        }
    }
}

/// One virtual die.
#[derive(Debug, Clone, PartialEq)]
pub struct DieSample {
    /// Sample index (1-based, like the paper's Table 1 columns).
    pub id: usize,
    /// The per-die PNP card.
    pub card: BjtParams,
    /// QB bias relative to QA bias.
    pub bias_mismatch: f64,
    /// dVBE readout-chain offset.
    pub readout_offset: Volt,
    /// Bandgap op-amp input offset.
    pub opamp_offset: Volt,
    /// Per-die substrate parasitic.
    pub substrate: SubstrateJunction,
    /// Thermal-resistance multiplier for the package.
    pub rth_scale: f64,
}

impl DieSample {
    /// An exactly nominal die (useful as a control).
    #[must_use]
    pub fn nominal(id: usize) -> Self {
        DieSample {
            id,
            card: st_bicmos_pnp(),
            bias_mismatch: 1.0,
            readout_offset: Volt::new(0.0),
            opamp_offset: Volt::new(0.0),
            substrate: SubstrateJunction::bicmos_default(),
            rth_scale: 1.0,
        }
    }

    /// The Fig.-2 pair structure of this die at the given bias.
    #[must_use]
    pub fn pair_structure(&self, bias: Ampere) -> PairStructure {
        PairStructure::ideal(self.card, bias)
            .with_substrate(self.substrate)
            .with_bias_mismatch(self.bias_mismatch)
            .with_readout_offset(self.readout_offset)
    }

    /// The Fig.-3 bandgap cell of this die (R_ptat at its design value —
    /// calibrate or trim separately).
    #[must_use]
    pub fn bandgap_cell(&self) -> BandgapCell {
        BandgapCell::nominal(self.card)
            .with_substrate(self.substrate)
            .with_opamp_offset(self.opamp_offset)
    }
}

/// Deterministic sample generator.
#[derive(Debug, Clone)]
pub struct SampleFactory {
    noise: NoiseSource,
    spec: VariationSpec,
}

impl SampleFactory {
    /// Creates a factory from a seed and the default spec.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SampleFactory {
            noise: NoiseSource::seeded(seed),
            spec: VariationSpec::default(),
        }
    }

    /// Overrides the variation spec.
    #[must_use]
    pub fn with_spec(mut self, spec: VariationSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Draws the next die.
    pub fn draw(&mut self, id: usize) -> DieSample {
        let s = &self.spec;
        let mut card = st_bicmos_pnp();
        let is_scale = (1.0 + self.noise.sample_normal(0.0, s.is_sigma)).clamp(0.5, 2.0);
        card.is = Ampere::new(card.is.value() * is_scale);
        card.ise = Ampere::new(card.ise.value() * is_scale);

        let mut substrate = SubstrateJunction::bicmos_default();
        let leak_scale = self
            .noise
            .sample_normal(s.leak_scale_mean, s.leak_scale_mean * s.leak_scale_sigma)
            .clamp(0.3, 4.0);
        substrate.is = Ampere::new(substrate.is.value() * leak_scale);

        DieSample {
            id,
            card,
            bias_mismatch: (1.0 + self.noise.sample_normal(0.0, s.bias_mismatch_sigma))
                .clamp(0.9, 1.1),
            readout_offset: Volt::new(
                self.noise
                    .sample_normal(s.readout_offset_mean, s.readout_offset_sigma),
            ),
            opamp_offset: Volt::new(self.noise.sample_normal(0.0, s.opamp_offset_sigma)),
            substrate,
            rth_scale: (1.0 + self.noise.sample_normal(0.0, s.rth_sigma)).clamp(0.5, 2.0),
        }
    }

    /// Draws `n` dies with ids `1..=n` — the paper's five-sample lot is
    /// `draw_lot(5)`.
    pub fn draw_lot(&mut self, n: usize) -> Vec<DieSample> {
        (1..=n).map(|id| self.draw(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_is_deterministic() {
        let a = SampleFactory::seeded(2002).draw_lot(5);
        let b = SampleFactory::seeded(2002).draw_lot(5);
        assert_eq!(a, b);
    }

    #[test]
    fn samples_differ_from_each_other() {
        let lot = SampleFactory::seeded(2002).draw_lot(5);
        for w in lot.windows(2) {
            assert_ne!(w[0].card.is, w[1].card.is);
            assert_ne!(w[0].readout_offset, w[1].readout_offset);
        }
    }

    #[test]
    fn drawn_cards_stay_valid() {
        let lot = SampleFactory::seeded(7).draw_lot(20);
        for s in lot {
            assert!(s.card.validate("Q").is_ok(), "sample {} invalid", s.id);
            assert!(s.bias_mismatch > 0.89 && s.bias_mismatch < 1.11);
            assert!(s.rth_scale > 0.4 && s.rth_scale < 2.1);
        }
    }

    #[test]
    fn readout_offsets_center_on_the_spec_mean() {
        let lot = SampleFactory::seeded(99).draw_lot(200);
        let mean: f64 =
            lot.iter().map(|s| s.readout_offset.value()).sum::<f64>() / lot.len() as f64;
        // Post-calibration residue: zero mean, tens of microvolts spread.
        assert!(mean.abs() < 10e-6, "mean offset {mean}");
        let spread = lot
            .iter()
            .map(|s| s.readout_offset.value().abs())
            .fold(0.0_f64, f64::max);
        assert!(spread > 10e-6 && spread < 200e-6, "spread {spread}");
    }

    #[test]
    fn nominal_sample_builds_working_structures() {
        let s = DieSample::nominal(0);
        let pair = s.pair_structure(Ampere::new(1e-6));
        let r = pair.measure(icvbe_units::Kelvin::new(298.15)).unwrap();
        assert!(r.dvbe.value() > 0.04 && r.dvbe.value() < 0.07);
        let cell = s.bandgap_cell();
        let rd = cell.solve(icvbe_units::Kelvin::new(298.15)).unwrap();
        assert!(rd.vref.value() > 1.0 && rd.vref.value() < 1.4);
    }
}
