//! Deterministic measurement-fault injection.
//!
//! Production benches see every corruption the paper warns about:
//! glitched SMU readings, instruments that latch the previous sample,
//! lost chamber setpoints, slow offset drift, and outright non-finite
//! A/D output. This module injects exactly those faults into a measured
//! [`PairCampaignPoint`](crate::bench::PairCampaignPoint) series — *after*
//! the physics — so the downstream extraction stack can be exercised
//! against corrupted data without touching the bench model.
//!
//! Determinism is the load-bearing property: a [`FaultPlan`] is a pure
//! function of its [`FaultSpec`] and seed, so campaigns that derive the
//! seed from the per-die SplitMix64 chain stay byte-identical at any
//! thread count. The all-zero spec ([`FaultSpec::none`]) is a *strict*
//! no-op: [`FaultPlan::apply`] returns before touching a single reading
//! or drawing a single random number, so a zero-fault campaign reproduces
//! an unfaulted one bit for bit (it never even adds `0.0`, which would
//! flip the sign of a `-0.0` reading).
//!
//! Each fault class has a distinct downstream signature, which is what
//! lets the campaign classify failures by *detection* instead of by
//! injection knowledge:
//!
//! | fault  | corruption                                | typical detection      |
//! |--------|-------------------------------------------|------------------------|
//! | noise  | Gaussian burst on the voltage readings    | out-of-window / robust |
//! | stuck  | point repeats the previous point          | degenerate thermometry |
//! | drop   | whole point lost (every reading NaN)      | insufficient points    |
//! | drift  | linear offset ramp on `VBE` readings      | out-of-window / robust |
//! | nan    | one electrical reading becomes NaN/Inf    | non-finite input       |

use std::error::Error;
use std::fmt;

use icvbe_units::{Ampere, Kelvin, Volt};

use crate::bench::PairCampaignPoint;
use crate::noise::NoiseSource;

/// Knobs of the deterministic fault injector. All-zero (the default)
/// disables injection entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Per-point probability of a Gaussian glitch burst on the voltage
    /// readings (`vbe_a`, `vbe_b`, `dvbe`).
    pub noise_probability: f64,
    /// Standard deviation of a glitch burst, volts.
    pub noise_sigma_volts: f64,
    /// Per-point probability the instrument latches and repeats the
    /// previous point's readings (first point can never be stuck).
    pub stuck_probability: f64,
    /// Per-point probability the whole temperature point is lost: every
    /// reading of the point becomes NaN.
    pub drop_probability: f64,
    /// Standard deviation of a per-series linear drift slope applied to
    /// the single-ended `VBE` readings, volts per point index.
    pub drift_sigma_volts: f64,
    /// Per-point probability one electrical reading turns NaN/Inf.
    pub nan_probability: f64,
}

/// Parse/validation error for a fault spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.detail)
    }
}

impl Error for FaultSpecError {}

fn spec_err(detail: impl Into<String>) -> FaultSpecError {
    FaultSpecError {
        detail: detail.into(),
    }
}

impl FaultSpec {
    /// The all-zero spec: injection disabled, strict no-op on apply.
    #[must_use]
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// A mildly hostile bench: occasional glitches and latch-ups.
    #[must_use]
    pub fn light() -> Self {
        FaultSpec {
            noise_probability: 0.05,
            noise_sigma_volts: 10e-3,
            stuck_probability: 0.02,
            drop_probability: 0.02,
            drift_sigma_volts: 0.5e-3,
            nan_probability: 0.01,
        }
    }

    /// A badly misbehaving bench: most dies see at least one corrupted
    /// point, exercising every recovery path.
    #[must_use]
    pub fn heavy() -> Self {
        FaultSpec {
            noise_probability: 0.25,
            noise_sigma_volts: 25e-3,
            stuck_probability: 0.10,
            drop_probability: 0.08,
            drift_sigma_volts: 2e-3,
            nan_probability: 0.06,
        }
    }

    /// Whether every knob is zero (injection disabled).
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == FaultSpec::default()
    }

    /// Validates probabilities (finite, in `[0, 1]`) and sigmas (finite,
    /// non-negative).
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] naming the offending knob.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        let probs = [
            ("noise", self.noise_probability),
            ("stuck", self.stuck_probability),
            ("drop", self.drop_probability),
            ("nan", self.nan_probability),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(spec_err(format!(
                    "probability '{name}' must be in [0, 1], got {p}"
                )));
            }
        }
        let sigmas = [
            ("noise_sigma", self.noise_sigma_volts),
            ("drift", self.drift_sigma_volts),
        ];
        for (name, s) in sigmas {
            if !s.is_finite() || s < 0.0 {
                return Err(spec_err(format!(
                    "sigma '{name}' must be finite and >= 0, got {s}"
                )));
            }
        }
        Ok(())
    }

    /// Parses a spec string: a preset name (`none`, `light`, `heavy`) or
    /// comma-separated `key=value` pairs over the keys `noise`,
    /// `noise_sigma`, `stuck`, `drop`, `drift`, `nan`. Unlisted keys keep
    /// their [`FaultSpec::none`] value of zero.
    ///
    /// # Errors
    ///
    /// [`FaultSpecError`] on an unknown key, an unparsable value, or an
    /// out-of-range knob.
    pub fn parse(text: &str) -> Result<Self, FaultSpecError> {
        let trimmed = text.trim();
        match trimmed {
            "none" => return Ok(FaultSpec::none()),
            "light" => return Ok(FaultSpec::light()),
            "heavy" => return Ok(FaultSpec::heavy()),
            "" => return Err(spec_err("empty spec (try 'light', 'heavy' or key=value)")),
            _ => {}
        }
        let mut spec = FaultSpec::none();
        for pair in trimmed.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(spec_err(format!(
                    "expected key=value, got '{pair}' (keys: noise, noise_sigma, stuck, drop, drift, nan)"
                )));
            };
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| spec_err(format!("'{}' is not a number", value.trim())))?;
            match key.trim() {
                "noise" => spec.noise_probability = value,
                "noise_sigma" => spec.noise_sigma_volts = value,
                "stuck" => spec.stuck_probability = value,
                "drop" => spec.drop_probability = value,
                "drift" => spec.drift_sigma_volts = value,
                "nan" => spec.nan_probability = value,
                other => {
                    return Err(spec_err(format!(
                        "unknown key '{other}' (keys: noise, noise_sigma, stuck, drop, drift, nan)"
                    )))
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// Counts of the faults a [`FaultPlan::apply`] call actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    /// Points that received a Gaussian glitch burst.
    pub noise_bursts: u32,
    /// Points that repeated the previous point.
    pub stuck: u32,
    /// Points dropped entirely.
    pub dropped: u32,
    /// Single readings turned NaN/Inf.
    pub non_finite: u32,
    /// Whether a non-zero drift ramp was applied to this series.
    pub drifted: bool,
}

impl FaultCounts {
    /// Total number of injected faults (the drift ramp counts once).
    #[must_use]
    pub fn total(&self) -> u32 {
        self.noise_bursts + self.stuck + self.dropped + self.non_finite + u32::from(self.drifted)
    }
}

/// A seeded fault injector: a pure function of `(spec, seed)` applied to
/// a measured point series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
}

impl FaultPlan {
    /// A plan corrupting with `spec`, deterministically from `seed`.
    #[must_use]
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultPlan { spec, seed }
    }

    /// The spec this plan injects.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Corrupts `points` in place and returns what was injected.
    ///
    /// Strict no-op (no RNG draw, no arithmetic on any reading) when the
    /// spec is all-zero. Otherwise the draw order is fixed — one drift
    /// slope for the series, then per point: stuck, noise (plus three
    /// burst amplitudes when hit), drop, nan (plus a field choice when
    /// hit) — so two applies of the same plan over same-length series
    /// corrupt identically regardless of the data values.
    pub fn apply(&self, points: &mut [PairCampaignPoint]) -> FaultCounts {
        let mut counts = FaultCounts::default();
        if self.spec.is_none() || points.is_empty() {
            return counts;
        }
        let mut rng = NoiseSource::seeded(self.seed);

        // Series-level drift: a linear offset ramp on the single-ended
        // VBE readings (the differential dVBE readout rejects it).
        if self.spec.drift_sigma_volts > 0.0 {
            let slope = rng.sample_normal(0.0, self.spec.drift_sigma_volts);
            if slope != 0.0 {
                counts.drifted = true;
                for (i, p) in points.iter_mut().enumerate().skip(1) {
                    let ramp = slope * i as f64;
                    p.vbe_a = Volt::new(p.vbe_a.value() + ramp);
                    p.vbe_b = Volt::new(p.vbe_b.value() + ramp);
                }
            }
        }

        for i in 0..points.len() {
            if self.spec.stuck_probability > 0.0
                && rng.sample_uniform(0.0, 1.0) < self.spec.stuck_probability
                && i > 0
            {
                // The instrument latched: repeat the (possibly already
                // corrupted) previous point's readings. The chamber
                // setpoint is the plan's, not a reading — keep it.
                let prev = points[i - 1];
                let p = &mut points[i];
                p.sensor_temperature = prev.sensor_temperature;
                p.die_temperature = prev.die_temperature;
                p.vbe_a = prev.vbe_a;
                p.vbe_b = prev.vbe_b;
                p.dvbe = prev.dvbe;
                p.ic_a = prev.ic_a;
                p.ic_b = prev.ic_b;
                counts.stuck += 1;
            }
            if self.spec.noise_probability > 0.0
                && rng.sample_uniform(0.0, 1.0) < self.spec.noise_probability
            {
                let s = self.spec.noise_sigma_volts;
                let (ga, gb, gd) = (
                    rng.sample_gaussian(),
                    rng.sample_gaussian(),
                    rng.sample_gaussian(),
                );
                let p = &mut points[i];
                p.vbe_a = Volt::new(p.vbe_a.value() + ga * s);
                p.vbe_b = Volt::new(p.vbe_b.value() + gb * s);
                p.dvbe = Volt::new(p.dvbe.value() + gd * s);
                counts.noise_bursts += 1;
            }
            if self.spec.drop_probability > 0.0
                && rng.sample_uniform(0.0, 1.0) < self.spec.drop_probability
            {
                let p = &mut points[i];
                p.sensor_temperature = Kelvin::new(f64::NAN);
                p.die_temperature = Kelvin::new(f64::NAN);
                p.vbe_a = Volt::new(f64::NAN);
                p.vbe_b = Volt::new(f64::NAN);
                p.dvbe = Volt::new(f64::NAN);
                p.ic_a = Ampere::new(f64::NAN);
                p.ic_b = Ampere::new(f64::NAN);
                counts.dropped += 1;
            }
            if self.spec.nan_probability > 0.0
                && rng.sample_uniform(0.0, 1.0) < self.spec.nan_probability
            {
                let field = rng.sample_uniform(0.0, 3.0) as usize;
                let p = &mut points[i];
                match field {
                    0 => p.vbe_a = Volt::new(f64::NAN),
                    1 => p.ic_a = Ampere::new(f64::INFINITY),
                    _ => p.dvbe = Volt::new(f64::NAN),
                }
                counts.non_finite += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<PairCampaignPoint> {
        (0..3)
            .map(|i| {
                let t = 248.15 + 50.0 * i as f64;
                PairCampaignPoint {
                    setpoint: Kelvin::new(t),
                    sensor_temperature: Kelvin::new(t + 0.1),
                    die_temperature: Kelvin::new(t + 0.4),
                    vbe_a: Volt::new(0.62 - 0.002 * i as f64),
                    vbe_b: Volt::new(0.57 - 0.002 * i as f64),
                    dvbe: Volt::new(if i == 1 { -0.0 } else { 0.0537 }),
                    ic_a: Ampere::new(1e-6),
                    ic_b: Ampere::new(1e-6),
                }
            })
            .collect()
    }

    fn bits(points: &[PairCampaignPoint]) -> Vec<u64> {
        points
            .iter()
            .flat_map(|p| {
                [
                    p.setpoint.value(),
                    p.sensor_temperature.value(),
                    p.die_temperature.value(),
                    p.vbe_a.value(),
                    p.vbe_b.value(),
                    p.dvbe.value(),
                    p.ic_a.value(),
                    p.ic_b.value(),
                ]
            })
            .map(f64::to_bits)
            .collect()
    }

    #[test]
    fn zero_spec_is_a_strict_bitwise_noop() {
        // Includes a -0.0 reading: even adding 0.0 would flip its bits.
        let mut points = sample_points();
        let before = bits(&points);
        let counts = FaultPlan::new(FaultSpec::none(), 0xDEAD_BEEF).apply(&mut points);
        assert_eq!(counts, FaultCounts::default());
        assert_eq!(bits(&points), before);
    }

    #[test]
    fn same_seed_corrupts_identically_different_seed_differently() {
        let spec = FaultSpec::heavy();
        let mut a = sample_points();
        let mut b = sample_points();
        let ca = FaultPlan::new(spec, 42).apply(&mut a);
        let cb = FaultPlan::new(spec, 42).apply(&mut b);
        assert_eq!(bits(&a), bits(&b));
        assert_eq!(ca, cb);
        let mut c = sample_points();
        FaultPlan::new(spec, 43).apply(&mut c);
        assert_ne!(bits(&a), bits(&c));
    }

    #[test]
    fn certain_drop_kills_every_reading() {
        let spec = FaultSpec {
            drop_probability: 1.0,
            ..FaultSpec::none()
        };
        let mut points = sample_points();
        let counts = FaultPlan::new(spec, 7).apply(&mut points);
        assert_eq!(counts.dropped, 3);
        for p in &points {
            assert!(p.sensor_temperature.value().is_nan());
            assert!(p.vbe_a.value().is_nan());
            assert!(p.ic_a.value().is_nan());
            // The chamber setpoint is the plan's, not a reading.
            assert!(p.setpoint.value().is_finite());
        }
    }

    #[test]
    fn certain_stuck_latches_onto_the_first_point() {
        let spec = FaultSpec {
            stuck_probability: 1.0,
            ..FaultSpec::none()
        };
        let mut points = sample_points();
        let first = points[0];
        let counts = FaultPlan::new(spec, 7).apply(&mut points);
        assert_eq!(counts.stuck, 2, "first point can never be stuck");
        for p in &points {
            assert_eq!(
                p.sensor_temperature.value(),
                first.sensor_temperature.value()
            );
            assert_eq!(p.vbe_a.value(), first.vbe_a.value());
        }
    }

    #[test]
    fn certain_nan_corrupts_exactly_one_reading_per_point() {
        let spec = FaultSpec {
            nan_probability: 1.0,
            ..FaultSpec::none()
        };
        let mut points = sample_points();
        let counts = FaultPlan::new(spec, 11).apply(&mut points);
        assert_eq!(counts.non_finite, 3);
        for p in &points {
            let bad = usize::from(!p.vbe_a.value().is_finite())
                + usize::from(!p.ic_a.value().is_finite())
                + usize::from(!p.dvbe.value().is_finite());
            assert_eq!(bad, 1);
        }
    }

    #[test]
    fn drift_ramps_vbe_but_not_dvbe() {
        let spec = FaultSpec {
            drift_sigma_volts: 1e-3,
            ..FaultSpec::none()
        };
        let clean = sample_points();
        let mut points = sample_points();
        let counts = FaultPlan::new(spec, 3).apply(&mut points);
        assert!(counts.drifted);
        // Point 0 is the ramp anchor and must be untouched.
        assert_eq!(points[0].vbe_a.value(), clean[0].vbe_a.value());
        let d1 = points[1].vbe_a.value() - clean[1].vbe_a.value();
        let d2 = points[2].vbe_a.value() - clean[2].vbe_a.value();
        assert!(d1 != 0.0);
        assert!((d2 - 2.0 * d1).abs() < 1e-15, "linear ramp: {d1} vs {d2}");
        for (p, c) in points.iter().zip(&clean) {
            assert_eq!(p.dvbe.value(), c.dvbe.value());
        }
    }

    #[test]
    fn parse_presets_and_pairs() {
        assert_eq!(FaultSpec::parse("none").unwrap(), FaultSpec::none());
        assert_eq!(FaultSpec::parse("light").unwrap(), FaultSpec::light());
        assert_eq!(FaultSpec::parse("heavy").unwrap(), FaultSpec::heavy());
        let spec = FaultSpec::parse("noise=0.5,noise_sigma=0.02,nan=0.125").unwrap();
        assert_eq!(spec.noise_probability, 0.5);
        assert_eq!(spec.noise_sigma_volts, 0.02);
        assert_eq!(spec.nan_probability, 0.125);
        assert_eq!(spec.stuck_probability, 0.0);
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("noise=1.5").is_err());
        assert!(FaultSpec::parse("noise=abc").is_err());
        assert!(FaultSpec::parse("").is_err());
        assert!(FaultSpec::parse("drift=-1e-3").is_err());
    }

    #[test]
    fn counts_total_adds_up() {
        let counts = FaultCounts {
            noise_bursts: 2,
            stuck: 1,
            dropped: 1,
            non_finite: 3,
            drifted: true,
        };
        assert_eq!(counts.total(), 8);
    }
}
