//! The Pt100 contact temperature sensor.
//!
//! The paper: "the temperature sensor HP34970A with sonde pt100 4 wires and
//! a precision less than 1 °C is placed on the component". The crucial
//! systematic effect is not the sensor's own error — it is *where it sits*:
//! on the package, reading the case temperature, blind to the self-heated
//! junction. Both effects are modelled.

use icvbe_units::Kelvin;

use crate::noise::NoiseSource;

/// A Pt100-class contact sensor with calibration and readout errors.
#[derive(Debug, Clone)]
pub struct Pt100Sensor {
    /// Additive calibration offset, kelvin.
    offset: f64,
    /// Relative gain (span) error.
    gain_error: f64,
    /// RMS readout noise, kelvin.
    noise_rms: f64,
    noise: NoiseSource,
}

impl Pt100Sensor {
    /// Creates a sensor with explicit error terms.
    #[must_use]
    pub fn new(offset: f64, gain_error: f64, noise_rms: f64, seed: u64) -> Self {
        Pt100Sensor {
            offset,
            gain_error,
            noise_rms,
            noise: NoiseSource::seeded(seed),
        }
    }

    /// The paper's bench: class-A four-wire Pt100, <1 K total error.
    #[must_use]
    pub fn paper_bench(seed: u64) -> Self {
        Pt100Sensor::new(0.15, 5e-4, 0.05, seed)
    }

    /// An ideal sensor.
    #[must_use]
    pub fn ideal(seed: u64) -> Self {
        Pt100Sensor::new(0.0, 0.0, 0.0, seed)
    }

    /// Reads a true contact temperature.
    pub fn read(&mut self, truth: Kelvin) -> Kelvin {
        let celsius_truth = truth.value() - 273.15;
        let reading = celsius_truth * (1.0 + self.gain_error)
            + self.offset
            + self.noise.sample_normal(0.0, self.noise_rms);
        Kelvin::new(reading + 273.15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sensor_is_transparent() {
        let mut s = Pt100Sensor::ideal(0);
        assert_eq!(s.read(Kelvin::new(297.0)).value(), 297.0);
    }

    #[test]
    fn paper_bench_is_sub_kelvin_over_the_range() {
        let mut s = Pt100Sensor::paper_bench(5);
        for t in [223.15, 297.0, 398.15] {
            let worst = (0..50)
                .map(|_| (s.read(Kelvin::new(t)).value() - t).abs())
                .fold(0.0_f64, f64::max);
            assert!(worst < 1.0, "error {worst} at {t} K exceeds the 1 K spec");
        }
    }

    #[test]
    fn gain_error_scales_with_celsius_span() {
        let mut s = Pt100Sensor::new(0.0, 0.01, 0.0, 0);
        // At 0 °C a span error contributes nothing.
        assert!((s.read(Kelvin::new(273.15)).value() - 273.15).abs() < 1e-12);
        // At 100 °C it contributes 1 K.
        assert!((s.read(Kelvin::new(373.15)).value() - 374.15).abs() < 1e-12);
    }
}
