//! The virtual measurement bench.
//!
//! The paper's data comes from an HP4156 parameter analyser, a Pt100
//! contact sensor, and five diffusion-lot samples soaked in a hermetic
//! chamber. None of that hardware exists here, so this crate simulates it:
//!
//! - [`noise`]: seeded Gaussian noise and ADC quantization,
//! - [`faults`]: deterministic measurement-fault injection (noise bursts,
//!   stuck readings, dropped points, offset drift, NaN/Inf),
//! - [`chaos`]: deterministic *environment*-fault injection (torn
//!   checkpoint writes, `ENOSPC`/`EIO`, socket stalls/resets, die panics),
//! - [`smu`]: the source-measure unit (gain/offset error, noise floor,
//!   finite resolution) standing in for the HP4156,
//! - [`pt100`]: the contact temperature sensor (calibration error, contact
//!   coupling, sub-1 K precision as quoted in the paper),
//! - [`montecarlo`]: seeded per-die process variation — the "five samples
//!   of the test cell" of Table 1,
//! - [`bench`](mod@crate::bench): campaign orchestration: chamber soak → electro-thermal
//!   equilibrium → sensor and SMU readout of the pair structure, producing
//!   exactly the data sets the extraction methods consume.
//!
//! Everything is deterministic given a seed, so reproduced tables are
//! stable run to run.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bench;
pub mod chaos;
pub mod faults;
pub mod montecarlo;
pub mod noise;
pub mod pt100;
pub mod smu;
