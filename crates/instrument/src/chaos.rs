//! Deterministic environment-fault injection (chaos).
//!
//! Where [`faults`](crate::faults) corrupts *measurements*, this module
//! corrupts the *environment* the campaign runs in: checkpoint writes
//! that tear or hit a full disk, client sockets that stall or reset, and
//! die solves that panic outright. The goal is the same — recovery paths
//! must be tested invariants, not hopes — so the same design rules apply:
//!
//! - A [`ChaosPlan`] is a pure function of its [`ChaosSpec`] and seed.
//!   Every decision is keyed by an *operation index* chosen by the caller
//!   (a checkpoint generation, a die index), so the verdict for one
//!   operation never depends on how many other operations ran or in what
//!   order — byte-reproducible at any thread count.
//! - The all-zero spec ([`ChaosSpec::none`]) is a strict no-op: every
//!   query returns "no fault" before seeding an RNG or drawing a number.
//!
//! | fault       | injected adversity                          | hardened layer        |
//! |-------------|---------------------------------------------|-----------------------|
//! | write_error | `ENOSPC`/`EIO` before any byte hits disk     | checkpoint writer     |
//! | short_write | write fails after a prefix hits disk         | checkpoint writer     |
//! | torn        | write "succeeds" but only a prefix persists  | checkpoint load ladder|
//! | stall       | accepted socket goes silent for a while      | socket read timeouts  |
//! | reset       | accepted socket drops before the handshake   | connection handling   |
//! | die_panic   | die solve panics mid-flight                  | worker `catch_unwind` |

use std::error::Error;
use std::fmt;
use std::path::Path;

use crate::noise::NoiseSource;

/// Knobs of the deterministic environment-fault injector. All-zero (the
/// default) disables injection entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosSpec {
    /// Per-write probability the write fails with `ENOSPC`/`EIO` before
    /// any byte reaches the file.
    pub write_error_probability: f64,
    /// Per-write probability only a prefix of the payload is written
    /// before the write errors out (the torn prefix stays on disk).
    pub short_write_probability: f64,
    /// Per-write probability the write *reports success* but only a
    /// prefix of the payload actually persists — the crash-consistency
    /// hole torn-file recovery must close.
    pub torn_file_probability: f64,
    /// Per-connection probability the socket stalls (goes silent) after
    /// connecting.
    pub stall_probability: f64,
    /// Stall duration in milliseconds when a stall fires.
    pub stall_millis: u64,
    /// Per-connection probability the socket resets (drops) immediately.
    pub reset_probability: f64,
    /// Per-die probability the die's solve panics mid-flight.
    pub die_panic_probability: f64,
}

/// Parse/validation error for a chaos spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSpecError {
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for ChaosSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad chaos spec: {}", self.detail)
    }
}

impl Error for ChaosSpecError {}

fn spec_err(detail: impl Into<String>) -> ChaosSpecError {
    ChaosSpecError {
        detail: detail.into(),
    }
}

impl ChaosSpec {
    /// The all-zero spec: injection disabled, strict no-op on every query.
    #[must_use]
    pub fn none() -> Self {
        ChaosSpec::default()
    }

    /// A mildly hostile environment: occasional torn writes and stalls.
    #[must_use]
    pub fn light() -> Self {
        ChaosSpec {
            write_error_probability: 0.05,
            short_write_probability: 0.05,
            torn_file_probability: 0.05,
            stall_probability: 0.05,
            stall_millis: 50,
            reset_probability: 0.05,
            die_panic_probability: 0.02,
        }
    }

    /// A badly misbehaving environment: most checkpoints and connections
    /// see at least one fault, exercising every recovery path.
    #[must_use]
    pub fn heavy() -> Self {
        ChaosSpec {
            write_error_probability: 0.20,
            short_write_probability: 0.15,
            torn_file_probability: 0.20,
            stall_probability: 0.20,
            stall_millis: 100,
            reset_probability: 0.15,
            die_panic_probability: 0.10,
        }
    }

    /// Whether every knob is zero (injection disabled).
    #[must_use]
    pub fn is_none(&self) -> bool {
        *self == ChaosSpec::default()
    }

    /// Validates probabilities (finite, in `[0, 1]`).
    ///
    /// # Errors
    ///
    /// [`ChaosSpecError`] naming the offending knob.
    pub fn validate(&self) -> Result<(), ChaosSpecError> {
        let probs = [
            ("write_error", self.write_error_probability),
            ("short_write", self.short_write_probability),
            ("torn", self.torn_file_probability),
            ("stall", self.stall_probability),
            ("reset", self.reset_probability),
            ("die_panic", self.die_panic_probability),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(spec_err(format!(
                    "probability '{name}' must be in [0, 1], got {p}"
                )));
            }
        }
        Ok(())
    }

    /// Parses a spec string: a preset name (`none`, `light`, `heavy`) or
    /// comma-separated `key=value` pairs over the keys `write_error`,
    /// `short_write`, `torn`, `stall`, `stall_ms`, `reset`, `die_panic`.
    /// Unlisted keys keep their [`ChaosSpec::none`] value of zero.
    ///
    /// # Errors
    ///
    /// [`ChaosSpecError`] on an unknown key, an unparsable value, or an
    /// out-of-range knob.
    pub fn parse(text: &str) -> Result<Self, ChaosSpecError> {
        let trimmed = text.trim();
        match trimmed {
            "none" => return Ok(ChaosSpec::none()),
            "light" => return Ok(ChaosSpec::light()),
            "heavy" => return Ok(ChaosSpec::heavy()),
            "" => return Err(spec_err("empty spec (try 'light', 'heavy' or key=value)")),
            _ => {}
        }
        let keys = "write_error, short_write, torn, stall, stall_ms, reset, die_panic";
        let mut spec = ChaosSpec::none();
        for pair in trimmed.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                return Err(spec_err(format!(
                    "expected key=value, got '{pair}' (keys: {keys})"
                )));
            };
            let value = value.trim();
            match key.trim() {
                "stall_ms" => {
                    spec.stall_millis = value
                        .parse()
                        .map_err(|_| spec_err(format!("'{value}' is not an integer")))?;
                }
                other => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| spec_err(format!("'{value}' is not a number")))?;
                    match other {
                        "write_error" => spec.write_error_probability = p,
                        "short_write" => spec.short_write_probability = p,
                        "torn" => spec.torn_file_probability = p,
                        "stall" => spec.stall_probability = p,
                        "reset" => spec.reset_probability = p,
                        "die_panic" => spec.die_panic_probability = p,
                        unknown => {
                            return Err(spec_err(format!("unknown key '{unknown}' (keys: {keys})")))
                        }
                    }
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

/// The verdict for one file write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// No injected fault: the write proceeds untouched.
    None,
    /// The write fails with `ENOSPC` before any byte reaches the file.
    NoSpace,
    /// The write fails with `EIO` before any byte reaches the file.
    Io,
    /// The write errors out after `keep` bytes hit the file (the torn
    /// prefix persists, the caller sees the error).
    Short {
        /// Bytes that reached the file before the failure.
        keep: usize,
    },
    /// The write reports success but only `keep` bytes persist — the
    /// caller proceeds believing the file is whole.
    Torn {
        /// Bytes that actually persisted.
        keep: usize,
    },
}

/// The verdict for one accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// No injected fault.
    None,
    /// The peer goes silent for this many milliseconds.
    Stall {
        /// Stall duration.
        millis: u64,
    },
    /// The connection drops immediately.
    Reset,
}

/// Decision domains: each query class mixes a distinct tag into the
/// per-operation key so a write, a socket and a die with the same index
/// never share a draw.
const DOMAIN_WRITE: u64 = 0x57;
const DOMAIN_SOCKET: u64 = 0x50;
const DOMAIN_DIE: u64 = 0x44;

/// SplitMix64 finalizer over `(seed, domain, op)`: the per-operation RNG
/// key. Uncorrelated across consecutive ops and across domains.
fn mix(seed: u64, domain: u64, op: u64) -> u64 {
    let mut z = seed
        .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(op.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded environment-fault injector: a pure function of
/// `(spec, seed, operation index)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPlan {
    spec: ChaosSpec,
    seed: u64,
}

impl ChaosPlan {
    /// A plan injecting `spec`, deterministically from `seed`.
    #[must_use]
    pub fn new(spec: ChaosSpec, seed: u64) -> Self {
        ChaosPlan { spec, seed }
    }

    /// The spec this plan injects.
    #[must_use]
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// The verdict for write number `op` of a `len`-byte payload.
    ///
    /// Strict no-op (no RNG) when the spec is all-zero. Otherwise the
    /// draw order is fixed — fault class, error flavour, keep fraction —
    /// so the verdict depends only on `(spec, seed, op, len)`.
    #[must_use]
    pub fn write_fault(&self, op: u64, len: usize) -> WriteFault {
        if self.spec.is_none() {
            return WriteFault::None;
        }
        let mut rng = NoiseSource::seeded(mix(self.seed, DOMAIN_WRITE, op));
        if self.spec.write_error_probability > 0.0
            && rng.sample_uniform(0.0, 1.0) < self.spec.write_error_probability
        {
            return if rng.sample_uniform(0.0, 1.0) < 0.5 {
                WriteFault::NoSpace
            } else {
                WriteFault::Io
            };
        }
        // Both truncation flavours keep a strict prefix: at least one byte
        // short of the payload, so the damage is always observable.
        let keep = |rng: &mut NoiseSource| {
            let f = rng.sample_uniform(0.0, 1.0);
            ((len as f64 * f) as usize).min(len.saturating_sub(1))
        };
        if self.spec.short_write_probability > 0.0
            && rng.sample_uniform(0.0, 1.0) < self.spec.short_write_probability
        {
            return WriteFault::Short {
                keep: keep(&mut rng),
            };
        }
        if self.spec.torn_file_probability > 0.0
            && rng.sample_uniform(0.0, 1.0) < self.spec.torn_file_probability
        {
            return WriteFault::Torn {
                keep: keep(&mut rng),
            };
        }
        WriteFault::None
    }

    /// The verdict for accepted connection number `op`.
    #[must_use]
    pub fn socket_fault(&self, op: u64) -> SocketFault {
        if self.spec.is_none() {
            return SocketFault::None;
        }
        let mut rng = NoiseSource::seeded(mix(self.seed, DOMAIN_SOCKET, op));
        if self.spec.reset_probability > 0.0
            && rng.sample_uniform(0.0, 1.0) < self.spec.reset_probability
        {
            return SocketFault::Reset;
        }
        if self.spec.stall_probability > 0.0
            && rng.sample_uniform(0.0, 1.0) < self.spec.stall_probability
        {
            return SocketFault::Stall {
                millis: self.spec.stall_millis,
            };
        }
        SocketFault::None
    }

    /// Whether die number `die` is injected with a mid-solve panic.
    /// Keyed by the die index alone, so the verdict is identical at any
    /// thread count or batch width.
    #[must_use]
    pub fn die_panics(&self, die: u64) -> bool {
        if self.spec.die_panic_probability <= 0.0 {
            return false;
        }
        let mut rng = NoiseSource::seeded(mix(self.seed, DOMAIN_DIE, die));
        rng.sample_uniform(0.0, 1.0) < self.spec.die_panic_probability
    }

    /// Writes `bytes` to `path` through the injector: the real write when
    /// the verdict is [`WriteFault::None`], otherwise the corresponding
    /// adversity — errors leave either nothing or a torn prefix on disk,
    /// and [`WriteFault::Torn`] leaves a torn prefix *and lies* with `Ok`.
    ///
    /// # Errors
    ///
    /// Genuine I/O errors from the underlying write, plus the injected
    /// `ENOSPC`/`EIO`/short-write failures.
    pub fn write_file(&self, op: u64, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        match self.write_fault(op, bytes.len()) {
            WriteFault::None => std::fs::write(path, bytes),
            WriteFault::NoSpace => Err(std::io::Error::other(
                "chaos: ENOSPC (no space left on device)",
            )),
            WriteFault::Io => Err(std::io::Error::other("chaos: EIO (input/output error)")),
            WriteFault::Short { keep } => {
                let _ = std::fs::write(path, &bytes[..keep]);
                Err(std::io::Error::other(format!(
                    "chaos: short write ({keep} of {} bytes)",
                    bytes.len()
                )))
            }
            WriteFault::Torn { keep } => std::fs::write(path, &bytes[..keep]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_spec_never_faults() {
        let plan = ChaosPlan::new(ChaosSpec::none(), 0xDEAD_BEEF);
        for op in 0..256 {
            assert_eq!(plan.write_fault(op, 1024), WriteFault::None);
            assert_eq!(plan.socket_fault(op), SocketFault::None);
            assert!(!plan.die_panics(op));
        }
    }

    #[test]
    fn same_seed_same_verdicts_different_seed_different() {
        let spec = ChaosSpec::heavy();
        let a: Vec<WriteFault> = (0..64)
            .map(|op| ChaosPlan::new(spec, 42).write_fault(op, 512))
            .collect();
        let b: Vec<WriteFault> = (0..64)
            .map(|op| ChaosPlan::new(spec, 42).write_fault(op, 512))
            .collect();
        assert_eq!(a, b);
        let c: Vec<WriteFault> = (0..64)
            .map(|op| ChaosPlan::new(spec, 43).write_fault(op, 512))
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn verdicts_are_keyed_per_operation_not_per_call_order() {
        // Querying op 7 first or last must not change its verdict: the
        // plan holds no mutable state.
        let plan = ChaosPlan::new(ChaosSpec::heavy(), 99);
        let first = plan.write_fault(7, 512);
        for op in 0..64 {
            let _ = plan.write_fault(op, 512);
        }
        assert_eq!(plan.write_fault(7, 512), first);
        let d = plan.die_panics(3);
        let _ = plan.die_panics(4);
        assert_eq!(plan.die_panics(3), d);
    }

    #[test]
    fn heavy_spec_hits_every_fault_class_eventually() {
        let plan = ChaosPlan::new(ChaosSpec::heavy(), 7);
        let mut saw = (false, false, false, false);
        for op in 0..4096 {
            match plan.write_fault(op, 512) {
                WriteFault::NoSpace => saw.0 = true,
                WriteFault::Io => saw.1 = true,
                WriteFault::Short { .. } => saw.2 = true,
                WriteFault::Torn { .. } => saw.3 = true,
                WriteFault::None => {}
            }
        }
        assert_eq!(saw, (true, true, true, true));
        assert!((0..4096).any(|op| plan.die_panics(op)));
        assert!((0..4096).any(|op| plan.socket_fault(op) == SocketFault::Reset));
        assert!(
            (0..4096).any(|op| matches!(plan.socket_fault(op), SocketFault::Stall { millis: 100 }))
        );
    }

    #[test]
    fn truncations_always_keep_a_strict_prefix() {
        let plan = ChaosPlan::new(ChaosSpec::heavy(), 11);
        for op in 0..4096 {
            match plan.write_fault(op, 64) {
                WriteFault::Short { keep } | WriteFault::Torn { keep } => {
                    assert!(keep < 64, "keep {keep} not a strict prefix");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn write_file_tears_and_errors_as_advertised() {
        let dir = std::env::temp_dir().join(format!("icvbe-chaos-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let payload = vec![b'x'; 256];
        let plan = ChaosPlan::new(ChaosSpec::heavy(), 5);
        for op in 0..512u64 {
            let path = dir.join("f");
            let _ = std::fs::remove_file(&path);
            let result = plan.write_file(op, &path, &payload);
            match plan.write_fault(op, payload.len()) {
                WriteFault::None => {
                    assert!(result.is_ok());
                    assert_eq!(std::fs::read(&path).unwrap().len(), 256);
                }
                WriteFault::NoSpace | WriteFault::Io => {
                    assert!(result.is_err());
                    assert!(!path.exists(), "error flavours must not touch the file");
                }
                WriteFault::Short { keep } => {
                    assert!(result.is_err());
                    assert_eq!(std::fs::read(&path).unwrap().len(), keep);
                }
                WriteFault::Torn { keep } => {
                    assert!(result.is_ok(), "torn writes lie");
                    assert_eq!(std::fs::read(&path).unwrap().len(), keep);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_presets_and_pairs() {
        assert_eq!(ChaosSpec::parse("none").unwrap(), ChaosSpec::none());
        assert_eq!(ChaosSpec::parse("light").unwrap(), ChaosSpec::light());
        assert_eq!(ChaosSpec::parse("heavy").unwrap(), ChaosSpec::heavy());
        let spec = ChaosSpec::parse("torn=0.5,stall=0.25,stall_ms=10").unwrap();
        assert_eq!(spec.torn_file_probability, 0.5);
        assert_eq!(spec.stall_probability, 0.25);
        assert_eq!(spec.stall_millis, 10);
        assert_eq!(spec.write_error_probability, 0.0);
        assert!(ChaosSpec::parse("bogus=1").is_err());
        assert!(ChaosSpec::parse("torn=1.5").is_err());
        assert!(ChaosSpec::parse("torn=abc").is_err());
        assert!(ChaosSpec::parse("stall_ms=abc").is_err());
        assert!(ChaosSpec::parse("").is_err());
    }
}
