//! Campaign orchestration: the full measurement chain from chamber
//! setpoint to extraction-ready data.
//!
//! For every setpoint the bench:
//!
//! 1. soaks the chamber (ambient = setpoint + controller offset),
//! 2. solves the electro-thermal fixed point — the pair structure plus the
//!    rest of the die dissipate power through the package, so the junction
//!    runs above ambient,
//! 3. solves the circuit at the *junction* temperature,
//! 4. reads the Pt100 (which sees the case, not the junction) and the SMU
//!    channels (which see noise, gain error and quantization).
//!
//! The output is exactly what the paper's extraction consumed: sensor
//! temperatures, `VBE`/`dVBE` readings and bias currents — with the die
//! truth retained alongside for validation.

use std::error::Error;
use std::fmt;

use icvbe_bandgap::pair::{CompiledPair, PairReading};
use icvbe_core::meijer::{MeijerMeasurement, MeijerPoint};
use icvbe_spice::batch::{BatchWorkspace, MAX_LANES};
use icvbe_spice::solver::{BypassOptions, DcOptions};
use icvbe_spice::workspace::{SolveStats, SolveWorkspace};
use icvbe_thermal::chamber::ThermalChamber;
use icvbe_thermal::network::ThermalPath;
use icvbe_thermal::selfheat::{solve_die_temperature, DieOperatingPoint};
use icvbe_thermal::ThermalError;
use icvbe_units::{Ampere, Celsius, Kelvin, Volt};

use crate::montecarlo::DieSample;
use crate::pt100::Pt100Sensor;
use crate::smu::VirtualSmu;

/// Error produced by a measurement campaign.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// The circuit solver failed at some setpoint.
    Circuit(icvbe_spice::SpiceError),
    /// The electro-thermal fixed point failed.
    Thermal(ThermalError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Circuit(e) => write!(f, "circuit solve failed: {e}"),
            BenchError::Thermal(e) => write!(f, "thermal solve failed: {e}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Circuit(e) => Some(e),
            BenchError::Thermal(e) => Some(e),
        }
    }
}

#[doc(hidden)]
impl From<icvbe_spice::SpiceError> for BenchError {
    fn from(e: icvbe_spice::SpiceError) -> Self {
        BenchError::Circuit(e)
    }
}

#[doc(hidden)]
impl From<ThermalError> for BenchError {
    fn from(e: ThermalError) -> Self {
        BenchError::Thermal(e)
    }
}

/// One measured setpoint of the pair structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCampaignPoint {
    /// Chamber setpoint.
    pub setpoint: Kelvin,
    /// What the Pt100 reported (the paper's "measured temperature").
    pub sensor_temperature: Kelvin,
    /// Ground-truth junction temperature (not available to a real bench).
    pub die_temperature: Kelvin,
    /// SMU reading of `VBE(QA)`.
    pub vbe_a: Volt,
    /// SMU reading of `VBE(QB)`.
    pub vbe_b: Volt,
    /// SMU reading of the differential `dVBE` (includes the readout-chain
    /// offset of the die sample).
    pub dvbe: Volt,
    /// SMU reading of QA's collector current.
    pub ic_a: Ampere,
    /// SMU reading of QB's collector current.
    pub ic_b: Ampere,
}

/// How the compiled measurement path drives the circuit solver.
///
/// Every switch is a pure speed/observability knob: polishing (always on
/// for campaigns) plus the solver's exact-mode re-verification make the
/// measured points bit-identical across all eight combinations — only the
/// iteration and bypass counters differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveMode {
    /// Seed each circuit solve from the previous converged solution.
    pub warm_start: bool,
    /// Skip device re-evaluation inside Newton when controlling voltages
    /// moved less than the bypass tolerance (re-verified exactly on
    /// acceptance).
    pub bypass: bool,
    /// Factor through the frozen symbolic sparsity plan instead of dense
    /// LU (bitwise-identical results).
    pub sparse: bool,
}

impl Default for SolveMode {
    fn default() -> Self {
        SolveMode {
            warm_start: true,
            bypass: true,
            sparse: true,
        }
    }
}

impl SolveMode {
    /// The ablation baseline: cold starts, no bypass, dense LU.
    #[must_use]
    pub fn baseline() -> Self {
        SolveMode {
            warm_start: false,
            bypass: false,
            sparse: false,
        }
    }
}

/// Per-thread scratch for the warm measurement path: solver buffers plus
/// iteration counters.
///
/// One scratch serves any number of dies sequentially; nothing in it
/// affects results, only speed and observability. The embedded
/// [`SolveStats`] and the self-heating counter let the campaign layer
/// report Newton iteration counts and warm-start hit rates without
/// re-plumbing every call site.
#[derive(Debug, Default)]
pub struct BenchScratch {
    /// Circuit solver workspace (Newton/LU buffers + solve statistics).
    pub solve: SolveWorkspace,
    /// Electro-thermal fixed-point iterations accumulated.
    pub selfheat_iterations: u64,
    /// Optional process-wide symbolic-LU plan cache, installed on every
    /// pair compiled through this scratch. `None` (the default) keeps the
    /// historical per-assembly analysis; results are identical either way.
    pub symbolic_cache: Option<std::sync::Arc<icvbe_spice::cache::SymbolicCache>>,
}

impl BenchScratch {
    /// An empty scratch.
    #[must_use]
    pub fn new() -> Self {
        BenchScratch::default()
    }

    /// Returns and resets the accumulated `(solve stats, self-heating
    /// iterations)`.
    pub fn take_counters(&mut self) -> (SolveStats, u64) {
        let stats = self.solve.stats.take();
        let selfheat = std::mem::take(&mut self.selfheat_iterations);
        (stats, selfheat)
    }
}

/// The virtual bench: thermal environment plus instruments.
#[derive(Debug)]
pub struct TestStructureBench {
    /// Junction-to-ambient path of the packaged die (scaled per sample).
    pub path: ThermalPath,
    /// Power dissipated by the rest of the die (other structures, the
    /// bias network, the output stage driving the pads), in watts. Treated
    /// as temperature-independent: the chip runs from a fixed supply.
    pub auxiliary_power_watts: f64,
    /// The parameter analyser.
    pub smu: VirtualSmu,
    /// The contact temperature sensor.
    pub sensor: Pt100Sensor,
    /// Chamber controller steady-state offset, kelvin.
    pub chamber_offset: f64,
}

impl TestStructureBench {
    /// The paper's bench: ceramic package in a hermetic partition,
    /// HP4156-class SMU, Pt100 sensor.
    #[must_use]
    pub fn paper_bench(seed: u64) -> Self {
        TestStructureBench {
            // A small ceramic package in the still air of the hermetic
            // partition: higher case-to-ambient resistance than a bench in
            // free air.
            path: ThermalPath::still_air_dip(),
            auxiliary_power_watts: 200e-3,
            smu: VirtualSmu::hp4156_class(seed),
            sensor: Pt100Sensor::paper_bench(seed.wrapping_add(1)),
            chamber_offset: 0.0,
        }
    }

    /// An idealized bench: no self-heating, perfect instruments. Useful to
    /// isolate the effect of any single imperfection.
    #[must_use]
    pub fn ideal(seed: u64) -> Self {
        TestStructureBench {
            path: ThermalPath::ideal(),
            auxiliary_power_watts: 0.0,
            smu: VirtualSmu::ideal(seed),
            sensor: Pt100Sensor::ideal(seed.wrapping_add(1)),
            chamber_offset: 0.0,
        }
    }

    /// Measures one die at one chamber setpoint.
    ///
    /// # Errors
    ///
    /// Propagates circuit and thermal solve failures.
    pub fn measure_pair_at(
        &mut self,
        sample: &DieSample,
        bias: Ampere,
        setpoint: Celsius,
    ) -> Result<PairCampaignPoint, BenchError> {
        let structure = sample.pair_structure(bias);
        let chamber = ThermalChamber::new(setpoint.to_kelvin(), self.chamber_offset);
        let path = self.path.scaled(sample.rth_scale)?;
        let ambient = chamber.ambient();

        // Electro-thermal fixed point: the structure + the rest of the die
        // heat the junction; the pair's own dissipation depends on its
        // (junction) temperature through the solved circuit.
        let aux = self.auxiliary_power_watts;
        let die = solve_die_temperature(
            ambient,
            &path,
            |t| {
                let p_pair = structure
                    .measure(t)
                    .map(|r| structure.power_watts(&r))
                    .unwrap_or(0.0);
                p_pair + aux
            },
            1e-4,
            60,
        )?;

        let reading = structure.measure(die.temperature)?;
        let case = chamber.sensor_reading(&path, die.power_watts);
        let sensor_temperature = self.sensor.read(case);

        Ok(PairCampaignPoint {
            setpoint: setpoint.to_kelvin(),
            sensor_temperature,
            die_temperature: die.temperature,
            vbe_a: self.smu.measure_voltage(reading.vbe_a),
            vbe_b: self.smu.measure_voltage(reading.vbe_b),
            dvbe: self.smu.measure_voltage(reading.dvbe),
            ic_a: self.smu.measure_current(reading.ic_a),
            ic_b: self.smu.measure_current(reading.ic_b),
        })
    }

    /// Runs a full setpoint sweep on one die.
    ///
    /// # Errors
    ///
    /// Propagates the first failing setpoint.
    pub fn run_pair_campaign(
        &mut self,
        sample: &DieSample,
        bias: Ampere,
        setpoints: &[Celsius],
    ) -> Result<Vec<PairCampaignPoint>, BenchError> {
        setpoints
            .iter()
            .map(|&c| self.measure_pair_at(sample, bias, c))
            .collect()
    }

    /// Solver options the hot path runs with: campaign defaults plus
    /// Newton polishing, which makes every solve's result bitwise
    /// independent of its starting point — the property that lets
    /// warm-started sweeps reproduce cold-started ones exactly.
    #[must_use]
    pub fn campaign_dc_options() -> DcOptions {
        let mut options = DcOptions::default();
        options.newton.polish = true;
        options
    }

    /// [`TestStructureBench::campaign_dc_options`] specialized to a
    /// [`SolveMode`]: the sparse switch maps directly, and `bypass`
    /// enables the device bypass at its default tolerances.
    #[must_use]
    pub fn campaign_dc_options_with(mode: SolveMode) -> DcOptions {
        let mut options = TestStructureBench::campaign_dc_options();
        options.sparse = mode.sparse;
        if mode.bypass {
            options.bypass = BypassOptions::active();
        }
        options
    }

    /// [`TestStructureBench::run_pair_campaign`] for the hot path: the
    /// circuit is compiled once for the whole sweep, the thermal path is
    /// scaled once, solver storage comes from `scratch`, and results are
    /// appended to the caller's `out` buffer (cleared first).
    ///
    /// With `mode.warm_start`, every circuit solve after the first is
    /// seeded from the previous converged solution — across self-heating
    /// iterations *and* across setpoints. Solves run with
    /// [`TestStructureBench::campaign_dc_options_with`] (Newton polishing
    /// plus the mode's sparse/bypass switches), so the measured points are
    /// bit-identical across every [`SolveMode`]; only the iteration and
    /// bypass counters differ.
    ///
    /// # Errors
    ///
    /// Propagates the first failing setpoint.
    pub fn run_pair_campaign_with(
        &mut self,
        sample: &DieSample,
        bias: Ampere,
        setpoints: &[Celsius],
        scratch: &mut BenchScratch,
        out: &mut Vec<PairCampaignPoint>,
        mode: SolveMode,
    ) -> Result<(), BenchError> {
        out.clear();
        let mut compiled = sample.pair_structure(bias).compile()?;
        if let Some(cache) = &scratch.symbolic_cache {
            compiled.use_symbolic_cache(std::sync::Arc::clone(cache));
        }
        let path = self.path.scaled(sample.rth_scale)?;
        let options = TestStructureBench::campaign_dc_options_with(mode);
        for &setpoint in setpoints {
            let point = self.measure_compiled_at(
                &mut compiled,
                &path,
                setpoint,
                &options,
                scratch,
                mode.warm_start,
            )?;
            out.push(point);
        }
        Ok(())
    }

    /// One setpoint of the compiled hot path; see
    /// [`TestStructureBench::run_pair_campaign_with`].
    fn measure_compiled_at(
        &mut self,
        compiled: &mut CompiledPair,
        path: &ThermalPath,
        setpoint: Celsius,
        options: &DcOptions,
        scratch: &mut BenchScratch,
        warm_start: bool,
    ) -> Result<PairCampaignPoint, BenchError> {
        let chamber = ThermalChamber::new(setpoint.to_kelvin(), self.chamber_offset);
        let ambient = chamber.ambient();
        let aux = self.auxiliary_power_watts;

        // The thermal trajectory starts at ambient in both warm and cold
        // modes: seeding it would change the rounding of the converged die
        // temperature and break warm/cold bit-identity. Warm starts only
        // seed Newton inside the power closure, where polishing erases
        // their trace.
        let die = {
            let solve = &mut scratch.solve;
            solve_die_temperature(
                ambient,
                path,
                |t| {
                    let p_pair = compiled
                        .measure_at(t, options, solve, warm_start)
                        .map(|r| compiled.structure().power_watts(&r))
                        .unwrap_or(0.0);
                    p_pair + aux
                },
                1e-4,
                60,
            )?
        };
        scratch.selfheat_iterations += die.iterations as u64;

        let reading =
            compiled.measure_at(die.temperature, options, &mut scratch.solve, warm_start)?;
        let case = chamber.sensor_reading(path, die.power_watts);
        let sensor_temperature = self.sensor.read(case);

        Ok(PairCampaignPoint {
            setpoint: setpoint.to_kelvin(),
            sensor_temperature,
            die_temperature: die.temperature,
            vbe_a: self.smu.measure_voltage(reading.vbe_a),
            vbe_b: self.smu.measure_voltage(reading.vbe_b),
            dvbe: self.smu.measure_voltage(reading.dvbe),
            ic_a: self.smu.measure_current(reading.ic_a),
            ic_b: self.smu.measure_current(reading.ic_b),
        })
    }

    /// Assembles the analytical-method measurement from three campaign
    /// points, using the given temperatures (sensor-read or
    /// dVBE-computed) for cold/reference/hot.
    #[must_use]
    pub fn meijer_from_points(
        points: [&PairCampaignPoint; 3],
        temperatures: [Kelvin; 3],
    ) -> MeijerMeasurement {
        let mk = |p: &PairCampaignPoint, t: Kelvin| MeijerPoint {
            temperature: t,
            vbe: p.vbe_a,
            ic: p.ic_a,
        };
        MeijerMeasurement {
            cold: mk(points[0], temperatures[0]),
            reference: mk(points[1], temperatures[1]),
            hot: mk(points[2], temperatures[2]),
        }
    }
}

/// One die of a lane-batched sweep ([`run_pair_campaign_batch`]): its
/// bench (instrument state), process sample, solver scratch and output
/// buffer. The slices of a batch are parallel — lane `l` of every input
/// belongs to the same die.
#[derive(Debug)]
pub struct BenchLane<'a> {
    /// The lane's virtual bench (thermal path template + instruments).
    pub bench: &'a mut TestStructureBench,
    /// The lane's process sample.
    pub sample: &'a DieSample,
    /// The lane's solver scratch (workspace, counters, symbolic cache).
    pub scratch: &'a mut BenchScratch,
    /// The lane's measured points (cleared, then one per completed
    /// setpoint).
    pub out: &'a mut Vec<PairCampaignPoint>,
}

/// Lane-utilization observability of the batched sweep. Purely
/// observational — identical campaigns produce identical aggregates at
/// any utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSweepStats {
    /// Lockstep solve rounds issued (each round drives every lane that
    /// currently needs a circuit solve).
    pub rounds: u64,
    /// `lanes_active[k]` counts rounds in which exactly `k` lanes entered
    /// batched stepping; bucket 0 counts rounds that fell back entirely to
    /// the scalar path (unprimed lanes, retired lanes).
    pub lanes_active: [u64; MAX_LANES + 1],
}

impl Default for BatchSweepStats {
    fn default() -> Self {
        BatchSweepStats {
            rounds: 0,
            lanes_active: [0; MAX_LANES + 1],
        }
    }
}

impl BatchSweepStats {
    /// Records one lockstep round with `entered` lanes stepping batched.
    pub fn record_round(&mut self, entered: usize) {
        self.rounds += 1;
        self.lanes_active[entered.min(MAX_LANES)] += 1;
    }

    /// Accumulates another stats block (per-corner blocks into a per-die
    /// or per-campaign total).
    pub fn merge(&mut self, other: &BatchSweepStats) {
        self.rounds += other.rounds;
        for (a, b) in self.lanes_active.iter_mut().zip(&other.lanes_active) {
            *a += b;
        }
    }

    /// Mean lanes entering per round (0 when no rounds ran).
    #[must_use]
    pub fn mean_lanes(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .lanes_active
            .iter()
            .enumerate()
            .map(|(k, &c)| k as u64 * c)
            .sum();
        weighted as f64 / self.rounds as f64
    }
}

/// Per-lane circuit state of one batched sweep.
struct LaneState {
    compiled: Option<CompiledPair>,
    path: Option<ThermalPath>,
}

/// One lockstep solve round: batch every masked lane that carries a warm
/// seed, then scalar-solve the lanes the batch could not carry (unprimed
/// first solves, retired lanes) — reproducing the scalar per-lane solve
/// sequence bit for bit. Results land in `readings[l]` for masked lanes.
#[allow(clippy::too_many_arguments)]
fn solve_round(
    lanes: &mut [BenchLane<'_>],
    states: &mut [LaneState],
    mask: &[bool],
    temps: &[Kelvin],
    options: &DcOptions,
    batch: &mut BatchWorkspace,
    stats: &mut BatchSweepStats,
    readings: &mut [Option<Result<PairReading, icvbe_spice::SpiceError>>],
) {
    for r in readings.iter_mut() {
        *r = None;
    }
    let selected: Vec<bool> = (0..lanes.len())
        .map(|l| mask[l] && states[l].compiled.is_some())
        .collect();
    let sel: Vec<usize> = (0..lanes.len()).filter(|&l| selected[l]).collect();
    if sel.is_empty() {
        return;
    }
    let sel_temps: Vec<Kelvin> = sel.iter().map(|&l| temps[l]).collect();
    let mut batched: Vec<Option<PairReading>> = vec![None; sel.len()];
    {
        let mut pairs: Vec<&mut CompiledPair> = Vec::with_capacity(sel.len());
        for (l, s) in states.iter_mut().enumerate() {
            if selected[l] {
                if let Some(c) = s.compiled.as_mut() {
                    pairs.push(c);
                }
            }
        }
        let mut workspaces: Vec<&mut SolveWorkspace> = Vec::with_capacity(sel.len());
        for (l, lane) in lanes.iter_mut().enumerate() {
            if selected[l] {
                workspaces.push(&mut lane.scratch.solve);
            }
        }
        let entered = CompiledPair::measure_lanes(
            &mut pairs,
            &sel_temps,
            options,
            &mut workspaces,
            batch,
            &mut batched,
        );
        stats.record_round(entered);
    }
    for (i, &l) in sel.iter().enumerate() {
        readings[l] = match batched[i] {
            Some(r) => Some(Ok(r)),
            None => {
                // Scalar fallback: exactly the solve the scalar sweep
                // performs at this point (the batched attempt only ever
                // warmed the device caches with exact bits).
                let Some(compiled) = states[l].compiled.as_mut() else {
                    continue;
                };
                Some(compiled.measure_at(temps[l], options, &mut lanes[l].scratch.solve, true))
            }
        };
    }
}

/// Runs the compiled setpoint sweep of up to [`MAX_LANES`] dies in
/// lockstep: at every electro-thermal fixed-point iteration the lanes'
/// circuit solves step through batched Newton together
/// ([`icvbe_spice::batch::solve_dc_batch`] via
/// [`CompiledPair::measure_lanes`]), while chamber physics, instrument
/// reads and the fixed-point recurrence stay per-lane scalar.
///
/// Every lane's measured points are **bit-identical** to a solo
/// [`TestStructureBench::run_pair_campaign_with`] on the same inputs: the
/// per-lane solve sequence is preserved exactly (first solves prime
/// scalar, warm solves batch, retired lanes redo the solve scalar), the
/// thermal trajectory starts at ambient per setpoint as in the scalar
/// sweep, and each lane's instruments see the same reading sequence.
///
/// `errors[l]` receives the first failure of lane `l` (after which the
/// lane stops sweeping, like the scalar sweep's early return); it stays
/// `None` for lanes that completed every setpoint. When batching cannot
/// apply at all (`mode` without warm starts or sparse solving, or more
/// lanes than [`MAX_LANES`]) every lane runs the scalar sweep unchanged.
pub fn run_pair_campaign_batch(
    lanes: &mut [BenchLane<'_>],
    bias: Ampere,
    setpoints: &[Celsius],
    mode: SolveMode,
    batch: &mut BatchWorkspace,
    stats: &mut BatchSweepStats,
    errors: &mut [Option<BenchError>],
) {
    for e in errors.iter_mut() {
        *e = None;
    }
    let n = lanes.len();
    if n == 0 || errors.len() != n {
        return;
    }
    if n > MAX_LANES || !mode.warm_start || !mode.sparse {
        for (lane, err) in lanes.iter_mut().zip(errors.iter_mut()) {
            *err = lane
                .bench
                .run_pair_campaign_with(lane.sample, bias, setpoints, lane.scratch, lane.out, mode)
                .err();
        }
        return;
    }
    let options = TestStructureBench::campaign_dc_options_with(mode);
    let mut states: Vec<LaneState> = Vec::with_capacity(n);
    for (lane, err) in lanes.iter_mut().zip(errors.iter_mut()) {
        lane.out.clear();
        let compiled = match lane.sample.pair_structure(bias).compile() {
            Ok(mut c) => {
                if let Some(cache) = &lane.scratch.symbolic_cache {
                    c.use_symbolic_cache(std::sync::Arc::clone(cache));
                }
                Some(c)
            }
            Err(e) => {
                *err = Some(e.into());
                None
            }
        };
        let path = match lane.bench.path.scaled(lane.sample.rth_scale) {
            Ok(p) => Some(p),
            Err(e) => {
                if err.is_none() {
                    *err = Some(e.into());
                }
                None
            }
        };
        states.push(LaneState { compiled, path });
    }

    let mut readings: Vec<Option<Result<PairReading, icvbe_spice::SpiceError>>> = vec![None; n];
    for &setpoint in setpoints {
        // Per-lane fixed-point state; the trajectory starts at ambient in
        // every lane, exactly like the scalar sweep (seeding it would
        // change the rounding of the converged die temperature).
        let mut t = [Kelvin::new(0.0); MAX_LANES];
        let mut ambient = [Kelvin::new(0.0); MAX_LANES];
        let mut last_step = [f64::INFINITY; MAX_LANES];
        let mut op = [None::<DieOperatingPoint>; MAX_LANES];
        let mut iterating = [false; MAX_LANES];
        for (l, lane) in lanes.iter_mut().enumerate() {
            if errors[l].is_some() || states[l].compiled.is_none() || states[l].path.is_none() {
                continue;
            }
            let chamber = ThermalChamber::new(setpoint.to_kelvin(), lane.bench.chamber_offset);
            ambient[l] = chamber.ambient();
            t[l] = ambient[l];
            iterating[l] = true;
        }
        // Lockstep electro-thermal fixed point: each round solves every
        // still-iterating lane's circuit (batched), then advances each
        // lane's under-relaxed recurrence with the scalar arithmetic.
        for round in 0..60usize {
            if !iterating[..n].iter().any(|&i| i) {
                break;
            }
            solve_round(
                lanes,
                &mut states,
                &iterating[..n],
                &t[..n],
                &options,
                batch,
                stats,
                &mut readings,
            );
            for l in 0..n {
                if !iterating[l] {
                    continue;
                }
                let p_pair = match &readings[l] {
                    Some(Ok(r)) => match states[l].compiled.as_ref() {
                        Some(c) => c.structure().power_watts(r),
                        None => 0.0,
                    },
                    // The scalar power closure maps a failed solve to
                    // zero dissipation and keeps iterating.
                    _ => 0.0,
                };
                let p = p_pair + lanes[l].bench.auxiliary_power_watts;
                if !p.is_finite() || p < 0.0 {
                    errors[l] = Some(BenchError::Thermal(ThermalError::parameter(format!(
                        "power callback returned {p} W at {}",
                        t[l]
                    ))));
                    iterating[l] = false;
                    continue;
                }
                let Some(path) = states[l].path.as_ref() else {
                    iterating[l] = false;
                    continue;
                };
                let target = path.die_temperature(ambient[l], p);
                let step = target.value() - t[l].value();
                last_step[l] = step.abs();
                t[l] = Kelvin::new(t[l].value() + 0.8 * step);
                if last_step[l] < 1e-4 {
                    op[l] = Some(DieOperatingPoint {
                        temperature: t[l],
                        power_watts: p,
                        iterations: round + 1,
                    });
                    iterating[l] = false;
                }
            }
        }
        let mut finished = [false; MAX_LANES];
        let mut die_temp = [Kelvin::new(0.0); MAX_LANES];
        for l in 0..n {
            if iterating[l] {
                // Budget exhausted without convergence: the scalar sweep's
                // thermal-runaway error.
                errors[l] = Some(BenchError::Thermal(ThermalError::NoConvergence {
                    iterations: 60,
                    last_step: last_step[l],
                }));
                iterating[l] = false;
            }
            if let Some(d) = op[l] {
                lanes[l].scratch.selfheat_iterations += d.iterations as u64;
                finished[l] = true;
                die_temp[l] = d.temperature;
            }
        }
        // The measurement solve at the converged junction temperature,
        // again in lockstep; a failed lane records the scalar sweep's
        // circuit error.
        solve_round(
            lanes,
            &mut states,
            &finished[..n],
            &die_temp[..n],
            &options,
            batch,
            stats,
            &mut readings,
        );
        for l in 0..n {
            if !finished[l] {
                continue;
            }
            let (Some(d), Some(path)) = (op[l], states[l].path.as_ref()) else {
                continue;
            };
            let reading = match readings[l].take() {
                Some(Ok(r)) => r,
                Some(Err(e)) => {
                    errors[l] = Some(e.into());
                    continue;
                }
                None => continue,
            };
            let lane = &mut lanes[l];
            let chamber = ThermalChamber::new(setpoint.to_kelvin(), lane.bench.chamber_offset);
            let case = chamber.sensor_reading(path, d.power_watts);
            let bench = &mut *lane.bench;
            let sensor_temperature = bench.sensor.read(case);
            let point = PairCampaignPoint {
                setpoint: setpoint.to_kelvin(),
                sensor_temperature,
                die_temperature: d.temperature,
                vbe_a: bench.smu.measure_voltage(reading.vbe_a),
                vbe_b: bench.smu.measure_voltage(reading.vbe_b),
                dvbe: bench.smu.measure_voltage(reading.dvbe),
                ic_a: bench.smu.measure_current(reading.ic_a),
                ic_b: bench.smu.measure_current(reading.ic_b),
            };
            lane.out.push(point);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::SampleFactory;

    #[test]
    fn ideal_bench_reports_truth() {
        let mut bench = TestStructureBench::ideal(0);
        let sample = DieSample::nominal(0);
        let p = bench
            .measure_pair_at(&sample, Ampere::new(1e-6), Celsius::new(25.0))
            .unwrap();
        assert!((p.die_temperature.value() - 298.15).abs() < 1e-9);
        assert!((p.sensor_temperature.value() - 298.15).abs() < 1e-9);
        assert!(p.dvbe.value() > 0.04 && p.dvbe.value() < 0.07);
    }

    #[test]
    fn paper_bench_die_runs_above_sensor() {
        let mut bench = TestStructureBench::paper_bench(2002);
        let sample = DieSample::nominal(0);
        let p = bench
            .measure_pair_at(&sample, Ampere::new(1e-6), Celsius::new(25.0))
            .unwrap();
        assert!(
            p.die_temperature.value() > p.sensor_temperature.value(),
            "die {} vs sensor {}",
            p.die_temperature,
            p.sensor_temperature
        );
        // Self-heating magnitude: the full powered die runs tens of kelvin
        // above ambient through the still-air package path.
        let dt = p.die_temperature.value() - p.setpoint.value();
        assert!(dt > 5.0 && dt < 60.0, "self-heating {dt} K");
    }

    #[test]
    fn campaign_covers_every_setpoint() {
        let mut bench = TestStructureBench::paper_bench(1);
        let sample = SampleFactory::seeded(5).draw(1);
        let setpoints: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
        let pts = bench
            .run_pair_campaign(&sample, Ampere::new(1e-6), &setpoints)
            .unwrap();
        assert_eq!(pts.len(), 3);
        assert!(pts
            .windows(2)
            .all(|w| w[0].dvbe.value() < w[1].dvbe.value()));
    }

    #[test]
    fn warm_and_cold_campaigns_are_bit_identical() {
        let setpoints: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
        let sample = SampleFactory::seeded(7).draw(3);

        let mut cold_bench = TestStructureBench::paper_bench(11);
        let mut cold_scratch = BenchScratch::new();
        let mut cold_points = Vec::new();
        cold_bench
            .run_pair_campaign_with(
                &sample,
                Ampere::new(1e-6),
                &setpoints,
                &mut cold_scratch,
                &mut cold_points,
                SolveMode {
                    warm_start: false,
                    ..SolveMode::default()
                },
            )
            .unwrap();

        let mut warm_bench = TestStructureBench::paper_bench(11);
        let mut warm_scratch = BenchScratch::new();
        let mut warm_points = Vec::new();
        warm_bench
            .run_pair_campaign_with(
                &sample,
                Ampere::new(1e-6),
                &setpoints,
                &mut warm_scratch,
                &mut warm_points,
                SolveMode::default(),
            )
            .unwrap();

        assert_eq!(cold_points, warm_points);
        let (cold_stats, cold_selfheat) = cold_scratch.take_counters();
        let (warm_stats, warm_selfheat) = warm_scratch.take_counters();
        // Identical physics, fewer Newton iterations.
        assert_eq!(cold_selfheat, warm_selfheat);
        assert_eq!(cold_stats.solves, warm_stats.solves);
        assert_eq!(cold_stats.warm_starts, 0);
        assert!(warm_stats.warm_starts >= warm_stats.solves - 1);
        assert!(
            warm_stats.newton_iterations < cold_stats.newton_iterations,
            "warm {} vs cold {} Newton iterations",
            warm_stats.newton_iterations,
            cold_stats.newton_iterations
        );
    }

    #[test]
    fn compiled_campaign_matches_per_setpoint_structure() {
        // The compiled path must agree with the allocating path up to the
        // polish-induced last-ulp difference; check physical closeness. The
        // SMU quantizes voltages on a ~1e-6 V grid, so a last-ulp shift in
        // the raw solve can flip one quantization boundary — the dvbe
        // tolerance must sit above one quantum, not at solver precision.
        let setpoints: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
        let sample = DieSample::nominal(0);
        let mut old_bench = TestStructureBench::paper_bench(5);
        let old = old_bench
            .run_pair_campaign(&sample, Ampere::new(1e-6), &setpoints)
            .unwrap();
        let mut new_bench = TestStructureBench::paper_bench(5);
        let mut scratch = BenchScratch::new();
        let mut new_points = Vec::new();
        new_bench
            .run_pair_campaign_with(
                &sample,
                Ampere::new(1e-6),
                &setpoints,
                &mut scratch,
                &mut new_points,
                SolveMode::default(),
            )
            .unwrap();
        assert_eq!(old.len(), new_points.len());
        for (a, b) in old.iter().zip(&new_points) {
            assert!((a.die_temperature.value() - b.die_temperature.value()).abs() < 1e-6);
            assert!((a.dvbe.value() - b.dvbe.value()).abs() < 2e-6);
        }
    }

    #[test]
    fn batched_sweep_is_bit_identical_to_scalar_sweeps() {
        let setpoints: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
        let bias = Ampere::new(1e-6);
        for lanes_n in [1usize, 2, 4] {
            let samples: Vec<DieSample> = (0..lanes_n)
                .map(|l| SampleFactory::seeded(21).draw(l + 1))
                .collect();

            // Scalar reference: each die swept solo.
            let mut reference = Vec::new();
            for (l, sample) in samples.iter().enumerate() {
                let mut bench = TestStructureBench::paper_bench(100 + l as u64);
                let mut scratch = BenchScratch::new();
                let mut pts = Vec::new();
                bench
                    .run_pair_campaign_with(
                        sample,
                        bias,
                        &setpoints,
                        &mut scratch,
                        &mut pts,
                        SolveMode::default(),
                    )
                    .unwrap();
                reference.push(pts);
            }

            // Batched run over fresh per-lane state.
            let mut benches: Vec<TestStructureBench> = (0..lanes_n)
                .map(|l| TestStructureBench::paper_bench(100 + l as u64))
                .collect();
            let mut scratches: Vec<BenchScratch> =
                (0..lanes_n).map(|_| BenchScratch::new()).collect();
            let mut outs: Vec<Vec<PairCampaignPoint>> = vec![Vec::new(); lanes_n];
            let mut lanes: Vec<BenchLane<'_>> = benches
                .iter_mut()
                .zip(samples.iter())
                .zip(scratches.iter_mut())
                .zip(outs.iter_mut())
                .map(|(((bench, sample), scratch), out)| BenchLane {
                    bench,
                    sample,
                    scratch,
                    out,
                })
                .collect();
            let mut batch = BatchWorkspace::new();
            let mut stats = BatchSweepStats::default();
            let mut errors: Vec<Option<BenchError>> = (0..lanes_n).map(|_| None).collect();
            run_pair_campaign_batch(
                &mut lanes,
                bias,
                &setpoints,
                SolveMode::default(),
                &mut batch,
                &mut stats,
                &mut errors,
            );
            drop(lanes);

            for l in 0..lanes_n {
                assert!(errors[l].is_none(), "lane {l} failed ({lanes_n} lanes)");
                assert_eq!(
                    outs[l], reference[l],
                    "lane {l} diverged from its scalar sweep ({lanes_n} lanes)"
                );
                assert_eq!(scratches[l].solve.stats.lane_retires, 0);
                assert!(scratches[l].solve.stats.batched_solves > 0);
            }
            assert!(stats.rounds > 0);
            // After the per-lane scalar prime, warm solves run batched:
            // with every lane healthy the full-width bucket dominates.
            assert!(
                stats.lanes_active[lanes_n] > 0,
                "no full-width round at {lanes_n} lanes: {:?}",
                stats.lanes_active
            );
            assert!(stats.mean_lanes() > 0.0);
        }
    }

    #[test]
    fn batched_sweep_scalar_mode_fallback_matches() {
        // A mode the lockstep driver cannot serve (no warm starts) must
        // route every lane through the scalar sweep unchanged.
        let setpoints: Vec<Celsius> = [-25.0, 75.0].map(Celsius::new).to_vec();
        let bias = Ampere::new(1e-6);
        let sample = SampleFactory::seeded(3).draw(2);
        let mode = SolveMode {
            warm_start: false,
            ..SolveMode::default()
        };

        let mut ref_bench = TestStructureBench::paper_bench(9);
        let mut ref_scratch = BenchScratch::new();
        let mut ref_pts = Vec::new();
        ref_bench
            .run_pair_campaign_with(
                &sample,
                bias,
                &setpoints,
                &mut ref_scratch,
                &mut ref_pts,
                mode,
            )
            .unwrap();

        let mut bench = TestStructureBench::paper_bench(9);
        let mut scratch = BenchScratch::new();
        let mut out = Vec::new();
        let mut lanes = [BenchLane {
            bench: &mut bench,
            sample: &sample,
            scratch: &mut scratch,
            out: &mut out,
        }];
        let mut batch = BatchWorkspace::new();
        let mut stats = BatchSweepStats::default();
        let mut errors = [None];
        run_pair_campaign_batch(
            &mut lanes,
            bias,
            &setpoints,
            mode,
            &mut batch,
            &mut stats,
            &mut errors,
        );
        assert!(errors[0].is_none());
        assert_eq!(out, ref_pts);
        assert_eq!(stats.rounds, 0, "no lockstep rounds in a scalar mode");
    }

    #[test]
    fn meijer_assembly_uses_given_temperatures() {
        let mut bench = TestStructureBench::ideal(3);
        let sample = DieSample::nominal(0);
        let pts = bench
            .run_pair_campaign(
                &sample,
                Ampere::new(1e-6),
                &[Celsius::new(-25.0), Celsius::new(25.0), Celsius::new(75.0)],
            )
            .unwrap();
        let m = TestStructureBench::meijer_from_points(
            [&pts[0], &pts[1], &pts[2]],
            [
                Kelvin::new(248.15),
                Kelvin::new(298.15),
                Kelvin::new(348.15),
            ],
        );
        assert!(m.validate().is_ok());
        assert_eq!(m.reference.temperature.value(), 298.15);
    }
}
