//! Campaign orchestration: the full measurement chain from chamber
//! setpoint to extraction-ready data.
//!
//! For every setpoint the bench:
//!
//! 1. soaks the chamber (ambient = setpoint + controller offset),
//! 2. solves the electro-thermal fixed point — the pair structure plus the
//!    rest of the die dissipate power through the package, so the junction
//!    runs above ambient,
//! 3. solves the circuit at the *junction* temperature,
//! 4. reads the Pt100 (which sees the case, not the junction) and the SMU
//!    channels (which see noise, gain error and quantization).
//!
//! The output is exactly what the paper's extraction consumed: sensor
//! temperatures, `VBE`/`dVBE` readings and bias currents — with the die
//! truth retained alongside for validation.

use std::error::Error;
use std::fmt;

use icvbe_bandgap::pair::CompiledPair;
use icvbe_core::meijer::{MeijerMeasurement, MeijerPoint};
use icvbe_spice::solver::{BypassOptions, DcOptions};
use icvbe_spice::workspace::{SolveStats, SolveWorkspace};
use icvbe_thermal::chamber::ThermalChamber;
use icvbe_thermal::network::ThermalPath;
use icvbe_thermal::selfheat::solve_die_temperature;
use icvbe_thermal::ThermalError;
use icvbe_units::{Ampere, Celsius, Kelvin, Volt};

use crate::montecarlo::DieSample;
use crate::pt100::Pt100Sensor;
use crate::smu::VirtualSmu;

/// Error produced by a measurement campaign.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// The circuit solver failed at some setpoint.
    Circuit(icvbe_spice::SpiceError),
    /// The electro-thermal fixed point failed.
    Thermal(ThermalError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Circuit(e) => write!(f, "circuit solve failed: {e}"),
            BenchError::Thermal(e) => write!(f, "thermal solve failed: {e}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Circuit(e) => Some(e),
            BenchError::Thermal(e) => Some(e),
        }
    }
}

#[doc(hidden)]
impl From<icvbe_spice::SpiceError> for BenchError {
    fn from(e: icvbe_spice::SpiceError) -> Self {
        BenchError::Circuit(e)
    }
}

#[doc(hidden)]
impl From<ThermalError> for BenchError {
    fn from(e: ThermalError) -> Self {
        BenchError::Thermal(e)
    }
}

/// One measured setpoint of the pair structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairCampaignPoint {
    /// Chamber setpoint.
    pub setpoint: Kelvin,
    /// What the Pt100 reported (the paper's "measured temperature").
    pub sensor_temperature: Kelvin,
    /// Ground-truth junction temperature (not available to a real bench).
    pub die_temperature: Kelvin,
    /// SMU reading of `VBE(QA)`.
    pub vbe_a: Volt,
    /// SMU reading of `VBE(QB)`.
    pub vbe_b: Volt,
    /// SMU reading of the differential `dVBE` (includes the readout-chain
    /// offset of the die sample).
    pub dvbe: Volt,
    /// SMU reading of QA's collector current.
    pub ic_a: Ampere,
    /// SMU reading of QB's collector current.
    pub ic_b: Ampere,
}

/// How the compiled measurement path drives the circuit solver.
///
/// Every switch is a pure speed/observability knob: polishing (always on
/// for campaigns) plus the solver's exact-mode re-verification make the
/// measured points bit-identical across all eight combinations — only the
/// iteration and bypass counters differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveMode {
    /// Seed each circuit solve from the previous converged solution.
    pub warm_start: bool,
    /// Skip device re-evaluation inside Newton when controlling voltages
    /// moved less than the bypass tolerance (re-verified exactly on
    /// acceptance).
    pub bypass: bool,
    /// Factor through the frozen symbolic sparsity plan instead of dense
    /// LU (bitwise-identical results).
    pub sparse: bool,
}

impl Default for SolveMode {
    fn default() -> Self {
        SolveMode {
            warm_start: true,
            bypass: true,
            sparse: true,
        }
    }
}

impl SolveMode {
    /// The ablation baseline: cold starts, no bypass, dense LU.
    #[must_use]
    pub fn baseline() -> Self {
        SolveMode {
            warm_start: false,
            bypass: false,
            sparse: false,
        }
    }
}

/// Per-thread scratch for the warm measurement path: solver buffers plus
/// iteration counters.
///
/// One scratch serves any number of dies sequentially; nothing in it
/// affects results, only speed and observability. The embedded
/// [`SolveStats`] and the self-heating counter let the campaign layer
/// report Newton iteration counts and warm-start hit rates without
/// re-plumbing every call site.
#[derive(Debug, Default)]
pub struct BenchScratch {
    /// Circuit solver workspace (Newton/LU buffers + solve statistics).
    pub solve: SolveWorkspace,
    /// Electro-thermal fixed-point iterations accumulated.
    pub selfheat_iterations: u64,
    /// Optional process-wide symbolic-LU plan cache, installed on every
    /// pair compiled through this scratch. `None` (the default) keeps the
    /// historical per-assembly analysis; results are identical either way.
    pub symbolic_cache: Option<std::sync::Arc<icvbe_spice::cache::SymbolicCache>>,
}

impl BenchScratch {
    /// An empty scratch.
    #[must_use]
    pub fn new() -> Self {
        BenchScratch::default()
    }

    /// Returns and resets the accumulated `(solve stats, self-heating
    /// iterations)`.
    pub fn take_counters(&mut self) -> (SolveStats, u64) {
        let stats = self.solve.stats.take();
        let selfheat = std::mem::take(&mut self.selfheat_iterations);
        (stats, selfheat)
    }
}

/// The virtual bench: thermal environment plus instruments.
#[derive(Debug)]
pub struct TestStructureBench {
    /// Junction-to-ambient path of the packaged die (scaled per sample).
    pub path: ThermalPath,
    /// Power dissipated by the rest of the die (other structures, the
    /// bias network, the output stage driving the pads), in watts. Treated
    /// as temperature-independent: the chip runs from a fixed supply.
    pub auxiliary_power_watts: f64,
    /// The parameter analyser.
    pub smu: VirtualSmu,
    /// The contact temperature sensor.
    pub sensor: Pt100Sensor,
    /// Chamber controller steady-state offset, kelvin.
    pub chamber_offset: f64,
}

impl TestStructureBench {
    /// The paper's bench: ceramic package in a hermetic partition,
    /// HP4156-class SMU, Pt100 sensor.
    #[must_use]
    pub fn paper_bench(seed: u64) -> Self {
        TestStructureBench {
            // A small ceramic package in the still air of the hermetic
            // partition: higher case-to-ambient resistance than a bench in
            // free air.
            path: ThermalPath::still_air_dip(),
            auxiliary_power_watts: 200e-3,
            smu: VirtualSmu::hp4156_class(seed),
            sensor: Pt100Sensor::paper_bench(seed.wrapping_add(1)),
            chamber_offset: 0.0,
        }
    }

    /// An idealized bench: no self-heating, perfect instruments. Useful to
    /// isolate the effect of any single imperfection.
    #[must_use]
    pub fn ideal(seed: u64) -> Self {
        TestStructureBench {
            path: ThermalPath::ideal(),
            auxiliary_power_watts: 0.0,
            smu: VirtualSmu::ideal(seed),
            sensor: Pt100Sensor::ideal(seed.wrapping_add(1)),
            chamber_offset: 0.0,
        }
    }

    /// Measures one die at one chamber setpoint.
    ///
    /// # Errors
    ///
    /// Propagates circuit and thermal solve failures.
    pub fn measure_pair_at(
        &mut self,
        sample: &DieSample,
        bias: Ampere,
        setpoint: Celsius,
    ) -> Result<PairCampaignPoint, BenchError> {
        let structure = sample.pair_structure(bias);
        let chamber = ThermalChamber::new(setpoint.to_kelvin(), self.chamber_offset);
        let path = self.path.scaled(sample.rth_scale)?;
        let ambient = chamber.ambient();

        // Electro-thermal fixed point: the structure + the rest of the die
        // heat the junction; the pair's own dissipation depends on its
        // (junction) temperature through the solved circuit.
        let aux = self.auxiliary_power_watts;
        let die = solve_die_temperature(
            ambient,
            &path,
            |t| {
                let p_pair = structure
                    .measure(t)
                    .map(|r| structure.power_watts(&r))
                    .unwrap_or(0.0);
                p_pair + aux
            },
            1e-4,
            60,
        )?;

        let reading = structure.measure(die.temperature)?;
        let case = chamber.sensor_reading(&path, die.power_watts);
        let sensor_temperature = self.sensor.read(case);

        Ok(PairCampaignPoint {
            setpoint: setpoint.to_kelvin(),
            sensor_temperature,
            die_temperature: die.temperature,
            vbe_a: self.smu.measure_voltage(reading.vbe_a),
            vbe_b: self.smu.measure_voltage(reading.vbe_b),
            dvbe: self.smu.measure_voltage(reading.dvbe),
            ic_a: self.smu.measure_current(reading.ic_a),
            ic_b: self.smu.measure_current(reading.ic_b),
        })
    }

    /// Runs a full setpoint sweep on one die.
    ///
    /// # Errors
    ///
    /// Propagates the first failing setpoint.
    pub fn run_pair_campaign(
        &mut self,
        sample: &DieSample,
        bias: Ampere,
        setpoints: &[Celsius],
    ) -> Result<Vec<PairCampaignPoint>, BenchError> {
        setpoints
            .iter()
            .map(|&c| self.measure_pair_at(sample, bias, c))
            .collect()
    }

    /// Solver options the hot path runs with: campaign defaults plus
    /// Newton polishing, which makes every solve's result bitwise
    /// independent of its starting point — the property that lets
    /// warm-started sweeps reproduce cold-started ones exactly.
    #[must_use]
    pub fn campaign_dc_options() -> DcOptions {
        let mut options = DcOptions::default();
        options.newton.polish = true;
        options
    }

    /// [`TestStructureBench::campaign_dc_options`] specialized to a
    /// [`SolveMode`]: the sparse switch maps directly, and `bypass`
    /// enables the device bypass at its default tolerances.
    #[must_use]
    pub fn campaign_dc_options_with(mode: SolveMode) -> DcOptions {
        let mut options = TestStructureBench::campaign_dc_options();
        options.sparse = mode.sparse;
        if mode.bypass {
            options.bypass = BypassOptions::active();
        }
        options
    }

    /// [`TestStructureBench::run_pair_campaign`] for the hot path: the
    /// circuit is compiled once for the whole sweep, the thermal path is
    /// scaled once, solver storage comes from `scratch`, and results are
    /// appended to the caller's `out` buffer (cleared first).
    ///
    /// With `mode.warm_start`, every circuit solve after the first is
    /// seeded from the previous converged solution — across self-heating
    /// iterations *and* across setpoints. Solves run with
    /// [`TestStructureBench::campaign_dc_options_with`] (Newton polishing
    /// plus the mode's sparse/bypass switches), so the measured points are
    /// bit-identical across every [`SolveMode`]; only the iteration and
    /// bypass counters differ.
    ///
    /// # Errors
    ///
    /// Propagates the first failing setpoint.
    pub fn run_pair_campaign_with(
        &mut self,
        sample: &DieSample,
        bias: Ampere,
        setpoints: &[Celsius],
        scratch: &mut BenchScratch,
        out: &mut Vec<PairCampaignPoint>,
        mode: SolveMode,
    ) -> Result<(), BenchError> {
        out.clear();
        let mut compiled = sample.pair_structure(bias).compile()?;
        if let Some(cache) = &scratch.symbolic_cache {
            compiled.use_symbolic_cache(std::sync::Arc::clone(cache));
        }
        let path = self.path.scaled(sample.rth_scale)?;
        let options = TestStructureBench::campaign_dc_options_with(mode);
        for &setpoint in setpoints {
            let point = self.measure_compiled_at(
                &mut compiled,
                &path,
                setpoint,
                &options,
                scratch,
                mode.warm_start,
            )?;
            out.push(point);
        }
        Ok(())
    }

    /// One setpoint of the compiled hot path; see
    /// [`TestStructureBench::run_pair_campaign_with`].
    fn measure_compiled_at(
        &mut self,
        compiled: &mut CompiledPair,
        path: &ThermalPath,
        setpoint: Celsius,
        options: &DcOptions,
        scratch: &mut BenchScratch,
        warm_start: bool,
    ) -> Result<PairCampaignPoint, BenchError> {
        let chamber = ThermalChamber::new(setpoint.to_kelvin(), self.chamber_offset);
        let ambient = chamber.ambient();
        let aux = self.auxiliary_power_watts;

        // The thermal trajectory starts at ambient in both warm and cold
        // modes: seeding it would change the rounding of the converged die
        // temperature and break warm/cold bit-identity. Warm starts only
        // seed Newton inside the power closure, where polishing erases
        // their trace.
        let die = {
            let solve = &mut scratch.solve;
            solve_die_temperature(
                ambient,
                path,
                |t| {
                    let p_pair = compiled
                        .measure_at(t, options, solve, warm_start)
                        .map(|r| compiled.structure().power_watts(&r))
                        .unwrap_or(0.0);
                    p_pair + aux
                },
                1e-4,
                60,
            )?
        };
        scratch.selfheat_iterations += die.iterations as u64;

        let reading =
            compiled.measure_at(die.temperature, options, &mut scratch.solve, warm_start)?;
        let case = chamber.sensor_reading(path, die.power_watts);
        let sensor_temperature = self.sensor.read(case);

        Ok(PairCampaignPoint {
            setpoint: setpoint.to_kelvin(),
            sensor_temperature,
            die_temperature: die.temperature,
            vbe_a: self.smu.measure_voltage(reading.vbe_a),
            vbe_b: self.smu.measure_voltage(reading.vbe_b),
            dvbe: self.smu.measure_voltage(reading.dvbe),
            ic_a: self.smu.measure_current(reading.ic_a),
            ic_b: self.smu.measure_current(reading.ic_b),
        })
    }

    /// Assembles the analytical-method measurement from three campaign
    /// points, using the given temperatures (sensor-read or
    /// dVBE-computed) for cold/reference/hot.
    #[must_use]
    pub fn meijer_from_points(
        points: [&PairCampaignPoint; 3],
        temperatures: [Kelvin; 3],
    ) -> MeijerMeasurement {
        let mk = |p: &PairCampaignPoint, t: Kelvin| MeijerPoint {
            temperature: t,
            vbe: p.vbe_a,
            ic: p.ic_a,
        };
        MeijerMeasurement {
            cold: mk(points[0], temperatures[0]),
            reference: mk(points[1], temperatures[1]),
            hot: mk(points[2], temperatures[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::SampleFactory;

    #[test]
    fn ideal_bench_reports_truth() {
        let mut bench = TestStructureBench::ideal(0);
        let sample = DieSample::nominal(0);
        let p = bench
            .measure_pair_at(&sample, Ampere::new(1e-6), Celsius::new(25.0))
            .unwrap();
        assert!((p.die_temperature.value() - 298.15).abs() < 1e-9);
        assert!((p.sensor_temperature.value() - 298.15).abs() < 1e-9);
        assert!(p.dvbe.value() > 0.04 && p.dvbe.value() < 0.07);
    }

    #[test]
    fn paper_bench_die_runs_above_sensor() {
        let mut bench = TestStructureBench::paper_bench(2002);
        let sample = DieSample::nominal(0);
        let p = bench
            .measure_pair_at(&sample, Ampere::new(1e-6), Celsius::new(25.0))
            .unwrap();
        assert!(
            p.die_temperature.value() > p.sensor_temperature.value(),
            "die {} vs sensor {}",
            p.die_temperature,
            p.sensor_temperature
        );
        // Self-heating magnitude: the full powered die runs tens of kelvin
        // above ambient through the still-air package path.
        let dt = p.die_temperature.value() - p.setpoint.value();
        assert!(dt > 5.0 && dt < 60.0, "self-heating {dt} K");
    }

    #[test]
    fn campaign_covers_every_setpoint() {
        let mut bench = TestStructureBench::paper_bench(1);
        let sample = SampleFactory::seeded(5).draw(1);
        let setpoints: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
        let pts = bench
            .run_pair_campaign(&sample, Ampere::new(1e-6), &setpoints)
            .unwrap();
        assert_eq!(pts.len(), 3);
        assert!(pts
            .windows(2)
            .all(|w| w[0].dvbe.value() < w[1].dvbe.value()));
    }

    #[test]
    fn warm_and_cold_campaigns_are_bit_identical() {
        let setpoints: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
        let sample = SampleFactory::seeded(7).draw(3);

        let mut cold_bench = TestStructureBench::paper_bench(11);
        let mut cold_scratch = BenchScratch::new();
        let mut cold_points = Vec::new();
        cold_bench
            .run_pair_campaign_with(
                &sample,
                Ampere::new(1e-6),
                &setpoints,
                &mut cold_scratch,
                &mut cold_points,
                SolveMode {
                    warm_start: false,
                    ..SolveMode::default()
                },
            )
            .unwrap();

        let mut warm_bench = TestStructureBench::paper_bench(11);
        let mut warm_scratch = BenchScratch::new();
        let mut warm_points = Vec::new();
        warm_bench
            .run_pair_campaign_with(
                &sample,
                Ampere::new(1e-6),
                &setpoints,
                &mut warm_scratch,
                &mut warm_points,
                SolveMode::default(),
            )
            .unwrap();

        assert_eq!(cold_points, warm_points);
        let (cold_stats, cold_selfheat) = cold_scratch.take_counters();
        let (warm_stats, warm_selfheat) = warm_scratch.take_counters();
        // Identical physics, fewer Newton iterations.
        assert_eq!(cold_selfheat, warm_selfheat);
        assert_eq!(cold_stats.solves, warm_stats.solves);
        assert_eq!(cold_stats.warm_starts, 0);
        assert!(warm_stats.warm_starts >= warm_stats.solves - 1);
        assert!(
            warm_stats.newton_iterations < cold_stats.newton_iterations,
            "warm {} vs cold {} Newton iterations",
            warm_stats.newton_iterations,
            cold_stats.newton_iterations
        );
    }

    #[test]
    fn compiled_campaign_matches_per_setpoint_structure() {
        // The compiled path must agree with the allocating path up to the
        // polish-induced last-ulp difference; check physical closeness. The
        // SMU quantizes voltages on a ~1e-6 V grid, so a last-ulp shift in
        // the raw solve can flip one quantization boundary — the dvbe
        // tolerance must sit above one quantum, not at solver precision.
        let setpoints: Vec<Celsius> = [-25.0, 25.0, 75.0].map(Celsius::new).to_vec();
        let sample = DieSample::nominal(0);
        let mut old_bench = TestStructureBench::paper_bench(5);
        let old = old_bench
            .run_pair_campaign(&sample, Ampere::new(1e-6), &setpoints)
            .unwrap();
        let mut new_bench = TestStructureBench::paper_bench(5);
        let mut scratch = BenchScratch::new();
        let mut new_points = Vec::new();
        new_bench
            .run_pair_campaign_with(
                &sample,
                Ampere::new(1e-6),
                &setpoints,
                &mut scratch,
                &mut new_points,
                SolveMode::default(),
            )
            .unwrap();
        assert_eq!(old.len(), new_points.len());
        for (a, b) in old.iter().zip(&new_points) {
            assert!((a.die_temperature.value() - b.die_temperature.value()).abs() < 1e-6);
            assert!((a.dvbe.value() - b.dvbe.value()).abs() < 2e-6);
        }
    }

    #[test]
    fn meijer_assembly_uses_given_temperatures() {
        let mut bench = TestStructureBench::ideal(3);
        let sample = DieSample::nominal(0);
        let pts = bench
            .run_pair_campaign(
                &sample,
                Ampere::new(1e-6),
                &[Celsius::new(-25.0), Celsius::new(25.0), Celsius::new(75.0)],
            )
            .unwrap();
        let m = TestStructureBench::meijer_from_points(
            [&pts[0], &pts[1], &pts[2]],
            [
                Kelvin::new(248.15),
                Kelvin::new(298.15),
                Kelvin::new(348.15),
            ],
        );
        assert!(m.validate().is_ok());
        assert_eq!(m.reference.temperature.value(), 298.15);
    }
}
