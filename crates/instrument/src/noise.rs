//! Seeded Gaussian noise and quantization primitives.

use icvbe_numerics::rng::Xoshiro256PlusPlus;

/// A deterministic Gaussian noise source (Box-Muller over a seeded
/// in-tree [`Xoshiro256PlusPlus`]).
///
/// # Examples
///
/// ```
/// use icvbe_instrument::noise::NoiseSource;
///
/// let mut a = NoiseSource::seeded(42);
/// let mut b = NoiseSource::seeded(42);
/// assert_eq!(a.sample_gaussian(), b.sample_gaussian()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSource {
    rng: Xoshiro256PlusPlus,
    spare: Option<f64>,
}

impl NoiseSource {
    /// Creates a source from a seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        NoiseSource {
            rng: Xoshiro256PlusPlus::seeded(seed),
            spare: None,
        }
    }

    /// One standard-normal sample.
    pub fn sample_gaussian(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Box-Muller: two uniforms -> two normals. u1 must avoid 0 as a
        // ln() argument.
        let u1 = self.rng.unit_open_low();
        let u2 = self.rng.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal sample with explicit mean and standard deviation.
    pub fn sample_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample_gaussian()
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn sample_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }
}

/// Rounds `value` to the nearest multiple of `step` (ADC/DVM quantization).
/// A non-positive `step` returns the value unchanged.
#[must_use]
pub fn quantize(value: f64, step: f64) -> f64 {
    if step <= 0.0 || !step.is_finite() {
        return value;
    }
    (value / step).round() * step
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_sane() {
        let mut src = NoiseSource::seeded(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| src.sample_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = NoiseSource::seeded(123);
        let mut b = NoiseSource::seeded(123);
        for _ in 0..10 {
            assert_eq!(a.sample_normal(1.0, 2.0), b.sample_normal(1.0, 2.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseSource::seeded(1);
        let mut b = NoiseSource::seeded(2);
        let same = (0..10)
            .filter(|_| a.sample_gaussian() == b.sample_gaussian())
            .count();
        assert!(same < 10);
    }

    #[test]
    fn quantize_rounds_to_step() {
        assert_eq!(quantize(1.2345, 0.01), 1.23);
        assert_eq!(quantize(1.2355, 0.001), 1.236);
        assert_eq!(quantize(-0.5004, 0.001), -0.5);
        assert_eq!(quantize(3.7, 0.0), 3.7);
        assert_eq!(quantize(3.7, -1.0), 3.7);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut src = NoiseSource::seeded(9);
        for _ in 0..100 {
            let v = src.sample_uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
        assert_eq!(src.sample_uniform(5.0, 5.0), 5.0);
    }
}
