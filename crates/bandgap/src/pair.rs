//! The Fig.-2 measurement configuration: QA and QB under forced equal
//! collector currents, `dVBE` read differentially.
//!
//! This is the structure the die-temperature computation (eq. 16) and the
//! analytical extraction run on. Imperfections are first-class citizens:
//! the QB substrate parasitic (8x area), the op-amp/readout offset, and
//! bias-source mismatch all perturb `dVBE` exactly as they do on silicon.

use icvbe_spice::batch::{solve_dc_batch, BatchWorkspace, LaneCtx, LaneOutcome, MAX_LANES};
use icvbe_spice::bjt::{Bjt, BjtParams, Polarity, SubstrateJunction};
use icvbe_spice::element::CurrentSource;
use icvbe_spice::netlist::{Circuit, NodeId};
use icvbe_spice::solver::{solve_dc, DcOptions, OperatingPoint};
use icvbe_spice::system::CircuitAssembly;
use icvbe_spice::workspace::{solve_dc_with, SolveWorkspace};
use icvbe_spice::SpiceError;
use icvbe_units::{Ampere, Kelvin, Volt};

/// Configuration of the pair-bias test structure.
#[derive(Debug, Clone)]
pub struct PairStructure {
    /// Model card of the unit device (QA); QB uses the same card at
    /// `area_ratio`.
    pub card: BjtParams,
    /// Emitter-area ratio of QB to QA (the paper's cell: 8).
    pub area_ratio: f64,
    /// Forced collector (emitter-side) bias current for each device.
    pub bias: Ampere,
    /// Mismatch of QB's bias source relative to QA's (1.0 = matched).
    pub bias_mismatch: f64,
    /// Optional substrate parasitic on both devices (QB's is 8x through
    /// its area).
    pub substrate: Option<SubstrateJunction>,
    /// Additive readout offset on the differential `dVBE` measurement
    /// (op-amp stage offset referred to the output), volts.
    pub readout_offset: Volt,
}

impl PairStructure {
    /// An ideal pair on the given card: matched bias, no parasitics, no
    /// offset.
    #[must_use]
    pub fn ideal(card: BjtParams, bias: Ampere) -> Self {
        PairStructure {
            card,
            area_ratio: 8.0,
            bias,
            bias_mismatch: 1.0,
            substrate: None,
            readout_offset: Volt::new(0.0),
        }
    }

    /// Adds the substrate parasitic.
    #[must_use]
    pub fn with_substrate(mut self, junction: SubstrateJunction) -> Self {
        self.substrate = Some(junction);
        self
    }

    /// Sets the readout offset.
    #[must_use]
    pub fn with_readout_offset(mut self, offset: Volt) -> Self {
        self.readout_offset = offset;
        self
    }

    /// Sets the bias mismatch factor (QB bias = `bias * mismatch`).
    #[must_use]
    pub fn with_bias_mismatch(mut self, mismatch: f64) -> Self {
        self.bias_mismatch = mismatch;
        self
    }

    /// Builds the Fig.-2 netlist: both PNPs diode-connected to ground with
    /// their emitters fed by current sources. Returns the circuit and the
    /// two emitter nodes `(va, vb)`.
    ///
    /// # Errors
    ///
    /// Propagates element validation.
    pub fn build(&self) -> Result<(Circuit, NodeId, NodeId), SpiceError> {
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let va = ckt.node("va");
        let vb = ckt.node("vb");
        ckt.add(CurrentSource::new("IA", gnd, va, self.bias));
        ckt.add(CurrentSource::new(
            "IB",
            gnd,
            vb,
            Ampere::new(self.bias.value() * self.bias_mismatch),
        ));
        let mut qa = Bjt::new("QA", gnd, gnd, va, Polarity::Pnp, self.card)?;
        let mut qb =
            Bjt::new("QB", gnd, gnd, vb, Polarity::Pnp, self.card)?.with_area(self.area_ratio)?;
        if let Some(j) = self.substrate {
            qa = qa.with_substrate(gnd, j);
            qb = qb.with_substrate(gnd, j);
        }
        ckt.add(qa);
        ckt.add(qb);
        Ok((ckt, va, vb))
    }

    /// Builds the netlist once and bundles it with its validated
    /// [`CircuitAssembly`] and the readout devices, so a temperature sweep
    /// (or the electro-thermal loop's dozens of re-solves) pays the
    /// construction cost a single time.
    ///
    /// # Errors
    ///
    /// Propagates element validation and topology validation.
    pub fn compile(&self) -> Result<CompiledPair, SpiceError> {
        let (circuit, va, vb) = self.build()?;
        let assembly = CircuitAssembly::new(&circuit)?;
        // Readout devices: same construction as `read` performs per call.
        let gnd = Circuit::ground();
        let qa = Bjt::new("QA", gnd, gnd, va, Polarity::Pnp, self.card)?;
        let qb =
            Bjt::new("QB", gnd, gnd, vb, Polarity::Pnp, self.card)?.with_area(self.area_ratio)?;
        Ok(CompiledPair {
            structure: self.clone(),
            circuit,
            assembly,
            va,
            vb,
            qa,
            qb,
            warm: Vec::new(),
            has_warm: false,
        })
    }

    /// Solves the structure at one temperature and reads out the pair.
    ///
    /// # Errors
    ///
    /// Propagates build and solver failures.
    pub fn measure(&self, temperature: Kelvin) -> Result<PairReading, SpiceError> {
        self.measure_with_options(temperature, &DcOptions::default())
    }

    /// [`PairStructure::measure`] with explicit solver options.
    ///
    /// # Errors
    ///
    /// Propagates build and solver failures.
    pub fn measure_with_options(
        &self,
        temperature: Kelvin,
        options: &DcOptions,
    ) -> Result<PairReading, SpiceError> {
        let (ckt, va, vb) = self.build()?;
        let op = solve_dc(&ckt, temperature, options, None)?;
        self.read(&op, va, vb, temperature)
    }

    fn read(
        &self,
        op: &OperatingPoint,
        va: NodeId,
        vb: NodeId,
        temperature: Kelvin,
    ) -> Result<PairReading, SpiceError> {
        let vbe_a = op.voltage(va);
        let vbe_b = op.voltage(vb);
        // Collector currents: bias minus base current minus substrate
        // leakage; reconstruct from the device equations at the solved
        // voltages. The card and ratio were validated at construction, so
        // these rebuilds cannot fail in practice — but propagate rather
        // than panic if that invariant ever breaks.
        let qa = Bjt::new(
            "QA",
            Circuit::ground(),
            Circuit::ground(),
            va,
            Polarity::Pnp,
            self.card,
        )?;
        let qb = Bjt::new(
            "QB",
            Circuit::ground(),
            Circuit::ground(),
            vb,
            Polarity::Pnp,
            self.card,
        )?
        .with_area(self.area_ratio)?;
        Ok(self.reading_from(vbe_a, vbe_b, &qa, &qb, temperature))
    }

    fn reading_from(
        &self,
        vbe_a: Volt,
        vbe_b: Volt,
        qa: &Bjt,
        qb: &Bjt,
        temperature: Kelvin,
    ) -> PairReading {
        let zero = Volt::new(0.0);
        let ic_a = qa.dc_currents(zero, zero, vbe_a, temperature).ic;
        let ic_b = qb.dc_currents(zero, zero, vbe_b, temperature).ic;
        PairReading {
            temperature,
            vbe_a,
            vbe_b,
            dvbe: Volt::new(vbe_a.value() - vbe_b.value() + self.readout_offset.value()),
            // PNP collector current flows out of the collector: magnitude.
            ic_a: Ampere::new(ic_a.value().abs()),
            ic_b: Ampere::new(ic_b.value().abs()),
        }
    }

    /// Total dissipated power of the structure at a solved reading —
    /// feeds the electro-thermal loop.
    #[must_use]
    pub fn power_watts(&self, reading: &PairReading) -> f64 {
        // Each branch drops its emitter voltage across the source.
        self.bias.value() * reading.vbe_a.value().abs()
            + self.bias.value() * self.bias_mismatch * reading.vbe_b.value().abs()
    }
}

/// One temperature point of the pair measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairReading {
    /// Die temperature of the solve.
    pub temperature: Kelvin,
    /// `VBE` of the unit device QA.
    pub vbe_a: Volt,
    /// `VBE` of the 8x device QB.
    pub vbe_b: Volt,
    /// Differential reading `VBE(QA) - VBE(QB)` including readout offset.
    pub dvbe: Volt,
    /// Reconstructed collector current of QA (magnitude).
    pub ic_a: Ampere,
    /// Reconstructed collector current of QB (magnitude).
    pub ic_b: Ampere,
}

/// A [`PairStructure`] bound to its built netlist, validated assembly and
/// cached readout devices — the hot-path form of [`PairStructure::measure`].
///
/// The electro-thermal fixed point re-solves the same circuit dozens of
/// times per setpoint; a compiled pair builds and validates it once, and
/// optionally carries the last converged solution forward as a Newton warm
/// start. With polishing enabled in the solver options (see
/// [`icvbe_numerics::newton::NewtonOptions::polish`]) the returned reading
/// is bitwise independent of whether the warm start was used.
#[derive(Debug)]
pub struct CompiledPair {
    structure: PairStructure,
    circuit: Circuit,
    assembly: CircuitAssembly,
    va: NodeId,
    vb: NodeId,
    qa: Bjt,
    qb: Bjt,
    warm: Vec<f64>,
    has_warm: bool,
}

impl CompiledPair {
    /// The configuration this pair was compiled from.
    #[must_use]
    pub fn structure(&self) -> &PairStructure {
        &self.structure
    }

    /// Forgets the carried solution; the next solve starts cold.
    pub fn reset_warm(&mut self) {
        self.has_warm = false;
    }

    /// Installs a process-wide symbolic-LU plan cache on this pair's
    /// assembly (see
    /// [`CircuitAssembly::set_symbolic_cache`]): structurally identical
    /// pairs compiled on any thread then share one elimination analysis.
    /// Results are bit-identical with or without the cache.
    pub fn use_symbolic_cache(&mut self, cache: std::sync::Arc<icvbe_spice::cache::SymbolicCache>) {
        self.assembly.set_symbolic_cache(cache);
    }

    /// Solves the compiled structure at one temperature and reads out the
    /// pair, drawing all solver storage from `ws`.
    ///
    /// With `warm_start`, Newton is seeded from the last converged
    /// solution of this pair (if any); the converged vector is carried
    /// forward either way so a later warm-started call can use it.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn measure_at(
        &mut self,
        temperature: Kelvin,
        options: &DcOptions,
        ws: &mut SolveWorkspace,
        warm_start: bool,
    ) -> Result<PairReading, SpiceError> {
        let initial = if warm_start && self.has_warm {
            Some(self.warm.as_slice())
        } else {
            None
        };
        solve_dc_with(
            &self.circuit,
            &self.assembly,
            temperature,
            options,
            initial,
            ws,
        )?;
        let x = ws.solution();
        if self.warm.len() != x.len() {
            self.warm.resize(x.len(), 0.0);
        }
        self.warm.copy_from_slice(x);
        self.has_warm = true;
        let vbe_a = voltage_of(x, self.va);
        let vbe_b = voltage_of(x, self.vb);
        Ok(self
            .structure
            .reading_from(vbe_a, vbe_b, &self.qa, &self.qb, temperature))
    }

    /// Measures up to [`MAX_LANES`] compiled pairs at per-lane temperatures
    /// through one lockstep batched solve
    /// ([`icvbe_spice::batch::solve_dc_batch`]).
    ///
    /// `pairs`, `temperatures`, `workspaces` and `readings` are parallel
    /// slices, one entry per lane. A lane is batch-eligible when the pair
    /// carries a warm seed and its assembly has an armed symbolic plan (one
    /// prior scalar [`CompiledPair::measure_at`] per pair provides both).
    /// Each solved lane's reading lands in `readings[l]` with the warm seed
    /// carried forward, **bit-identical** to a scalar warm-started
    /// `measure_at` at the same temperature; a retired lane leaves `None`
    /// and its warm state untouched, and the caller must fall back to the
    /// scalar path for it.
    ///
    /// Returns the number of lanes that entered batched stepping.
    pub fn measure_lanes(
        pairs: &mut [&mut CompiledPair],
        temperatures: &[Kelvin],
        options: &DcOptions,
        workspaces: &mut [&mut SolveWorkspace],
        batch: &mut BatchWorkspace,
        readings: &mut [Option<PairReading>],
    ) -> usize {
        for r in readings.iter_mut() {
            *r = None;
        }
        let lanes = pairs.len();
        if lanes == 0
            || lanes > MAX_LANES
            || temperatures.len() != lanes
            || workspaces.len() != lanes
            || readings.len() != lanes
        {
            return 0;
        }
        // Phase 1: immutable lane contexts over the pairs' compiled state.
        // A pair without a warm seed gets an empty one, which the batch
        // driver treats as ineligible (dimension mismatch).
        let lane_ctx = |l: usize| {
            let p: &CompiledPair = &*pairs[l];
            LaneCtx {
                circuit: &p.circuit,
                assembly: &p.assembly,
                temperature: temperatures[l],
                seed: if p.has_warm { &p.warm } else { &[] },
            }
        };
        let mut ctx = [lane_ctx(0); MAX_LANES];
        for (l, slot) in ctx.iter_mut().enumerate().take(lanes).skip(1) {
            *slot = lane_ctx(l);
        }
        let mut outcomes = [LaneOutcome::Retired; MAX_LANES];
        let entered = solve_dc_batch(
            &ctx[..lanes],
            options,
            &mut workspaces[..lanes],
            batch,
            &mut outcomes[..lanes],
        );
        // Phase 2: harvest solved lanes — carry the warm seed forward and
        // read the pair out exactly as the scalar `measure_at` tail does.
        for l in 0..lanes {
            if !matches!(outcomes[l], LaneOutcome::Solved(_)) {
                continue;
            }
            let pair = &mut *pairs[l];
            let x = workspaces[l].solution();
            if pair.warm.len() != x.len() {
                pair.warm.resize(x.len(), 0.0);
            }
            pair.warm.copy_from_slice(x);
            pair.has_warm = true;
            let vbe_a = voltage_of(x, pair.va);
            let vbe_b = voltage_of(x, pair.vb);
            readings[l] = Some(pair.structure.reading_from(
                vbe_a,
                vbe_b,
                &pair.qa,
                &pair.qb,
                temperatures[l],
            ));
        }
        entered
    }
}

fn voltage_of(x: &[f64], node: NodeId) -> Volt {
    match node.unknown_index() {
        Some(i) => Volt::new(x[i]),
        None => Volt::new(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::st_bicmos_pnp;
    use icvbe_units::constants::BOLTZMANN_OVER_Q;

    #[test]
    fn ideal_pair_dvbe_is_ptat() {
        let pair = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        for t in [248.15, 298.15, 348.15] {
            let t = Kelvin::new(t);
            let r = pair.measure(t).unwrap();
            let ideal = BOLTZMANN_OVER_Q * t.value() * 8.0_f64.ln();
            assert!(
                (r.dvbe.value() - ideal).abs() < 2e-4,
                "dVBE at {t}: {} vs {ideal}",
                r.dvbe.value()
            );
        }
    }

    #[test]
    fn collector_currents_are_close_to_bias() {
        let pair = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        let r = pair.measure(Kelvin::new(298.15)).unwrap();
        // Base current steals ~1/BF.
        assert!(
            (r.ic_a.value() - 1e-6).abs() / 1e-6 < 0.05,
            "ICA = {}",
            r.ic_a
        );
        assert!(
            (r.ic_b.value() - 1e-6).abs() / 1e-6 < 0.05,
            "ICB = {}",
            r.ic_b
        );
    }

    #[test]
    fn readout_offset_adds_to_dvbe() {
        let base = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        let offset = base.clone().with_readout_offset(Volt::new(0.004));
        let t = Kelvin::new(298.15);
        let d0 = base.measure(t).unwrap().dvbe.value();
        let d1 = offset.measure(t).unwrap().dvbe.value();
        assert!((d1 - d0 - 0.004).abs() < 1e-12);
    }

    #[test]
    fn substrate_parasitic_perturbs_dvbe_at_high_temperature() {
        let clean = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        let leaky = clean
            .clone()
            .with_substrate(SubstrateJunction::bicmos_default());
        let hot = Kelvin::new(398.15);
        let d_clean = clean.measure(hot).unwrap().dvbe.value();
        let d_leaky = leaky.measure(hot).unwrap().dvbe.value();
        assert!(
            (d_clean - d_leaky).abs() > 1e-6,
            "parasitic had no effect: {d_clean} vs {d_leaky}"
        );
    }

    #[test]
    fn bias_mismatch_shifts_dvbe() {
        let matched = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        let skewed = matched.clone().with_bias_mismatch(1.05);
        let t = Kelvin::new(298.15);
        let d0 = matched.measure(t).unwrap().dvbe.value();
        let d1 = skewed.measure(t).unwrap().dvbe.value();
        // QB carrying more current lowers dVBE by ~VT ln(1.05).
        let expected = BOLTZMANN_OVER_Q * t.value() * 1.05_f64.ln();
        assert!(
            ((d0 - d1) - expected).abs() < 2e-4,
            "shift {} vs {expected}",
            d0 - d1
        );
    }

    #[test]
    fn compiled_cold_measure_matches_one_shot_bitwise() {
        let pair = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        let mut compiled = pair.compile().unwrap();
        let mut ws = SolveWorkspace::new();
        let opts = DcOptions::default();
        for t in [248.15, 298.15, 348.15] {
            let t = Kelvin::new(t);
            let one_shot = pair.measure_with_options(t, &opts).unwrap();
            compiled.reset_warm();
            let reused = compiled.measure_at(t, &opts, &mut ws, false).unwrap();
            assert_eq!(one_shot, reused, "at {t}");
        }
    }

    #[test]
    fn warm_start_with_polish_is_bit_identical_to_cold() {
        let pair = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        let mut opts = DcOptions::default();
        opts.newton.polish = true;

        // Cold pass: every solve from zeros.
        let mut cold_pair = pair.compile().unwrap();
        let mut ws = SolveWorkspace::new();
        let temps: Vec<Kelvin> = (0..9)
            .map(|i| Kelvin::new(248.15 + 12.5 * i as f64))
            .collect();
        let cold: Vec<PairReading> = temps
            .iter()
            .map(|&t| {
                cold_pair.reset_warm();
                cold_pair.measure_at(t, &opts, &mut ws, false).unwrap()
            })
            .collect();

        // Warm pass: each solve seeded from the previous converged point.
        let mut warm_pair = pair.compile().unwrap();
        let warm: Vec<PairReading> = temps
            .iter()
            .map(|&t| warm_pair.measure_at(t, &opts, &mut ws, true).unwrap())
            .collect();

        assert_eq!(cold, warm, "polish must erase the seed dependence");
        // And the warm pass must actually have warm-started.
        assert!(ws.stats.warm_starts >= (temps.len() - 1) as u64);
    }

    #[test]
    fn batched_measure_matches_scalar_measure_bitwise() {
        let t_prime = Kelvin::new(278.15);
        let lane_temps = [248.15, 298.15, 318.15, 348.15].map(Kelvin::new);
        let mut opts = DcOptions::default();
        opts.newton.polish = true;
        let lanes = lane_temps.len();
        let structure = |l: usize| {
            PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6 * (1.0 + 0.05 * l as f64)))
                .with_bias_mismatch(1.0 + 0.002 * l as f64)
        };

        // Scalar reference: prime (arms the plan and the warm seed), then
        // a warm-started scalar measure at the lane temperature.
        let mut ws = SolveWorkspace::new();
        let reference: Vec<PairReading> = (0..lanes)
            .map(|l| {
                let mut p = structure(l).compile().unwrap();
                p.measure_at(t_prime, &opts, &mut ws, false).unwrap();
                p.measure_at(lane_temps[l], &opts, &mut ws, true).unwrap()
            })
            .collect();

        // Batched run: same prime per lane, then one lockstep measure.
        let mut pairs: Vec<CompiledPair> = (0..lanes)
            .map(|l| structure(l).compile().unwrap())
            .collect();
        let mut workspaces: Vec<SolveWorkspace> =
            (0..lanes).map(|_| SolveWorkspace::new()).collect();
        for (p, w) in pairs.iter_mut().zip(&mut workspaces) {
            p.measure_at(t_prime, &opts, w, false).unwrap();
        }
        let mut pair_refs: Vec<&mut CompiledPair> = pairs.iter_mut().collect();
        let mut ws_refs: Vec<&mut SolveWorkspace> = workspaces.iter_mut().collect();
        let mut batch = BatchWorkspace::new();
        let mut readings = vec![None; lanes];
        let entered = CompiledPair::measure_lanes(
            &mut pair_refs,
            &lane_temps,
            &opts,
            &mut ws_refs,
            &mut batch,
            &mut readings,
        );
        assert_eq!(entered, lanes);
        for l in 0..lanes {
            let got = readings[l].expect("lane solved");
            assert_eq!(got, reference[l], "lane {l} reading diverged");
            assert_eq!(
                got.vbe_a.value().to_bits(),
                reference[l].vbe_a.value().to_bits()
            );
            assert_eq!(
                got.vbe_b.value().to_bits(),
                reference[l].vbe_b.value().to_bits()
            );
        }

        // The carried warm seed must allow an immediate re-batch.
        let entered = CompiledPair::measure_lanes(
            &mut pair_refs,
            &lane_temps,
            &opts,
            &mut ws_refs,
            &mut batch,
            &mut readings,
        );
        assert_eq!(entered, lanes);
    }

    #[test]
    fn unprimed_pair_is_left_for_the_scalar_fallback() {
        let t = Kelvin::new(298.15);
        let mut opts = DcOptions::default();
        opts.newton.polish = true;
        let mut primed = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6))
            .compile()
            .unwrap();
        let mut cold = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(2e-6))
            .compile()
            .unwrap();
        let mut ws_a = SolveWorkspace::new();
        let mut ws_b = SolveWorkspace::new();
        primed.measure_at(t, &opts, &mut ws_a, false).unwrap();

        let mut pair_refs = [&mut primed, &mut cold];
        let mut ws_refs = [&mut ws_a, &mut ws_b];
        let mut batch = BatchWorkspace::new();
        let mut readings = [None, None];
        let entered = CompiledPair::measure_lanes(
            &mut pair_refs,
            &[t, t],
            &opts,
            &mut ws_refs,
            &mut batch,
            &mut readings,
        );
        assert_eq!(entered, 1, "only the primed lane is eligible");
        assert!(readings[0].is_some());
        assert!(readings[1].is_none(), "cold lane defers to the scalar path");
    }

    #[test]
    fn power_is_microwatt_scale() {
        let pair = PairStructure::ideal(st_bicmos_pnp(), Ampere::new(1e-6));
        let r = pair.measure(Kelvin::new(298.15)).unwrap();
        let p = pair.power_watts(&r);
        assert!(p > 1e-7 && p < 1e-5, "power {p}");
    }
}
