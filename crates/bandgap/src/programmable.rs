//! The *programmable* aspect of the Fig.-3 test cell: pads and trim codes.
//!
//! The silicon cell is one die that can be reconfigured through bond pads:
//!
//! - **ADJ1..ADJ5** switch segments of the RADJB trim ladder to cancel the
//!   process-spread offset of `VREF`,
//! - **P4/P5** give access to the amplification stage so its offset (and
//!   the leakage-induced `dVBE` error at the reference temperature) can be
//!   calibrated out,
//! - **P1/P2/P3/P6** reconfigure the core between *bandgap reference*
//!   operation and *pair characterization* (QA/QB driven from external
//!   current sources), and let RadjA be inserted,
//! - **RX3** raises the collector load, pushing the devices toward
//!   saturation — the stress configuration the paper uses to expose the
//!   parasitic substrate transistor.
//!
//! [`ProgrammableTestCell`] models the die; [`PadConfiguration`] models the
//! bonding/probing choices. One `ProgrammableTestCell` built from one
//! [`DieTraits`] answers every measurement the repro asks of a sample.

use icvbe_spice::bjt::{BjtParams, SubstrateJunction};
use icvbe_spice::SpiceError;
use icvbe_units::{Ampere, Kelvin, Ohm, Volt};

use crate::cell::{BandgapCell, CellReading};
use crate::pair::{PairReading, PairStructure};

/// The physical (unchangeable) characteristics of one die.
#[derive(Debug, Clone)]
pub struct DieTraits {
    /// The PNP model card.
    pub card: BjtParams,
    /// Substrate parasitic (always present on silicon).
    pub substrate: SubstrateJunction,
    /// The op-amp stage's raw input offset.
    pub opamp_offset: Volt,
    /// Raw offset of the dVBE readout chain before P4/P5 calibration.
    pub readout_offset: Volt,
    /// Mismatch of the on-die bias sources (QC mirror ratio error).
    pub bias_mismatch: f64,
}

impl DieTraits {
    /// A nominal die on the given card.
    #[must_use]
    pub fn nominal(card: BjtParams) -> Self {
        DieTraits {
            card,
            substrate: SubstrateJunction::bicmos_default(),
            opamp_offset: Volt::new(0.0),
            readout_offset: Volt::new(0.0),
            bias_mismatch: 1.0,
        }
    }
}

/// The bond-pad/probe configuration applied to the die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PadConfiguration {
    /// ADJ1..ADJ5 trim code, 0..=31 (16 = mid scale, no correction).
    pub adj_code: u8,
    /// Whether the P4/P5 offset calibration has been performed (nulls the
    /// readout-chain offset; the silicon procedure trims it at the
    /// reference temperature).
    pub p4_p5_calibrated: bool,
    /// RadjA value inserted between P5 and P6 (0 = strapped).
    pub radj_a: Ohm,
    /// Whether RX3 (40 kΩ) is switched into the collector path, pushing
    /// the devices toward saturation.
    pub rx3_saturation_stress: bool,
}

impl PadConfiguration {
    /// Factory-fresh die: mid-scale trim, no calibration, RadjA strapped.
    #[must_use]
    pub fn fresh() -> Self {
        PadConfiguration {
            adj_code: 16,
            p4_p5_calibrated: false,
            radj_a: Ohm::new(0.0),
            rx3_saturation_stress: false,
        }
    }

    /// The characterization setup of the paper's section 5: P4/P5
    /// calibrated, no stress, RadjA strapped.
    #[must_use]
    pub fn characterization() -> Self {
        PadConfiguration {
            adj_code: 16,
            p4_p5_calibrated: true,
            radj_a: Ohm::new(0.0),
            rx3_saturation_stress: false,
        }
    }

    /// Validates the trim code.
    ///
    /// # Errors
    ///
    /// [`SpiceError::BadParameter`] for a code above 31 or a negative
    /// RadjA.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.adj_code > 31 {
            return Err(SpiceError::parameter(
                "ADJ",
                format!("trim code must be 0..=31, got {}", self.adj_code),
            ));
        }
        if !(self.radj_a.value() >= 0.0) || !self.radj_a.value().is_finite() {
            return Err(SpiceError::parameter(
                "RADJA",
                format!("RadjA must be non-negative and finite, got {}", self.radj_a),
            ));
        }
        Ok(())
    }

    /// The equivalent op-amp trim voltage of the ADJ ladder: 0.25 mV per
    /// LSB around mid scale (a 5-bit ladder across ±4 mV of input-referred
    /// correction).
    #[must_use]
    pub fn adj_trim_volts(&self) -> f64 {
        (f64::from(self.adj_code) - 16.0) * 0.25e-3
    }
}

/// One die plus one pad configuration: everything the bench can measure.
#[derive(Debug, Clone)]
pub struct ProgrammableTestCell {
    traits: DieTraits,
    config: PadConfiguration,
}

impl ProgrammableTestCell {
    /// Binds a die to a pad configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`PadConfiguration::validate`].
    pub fn new(traits: DieTraits, config: PadConfiguration) -> Result<Self, SpiceError> {
        config.validate()?;
        Ok(ProgrammableTestCell { traits, config })
    }

    /// The current pad configuration.
    #[must_use]
    pub fn config(&self) -> &PadConfiguration {
        &self.config
    }

    /// Reconfigures the pads (rebonding/probing the same die).
    ///
    /// # Errors
    ///
    /// Propagates [`PadConfiguration::validate`].
    pub fn reconfigure(&mut self, config: PadConfiguration) -> Result<(), SpiceError> {
        config.validate()?;
        self.config = config;
        Ok(())
    }

    /// The bandgap-reference view of the die under this configuration.
    #[must_use]
    pub fn bandgap_cell(&self) -> BandgapCell {
        let net_offset = self.traits.opamp_offset.value() - self.config.adj_trim_volts();
        let cell = BandgapCell::nominal(self.traits.card)
            .with_substrate(self.traits.substrate)
            .with_opamp_offset(Volt::new(net_offset));
        cell.radj_a.set(self.config.radj_a.value().max(0.0));
        cell
    }

    /// The pair-characterization view (P1-P3 reconfigured to external
    /// current sources).
    #[must_use]
    pub fn pair_structure(&self, bias: Ampere) -> PairStructure {
        let effective_offset = if self.config.p4_p5_calibrated {
            Volt::new(0.0)
        } else {
            self.traits.readout_offset
        };
        let mut s = PairStructure::ideal(self.traits.card, bias)
            .with_substrate(self.traits.substrate)
            .with_bias_mismatch(self.traits.bias_mismatch)
            .with_readout_offset(effective_offset);
        if self.config.rx3_saturation_stress {
            // RX3 starves the collector supply: modelled as an extra bias
            // imbalance pushing QB toward its saturation edge.
            s = s.with_bias_mismatch(self.traits.bias_mismatch * 1.02);
        }
        s
    }

    /// Solves the bandgap view at a temperature.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn measure_vref(&self, temperature: Kelvin) -> Result<CellReading, SpiceError> {
        self.bandgap_cell().solve(temperature)
    }

    /// Measures the pair view at a temperature.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn measure_pair(
        &self,
        bias: Ampere,
        temperature: Kelvin,
    ) -> Result<PairReading, SpiceError> {
        self.pair_structure(bias).measure(temperature)
    }

    /// Searches the 5-bit ADJ ladder for the code minimizing `|VREF -
    /// target|` at the given temperature, applies it, and returns
    /// `(code, vref)`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn trim_vref_to(
        &mut self,
        target: Volt,
        temperature: Kelvin,
    ) -> Result<(u8, Volt), SpiceError> {
        let mut best: Option<(u8, f64, f64)> = None;
        for code in 0..=31u8 {
            let mut cfg = self.config;
            cfg.adj_code = code;
            let cell = ProgrammableTestCell::new(self.traits.clone(), cfg)?;
            let v = cell.measure_vref(temperature)?.vref.value();
            let err = (v - target.value()).abs();
            if best.is_none_or(|(_, e, _)| err < e) {
                best = Some((code, err, v));
            }
        }
        let (code, _, v) =
            best.ok_or_else(|| SpiceError::parameter("adj_code", "no candidate evaluated"))?;
        self.config.adj_code = code;
        Ok((code, Volt::new(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::st_bicmos_pnp;

    fn die() -> DieTraits {
        let mut d = DieTraits::nominal(st_bicmos_pnp());
        d.opamp_offset = Volt::new(1.5e-3);
        d.readout_offset = Volt::new(2.0e-3);
        d
    }

    #[test]
    fn validation_rejects_bad_codes() {
        let mut cfg = PadConfiguration::fresh();
        cfg.adj_code = 32;
        assert!(ProgrammableTestCell::new(die(), cfg).is_err());
        let mut cfg = PadConfiguration::fresh();
        cfg.radj_a = Ohm::new(-1.0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mid_scale_code_applies_no_trim() {
        assert_eq!(PadConfiguration::fresh().adj_trim_volts(), 0.0);
        let mut cfg = PadConfiguration::fresh();
        cfg.adj_code = 20;
        assert!((cfg.adj_trim_volts() - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    fn p4_p5_calibration_nulls_readout_offset() {
        let cell_raw = ProgrammableTestCell::new(die(), PadConfiguration::fresh()).unwrap();
        let cell_cal =
            ProgrammableTestCell::new(die(), PadConfiguration::characterization()).unwrap();
        let t = Kelvin::new(298.15);
        let raw = cell_raw.measure_pair(Ampere::new(1e-6), t).unwrap();
        let cal = cell_cal.measure_pair(Ampere::new(1e-6), t).unwrap();
        // Calibration removes the 2 mV chain offset from the reading.
        assert!((raw.dvbe.value() - cal.dvbe.value() - 2.0e-3).abs() < 1e-9);
    }

    #[test]
    fn adj_ladder_moves_vref_monotonically() {
        let t = Kelvin::new(298.15);
        let vref_at = |code: u8| {
            let mut cfg = PadConfiguration::characterization();
            cfg.adj_code = code;
            ProgrammableTestCell::new(die(), cfg)
                .unwrap()
                .measure_vref(t)
                .unwrap()
                .vref
                .value()
        };
        let lo = vref_at(4);
        let mid = vref_at(16);
        let hi = vref_at(28);
        assert!(
            lo > mid && mid > hi,
            "VREF not monotone in code: {lo} {mid} {hi}"
        );
        // 24 LSB * 0.25 mV input-referred, amplified by the PTAT gain.
        assert!((lo - hi) > 0.01, "ladder range too small: {}", lo - hi);
    }

    #[test]
    fn trim_search_improves_vref_accuracy() {
        let t = Kelvin::new(298.15);
        let mut cell =
            ProgrammableTestCell::new(die(), PadConfiguration::characterization()).unwrap();
        let untrimmed = cell.measure_vref(t).unwrap().vref;
        let target = Volt::new(1.16);
        let (code, trimmed) = cell.trim_vref_to(target, t).unwrap();
        assert!(code <= 31);
        assert!(
            (trimmed.value() - 1.16).abs() <= (untrimmed.value() - 1.16).abs() + 1e-12,
            "trim did not improve: {untrimmed} -> {trimmed}"
        );
        assert_eq!(cell.config().adj_code, code);
    }

    #[test]
    fn saturation_stress_changes_the_pair_reading() {
        let t = Kelvin::new(398.15);
        let normal =
            ProgrammableTestCell::new(die(), PadConfiguration::characterization()).unwrap();
        let mut stress_cfg = PadConfiguration::characterization();
        stress_cfg.rx3_saturation_stress = true;
        let stressed = ProgrammableTestCell::new(die(), stress_cfg).unwrap();
        let a = normal.measure_pair(Ampere::new(1e-6), t).unwrap();
        let b = stressed.measure_pair(Ampere::new(1e-6), t).unwrap();
        assert!(
            (a.dvbe.value() - b.dvbe.value()).abs() > 1e-5,
            "stress had no effect"
        );
    }

    #[test]
    fn reconfiguration_preserves_the_die() {
        let mut cell = ProgrammableTestCell::new(die(), PadConfiguration::fresh()).unwrap();
        let t = Kelvin::new(298.15);
        let before = cell.measure_vref(t).unwrap().vref;
        cell.reconfigure(PadConfiguration::characterization())
            .unwrap();
        cell.reconfigure(PadConfiguration::fresh()).unwrap();
        let after = cell.measure_vref(t).unwrap().vref;
        assert!((before.value() - after.value()).abs() < 1e-9);
    }
}
