//! The Fig.-3 bandgap test cell as a netlist: a Kuijk-style core with the
//! paper's programmable imperfections.
//!
//! Topology (node names in parentheses):
//!
//! ```text
//!        +--------- op-amp out = VREF (vref)
//!        |                |
//!       R_top (RX1)      R_top (RX2)
//!        |                |
//!       (p1)----in+      (p2)----in-
//!        |                |
//!       QA (area 1)      R_ptat (RA)
//!        |                |
//!       gnd              (p6)
//!                         |
//!                        RadjA (trim, default ~0)
//!                         |
//!                        (eb) QB (area 8)
//!                         |
//!                        gnd
//! ```
//!
//! At equilibrium `v(p1) = v(p2) + offset`, both branches carry
//! `I = dVBE / (R_ptat + RadjA)`, and
//! `VREF = VBE(QA) + R_top * dVBE / (R_ptat + RadjA)` — the "VBE plus
//! amplified PTAT" the paper describes. All resistors carry the n-well
//! tempco, so the bias current drifts with temperature exactly like the
//! silicon cell's (the eq.-17/20 corrections have something real to do).

use icvbe_numerics::roots::{brent, RootOptions};
use icvbe_spice::bjt::{Bjt, BjtParams, Polarity, SubstrateJunction};
use icvbe_spice::element::{OpAmp, Resistor};
use icvbe_spice::netlist::{Circuit, NodeId};
use icvbe_spice::param::Param;
use icvbe_spice::solver::{solve_dc, DcOptions, OperatingPoint};
use icvbe_spice::SpiceError;
use icvbe_units::{Ampere, Kelvin, Ohm, Volt};

/// Configuration of the bandgap test cell.
#[derive(Debug, Clone)]
pub struct BandgapCell {
    /// PNP model card (shared by QA, QB).
    pub card: BjtParams,
    /// QB emitter-area ratio (the paper: 8).
    pub area_ratio: f64,
    /// Top resistors RX1 = RX2.
    pub r_top: Ohm,
    /// The `dVBE`-to-current resistor RA (trim target of
    /// [`BandgapCell::calibrate`]), shared handle.
    pub r_ptat: Param,
    /// The RadjA curvature-trim resistor (Fig. 8's S1-S4 knob), shared
    /// handle; ~0 disables it.
    pub radj_a: Param,
    /// First-order tempco applied to every resistor (n-well diffusion).
    pub resistor_tc1: f64,
    /// Op-amp open-loop gain.
    pub opamp_gain: f64,
    /// Op-amp input-referred offset (a per-sample imperfection).
    pub opamp_offset: Volt,
    /// Optional substrate parasitic on both transistors.
    pub substrate: Option<SubstrateJunction>,
    /// Nominal temperature of the resistor tempco.
    pub t_nom: Kelvin,
}

impl BandgapCell {
    /// The nominal cell: 25 kΩ top resistors, calibration-ready `R_ptat`
    /// starting value, no trim, no imperfections.
    #[must_use]
    pub fn nominal(card: BjtParams) -> Self {
        BandgapCell {
            card,
            area_ratio: 8.0,
            r_top: Ohm::new(25e3),
            r_ptat: Param::new(2.6e3),
            radj_a: Param::new(1e-3),
            resistor_tc1: 0.0,
            opamp_gain: 1e6,
            opamp_offset: Volt::new(0.0),
            substrate: None,
            t_nom: Kelvin::new(298.15),
        }
    }

    /// Adds the n-well resistor tempco (+3e-3/K is typical of the paper's
    /// 2 kΩ/sq diffusion).
    #[must_use]
    pub fn with_resistor_tempco(mut self, tc1: f64) -> Self {
        self.resistor_tc1 = tc1;
        self
    }

    /// Adds the substrate parasitic to both transistors.
    #[must_use]
    pub fn with_substrate(mut self, junction: SubstrateJunction) -> Self {
        self.substrate = Some(junction);
        self
    }

    /// Sets the op-amp input offset.
    #[must_use]
    pub fn with_opamp_offset(mut self, offset: Volt) -> Self {
        self.opamp_offset = offset;
        self
    }

    /// Builds the netlist. Returns the circuit and its probe nodes.
    ///
    /// # Errors
    ///
    /// Propagates element validation.
    pub fn build(&self) -> Result<(Circuit, CellNodes), SpiceError> {
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let vref = ckt.node("vref");
        let p1 = ckt.node("p1");
        let p2 = ckt.node("p2");
        let p6 = ckt.node("p6");
        let eb = ckt.node("eb");

        ckt.add(Resistor::new("RX1", vref, p1, self.r_top)?.with_tempco(
            self.resistor_tc1,
            0.0,
            self.t_nom,
        ));
        ckt.add(Resistor::new("RX2", vref, p2, self.r_top)?.with_tempco(
            self.resistor_tc1,
            0.0,
            self.t_nom,
        ));
        ckt.add(
            Resistor::new("RA", p2, p6, Ohm::new(1.0))?
                .with_handle(self.r_ptat.clone())
                .with_tempco(self.resistor_tc1, 0.0, self.t_nom),
        );
        // RadjA is a poly trim outside the n-well (no tempco); values near
        // zero act as a short thanks to the stamp-side clamp.
        ckt.add(Resistor::new("RADJA", p6, eb, Ohm::new(1.0))?.with_handle(self.radj_a.clone()));

        let mut qa = Bjt::new("QA", gnd, gnd, p1, Polarity::Pnp, self.card)?;
        let mut qb =
            Bjt::new("QB", gnd, gnd, eb, Polarity::Pnp, self.card)?.with_area(self.area_ratio)?;
        if let Some(j) = self.substrate {
            qa = qa.with_substrate(gnd, j);
            qb = qb.with_substrate(gnd, j);
        }
        ckt.add(qa);
        ckt.add(qb);

        ckt.add(OpAmp::new("U1", p1, p2, vref, self.opamp_gain)?.with_offset(self.opamp_offset));

        // Start-up injector: a nanoamp into the QA branch makes the
        // all-off state a non-equilibrium, exactly like the start-up
        // circuit of the silicon cell. 10 nA against ~20 µA branch
        // currents shifts dVBE by well under a microvolt.
        ckt.add(icvbe_spice::element::CurrentSource::new(
            "ISTART",
            gnd,
            p1,
            Ampere::new(10e-9),
        ));

        Ok((
            ckt,
            CellNodes {
                vref,
                p1,
                p2,
                p6,
                eb,
            },
        ))
    }

    /// Solves the cell at one temperature.
    ///
    /// The degenerate all-zero equilibrium of every self-biased bandgap is
    /// avoided with a start-up initial guess near the intended operating
    /// point (the silicon cell has a start-up circuit for the same
    /// reason).
    ///
    /// # Errors
    ///
    /// Propagates build and solver failures.
    pub fn solve(&self, temperature: Kelvin) -> Result<CellReading, SpiceError> {
        self.solve_with(temperature, &DcOptions::default(), None)
    }

    /// [`BandgapCell::solve`] with explicit options and an optional warm
    /// start (the raw vector of a neighbouring solution).
    ///
    /// Without a warm start, temperatures far from 298 K are reached by
    /// temperature continuation: the cell is first solved at room
    /// temperature (where the start-up guess is reliable) and the solution
    /// is walked toward the target in ≤30 K steps. This keeps Newton out
    /// of the all-off basin at the range extremes.
    ///
    /// # Errors
    ///
    /// Propagates build and solver failures.
    pub fn solve_with(
        &self,
        temperature: Kelvin,
        options: &DcOptions,
        warm: Option<&[f64]>,
    ) -> Result<CellReading, SpiceError> {
        const ANCHOR: f64 = 298.15;
        const STEP: f64 = 30.0;
        if warm.is_none() && (temperature.value() - ANCHOR).abs() > STEP {
            let mut t = ANCHOR;
            let target = temperature.value();
            let mut reading = self.solve_direct(Kelvin::new(t), options, None)?;
            while (target - t).abs() > 1e-9 {
                t = if target > t {
                    (t + STEP).min(target)
                } else {
                    (t - STEP).max(target)
                };
                reading = self.solve_direct(Kelvin::new(t), options, Some(&reading.solution))?;
            }
            return Ok(reading);
        }
        self.solve_direct(temperature, options, warm)
    }

    fn solve_direct(
        &self,
        temperature: Kelvin,
        options: &DcOptions,
        warm: Option<&[f64]>,
    ) -> Result<CellReading, SpiceError> {
        let (ckt, nodes) = self.build()?;
        let guess_storage;
        let initial: &[f64] = match warm {
            Some(w) => w,
            None => {
                // Start-up guess near the intended operating point; VBE
                // scales roughly -2 mV/K, so seed the diode nodes
                // temperature-aware or cold solves fall into the
                // degenerate zero state.
                let vbe_guess = 0.70 - 2.0e-3 * (temperature.value() - 298.15);
                let mut g = vec![0.0; ckt.unknown_count()];
                // VREF itself is first-order temperature independent.
                seed_guess(&mut g, nodes.vref, 1.20);
                seed_guess(&mut g, nodes.p1, vbe_guess);
                seed_guess(&mut g, nodes.p2, vbe_guess);
                seed_guess(&mut g, nodes.p6, vbe_guess - 0.05);
                seed_guess(&mut g, nodes.eb, vbe_guess - 0.05);
                guess_storage = g;
                &guess_storage
            }
        };
        let op = solve_dc(&ckt, temperature, options, Some(initial))?;
        Ok(self.read(&op, &nodes, temperature))
    }

    fn read(&self, op: &OperatingPoint, nodes: &CellNodes, temperature: Kelvin) -> CellReading {
        let vref = op.voltage(nodes.vref);
        let p1 = op.voltage(nodes.p1);
        let p2 = op.voltage(nodes.p2);
        let eb = op.voltage(nodes.eb);
        let dt = temperature.value() - self.t_nom.value();
        let r_top_t = self.r_top.value() * (1.0 + self.resistor_tc1 * dt);
        let i1 = (vref.value() - p1.value()) / r_top_t;
        let i2 = (vref.value() - p2.value()) / r_top_t;
        CellReading {
            temperature,
            vref,
            vbe_a: p1,
            vbe_b: eb,
            dvbe: Volt::new(p1.value() - eb.value()),
            i_branch_a: Ampere::new(i1),
            i_branch_b: Ampere::new(i2),
            solution: op.solution().to_vec(),
        }
    }

    /// Total dissipated power at a reading: both branch currents from
    /// `VREF` to ground plus the op-amp quiescent draw, which is modelled
    /// PTAT (class-A bias currents rise with temperature).
    #[must_use]
    pub fn power_watts(&self, reading: &CellReading) -> f64 {
        let branches =
            reading.vref.value() * (reading.i_branch_a.value() + reading.i_branch_b.value()).abs();
        // 2 mW at 298 K, PTAT: the dominant term, as in the paper's cell
        // where "the collector currents ICQA and ICQB increase with
        // temperature".
        let opamp = 2e-3 * reading.temperature.value() / 298.15;
        branches + opamp
    }

    /// Trims `R_ptat` so that `dVREF/dT = 0` at `center` (the classic
    /// magic-voltage trim). Returns the trimmed resistance.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; [`SpiceError::NoConvergence`] if the
    /// slope does not change sign over the search bracket.
    pub fn calibrate(&self, center: Kelvin) -> Result<Ohm, SpiceError> {
        let h = 5.0;
        let slope_at = |r: f64| -> Result<f64, SpiceError> {
            self.r_ptat.set(r);
            let lo = self.solve(Kelvin::new(center.value() - h))?;
            let hi = self.solve(Kelvin::new(center.value() + h))?;
            Ok((hi.vref.value() - lo.vref.value()) / (2.0 * h))
        };
        // Bracket: small R -> huge PTAT gain -> positive slope; large R ->
        // VBE dominates -> negative slope.
        let mut lo = 1.5e3;
        let mut hi = 4.5e3;
        let f_lo = slope_at(lo)?;
        let f_hi = slope_at(hi)?;
        if f_lo.signum() == f_hi.signum() {
            return Err(SpiceError::NoConvergence {
                strategy: format!(
                    "calibrate: slope does not change sign over [{lo}, {hi}] ({f_lo:e}, {f_hi:e})"
                ),
                residual: f_lo.abs().min(f_hi.abs()),
            });
        }
        if f_lo < 0.0 {
            std::mem::swap(&mut lo, &mut hi);
        }
        let opts = RootOptions {
            x_tolerance: 1e-3,
            f_tolerance: 1e-9,
            max_iterations: 60,
        };
        let root = brent(
            |r| slope_at(r).unwrap_or(f64::NAN),
            lo.min(hi),
            lo.max(hi),
            opts,
        )
        .map_err(icvbe_spice::SpiceError::from)?;
        self.r_ptat.set(root);
        Ok(Ohm::new(root))
    }
}

/// Writes a start-up guess for `node` into the MNA guess vector; ground
/// (which has no unknown slot) is silently skipped.
pub(crate) fn seed_guess(g: &mut [f64], node: NodeId, v: f64) {
    if let Some(slot) = node.unknown_index().and_then(|i| g.get_mut(i)) {
        *slot = v;
    }
}

/// Probe nodes of the built cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellNodes {
    /// The reference output (op-amp output).
    pub vref: NodeId,
    /// QA emitter / op-amp non-inverting input.
    pub p1: NodeId,
    /// Top of `R_ptat` / op-amp inverting input.
    pub p2: NodeId,
    /// Between `R_ptat` and RadjA (pad P6 of the paper).
    pub p6: NodeId,
    /// QB emitter.
    pub eb: NodeId,
}

/// One solved temperature point of the cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReading {
    /// Die temperature of the solve.
    pub temperature: Kelvin,
    /// The reference voltage.
    pub vref: Volt,
    /// `VBE` of QA.
    pub vbe_a: Volt,
    /// `VBE` of QB.
    pub vbe_b: Volt,
    /// `VBE(QA) - VBE(QB)`.
    pub dvbe: Volt,
    /// Branch current through RX1.
    pub i_branch_a: Ampere,
    /// Branch current through RX2.
    pub i_branch_b: Ampere,
    /// Raw solution vector for warm-starting neighbouring solves.
    pub solution: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::st_bicmos_pnp;

    #[test]
    fn cell_solves_to_a_bandgap_voltage() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        let r = cell.solve(Kelvin::new(298.15)).unwrap();
        assert!(
            r.vref.value() > 1.1 && r.vref.value() < 1.35,
            "VREF = {}",
            r.vref
        );
        // Both branches carry equal microamp-scale current.
        assert!((r.i_branch_a.value() - r.i_branch_b.value()).abs() < 1e-8);
        assert!(r.i_branch_a.value() > 1e-6 && r.i_branch_a.value() < 1e-4);
    }

    #[test]
    fn dvbe_equals_vt_ln8_at_equal_currents() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        let t = Kelvin::new(298.15);
        let r = cell.solve(t).unwrap();
        let expected = icvbe_units::constants::BOLTZMANN_OVER_Q * t.value() * 8.0_f64.ln();
        assert!(
            (r.dvbe.value() - expected).abs() < 5e-4,
            "dVBE {} vs {expected}",
            r.dvbe.value()
        );
    }

    #[test]
    fn vref_identity_holds() {
        // VREF = VBE(QA) + R_top/(R_ptat + RadjA) * dVBE.
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        let r = cell.solve(Kelvin::new(298.15)).unwrap();
        let gain = cell.r_top.value() / (cell.r_ptat.get() + cell.radj_a.get().max(1e-6));
        let predicted = r.vbe_a.value() + gain * r.dvbe.value();
        assert!(
            (r.vref.value() - predicted).abs() < 2e-3,
            "VREF {} vs predicted {predicted}",
            r.vref.value()
        );
    }

    #[test]
    fn calibration_flattens_the_curve() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        let r = cell.calibrate(Kelvin::new(298.15)).unwrap();
        assert!(r.value() > 1.5e3 && r.value() < 4.5e3, "R_ptat = {r}");
        let lo = cell.solve(Kelvin::new(293.15)).unwrap().vref.value();
        let hi = cell.solve(Kelvin::new(303.15)).unwrap().vref.value();
        assert!(
            ((hi - lo) / 10.0).abs() < 2e-5,
            "slope after calibration: {}",
            (hi - lo) / 10.0
        );
    }

    #[test]
    fn calibrated_cell_shows_the_classic_bell() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        cell.calibrate(Kelvin::new(298.15)).unwrap();
        let v_cold = cell.solve(Kelvin::new(223.15)).unwrap().vref.value();
        let v_mid = cell.solve(Kelvin::new(298.15)).unwrap().vref.value();
        let v_hot = cell.solve(Kelvin::new(398.15)).unwrap().vref.value();
        assert!(
            v_mid > v_cold && v_mid > v_hot,
            "not a bell: {v_cold}, {v_mid}, {v_hot}"
        );
        // Bow magnitude: millivolts over 175 K, as in Fig. 8.
        assert!(v_mid - v_cold < 0.04 && v_mid - v_hot < 0.04);
    }

    #[test]
    fn opamp_offset_shifts_vref() {
        let clean = BandgapCell::nominal(st_bicmos_pnp());
        let offset = BandgapCell::nominal(st_bicmos_pnp()).with_opamp_offset(Volt::new(0.003));
        let t = Kelvin::new(298.15);
        let v0 = clean.solve(t).unwrap().vref.value();
        let v1 = offset.solve(t).unwrap().vref.value();
        // Offset is amplified by ~R_top/R_ptat.
        assert!((v1 - v0).abs() > 0.01, "offset had no effect: {v0} vs {v1}");
    }

    #[test]
    fn substrate_leakage_bends_vref_up_at_high_temperature() {
        let clean = BandgapCell::nominal(st_bicmos_pnp());
        let leaky = BandgapCell::nominal(st_bicmos_pnp())
            .with_substrate(SubstrateJunction::bicmos_default());
        clean.calibrate(Kelvin::new(298.15)).unwrap();
        leaky.r_ptat.set(clean.r_ptat.get());
        let hot = Kelvin::new(398.15);
        let v_clean = clean.solve(hot).unwrap().vref.value();
        let v_leaky = leaky.solve(hot).unwrap().vref.value();
        assert!(
            v_leaky > v_clean + 1e-4,
            "leakage should raise VREF hot: {v_clean} vs {v_leaky}"
        );
    }

    #[test]
    fn power_is_milliwatt_scale_and_increases_with_temperature() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        let cold = cell.solve(Kelvin::new(248.15)).unwrap();
        let hot = cell.solve(Kelvin::new(348.15)).unwrap();
        let p_cold = cell.power_watts(&cold);
        let p_hot = cell.power_watts(&hot);
        assert!(p_cold > 1e-3 && p_cold < 10e-3, "P = {p_cold}");
        assert!(p_hot > p_cold);
    }

    #[test]
    fn warm_start_reuses_solution() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        let r1 = cell.solve(Kelvin::new(298.15)).unwrap();
        let r2 = cell
            .solve_with(
                Kelvin::new(303.15),
                &DcOptions::default(),
                Some(&r1.solution),
            )
            .unwrap();
        assert!(r2.vref.value() > 1.1 && r2.vref.value() < 1.35);
    }
}
