//! Model cards: the bridge between extraction results and simulation.
//!
//! The paper's loop is: extract `(EG, XTI)` → write them into the SPICE
//! model card → re-simulate `VREF(T)` → compare with silicon. This module
//! provides the PNP card of the ST BiCMOS test devices and the
//! substitution of extracted parameters into a card.

use icvbe_core::ExtractedPair;
use icvbe_spice::bjt::BjtParams;
use icvbe_units::{Ampere, ElectronVolt, Kelvin, Volt};

/// The lateral/substrate PNP card standing in for the paper's BiCMOS
/// devices (6 µm² emitter; QB instantiates it with `area = 8`).
///
/// The `EG`/`XTI` here are the *ground truth* of the virtual silicon; the
/// extraction methods are judged by how well they recover them through the
/// measurement chain.
#[must_use]
pub fn st_bicmos_pnp() -> BjtParams {
    BjtParams {
        is: Ampere::new(2e-17),
        bf: 40.0,
        br: 4.0,
        nf: 1.0,
        nr: 1.0,
        ise: Ampere::new(5e-15),
        ne: 2.0,
        isc: Ampere::new(0.0),
        nc: 1.5,
        ikf: Ampere::new(2e-3),
        vaf: Volt::new(60.0),
        var: Volt::new(f64::INFINITY),
        eg: ElectronVolt::new(1.1324), // EG5(0) minus 45 meV narrowing
        xti: 2.58,                     // 4 - EN - Erho - b/k for the EG5 card
        xtb: 1.2,
        t_nom: Kelvin::new(298.15),
    }
}

/// A "standard SPICE model card": the same device but with the generic
/// foundry `EG = 1.11`, `XTI = 3.0` — the card whose simulation gives the
/// S0 bell curve of Fig. 8 that the silicon does not follow.
#[must_use]
pub fn standard_model_card() -> BjtParams {
    let mut card = st_bicmos_pnp();
    card.eg = ElectronVolt::new(1.11);
    card.xti = 3.0;
    card
}

/// Substitutes an extracted `(EG, XTI)` pair into a card, leaving every
/// other parameter untouched — how a model engineer applies the paper's
/// extraction output.
#[must_use]
pub fn card_with_extraction(base: BjtParams, extraction: &ExtractedPair) -> BjtParams {
    let mut card = base;
    card.eg = extraction.eg;
    card.xti = extraction.xti;
    card
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_card_validates() {
        assert!(st_bicmos_pnp().validate("QA").is_ok());
        assert!(standard_model_card().validate("QA").is_ok());
    }

    #[test]
    fn standard_card_differs_in_eg_xti_only() {
        let truth = st_bicmos_pnp();
        let std = standard_model_card();
        assert_ne!(truth.eg, std.eg);
        assert_ne!(truth.xti, std.xti);
        assert_eq!(truth.is, std.is);
        assert_eq!(truth.bf, std.bf);
    }

    #[test]
    fn extraction_substitution_is_surgical() {
        let pair = ExtractedPair {
            eg: ElectronVolt::new(1.2),
            xti: 4.2,
            rms_residual_volts: 0.0,
        };
        let card = card_with_extraction(st_bicmos_pnp(), &pair);
        assert_eq!(card.eg.value(), 1.2);
        assert_eq!(card.xti, 4.2);
        assert_eq!(card.bf, st_bicmos_pnp().bf);
    }
}
