//! `VREF(T)` sweeps and curve-shape diagnostics for Fig. 8.
//!
//! The paper's argument is visual: the best-fit model card predicts a
//! *bell* curve (S0), the silicon *rises* with temperature, and the
//! analytically-extracted card follows the silicon (S1). This module turns
//! "bell" and "rising" into numbers a test can assert.

use icvbe_numerics::poly::fit_polynomial;
use icvbe_spice::solver::DcOptions;
use icvbe_spice::SpiceError;
use icvbe_units::{Celsius, Kelvin, Volt};

use crate::cell::BandgapCell;

/// One `VREF(T)` curve.
#[derive(Debug, Clone, PartialEq)]
pub struct VrefCurve {
    /// Temperatures of the sweep.
    pub temperatures: Vec<Kelvin>,
    /// Reference voltages, parallel to `temperatures`.
    pub vref: Vec<Volt>,
}

impl VrefCurve {
    /// Sweeps the cell over `temperatures`, warm-starting each solve.
    ///
    /// # Errors
    ///
    /// Propagates the first solver failure.
    pub fn sweep(cell: &BandgapCell, temperatures: &[Kelvin]) -> Result<Self, SpiceError> {
        let options = DcOptions::default();
        let mut vref = Vec::with_capacity(temperatures.len());
        let mut warm: Option<Vec<f64>> = None;
        for &t in temperatures {
            let r = cell.solve_with(t, &options, warm.as_deref())?;
            vref.push(r.vref);
            warm = Some(r.solution);
        }
        Ok(VrefCurve {
            temperatures: temperatures.to_vec(),
            vref,
        })
    }

    /// Total spread `max - min` in volts.
    #[must_use]
    pub fn spread(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in &self.vref {
            lo = lo.min(v.value());
            hi = hi.max(v.value());
        }
        hi - lo
    }

    /// End-to-end slope in V/K (crude but robust rising/falling metric).
    #[must_use]
    pub fn end_to_end_slope(&self) -> f64 {
        let n = self.vref.len();
        if n < 2 {
            return 0.0;
        }
        (self.vref[n - 1].value() - self.vref[0].value())
            / (self.temperatures[n - 1].value() - self.temperatures[0].value())
    }

    /// Classifies the curve shape by a quadratic fit.
    #[must_use]
    pub fn shape(&self) -> CurveShape {
        let xs: Vec<f64> = self.temperatures.iter().map(|t| t.value()).collect();
        let ys: Vec<f64> = self.vref.iter().map(|v| v.value()).collect();
        let Ok((poly, _)) = fit_polynomial(&xs, &ys, 2) else {
            return CurveShape::Irregular;
        };
        let a2 = poly.coefficients()[2];
        let vertex = poly.quadratic_vertex();
        let (t_lo, t_hi) = (xs[0], xs[xs.len() - 1]);
        let span = t_hi - t_lo;
        // Curvature that moves VREF by < 0.5 mV over the span is flat.
        let bow = a2 * (span / 2.0) * (span / 2.0);
        if bow.abs() < 5e-4 {
            let slope = self.end_to_end_slope();
            if slope.abs() * span < 1e-3 {
                return CurveShape::Flat;
            }
            return if slope > 0.0 {
                CurveShape::Rising
            } else {
                CurveShape::Falling
            };
        }
        match vertex {
            Some(v) if a2 < 0.0 && v > t_lo + 0.1 * span && v < t_hi - 0.1 * span => {
                CurveShape::Bell
            }
            _ => {
                if self.end_to_end_slope() > 0.0 {
                    CurveShape::Rising
                } else {
                    CurveShape::Falling
                }
            }
        }
    }

    /// Temperature of the quadratic-fit maximum, if the curve is concave.
    #[must_use]
    pub fn peak_temperature(&self) -> Option<Kelvin> {
        let xs: Vec<f64> = self.temperatures.iter().map(|t| t.value()).collect();
        let ys: Vec<f64> = self.vref.iter().map(|v| v.value()).collect();
        let (poly, _) = fit_polynomial(&xs, &ys, 2).ok()?;
        if poly.coefficients()[2] >= 0.0 {
            return None;
        }
        poly.quadratic_vertex().map(Kelvin::new)
    }

    /// Maximum absolute difference to another curve on the same grid, in
    /// volts — how Fig. 8 compares simulation to measurement.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ in length.
    #[must_use]
    pub fn max_deviation_from(&self, other: &VrefCurve) -> f64 {
        assert_eq!(
            self.vref.len(),
            other.vref.len(),
            "curves must share a grid"
        );
        self.vref
            .iter()
            .zip(&other.vref)
            .map(|(a, b)| (a.value() - b.value()).abs())
            .fold(0.0, f64::max)
    }
}

/// The qualitative shapes Fig. 8 distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveShape {
    /// Concave with an interior maximum — the classic compensated bandgap
    /// (curve S0).
    Bell,
    /// Monotonically rising — the measured silicon with saturation
    /// leakage.
    Rising,
    /// Monotonically falling.
    Falling,
    /// Within a fraction of a millivolt everywhere.
    Flat,
    /// None of the above (fit failure).
    Irregular,
}

/// The paper's Fig.-8 temperature grid: -80..145 °C.
#[must_use]
pub fn figure8_grid() -> Vec<Kelvin> {
    (0..=9)
        .map(|i| Celsius::new(-80.0 + 25.0 * i as f64).to_kelvin())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::st_bicmos_pnp;
    use icvbe_spice::bjt::SubstrateJunction;

    #[test]
    fn figure8_grid_spans_paper_range() {
        let g = figure8_grid();
        assert_eq!(g.len(), 10);
        assert!((g[0].to_celsius().value() + 80.0).abs() < 1e-9);
        assert!((g[9].to_celsius().value() - 145.0).abs() < 1e-9);
    }

    #[test]
    fn calibrated_clean_cell_is_a_bell() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        cell.calibrate(Kelvin::new(298.15)).unwrap();
        let curve = VrefCurve::sweep(&cell, &figure8_grid()).unwrap();
        assert_eq!(curve.shape(), CurveShape::Bell, "curve: {:?}", curve.vref);
        let peak = curve.peak_temperature().unwrap();
        assert!(peak.value() > 273.0 && peak.value() < 330.0, "peak {peak}");
    }

    #[test]
    fn leaky_cell_rises_at_the_hot_end() {
        let cell = BandgapCell::nominal(st_bicmos_pnp())
            .with_substrate(SubstrateJunction::bicmos_default());
        cell.calibrate(Kelvin::new(298.15)).unwrap();
        let curve = VrefCurve::sweep(&cell, &figure8_grid()).unwrap();
        // The hot tail must bend up: last point above the mid-range point.
        let n = curve.vref.len();
        assert!(
            curve.vref[n - 1].value() > curve.vref[n - 3].value(),
            "no hot-end rise: {:?}",
            curve.vref
        );
    }

    #[test]
    fn spread_and_slope_metrics() {
        let c = VrefCurve {
            temperatures: vec![Kelvin::new(200.0), Kelvin::new(300.0), Kelvin::new(400.0)],
            vref: vec![Volt::new(1.20), Volt::new(1.23), Volt::new(1.21)],
        };
        assert!((c.spread() - 0.03).abs() < 1e-12);
        assert!((c.end_to_end_slope() - 0.01 / 200.0).abs() < 1e-12);
        assert_eq!(c.shape(), CurveShape::Bell);
    }

    #[test]
    fn max_deviation_between_curves() {
        let a = VrefCurve {
            temperatures: vec![Kelvin::new(200.0), Kelvin::new(300.0)],
            vref: vec![Volt::new(1.20), Volt::new(1.23)],
        };
        let b = VrefCurve {
            temperatures: a.temperatures.clone(),
            vref: vec![Volt::new(1.21), Volt::new(1.20)],
        };
        assert!((a.max_deviation_from(&b) - 0.03).abs() < 1e-12);
    }
}
