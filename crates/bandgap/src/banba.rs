//! Extension: the sub-1V *current-mode* bandgap (Banba et al., JSSC 1999 —
//! the paper's reference \[10\] and the motivation of its introduction).
//!
//! The classic cell of Fig. 3 outputs `VBE + k·dVBE ≈ 1.2 V` and cannot
//! work below that. Banba's trick sums *currents* instead of voltages:
//!
//! ```text
//! node va: QA diode  ||  R1 to ground     <- mirror leg 1
//! node vb: (R0 + QB diode)  ||  R2        <- mirror leg 2 (R2 = R1)
//! op-amp forces va = vb, sets the mirror control voltage
//! I = VBE/R1 + dVBE/R0      (CTAT + PTAT currents)
//! VREF = I * R3             (any voltage, e.g. 0.6 V)
//! ```
//!
//! The extracted `EG`/`XTI` of the test structure matter *more* here: the
//! curvature left after first-order compensation is exactly what the
//! eq.-13 law with the right card predicts. This module reuses every
//! substrate of the workspace — the op-amp, the Gummel-Poon PNPs, the
//! mirror as matched [`Vccs`] legs.

use icvbe_numerics::roots::{brent, RootOptions};
use icvbe_spice::bjt::{Bjt, BjtParams, Polarity};
use icvbe_spice::element::{OpAmp, Resistor};
use icvbe_spice::netlist::{Circuit, NodeId};
use icvbe_spice::param::Param;
use icvbe_spice::solver::{solve_dc, DcOptions};
use icvbe_spice::vccs::Vccs;
use icvbe_spice::SpiceError;
use icvbe_units::{Kelvin, Ohm, Volt};

/// Configuration of the current-mode cell.
#[derive(Debug, Clone)]
pub struct BanbaCell {
    /// PNP model card.
    pub card: BjtParams,
    /// QB emitter-area ratio.
    pub area_ratio: f64,
    /// The dVBE resistor `R0` (PTAT current), trimmable.
    pub r0: Param,
    /// The VBE resistors `R1 = R2` (CTAT current).
    pub r1: Ohm,
    /// The output resistor `R3` (sets the output level).
    pub r3: Ohm,
    /// Mirror transconductance per leg.
    pub gm: f64,
    /// Op-amp open-loop gain.
    pub opamp_gain: f64,
}

/// Probe nodes of the built cell.
#[derive(Debug, Clone, Copy)]
pub struct BanbaNodes {
    /// Mirror leg 1 summing node (QA || R1).
    pub va: NodeId,
    /// Mirror leg 2 summing node (R0+QB || R2).
    pub vb: NodeId,
    /// The output node (`I * R3`).
    pub vref: NodeId,
    /// The op-amp output (mirror control).
    pub ctl: NodeId,
}

/// One solved point.
#[derive(Debug, Clone)]
pub struct BanbaReading {
    /// Temperature of the solve.
    pub temperature: Kelvin,
    /// The sub-1V reference output.
    pub vref: Volt,
    /// Per-leg mirror current (amps).
    pub leg_current: f64,
    /// Raw solution vector for warm starts.
    pub solution: Vec<f64>,
}

impl BanbaCell {
    /// A ~0.6 V design on the given card: `R0 = 100 kΩ`,
    /// `R1 = R2 = 1.03 MΩ`, `R3 = 510 kΩ`.
    #[must_use]
    pub fn nominal(card: BjtParams) -> Self {
        BanbaCell {
            card,
            area_ratio: 8.0,
            r0: Param::new(100e3),
            r1: Ohm::new(1.03e6),
            r3: Ohm::new(510e3),
            gm: 1e-3,
            opamp_gain: 1e6,
        }
    }

    /// Builds the netlist.
    ///
    /// # Errors
    ///
    /// Propagates element validation.
    pub fn build(&self) -> Result<(Circuit, BanbaNodes), SpiceError> {
        let mut ckt = Circuit::new();
        let gnd = Circuit::ground();
        let va = ckt.node("va");
        let vb = ckt.node("vb");
        let vmid = ckt.node("vmid");
        let vref = ckt.node("vref");
        let ctl = ckt.node("ctl");

        // Mirror: three matched legs, all controlled by ctl.
        ckt.add(Vccs::new("GM1", ctl, gnd, gnd, va, self.gm)?);
        ckt.add(Vccs::new("GM2", ctl, gnd, gnd, vb, self.gm)?);
        ckt.add(Vccs::new("GM3", ctl, gnd, gnd, vref, self.gm)?);

        // Leg 1: QA || R1.
        ckt.add(Bjt::new("QA", gnd, gnd, va, Polarity::Pnp, self.card)?);
        ckt.add(Resistor::new("R1", va, gnd, self.r1)?);

        // Leg 2: R0 + QB (area N), in parallel with R2 = R1.
        ckt.add(Resistor::new("R0", vb, vmid, Ohm::new(1.0))?.with_handle(self.r0.clone()));
        ckt.add(
            Bjt::new("QB", gnd, gnd, vmid, Polarity::Pnp, self.card)?.with_area(self.area_ratio)?,
        );
        ckt.add(Resistor::new("R2", vb, gnd, self.r1)?);

        // Output leg: I into R3.
        ckt.add(Resistor::new("R3", vref, gnd, self.r3)?);

        // The loop amplifier: forces va = vb by driving the mirror.
        ckt.add(OpAmp::new("U1", va, vb, ctl, self.opamp_gain)?);

        Ok((ckt, BanbaNodes { va, vb, vref, ctl }))
    }

    /// Solves the cell at one temperature (start-up guess included).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&self, temperature: Kelvin) -> Result<BanbaReading, SpiceError> {
        self.solve_with(temperature, None)
    }

    /// [`BanbaCell::solve`] with an optional warm start.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve_with(
        &self,
        temperature: Kelvin,
        warm: Option<&[f64]>,
    ) -> Result<BanbaReading, SpiceError> {
        let (ckt, nodes) = self.build()?;
        let guess_storage;
        let initial = match warm {
            Some(w) => w,
            None => {
                let vbe = 0.70 - 2.0e-3 * (temperature.value() - 298.15);
                let mut g = vec![0.0; ckt.unknown_count()];
                crate::cell::seed_guess(&mut g, nodes.va, vbe);
                crate::cell::seed_guess(&mut g, nodes.vb, vbe);
                // vmid is node 3 in creation order (va, vb, vmid, ...).
                g[2] = vbe - 0.05;
                crate::cell::seed_guess(&mut g, nodes.vref, 0.6);
                crate::cell::seed_guess(&mut g, nodes.ctl, 1.2e-3 / self.gm);
                guess_storage = g;
                &guess_storage[..]
            }
        };
        let op = solve_dc(&ckt, temperature, &DcOptions::default(), Some(initial))?;
        Ok(BanbaReading {
            temperature,
            vref: op.voltage(nodes.vref),
            leg_current: self.gm * op.voltage(nodes.ctl).value(),
            solution: op.solution().to_vec(),
        })
    }

    /// Trims `R0` for zero output slope at `center`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; fails if the slope does not change sign
    /// over the bracket.
    pub fn calibrate(&self, center: Kelvin) -> Result<Ohm, SpiceError> {
        let h = 5.0;
        let slope_at = |r: f64| -> Result<f64, SpiceError> {
            self.r0.set(r);
            let lo = self.solve(Kelvin::new(center.value() - h))?;
            let hi = self.solve(Kelvin::new(center.value() + h))?;
            Ok((hi.vref.value() - lo.vref.value()) / (2.0 * h))
        };
        let (lo, hi) = (50e3, 200e3);
        let f_lo = slope_at(lo)?;
        let f_hi = slope_at(hi)?;
        if f_lo.signum() == f_hi.signum() {
            return Err(SpiceError::NoConvergence {
                strategy: format!("banba calibrate: no sign change ({f_lo:e}, {f_hi:e})"),
                residual: f_lo.abs().min(f_hi.abs()),
            });
        }
        let opts = RootOptions {
            x_tolerance: 10.0,
            f_tolerance: 1e-9,
            ..RootOptions::default()
        };
        let root = brent(|r| slope_at(r).unwrap_or(f64::NAN), lo, hi, opts)?;
        self.r0.set(root);
        Ok(Ohm::new(root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::st_bicmos_pnp;

    #[test]
    fn output_is_sub_1v() {
        let cell = BanbaCell::nominal(st_bicmos_pnp());
        let r = cell.solve(Kelvin::new(298.15)).unwrap();
        assert!(
            r.vref.value() > 0.4 && r.vref.value() < 0.9,
            "VREF = {} — not a sub-1V reference",
            r.vref
        );
        assert!(r.leg_current > 1e-7 && r.leg_current < 1e-5);
    }

    #[test]
    fn calibrated_cell_is_flat_to_millivolts() {
        let cell = BanbaCell::nominal(st_bicmos_pnp());
        cell.calibrate(Kelvin::new(298.15)).unwrap();
        let mut vs = Vec::new();
        let mut warm: Option<Vec<f64>> = None;
        for t in (0..8).map(|i| 223.15 + 25.0 * i as f64) {
            let r = cell.solve_with(Kelvin::new(t), warm.as_deref()).unwrap();
            vs.push(r.vref.value());
            warm = Some(r.solution);
        }
        let spread = vs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - vs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 5e-3, "spread {spread} over {vs:?}");
    }

    #[test]
    fn r0_sets_the_ptat_share() {
        // Smaller R0 -> more PTAT current -> higher VREF.
        let cell = BanbaCell::nominal(st_bicmos_pnp());
        let t = Kelvin::new(298.15);
        cell.r0.set(80e3);
        let hi = cell.solve(t).unwrap().vref.value();
        cell.r0.set(140e3);
        let lo = cell.solve(t).unwrap().vref.value();
        assert!(hi > lo, "{hi} vs {lo}");
    }

    #[test]
    fn card_curvature_shows_in_the_output() {
        // The residual curvature after calibration reflects the eq.-13 law
        // — swap the card's EG/XTI and the bow changes measurably.
        let mk = |eg: f64, xti: f64| {
            let mut card = st_bicmos_pnp();
            card.eg = icvbe_units::ElectronVolt::new(eg);
            card.xti = xti;
            let cell = BanbaCell::nominal(card);
            cell.calibrate(Kelvin::new(298.15)).unwrap();
            let cold = cell.solve(Kelvin::new(223.15)).unwrap().vref.value();
            let mid = cell.solve(Kelvin::new(298.15)).unwrap().vref.value();
            let hot = cell.solve(Kelvin::new(398.15)).unwrap().vref.value();
            (mid - cold) + (mid - hot) // total bow
        };
        let bow_truth = mk(1.1324, 2.58);
        let bow_other = mk(1.1324, 5.5);
        assert!(
            (bow_truth - bow_other).abs() > 1e-4,
            "card change invisible: {bow_truth} vs {bow_other}"
        );
    }
}
