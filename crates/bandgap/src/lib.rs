//! The paper's programmable bandgap test cell (Fig. 3) and pair-bias
//! structure (Fig. 2), built on the [`icvbe_spice`] simulator.
//!
//! - [`card`]: turning an extracted `(EG, XTI)` pair into a simulator model
//!   card — the "model card" round trip of Figs. 6 and 8,
//! - [`pair`]: the QA/QB PTAT pair under forced equal collector currents —
//!   the measurement configuration of the analytical method,
//! - [`cell`]: the full Kuijk-style bandgap cell with top resistors, the
//!   `dVBE` resistor, the RadjA trim, op-amp offset and substrate
//!   parasitics,
//! - [`vref`]: `VREF(T)` sweeps and curve-shape metrics (bell vs rising),
//! - [`radj`]: RadjA trimming: the Fig.-8 S1-S4 family and the flatness
//!   optimizer.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod banba;
pub mod card;
pub mod cell;
pub mod pair;
pub mod programmable;
pub mod radj;
pub mod vref;
