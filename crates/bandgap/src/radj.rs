//! The RadjA trim: Fig. 8's S1-S4 family and the flatness optimizer.
//!
//! RadjA sits in series with the `dVBE` resistor on the QB branch. It
//! reduces the PTAT gain `R_top / (R_ptat + RadjA)` — the knob the paper
//! turns (0, 1.8k, 2.5k, 2.7k) to cancel the extra PTAT-ish component the
//! substrate leakage and op-amp offset inject.

use icvbe_spice::SpiceError;
use icvbe_units::{Kelvin, Ohm};

use crate::cell::BandgapCell;
use crate::vref::VrefCurve;

/// `VREF(T)` curves for a set of RadjA values (the S1-S4 family).
///
/// The cell's `radj_a` handle is restored to its original value after the
/// sweep.
///
/// # Errors
///
/// Propagates the first solver failure.
pub fn radj_family(
    cell: &BandgapCell,
    radj_values: &[Ohm],
    temperatures: &[Kelvin],
) -> Result<Vec<(Ohm, VrefCurve)>, SpiceError> {
    let original = cell.radj_a.get();
    let mut out = Vec::with_capacity(radj_values.len());
    for &r in radj_values {
        cell.radj_a.set(r.value().max(0.0));
        match VrefCurve::sweep(cell, temperatures) {
            Ok(curve) => out.push((r, curve)),
            Err(e) => {
                cell.radj_a.set(original);
                return Err(e);
            }
        }
    }
    cell.radj_a.set(original);
    Ok(out)
}

/// Searches `candidates` for the RadjA minimizing the `VREF(T)` spread
/// over `temperatures`. Returns the winner and its spread in volts; the
/// cell's handle is left set to the winner (it is a trim, after all).
///
/// # Errors
///
/// Propagates solver failures; [`SpiceError::BadParameter`] for an empty
/// candidate list.
pub fn trim_for_flatness(
    cell: &BandgapCell,
    candidates: &[Ohm],
    temperatures: &[Kelvin],
) -> Result<(Ohm, f64), SpiceError> {
    if candidates.is_empty() {
        return Err(SpiceError::parameter("RadjA", "empty candidate list"));
    }
    let family = radj_family(cell, candidates, temperatures)?;
    let mut best: Option<(Ohm, f64)> = None;
    for (r, curve) in family {
        let spread = curve.spread();
        if best.is_none_or(|(_, s)| spread < s) {
            best = Some((r, spread));
        }
    }
    let (r, s) = best.ok_or_else(|| SpiceError::parameter("RadjA", "empty candidate family"))?;
    cell.radj_a.set(r.value());
    Ok((r, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::card::st_bicmos_pnp;
    use crate::vref::figure8_grid;
    use icvbe_spice::bjt::SubstrateJunction;
    use icvbe_units::Volt;

    fn paper_radj_values() -> Vec<Ohm> {
        vec![
            Ohm::new(0.0),
            Ohm::new(1.8e3),
            Ohm::new(2.5e3),
            Ohm::new(2.7e3),
        ]
    }

    #[test]
    fn radj_lowers_vref() {
        // Larger RadjA reduces the PTAT gain, lowering VREF overall.
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        cell.calibrate(Kelvin::new(298.15)).unwrap();
        let grid = [Kelvin::new(298.15)];
        let family = radj_family(&cell, &paper_radj_values(), &grid).unwrap();
        let v: Vec<f64> = family.iter().map(|(_, c)| c.vref[0].value()).collect();
        assert!(
            v[1] < v[0] && v[2] < v[1] && v[3] < v[2],
            "VREF not monotone in RadjA: {v:?}"
        );
    }

    #[test]
    fn handle_is_restored_after_family_sweep() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        cell.radj_a.set(123.0);
        let _ = radj_family(&cell, &paper_radj_values(), &[Kelvin::new(298.15)]).unwrap();
        assert_eq!(cell.radj_a.get(), 123.0);
    }

    #[test]
    fn trim_improves_flatness_of_imperfect_cell() {
        // The paper's scenario: R_ptat holds its *design* value (trimmed
        // on the clean model card), but the silicon has leakage and
        // op-amp offset. RadjA is the post-fab knob that flattens it.
        let clean = BandgapCell::nominal(st_bicmos_pnp());
        clean.calibrate(Kelvin::new(298.15)).unwrap();
        let cell = BandgapCell::nominal(st_bicmos_pnp())
            .with_substrate(SubstrateJunction::bicmos_default())
            .with_opamp_offset(Volt::new(0.002));
        cell.r_ptat.set(clean.r_ptat.get());
        let grid = figure8_grid();
        let untrimmed = VrefCurve::sweep(&cell, &grid).unwrap().spread();
        let candidates: Vec<Ohm> = (0..=27).map(|i| Ohm::new(100.0 * i as f64)).collect();
        let (r, trimmed) = trim_for_flatness(&cell, &candidates, &grid).unwrap();
        assert!(
            trimmed <= untrimmed + 1e-9,
            "trim made it worse: {untrimmed} -> {trimmed} at {r}"
        );
        assert!(cell.radj_a.get() == r.value());
    }

    #[test]
    fn empty_candidates_rejected() {
        let cell = BandgapCell::nominal(st_bicmos_pnp());
        assert!(trim_for_flatness(&cell, &[], &[Kelvin::new(300.0)]).is_err());
    }
}
