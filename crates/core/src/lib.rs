//! `EG`/`XTI` extraction from `IC(VBE)` temperature data — the reproduced
//! paper's contribution.
//!
//! Two extraction routes are implemented, mirroring sections 3-5:
//!
//! 1. **Best fit** ([`bestfit`]): least-squares fit of the eq.-13 closed
//!    form on a measured `VBE(T)` characteristic at constant collector
//!    current. Because `EG` and `XTI` are strongly correlated over a
//!    -50..125 °C span, the practical output is a *characteristic straight*
//!    `EG(XTI)` ([`straight`]) rather than a point.
//! 2. **Analytical / test-structure method** ([`meijer`]): Meijer's
//!    equations 14-15 on three temperatures, where the two *extreme*
//!    temperatures are not trusted from the chamber sensor but *computed*
//!    from the PTAT `dVBE` of the QA/QB pair ([`tempcomp`], eq. 16) with
//!    the collector-current correction of eqs. 17-20 — so the extraction
//!    sees the die's own temperature, self-heating and all.
//!
//! [`sensitivity`] quantifies the error-propagation claims the paper makes
//! in passing (1% `VBE` error → up to 8% `EG` error; `dT2 < 5 K` is
//! harmless; bias drift contributes ~0.3 mV to `dVBE`).
//!
//! # Examples
//!
//! ```
//! use icvbe_core::data::VbeCurve;
//! use icvbe_core::bestfit::fit_eg_xti;
//! use icvbe_devphys::saturation::SpiceIsLaw;
//! use icvbe_devphys::vbe::vbe_for_current;
//! use icvbe_units::{Ampere, ElectronVolt, Kelvin};
//!
//! // Synthesize a perfect VBE(T) characteristic, then recover EG and XTI.
//! let law = SpiceIsLaw::new(Ampere::new(2e-17), Kelvin::new(298.15),
//!                           ElectronVolt::new(1.1324), 2.58);
//! let ic = Ampere::new(1e-6);
//! let points: Vec<_> = (0..8)
//!     .map(|i| {
//!         let t = Kelvin::new(223.15 + 25.0 * i as f64);
//!         (t, vbe_for_current(&law, ic, t), ic)
//!     })
//!     .collect();
//! let curve = VbeCurve::from_points(points)?;
//! let fit = fit_eg_xti(&curve, 3)?; // index 3 = 298.15 K reference
//! assert!((fit.eg.value() - 1.1324).abs() < 1e-9);
//! assert!((fit.xti - 2.58).abs() < 1e-6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bestfit;
pub mod data;
mod error;
pub mod meijer;
pub mod nonlinear;
pub mod sensitivity;
pub mod straight;
pub mod tempcomp;

pub use error::ExtractionError;

use icvbe_units::ElectronVolt;

/// An extracted `(EG, XTI)` parameter pair with fit diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractedPair {
    /// Extracted bandgap parameter.
    pub eg: ElectronVolt,
    /// Extracted saturation-current temperature exponent.
    pub xti: f64,
    /// Root-mean-square residual of the fit in volts (0 for the exactly
    /// determined analytical method).
    pub rms_residual_volts: f64,
}
